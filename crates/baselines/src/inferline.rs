//! An InferLine-style baseline: pipeline-aware hardware scaling, fixed model variants.
//!
//! InferLine (SoCC'20) provisions and scales inference pipelines to meet latency SLOs
//! at minimum cost, but the client pins a single model variant per task and the system
//! never switches variants. We reproduce that behaviour: the controller always hosts
//! the most accurate variant of every task, scales replica counts (and batch sizes)
//! with demand, and powers servers down during off-peak periods. When demand exceeds
//! what the full cluster can serve at maximum accuracy, it simply saturates — which is
//! exactly the regime where the paper shows its SLO violations shooting up.

use loki_core::load_balancer::MostAccurateFirst;
use loki_core::perf::{FanoutOverrides, PerfModel};
use loki_pipeline::{PipelineGraph, VariantId};
use loki_sim::{AllocationPlan, CompiledPlan, Controller, DropPolicy, InstanceSpec, ObservedState};
use std::collections::HashMap;

/// Configuration of the InferLine-style baseline.
#[derive(Debug, Clone)]
pub struct InferLineConfig {
    /// Resource-allocation interval (seconds).
    pub control_interval_s: f64,
    /// Routing refresh interval (seconds).
    pub routing_interval_s: f64,
    /// Runtime drop policy (InferLine itself has no accuracy-aware rerouting, so the
    /// default is conservative last-task dropping).
    pub drop_policy: DropPolicy,
    /// SLO headroom divisor (2.0, same queueing model as Loki).
    pub slo_headroom_divisor: f64,
    /// Per-hop network latency in ms.
    pub comm_latency_ms: f64,
    /// Provisioning margin over the demand estimate.
    pub provisioning_margin: f64,
    /// Relative demand change that triggers a re-allocation.
    pub replan_threshold: f64,
}

impl Default for InferLineConfig {
    fn default() -> Self {
        Self {
            control_interval_s: 10.0,
            routing_interval_s: 1.0,
            drop_policy: DropPolicy::LastTask,
            slo_headroom_divisor: 2.0,
            comm_latency_ms: 2.0,
            provisioning_margin: 1.25,
            replan_threshold: 0.05,
        }
    }
}

/// The InferLine-style controller.
pub struct InferLineController {
    graph: PipelineGraph,
    config: InferLineConfig,
    /// Shared plan-emission seam: the same `MostAccurateFirst` emitter Loki uses,
    /// so this baseline's routing compiles through the identical dense-plan API.
    lb: MostAccurateFirst,
    fanout: FanoutOverrides,
    last_planned_demand: f64,
    planned_once: bool,
}

impl InferLineController {
    /// Create a controller for a pipeline.
    pub fn new(graph: PipelineGraph, config: InferLineConfig) -> Self {
        graph.validate().expect("pipeline graph must be valid");
        Self {
            graph,
            config,
            lb: MostAccurateFirst::default(),
            fanout: FanoutOverrides::new(),
            last_planned_demand: 0.0,
            planned_once: false,
        }
    }

    /// Create a controller with the default configuration.
    pub fn with_defaults(graph: PipelineGraph) -> Self {
        Self::new(graph, InferLineConfig::default())
    }

    /// Create a controller with the default configuration but a specific runtime drop
    /// policy (used by scenario factories that ablate drop policies across systems).
    pub fn with_drop_policy(graph: PipelineGraph, drop_policy: DropPolicy) -> Self {
        Self::new(
            graph,
            InferLineConfig {
                drop_policy,
                ..InferLineConfig::default()
            },
        )
    }

    /// The controller configuration.
    pub fn config(&self) -> &InferLineConfig {
        &self.config
    }

    /// Mutable access to the configuration (scenario factories adjust the comm
    /// latency to the cluster's link-delay model before the run starts).
    pub fn config_mut(&mut self) -> &mut InferLineConfig {
        &mut self.config
    }

    fn most_accurate_choice(&self) -> Vec<usize> {
        self.graph
            .tasks()
            .map(|(_, t)| t.most_accurate_variant())
            .collect()
    }

    /// Build the allocation for a given demand, capping at the cluster size when the
    /// demand exceeds the maximum-accuracy capacity.
    pub fn allocate_for_demand(&self, demand: f64, cluster_size: usize) -> AllocationPlan {
        let perf = PerfModel::new(
            &self.graph,
            self.config.slo_headroom_divisor,
            self.config.comm_latency_ms,
        );
        let choice = self.most_accurate_choice();
        let target = {
            let cap = perf.max_servable_demand(&choice, cluster_size, &self.fanout);
            if cap > 0.0 {
                demand.min(cap)
            } else {
                demand
            }
        };
        let Some(plan) = perf.plan_for_choice(&choice, target, &self.fanout) else {
            return AllocationPlan {
                instances: Vec::new(),
                latency_budgets_ms: HashMap::new(),
                drop_policy: self.config.drop_policy,
            };
        };
        let mut instances = Vec::new();
        let mut budgets = HashMap::new();
        for (t, &k) in plan.choice.iter().enumerate() {
            if plan.replicas[t] == 0 {
                continue;
            }
            let variant = VariantId::new(t, k);
            instances.push(InstanceSpec {
                variant,
                max_batch: plan.batches[t],
                count: plan.replicas[t],
            });
            budgets.insert(variant, perf.runtime_budget_ms(variant, plan.batches[t]));
        }
        AllocationPlan {
            instances,
            latency_budgets_ms: budgets,
            drop_policy: self.config.drop_policy,
        }
    }

    fn demand_estimate(&self, observed: &ObservedState<'_>) -> f64 {
        let base = if observed.demand.is_empty() {
            observed.initial_demand_hint.unwrap_or(0.0)
        } else {
            observed
                .demand
                .provisioning_estimate()
                .max(observed.initial_demand_hint.unwrap_or(0.0))
        };
        base * self.config.provisioning_margin
    }
}

impl Controller for InferLineController {
    fn name(&self) -> &str {
        "inferline"
    }

    fn control_interval_s(&self) -> f64 {
        self.config.control_interval_s
    }

    fn routing_interval_s(&self) -> f64 {
        self.config.routing_interval_s
    }

    fn plan(&mut self, observed: &ObservedState<'_>) -> Option<AllocationPlan> {
        if !observed.observed_fanout.is_empty() {
            self.fanout = observed.observed_fanout.clone();
        }
        let demand = self.demand_estimate(observed);
        let relative_change =
            (demand - self.last_planned_demand).abs() / self.last_planned_demand.max(1.0);
        if self.planned_once && relative_change <= self.config.replan_threshold {
            return None;
        }
        self.planned_once = true;
        self.last_planned_demand = demand;
        Some(self.allocate_for_demand(demand, observed.cluster_size))
    }

    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<CompiledPlan> {
        let demand = self.demand_estimate(observed);
        Some(
            self.lb
                .emit(&self.graph, observed.workers, demand, &self.fanout),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_pipeline::zoo;
    use loki_sim::{SimConfig, Simulation};
    use loki_workload::{generate_arrivals, generators, ArrivalProcess};

    #[test]
    fn always_hosts_most_accurate_variants() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let ctl = InferLineController::with_defaults(g.clone());
        for demand in [50.0, 500.0, 5_000.0] {
            let plan = ctl.allocate_for_demand(demand, 20);
            for spec in &plan.instances {
                let task = g.task(loki_pipeline::TaskId(spec.variant.task));
                assert_eq!(spec.variant.variant, task.most_accurate_variant());
            }
            assert!(plan.total_workers() <= 20);
        }
    }

    #[test]
    fn replicas_grow_with_demand_until_cluster_is_full() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let ctl = InferLineController::with_defaults(g.clone());
        let low = ctl.allocate_for_demand(50.0, 20).total_workers();
        let mid = ctl.allocate_for_demand(300.0, 20).total_workers();
        let high = ctl.allocate_for_demand(50_000.0, 20).total_workers();
        assert!(low < mid);
        assert!(mid <= high);
        assert!(high <= 20);
    }

    #[test]
    fn serves_within_capacity_but_saturates_beyond() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let perf = PerfModel::new(&g, 2.0, 2.0);
        let choice: Vec<usize> = g.tasks().map(|(_, t)| t.most_accurate_variant()).collect();
        let hw_cap = perf.max_servable_demand(&choice, 20, &FanoutOverrides::new());

        let run = |demand: f64| {
            let controller = InferLineController::with_defaults(g.clone());
            let trace = generators::constant(30, demand);
            let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 5);
            let config = SimConfig {
                cluster_size: 20,
                control_interval_s: 5.0,
                initial_demand_hint: Some(demand),
                drain_s: 15.0,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(&g, config, controller);
            sim.run(&arrivals).summary
        };

        let ok = run(hw_cap * 0.6);
        assert!(
            ok.slo_violation_ratio < 0.05,
            "within capacity violations: {}",
            ok.slo_violation_ratio
        );
        assert!((ok.system_accuracy - g.max_accuracy()).abs() < 1e-6);

        let overloaded = run(hw_cap * 2.0);
        assert!(
            overloaded.slo_violation_ratio > 0.3,
            "overload violations should shoot up: {}",
            overloaded.slo_violation_ratio
        );
    }
}
