//! # loki-baselines
//!
//! The two baseline serving systems Loki is evaluated against (Section 6.1):
//!
//! * [`inferline::InferLineController`] — an *InferLine-style* controller: pipeline-
//!   aware hardware scaling with a fixed (most accurate) model variant per task. It
//!   minimizes the number of active servers while demand fits, but cannot trade
//!   accuracy for throughput, so its SLO violations climb once demand exceeds the
//!   cluster's maximum-accuracy capacity.
//! * [`proteus::ProteusController`] — a *Proteus-style* controller: per-model accuracy
//!   scaling that is pipeline-agnostic. Each task is managed independently based on the
//!   arrival rate observed *at that task*; the controller neither anticipates workload
//!   multiplication along the pipeline nor powers down unused servers (the whole
//!   cluster stays active), reproducing the two weaknesses the paper attributes to
//!   applying single-model accuracy scaling to pipelines.
//!
//! Both controllers implement [`loki_sim::Controller`], so they can be swapped for the
//! Loki controller in any simulation or benchmark.

pub mod inferline;
pub mod proteus;

pub use inferline::InferLineController;
pub use proteus::ProteusController;
