//! A Proteus-style baseline: per-model accuracy scaling, pipeline-agnostic.
//!
//! Proteus (ASPLOS'24) introduced accuracy scaling for *independent* models on a
//! fixed-size cluster. Applied to a pipeline (as in the paper's evaluation), it manages
//! every task in isolation:
//!
//! * each task's provisioning is driven by the arrival rate **observed at that task**,
//!   with no model of the workload multiplication upstream variants will cause;
//! * the cluster is statically partitioned across tasks (no hardware scaling — all
//!   servers stay active, which is why the paper reports Loki using up to 2.67× fewer
//!   servers off-peak);
//! * within its partition, each task independently picks the most accurate variant
//!   that can absorb its observed demand, degrading accuracy locally without regard to
//!   the end-to-end accuracy impact.

use loki_core::load_balancer::MostAccurateFirst;
use loki_core::perf::PerfModel;
use loki_pipeline::{BatchSize, PipelineGraph, TaskId, VariantId};
use loki_sim::{AllocationPlan, CompiledPlan, Controller, DropPolicy, InstanceSpec, ObservedState};
use std::collections::HashMap;

/// Configuration of the Proteus-style baseline.
#[derive(Debug, Clone)]
pub struct ProteusConfig {
    /// Resource-allocation interval (seconds).
    pub control_interval_s: f64,
    /// Routing refresh interval (seconds).
    pub routing_interval_s: f64,
    /// Runtime drop policy.
    pub drop_policy: DropPolicy,
    /// SLO headroom divisor.
    pub slo_headroom_divisor: f64,
    /// Per-hop network latency (ms).
    pub comm_latency_ms: f64,
    /// Provisioning margin over observed per-task demand.
    pub provisioning_margin: f64,
}

impl Default for ProteusConfig {
    fn default() -> Self {
        Self {
            control_interval_s: 10.0,
            routing_interval_s: 1.0,
            drop_policy: DropPolicy::LastTask,
            slo_headroom_divisor: 2.0,
            comm_latency_ms: 2.0,
            provisioning_margin: 1.25,
        }
    }
}

/// The Proteus-style controller.
pub struct ProteusController {
    graph: PipelineGraph,
    config: ProteusConfig,
    /// Shared plan-emission seam: the same `MostAccurateFirst` emitter Loki uses,
    /// so this baseline's routing compiles through the identical dense-plan API.
    lb: MostAccurateFirst,
}

impl ProteusController {
    /// Create a controller for a pipeline.
    pub fn new(graph: PipelineGraph, config: ProteusConfig) -> Self {
        graph.validate().expect("pipeline graph must be valid");
        Self {
            graph,
            config,
            lb: MostAccurateFirst::default(),
        }
    }

    /// Create a controller with the default configuration.
    pub fn with_defaults(graph: PipelineGraph) -> Self {
        Self::new(graph, ProteusConfig::default())
    }

    /// Create a controller with the default configuration but a specific runtime drop
    /// policy (used by scenario factories that ablate drop policies across systems).
    pub fn with_drop_policy(graph: PipelineGraph, drop_policy: DropPolicy) -> Self {
        Self::new(
            graph,
            ProteusConfig {
                drop_policy,
                ..ProteusConfig::default()
            },
        )
    }

    /// The controller configuration.
    pub fn config(&self) -> &ProteusConfig {
        &self.config
    }

    /// Mutable access to the configuration (scenario factories adjust the comm
    /// latency to the cluster's link-delay model before the run starts).
    pub fn config_mut(&mut self) -> &mut ProteusConfig {
        &mut self.config
    }

    /// The per-task latency budget a pipeline-agnostic system would use: an equal split
    /// of the (headroom-adjusted) SLO across tasks, since it has no path model.
    fn per_task_budget_ms(&self) -> f64 {
        let tasks = self.graph.num_tasks() as f64;
        (self.graph.slo_ms() / self.config.slo_headroom_divisor
            - self.config.comm_latency_ms * (tasks + 1.0))
            / tasks
    }

    /// The largest allowed batch size for a variant whose latency fits in the per-task
    /// budget.
    fn batch_for(&self, variant: VariantId, budget_ms: f64) -> Option<BatchSize> {
        self.graph
            .variant(variant)
            .largest_batch_within(self.graph.batch_sizes(), budget_ms)
    }

    /// Allocate the whole cluster across tasks given the per-task observed demand.
    pub fn allocate_for_observed(
        &self,
        per_task_demand: &HashMap<usize, f64>,
        cluster_size: usize,
    ) -> AllocationPlan {
        let perf = PerfModel::new(
            &self.graph,
            self.config.slo_headroom_divisor,
            self.config.comm_latency_ms,
        );
        let budget = self.per_task_budget_ms();
        let num_tasks = self.graph.num_tasks();

        // Demand per task (default: same as the root if never observed — a
        // pipeline-agnostic system has no better prior).
        let root_demand = per_task_demand
            .get(&self.graph.root().index())
            .copied()
            .unwrap_or(0.0);
        let demands: Vec<f64> = (0..num_tasks)
            .map(|t| {
                per_task_demand
                    .get(&t)
                    .copied()
                    .unwrap_or(root_demand)
                    .max(0.0)
                    * self.config.provisioning_margin
            })
            .collect();

        // Static partition of the cluster proportional to each task's compute need
        // (demand × per-query cost of its most accurate variant).
        let weights: Vec<f64> = (0..num_tasks)
            .map(|t| {
                let task = self.graph.task(TaskId(t));
                let v = VariantId::new(t, task.most_accurate_variant());
                let cost = 1.0 / self.graph.variant(v).peak_throughput_qps_or_default();
                (demands[t] * cost).max(1e-6)
            })
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let mut partition: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total_weight) * cluster_size as f64).floor() as usize)
            .map(|n| n.max(1))
            .collect();
        // Distribute any remaining servers to the heaviest tasks; trim if we overshot
        // because of the per-task minimum of one server.
        loop {
            let used: usize = partition.iter().sum();
            if used == cluster_size {
                break;
            }
            if used < cluster_size {
                let t = (0..num_tasks)
                    .max_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap())
                    .unwrap();
                partition[t] += 1;
            } else {
                let t = (0..num_tasks)
                    .filter(|&t| partition[t] > 1)
                    .min_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap());
                match t {
                    Some(t) => partition[t] -= 1,
                    None => break,
                }
            }
        }

        // Each task independently picks the most accurate variant whose partition can
        // absorb its observed demand.
        let mut instances = Vec::new();
        let mut budgets = HashMap::new();
        for t in 0..num_tasks {
            let task = self.graph.task(TaskId(t));
            let servers = partition[t];
            let mut selected: Option<(VariantId, BatchSize)> = None;
            for &k in &task.variants_by_accuracy_desc() {
                let variant = VariantId::new(t, k);
                let Some(batch) = self.batch_for(variant, budget) else {
                    continue;
                };
                let capacity = servers as f64 * self.graph.variant(variant).throughput_qps(batch);
                if capacity >= demands[t] || k == task.least_accurate_variant() {
                    selected = Some((variant, batch));
                    if capacity >= demands[t] {
                        break;
                    }
                }
            }
            // Fall back to the least accurate variant at batch 1 if nothing fits the
            // per-task latency budget (mirrors Proteus degrading as far as it can).
            let (variant, batch) = selected.unwrap_or_else(|| {
                let v = VariantId::new(t, task.least_accurate_variant());
                (v, *self.graph.batch_sizes().iter().min().unwrap())
            });
            instances.push(InstanceSpec {
                variant,
                max_batch: batch,
                count: servers,
            });
            budgets.insert(variant, perf.runtime_budget_ms(variant, batch));
        }

        AllocationPlan {
            instances,
            latency_budgets_ms: budgets,
            drop_policy: self.config.drop_policy,
        }
    }
}

/// Small extension trait so the partition weights can use the asymptotic throughput of
/// a variant without dividing by zero anywhere.
trait PeakThroughput {
    fn peak_throughput_qps_or_default(&self) -> f64;
}

impl PeakThroughput for loki_pipeline::ModelVariant {
    fn peak_throughput_qps_or_default(&self) -> f64 {
        let p = self.latency.peak_throughput_qps();
        if p.is_finite() && p > 0.0 {
            p
        } else {
            1.0
        }
    }
}

impl Controller for ProteusController {
    fn name(&self) -> &str {
        "proteus"
    }

    fn control_interval_s(&self) -> f64 {
        self.config.control_interval_s
    }

    fn routing_interval_s(&self) -> f64 {
        self.config.routing_interval_s
    }

    fn plan(&mut self, observed: &ObservedState<'_>) -> Option<AllocationPlan> {
        // Pipeline-agnostic: the only inputs are the per-task observed arrival rates
        // (and the frontend demand for the root task).
        let mut per_task = observed.per_task_arrival_qps.clone();
        let root = self.graph.root().index();
        let root_demand = if observed.demand.is_empty() {
            observed.initial_demand_hint.unwrap_or(0.0)
        } else {
            observed
                .demand
                .provisioning_estimate()
                .max(observed.initial_demand_hint.unwrap_or(0.0))
        };
        let entry = per_task.entry(root).or_insert(0.0);
        *entry = entry.max(root_demand);
        Some(self.allocate_for_observed(&per_task, observed.cluster_size))
    }

    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<CompiledPlan> {
        let demand = observed
            .demand
            .provisioning_estimate()
            .max(observed.initial_demand_hint.unwrap_or(0.0));
        // Proteus routes per task without pipeline knowledge; MostAccurateFirst over
        // the observed fan-out degenerates to exactly that when fan-out data is empty.
        Some(self.lb.emit(
            &self.graph,
            observed.workers,
            demand,
            observed.observed_fanout,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_pipeline::zoo;
    use loki_sim::{SimConfig, Simulation};
    use loki_workload::{generate_arrivals, generators, ArrivalProcess};

    #[test]
    fn always_uses_the_whole_cluster() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let ctl = ProteusController::with_defaults(g.clone());
        for demand in [20.0, 200.0, 2_000.0] {
            let mut observed = HashMap::new();
            observed.insert(0usize, demand);
            let plan = ctl.allocate_for_observed(&observed, 20);
            assert_eq!(
                plan.total_workers(),
                20,
                "Proteus never powers servers down (demand {demand})"
            );
        }
    }

    #[test]
    fn degrades_accuracy_per_task_under_load() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let ctl = ProteusController::with_defaults(g.clone());
        let mut low = HashMap::new();
        low.insert(0usize, 50.0);
        let mut high = HashMap::new();
        high.insert(0usize, 3_000.0);
        high.insert(1usize, 5_000.0);
        high.insert(2usize, 1_500.0);
        let acc_of = |plan: &AllocationPlan| -> f64 {
            plan.instances
                .iter()
                .map(|s| g.variant(s.variant).accuracy)
                .sum::<f64>()
                / plan.instances.len() as f64
        };
        let low_plan = ctl.allocate_for_observed(&low, 20);
        let high_plan = ctl.allocate_for_observed(&high, 20);
        assert!(acc_of(&high_plan) < acc_of(&low_plan));
    }

    #[test]
    fn end_to_end_simulation_runs() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let controller = ProteusController::with_defaults(g.clone());
        let trace = generators::constant(30, 150.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 8);
        let config = SimConfig {
            cluster_size: 20,
            control_interval_s: 5.0,
            initial_demand_hint: Some(150.0),
            drain_s: 15.0,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&g, config, controller);
        let result = sim.run(&arrivals);
        assert!(result.summary.total_arrivals > 4000);
        // The whole cluster is always on.
        assert_eq!(result.summary.max_active_workers, 20);
        assert!(result.summary.mean_utilization > 0.9);
        // It still serves most of the (moderate) demand.
        assert!(result.summary.total_on_time > result.summary.total_arrivals / 2);
    }
}
