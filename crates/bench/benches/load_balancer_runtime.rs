//! Section 6.5 runtime analysis: the Load Balancer's MostAccurateFirst routing
//! computation (the paper measures ~0.15 ms per run).

use criterion::{criterion_group, criterion_main, Criterion};
use loki_core::perf::FanoutOverrides;
use loki_core::MostAccurateFirst;
use loki_pipeline::{zoo, TaskId, VariantId};
use loki_sim::{WorkerId, WorkerView};

/// Build a full 20-worker assignment over a pipeline (most accurate variants, replicas
/// spread round-robin over the tasks).
fn workers_for(graph: &loki_pipeline::PipelineGraph, cluster: usize) -> Vec<WorkerView> {
    let mut out = Vec::new();
    let tasks: Vec<usize> = graph.tasks().map(|(id, _)| id.index()).collect();
    for i in 0..cluster {
        let t = tasks[i % tasks.len()];
        let k = graph.task(TaskId(t)).most_accurate_variant();
        out.push(WorkerView {
            id: WorkerId(i),
            variant: Some(VariantId::new(t, k)),
            max_batch: 8,
            queue_len: 0,
            swapping: false,
        });
    }
    out
}

fn bench_load_balancer(c: &mut Criterion) {
    let fanout = FanoutOverrides::new();
    let mut group = c.benchmark_group("load_balancer");
    for (name, graph) in [
        ("traffic", zoo::traffic_analysis_pipeline(250.0)),
        ("social", zoo::social_media_pipeline(250.0)),
    ] {
        let workers = workers_for(&graph, 20);
        group.bench_function(format!("most_accurate_first_{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(MostAccurateFirst::build_routing(
                    &graph, &workers, 800.0, &fanout,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load_balancer);
criterion_main!(benches);
