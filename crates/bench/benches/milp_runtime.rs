//! Section 6.5 runtime analysis: the Resource Manager's allocation latency.
//!
//! The paper measures the Gurobi MILP at ~500 ms per solve; here we measure (a) the
//! greedy allocator, (b) the bounded MILP solve the controller actually uses (800 ms
//! budget, warm-started with the greedy incumbent), on both evaluation pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use loki_core::allocator::{AllocationContext, Allocator};
use loki_core::greedy::GreedyAllocator;
use loki_core::milp_alloc::MilpAllocator;
use loki_core::perf::FanoutOverrides;
use loki_pipeline::zoo;
use loki_sim::DropPolicy;
use std::time::Duration;

fn bench_allocators(c: &mut Criterion) {
    let fanout = FanoutOverrides::new();
    let pipelines = vec![
        ("traffic", zoo::traffic_analysis_pipeline(250.0), 1100.0),
        ("social", zoo::social_media_pipeline(250.0), 900.0),
        ("tiny", zoo::tiny_pipeline(100.0), 400.0),
    ];

    let mut group = c.benchmark_group("resource_manager");
    group.sample_size(10);
    for (name, graph, demand) in &pipelines {
        let ctx = AllocationContext {
            graph,
            cluster_size: 20,
            demand_qps: *demand,
            fanout: &fanout,
            drop_policy: DropPolicy::OpportunisticRerouting,
            slo_divisor: 2.0,
            budgets: loki_sim::HopBudgets::uniform(2.0, graph.num_tasks()),
            upgrade_with_leftover: true,
        };
        let greedy = GreedyAllocator::new();
        group.bench_function(format!("greedy_{name}"), |b| {
            b.iter(|| std::hint::black_box(greedy.allocate(&ctx)))
        });
    }
    // The bounded MILP solve is only benchmarked on the tiny pipeline with Criterion's
    // statistics; the full-pipeline MILP latency is reported by the ablation_allocator
    // binary (it is dominated by the configured time budget).
    let (_, tiny, demand) = &pipelines[2];
    let ctx = AllocationContext {
        graph: tiny,
        cluster_size: 20,
        demand_qps: *demand,
        fanout: &fanout,
        drop_policy: DropPolicy::OpportunisticRerouting,
        slo_divisor: 2.0,
        budgets: loki_sim::HopBudgets::uniform(2.0, tiny.num_tasks()),
        upgrade_with_leftover: true,
    };
    let milp = MilpAllocator::new(Duration::from_millis(800), 2_000);
    group.bench_function("milp_tiny", |b| {
        b.iter(|| std::hint::black_box(milp.allocate(&ctx)))
    });
    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
