//! Throughput of the discrete-event simulator itself: how many simulated requests per
//! wall-clock second the engine processes with the full Loki controller attached. This
//! is not a paper figure but bounds how large the figure sweeps can be made.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use loki_core::{LokiConfig, LokiController};
use loki_pipeline::zoo;
use loki_sim::{SimConfig, Simulation};
use loki_workload::{generate_arrivals, generators, ArrivalProcess};

fn bench_simulator(c: &mut Criterion) {
    let graph = zoo::traffic_analysis_pipeline(250.0);
    let trace = generators::constant(30, 300.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 11);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(arrivals.len() as u64));
    group.bench_function("traffic_300qps_30s", |b| {
        b.iter(|| {
            let controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
            let config = SimConfig {
                cluster_size: 20,
                initial_demand_hint: Some(300.0),
                drain_s: 10.0,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(&graph, config, controller);
            std::hint::black_box(sim.run(&arrivals))
        })
    });
    group.finish();

    // A million root arrivals (2000 QPS × 500 s on a 100-GPU cluster): the
    // scale target for trace-length sweeps. Must finish well under 30 s of
    // wall-clock per run in release mode.
    let big_trace = generators::constant(500, 2000.0);
    let big_arrivals = generate_arrivals(&big_trace, ArrivalProcess::Poisson, 11);
    let mut group = c.benchmark_group("simulator_large");
    group.sample_size(3);
    group.throughput(Throughput::Elements(big_arrivals.len() as u64));
    group.bench_function("traffic_1m_arrivals", |b| {
        b.iter(|| {
            let controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
            let config = SimConfig {
                cluster_size: 100,
                initial_demand_hint: Some(2000.0),
                drain_s: 10.0,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(&graph, config, controller);
            std::hint::black_box(sim.run(&big_arrivals))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
