//! Ablation of the Resource-Manager engine: the exact MILP allocator vs the greedy
//! allocator, comparing expected system accuracy, servers used, and solve time across
//! demand levels (complements the Section 6.5 runtime analysis).
//!
//! Run: `cargo run --release -p loki-bench --bin ablation_allocator`

use loki_bench::ExperimentConfig;
use loki_core::allocator::{AllocationContext, Allocator};
use loki_core::greedy::GreedyAllocator;
use loki_core::milp_alloc::MilpAllocator;
use loki_core::perf::FanoutOverrides;
use loki_pipeline::zoo;
use loki_sim::DropPolicy;
use std::time::{Duration, Instant};

fn main() {
    let cfg = ExperimentConfig::default().from_args();
    let graph = zoo::traffic_analysis_pipeline(cfg.slo_ms);
    let fanout = FanoutOverrides::new();
    let greedy = GreedyAllocator::new();
    // The bounded solve budget mirrors how the paper deploys Gurobi (≈500 ms solves).
    let milp = MilpAllocator::new(Duration::from_millis(800), 2_000);

    println!("# Allocator ablation: greedy vs MILP (traffic pipeline, 20 workers)");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "demand", "greedy_acc", "milp_acc", "greedy_srv", "milp_srv", "greedy_ms", "milp_ms"
    );
    for demand in [200.0, 500.0, 800.0, 1100.0, 1400.0, 1700.0, 2000.0] {
        let ctx = AllocationContext {
            graph: &graph,
            cluster_size: cfg.cluster_size,
            demand_qps: demand,
            fanout: &fanout,
            drop_policy: DropPolicy::OpportunisticRerouting,
            slo_divisor: 2.0,
            comm_ms: 2.0,
            upgrade_with_leftover: true,
        };
        let t0 = Instant::now();
        let g = greedy.allocate(&ctx);
        let greedy_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        let m = milp.allocate(&ctx);
        let milp_ms = t1.elapsed().as_secs_f64() * 1000.0;
        println!(
            "{:>8.0} {:>10.4} {:>10.4} {:>12} {:>10} {:>10.2} {:>12.1}",
            demand,
            g.expected_accuracy,
            m.expected_accuracy,
            g.servers_used,
            m.servers_used,
            greedy_ms,
            milp_ms
        );
    }
}
