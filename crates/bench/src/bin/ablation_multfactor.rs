//! Ablation of multiplicative-factor awareness: how much provisioning a controller gets
//! wrong if it ignores workload multiplication (the Proteus failure mode of Section
//! 2.2.1), measured as the per-task capacity shortfall at a given demand.
//!
//! Run: `cargo run --release -p loki-bench --bin ablation_multfactor`

use loki_bench::ExperimentConfig;
use loki_core::perf::{FanoutOverrides, PerfModel};
use loki_pipeline::{zoo, TaskId};

fn main() {
    let cfg = ExperimentConfig::default().from_args();
    let graph = zoo::traffic_analysis_pipeline(cfg.slo_ms);
    let perf = PerfModel::new(&graph, 2.0, 2.0);
    let fanout = FanoutOverrides::new();
    let choice: Vec<usize> = graph
        .tasks()
        .map(|(_, t)| t.most_accurate_variant())
        .collect();

    println!("# Multiplicative-factor ablation (traffic pipeline, most accurate variants)");
    println!(
        "{:>8} {:<22} {:>16} {:>18} {:>12}",
        "demand", "task", "true_task_qps", "naive_task_qps", "shortfall"
    );
    for demand in [200.0, 400.0, 600.0] {
        let true_demands = perf.task_demands(&choice, demand, &fanout);
        for (task_id, task) in graph.tasks() {
            let t = task_id.index();
            // A pipeline-agnostic controller assumes each task sees the root demand.
            let naive = demand;
            let shortfall = (true_demands[t] - naive).max(0.0) / true_demands[t].max(1e-9);
            println!(
                "{:>8.0} {:<22} {:>16.1} {:>18.1} {:>11.1}%",
                demand,
                task.name,
                true_demands[t],
                naive,
                100.0 * shortfall
            );
            let _ = TaskId(t);
        }
    }
    println!(
        "\n(Ignoring multiplication under-provisions the car-classification task by ~30-50%.)"
    );
}
