//! Machine-readable simulator-throughput report.
//!
//! Runs the simulator-throughput scenarios (the same `traffic_300qps_30s` case
//! as the criterion bench, plus a million-arrival stress case) and writes
//! `BENCH_sim.json` with wall-clock seconds, processed-event counts, and
//! derived rates. The JSON establishes the perf trajectory across PRs: each
//! refactor re-runs this binary and commits the refreshed numbers.
//!
//! Usage: `cargo run --release -p loki_bench --bin bench_report [-- out=PATH]`
//! (`skip_large=1` skips the million-arrival case for quick iteration).

use loki_core::{LokiConfig, LokiController};
use loki_pipeline::zoo;
use loki_sim::{RunSummary, SimConfig, Simulation};
use loki_workload::{generate_arrivals, generators, ArrivalProcess};
use std::fmt::Write as _;
use std::time::Instant;

/// Pre-refactor (seed-engine) reference wall-clocks for the same scenarios,
/// measured on the PR-1 dev container (single CPU, best of 8×3 runs) with the
/// HashMap-based engine the repo seeded with. They anchor the `speedup_vs_seed`
/// field; re-measure and update when the hardware baseline changes.
const SEED_BASELINE_WALL_S: &[(&str, f64)] = &[
    ("traffic_300qps_30s", 0.009268),
    ("traffic_1m_arrivals", 1.341551),
];

struct ScenarioResult {
    name: &'static str,
    arrivals: usize,
    runs: usize,
    best_wall_s: f64,
    summary: RunSummary,
    /// Wall-clock spent inside the controller (allocation + routing) during the
    /// best run — separates control-plane cost from engine cost.
    controller_s: f64,
}

/// Run one scenario `runs` times, keeping the best wall-clock (the standard
/// way to suppress scheduler noise for throughput numbers).
fn run_scenario(
    name: &'static str,
    qps: f64,
    duration_s: usize,
    cluster: usize,
    drain_s: f64,
    seed: u64,
    runs: usize,
) -> ScenarioResult {
    let graph = zoo::traffic_analysis_pipeline(250.0);
    let trace = generators::constant(duration_s, qps);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, seed);
    let mut best_wall_s = f64::INFINITY;
    let mut summary = None;
    let mut controller_s = 0.0;
    for _ in 0..runs {
        let controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
        let config = SimConfig {
            cluster_size: cluster,
            initial_demand_hint: Some(qps),
            drain_s,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&graph, config, controller);
        let start = Instant::now();
        let result = sim.run(&arrivals);
        let wall = start.elapsed().as_secs_f64();
        if wall < best_wall_s {
            best_wall_s = wall;
            let stats = &sim.into_controller().stats;
            controller_s = stats.allocation_time_s + stats.routing_time_s;
        }
        summary = Some(result.summary);
    }
    ScenarioResult {
        name,
        arrivals: arrivals.len(),
        runs,
        best_wall_s,
        summary: summary.expect("at least one run"),
        controller_s,
    }
}

fn baseline_wall(name: &str) -> Option<f64> {
    SEED_BASELINE_WALL_S
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, w)| *w)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let mut out_path = "BENCH_sim.json".to_string();
    let mut skip_large = false;
    for arg in std::env::args().skip(1) {
        if let Some((k, v)) = arg.split_once('=') {
            match k {
                "out" => out_path = v.to_string(),
                "skip_large" => skip_large = v == "1" || v == "true",
                _ => eprintln!("ignoring unknown argument {k}={v}"),
            }
        }
    }

    let mut scenarios = Vec::new();
    eprintln!("running traffic_300qps_30s (3 runs)...");
    scenarios.push(run_scenario(
        "traffic_300qps_30s",
        300.0,
        30,
        20,
        10.0,
        11,
        3,
    ));
    if !skip_large {
        eprintln!("running traffic_1m_arrivals (1 run)...");
        scenarios.push(run_scenario(
            "traffic_1m_arrivals",
            2000.0,
            500,
            100,
            10.0,
            11,
            1,
        ));
    }

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"simulator_throughput\",\n  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let events = s.summary.events_processed;
        let _ = write!(
            json,
            "    {{\n      \"name\": \"{}\",\n      \"arrivals\": {},\n      \"runs\": {},\n      \"best_wall_s\": {},\n      \"seed_baseline_wall_s\": {},\n      \"speedup_vs_seed\": {},\n      \"controller_s\": {},\n      \"events_processed\": {},\n      \"events_per_sec\": {},\n      \"arrivals_per_sec\": {},\n      \"on_time\": {},\n      \"late\": {},\n      \"dropped\": {},\n      \"system_accuracy\": {}\n    }}{}\n",
            s.name,
            s.arrivals,
            s.runs,
            json_f(s.best_wall_s),
            json_f(baseline_wall(s.name).unwrap_or(f64::NAN)),
            json_f(
                baseline_wall(s.name)
                    .map(|b| b / s.best_wall_s)
                    .unwrap_or(f64::NAN)
            ),
            json_f(s.controller_s),
            events,
            json_f(events as f64 / s.best_wall_s),
            json_f(s.arrivals as f64 / s.best_wall_s),
            s.summary.total_on_time,
            s.summary.total_late,
            s.summary.total_dropped,
            json_f(s.summary.system_accuracy),
            if i + 1 < scenarios.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
