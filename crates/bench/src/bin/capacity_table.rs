//! T-CAP — the headline capacity/efficiency numbers quoted in the abstract and
//! Section 6.2: effective capacity gain from accuracy scaling, SLO-violation reduction
//! vs pipeline-agnostic accuracy scaling, and off-peak server savings.
//!
//! Run: `cargo run --release -p loki-bench --bin capacity_table [duration=900]`

use loki_bench::*;
use loki_core::{LokiConfig, LokiController};
use loki_pipeline::zoo;

fn main() {
    let cfg = ExperimentConfig {
        duration_s: 900,
        ..Default::default()
    }
    .from_args();

    println!("# T-CAP: headline numbers (paper-reported vs measured)");

    // Capacity gain from accuracy scaling (analytical, matches Figure 1).
    let graph = zoo::traffic_analysis_pipeline(cfg.slo_ms);
    let mut controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
    let mut hw_cap = 0.0f64;
    let mut max_cap = 0.0f64;
    let mut demand = 25.0;
    while demand <= 3200.0 {
        let out = controller.allocate_for_demand(demand, cfg.cluster_size);
        match out.mode {
            loki_core::ScalingMode::Hardware => hw_cap = out.servable_demand,
            _ => max_cap = max_cap.max(out.servable_demand),
        }
        demand += 25.0;
    }
    println!(
        "effective capacity gain (accuracy vs hardware scaling): measured {:.2}x, paper >2.7x",
        max_cap / f64::max(hw_cap, 1.0)
    );

    // End-to-end comparison ratios on both pipelines.
    for (label, graph, trace) in [
        (
            "traffic_analysis",
            zoo::traffic_analysis_pipeline(cfg.slo_ms),
            traffic_trace(&cfg),
        ),
        (
            "social_media",
            zoo::social_media_pipeline(cfg.slo_ms),
            social_trace(&cfg),
        ),
    ] {
        println!("\n## {label}");
        let results = run_comparison(&graph, &trace, &cfg);
        print_summary_table(&results);
        print_headline_ratios(&results);
    }
}
