//! FIG1 — the phase diagram of Figure 1: how Loki transitions from hardware scaling to
//! accuracy scaling as demand grows on a fixed 20-worker cluster, and the effective
//! capacity gained by accuracy scaling.
//!
//! Run: `cargo run --release -p loki-bench --bin fig1_phases [cluster=20] [slo=250]`

use loki_bench::ExperimentConfig;
use loki_core::{AllocationOutcome, LokiConfig, LokiController, ScalingMode};
use loki_pipeline::zoo;

fn main() {
    let cfg = ExperimentConfig::default().from_args();
    let graph = zoo::traffic_analysis_pipeline(cfg.slo_ms);
    let mut controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());

    println!(
        "# FIG1: traffic-analysis pipeline, {} workers, SLO {} ms",
        cfg.cluster_size, cfg.slo_ms
    );
    println!(
        "{:>8} {:>12} {:>9} {:>11} {:>12}",
        "demand", "mode", "servers", "accuracy", "servable"
    );

    let mut hw_limit: Option<f64> = None;
    let mut acc_limit: Option<f64> = None;
    let mut last: Option<AllocationOutcome> = None;
    let mut demand = 25.0;
    while demand <= 3200.0 {
        let out = controller.allocate_for_demand(demand, cfg.cluster_size);
        println!(
            "{:>8.0} {:>12} {:>9} {:>11.4} {:>12.0}",
            demand,
            format!("{:?}", out.mode),
            out.servers_used,
            out.expected_accuracy,
            out.servable_demand
        );
        if let Some(prev) = &last {
            if prev.mode == ScalingMode::Hardware && out.mode != ScalingMode::Hardware {
                hw_limit = Some(prev.servable_demand);
            }
            if prev.mode != ScalingMode::Saturated && out.mode == ScalingMode::Saturated {
                acc_limit = Some(prev.servable_demand);
            }
        }
        last = Some(out);
        demand += 25.0;
    }
    if acc_limit.is_none() {
        acc_limit = last.as_ref().map(|o| o.servable_demand);
    }

    println!();
    match (hw_limit, acc_limit) {
        (Some(hw), Some(acc)) => {
            println!("phase 1 -> 2 transition (hardware-scaling capacity): {hw:.0} QPS (paper: ~560 QPS)");
            println!("maximum throughput with accuracy scaling:            {acc:.0} QPS (paper: ~1765 QPS)");
            println!(
                "effective capacity gain from accuracy scaling:       {:.2}x (paper: ~2.7-3.1x)",
                acc / hw
            );
        }
        _ => println!("could not identify both phase transitions; widen the demand sweep"),
    }
}
