//! FIG3 — the accuracy/throughput trade-off of the EfficientNet model variants (the
//! premise of accuracy scaling), plus the same curve for every other family in the zoo.
//!
//! Run: `cargo run --release -p loki-bench --bin fig3_tradeoff`

use loki_pipeline::zoo;

fn main() {
    println!("# FIG3: accuracy-throughput tradeoff per model family (batch size 8)");
    for (family, variants) in zoo::all_families() {
        println!("\n## {family}");
        println!(
            "{:<20} {:>12} {:>16} {:>16}",
            "variant", "accuracy", "qps(batch=8)", "qps(batch=1)"
        );
        for v in &variants {
            println!(
                "{:<20} {:>12.3} {:>16.1} {:>16.1}",
                v.name,
                v.accuracy,
                v.throughput_qps(8),
                v.throughput_qps(1)
            );
        }
    }
    println!("\n(The paper's Figure 3 plots the EfficientNet column: lower accuracy => higher throughput.)");
}
