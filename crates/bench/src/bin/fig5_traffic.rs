//! FIG5 — end-to-end comparison on the traffic-analysis pipeline: Loki vs an
//! InferLine-style hardware-scaling-only system vs a Proteus-style pipeline-agnostic
//! accuracy-scaling system, driven by an Azure-Functions-like diurnal trace.
//!
//! Run: `cargo run --release -p loki-bench --bin fig5_traffic [duration=1200] [peak=1500]`

use loki_bench::*;
use loki_pipeline::zoo;

fn main() {
    let cfg = ExperimentConfig::default().from_args();
    let graph = zoo::traffic_analysis_pipeline(cfg.slo_ms);
    let trace = traffic_trace(&cfg);
    let results = run_comparison(&graph, &trace, &cfg);
    print_comparison_timeseries(
        "FIG5: traffic-analysis pipeline, Azure-like diurnal trace",
        &trace,
        &results,
        cfg.bucket_s,
    );
    print_summary_table(&results);
    print_headline_ratios(&results);
}
