//! FIG6 — end-to-end comparison on the social-media pipeline (ResNet classification
//! feeding CLIP-ViT captioning), driven by a Twitter-like bursty trace.
//!
//! Run: `cargo run --release -p loki-bench --bin fig6_social [duration=1200] [peak=1200]`

use loki_bench::*;
use loki_pipeline::zoo;

fn main() {
    let cfg = ExperimentConfig {
        peak_qps: 1200.0,
        base_qps: 60.0,
        ..Default::default()
    }
    .from_args();
    let graph = zoo::social_media_pipeline(cfg.slo_ms);
    let trace = social_trace(&cfg);
    let results = run_comparison(&graph, &trace, &cfg);
    print_comparison_timeseries(
        "FIG6: social-media pipeline, Twitter-like bursty trace",
        &trace,
        &results,
        cfg.bucket_s,
    );
    print_summary_table(&results);
    print_headline_ratios(&results);
}
