//! FIG7 — ablation of the Load Balancer's runtime mechanisms: SLO-violation ratio with
//! no early dropping, last-task dropping, per-task dropping, and Loki's early dropping
//! with opportunistic rerouting, on an overloaded segment of the traffic pipeline.
//!
//! Run: `cargo run --release -p loki-bench --bin fig7_ablation [duration=300]`

use loki_bench::*;
use loki_core::{LokiConfig, LokiController};
use loki_pipeline::zoo;
use loki_sim::DropPolicy;

fn main() {
    // Run near the accuracy-scaling regime where the drop policies matter.
    let cfg = ExperimentConfig {
        duration_s: 300,
        peak_qps: 1100.0,
        base_qps: 700.0,
        ..Default::default()
    }
    .from_args();
    let graph = zoo::traffic_analysis_pipeline(cfg.slo_ms);
    let trace = traffic_trace(&cfg);

    println!("# FIG7: load-balancer ablation (traffic pipeline, overload segment)");
    println!(
        "{:<28} {:>14} {:>12} {:>12}",
        "policy", "slo_violation", "accuracy", "rerouted"
    );
    for policy in DropPolicy::all() {
        let mut config = LokiConfig::with_greedy();
        config.drop_policy = policy;
        let controller = LokiController::new(graph.clone(), config);
        let result = run_controller(&graph, &trace, &cfg, controller);
        println!(
            "{:<28} {:>14.4} {:>12.4} {:>12}",
            policy.label(),
            result.summary.slo_violation_ratio,
            result.summary.system_accuracy,
            result.summary.total_rerouted
        );
    }
    println!(
        "\n(The paper's Figure 7 shows opportunistic rerouting with the lowest violation ratio.)"
    );
}
