//! FIG8 — SLO sensitivity: average system accuracy, maximum accuracy drop, and average
//! SLO-violation ratio as the end-to-end latency SLO varies from 200 ms to 400 ms.
//!
//! Run: `cargo run --release -p loki-bench --bin fig8_slo_sweep [duration=600]`

use loki_bench::*;
use loki_core::{LokiConfig, LokiController};
use loki_pipeline::zoo;

fn main() {
    let cfg = ExperimentConfig {
        duration_s: 600,
        ..Default::default()
    }
    .from_args();

    println!("# FIG8: effect of the latency SLO on Loki (traffic pipeline)");
    println!(
        "{:>8} {:>14} {:>16} {:>16}",
        "slo_ms", "avg_accuracy", "max_acc_drop_%", "avg_slo_viol"
    );
    for slo in [200.0, 250.0, 300.0, 350.0, 400.0] {
        let mut sweep_cfg = cfg.clone();
        sweep_cfg.slo_ms = slo;
        let graph = zoo::traffic_analysis_pipeline(slo);
        let trace = traffic_trace(&sweep_cfg);
        let controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
        let result = run_controller(&graph, &trace, &sweep_cfg, controller);
        // Maximum accuracy drop: the worst per-bucket accuracy vs the pipeline maximum.
        let buckets = bucketize(&result.intervals, 30);
        let min_acc = buckets
            .iter()
            .filter(|b| b.accuracy_count > 0)
            .map(|b| b.mean_accuracy())
            .fold(f64::INFINITY, f64::min);
        let max_drop = if min_acc.is_finite() {
            100.0 * (graph.max_accuracy() - min_acc) / graph.max_accuracy()
        } else {
            100.0
        };
        println!(
            "{:>8.0} {:>14.4} {:>16.2} {:>16.4}",
            slo, result.summary.system_accuracy, max_drop, result.summary.slo_violation_ratio
        );
    }
    println!(
        "\n(The paper reports sharp improvements up to ~300 ms and diminishing returns beyond.)"
    );
}
