//! The `loki` CLI: one binary for the whole evaluation harness.
//!
//! ```text
//! loki list   [--json]                                  # registered scenarios
//! loki run    <scenario> [key=value …] [--json] [--jobs N]
//! loki sweep  <scenario> [axis=v1,v2,…] [key=value …] [--json] [--csv] [--jobs N] [--serial]
//! loki report [out=PATH] [skip_large=1] [skip_stress=1] [--jobs N]
//! ```
//!
//! `run` executes one scenario with its kind-specific executor (the former
//! `fig*`/`ablation_*`/`capacity_table` binaries); `sweep` enumerates a grid over
//! the controller/slo/peak/cluster/links/seed axes and fans the points out across
//! cores, reporting cross-seed mean/stddev per axis point (with a `--csv` emitter
//! for figure plotting); `report` refreshes `BENCH_sim.json`. Unknown keys and
//! unparsable values exit with a clear error (exit code 2) instead of being
//! silently ignored.

use loki_bench::figures::{self, ScenarioReport};
use loki_bench::report::{self, Json};
use loki_bench::runner::Runner;
use loki_bench::scenario::{self, Scenario, ScenarioKind};
use loki_bench::sweep::Sweep;
use std::fmt::Write as _;

const USAGE: &str = "loki — the Loki evaluation harness

USAGE:
  loki list   [--json]                                 list registered scenarios
  loki run    <scenario> [key=value ...] [--json] [--jobs N] [--trace PATH] [--timeline PATH]
  loki sweep  <scenario> [axis=v1,v2,...] [key=value ...] [--json] [--csv] [--jobs N] [--serial]
  loki report [out=PATH] [runs=N] [skip_large=1] [skip_stress=1] [--jobs N]
  loki help

Config keys: cluster, slo, duration, peak, base, seed, bucket, drain, runs,
jobs (engine lane threads for multi-pipeline scenarios; bit-identical),
links (uniform, two-tier, edge-split), elastic (fixed, static-peak,
static-mean, autoscale), classes (uniform, mixed), spot (true/false),
revoke (spot revocations per worker-hour), stockout (probability),
provisioner (reactive, forecast), route (accuracy, link-aware),
trace (sample every Nth root query; 0 = off), profile (engine phase
timers, true/false), hist (latency histograms, default true), timeline
(cluster event journal + windowed histogram deltas, true/false).

`run --trace PATH` executes the scenario's canonical point with tracing on
(trace=100 unless overridden) and writes Chrome trace-event JSON to PATH —
load it in Perfetto (ui.perfetto.dev) or chrome://tracing.
`run --timeline PATH` executes the canonical point with timeline=true and
writes the windowed time-series export: JSON (interval rows interleaved with
journal events, plus the SLO burn analysis) to PATH and the flat per-interval
CSV next to it (.json swapped for .csv). Timeline files record simulated time
only and are byte-identical for every jobs= value.
Sweep axes (comma-separated lists): controllers, slo, peak, cluster, links,
route, elastic, spot, revoke, stockout, provisioner, jobs, seed.
Multi-seed sweeps report cross-seed mean/stddev per axis point; --csv emits one
flat CSV (stat=point|mean|stddev) ready for plotting.
See EXPERIMENTS.md for the invocation reproducing each paper figure.";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("run `loki help` for usage");
    std::process::exit(2);
}

/// Flags shared by `run` and `sweep`.
struct Flags {
    json: bool,
    csv: bool,
    jobs: Option<usize>,
    serial: bool,
    /// Output path for Chrome trace-event JSON (`run` only).
    trace: Option<String>,
    /// Output path for the windowed timeline export (`run` only).
    timeline: Option<String>,
    /// Remaining `key=value` operands.
    kv: Vec<String>,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags {
        json: false,
        csv: false,
        jobs: None,
        serial: false,
        trace: None,
        timeline: None,
        kv: Vec::new(),
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => flags.json = true,
            "--csv" => flags.csv = true,
            "--serial" => flags.serial = true,
            "--jobs" => {
                let Some(value) = iter.next() else {
                    fail("--jobs requires a value");
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => flags.jobs = Some(n),
                    _ => fail(&format!("invalid --jobs value {value:?}")),
                }
            }
            "--trace" => {
                let Some(value) = iter.next() else {
                    fail("--trace requires an output path");
                };
                flags.trace = Some(value.clone());
            }
            "--timeline" => {
                let Some(value) = iter.next() else {
                    fail("--timeline requires an output path");
                };
                flags.timeline = Some(value.clone());
            }
            other if other.starts_with("--") => fail(&format!("unknown flag {other:?}")),
            other => flags.kv.push(other.to_string()),
        }
    }
    flags
}

fn runner_from_flags(flags: &Flags) -> Runner {
    if flags.serial {
        Runner::serial()
    } else if let Some(jobs) = flags.jobs {
        Runner::with_jobs(jobs)
    } else {
        Runner::auto()
    }
}

fn lookup_scenario(name: &str) -> &'static Scenario {
    scenario::find(name).unwrap_or_else(|| {
        fail(&format!(
            "unknown scenario {name:?}; `loki list` shows the registry"
        ))
    })
}

fn cmd_list(args: &[String]) {
    let flags = parse_flags(args);
    if flags.csv {
        fail("--csv is only available for sweep");
    }
    if flags.trace.is_some() {
        fail("--trace is only available for run");
    }
    if flags.timeline.is_some() {
        fail("--timeline is only available for run");
    }
    if !flags.kv.is_empty() {
        fail(&format!("list takes no operands, got {:?}", flags.kv));
    }
    if flags.json {
        let rows = scenario::REGISTRY
            .iter()
            .map(|sc| {
                let cfg = sc.config();
                // The default sweep grid: what `loki sweep <name>` enumerates
                // before any axis is widened — scripts drive sweeps from this.
                let sweep = Sweep::for_scenario(sc, cfg.clone());
                let mut axes = Json::object();
                axes.push(
                    "controllers",
                    Json::Arr(sweep.controllers.iter().map(|c| c.name().into()).collect()),
                )
                .push(
                    "slo",
                    Json::Arr(sweep.slo_ms.iter().map(|&v| v.into()).collect()),
                )
                .push(
                    "peak",
                    Json::Arr(sweep.peak_qps.iter().map(|&v| v.into()).collect()),
                )
                .push(
                    "cluster",
                    Json::Arr(sweep.cluster_size.iter().map(|&v| v.into()).collect()),
                )
                .push(
                    "links",
                    Json::Arr(sweep.links.iter().map(|l| l.name().into()).collect()),
                )
                .push(
                    "route",
                    Json::Arr(sweep.route.iter().map(|r| r.label().into()).collect()),
                )
                .push(
                    "elastic",
                    Json::Arr(sweep.elastic.iter().map(|m| m.name().into()).collect()),
                )
                .push(
                    "jobs",
                    Json::Arr(sweep.jobs.iter().map(|&v| v.into()).collect()),
                )
                .push(
                    "seed",
                    Json::Arr(sweep.seed.iter().map(|&v| Json::UInt(v)).collect()),
                );
                let mut obj = Json::object();
                obj.push("name", sc.name.into())
                    .push("title", sc.title.into())
                    .push("kind", format!("{:?}", sc.kind).into())
                    .push("pipeline", sc.pipeline.name().into())
                    .push("trace", sc.trace.name().into())
                    .push("axes", axes)
                    .push("config", figures::config_json(&cfg));
                obj
            })
            .collect();
        let mut out = Json::object();
        out.push("scenarios", Json::Arr(rows));
        print!("{}", out.render());
        return;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{:<22} {:<20} title", "scenario", "kind");
    for sc in scenario::REGISTRY {
        let _ = writeln!(
            out,
            "{:<22} {:<20} {}",
            sc.name,
            format!("{:?}", sc.kind),
            sc.title
        );
    }
    print!("{out}");
}

fn cmd_run(args: &[String]) {
    let flags = parse_flags(args);
    if flags.csv {
        fail("--csv is only available for sweep");
    }
    let Some((name, overrides)) = flags.kv.split_first() else {
        fail("run requires a scenario name");
    };
    let sc = lookup_scenario(name);
    let mut cfg = sc.config();
    if let Err(message) = cfg.apply_overrides(overrides.iter().map(String::as_str)) {
        fail(&message);
    }
    if flags.trace.is_some() && flags.timeline.is_some() {
        fail("--trace and --timeline are mutually exclusive");
    }
    if let Some(path) = &flags.trace {
        cmd_run_traced(sc, cfg, path, &flags);
        return;
    }
    if let Some(path) = &flags.timeline {
        cmd_run_timeline(sc, cfg, path, &flags);
        return;
    }
    let runner = runner_from_flags(&flags);
    let report = figures::run_scenario(sc, &cfg, &runner);
    emit(&report, flags.json);
}

/// `run --trace PATH`: execute the scenario's canonical point once with query
/// tracing enabled and write the Chrome trace-event JSON to `path`. Skips the
/// kind-specific executor — the trace is the deliverable, not the figure.
fn cmd_run_traced(sc: &Scenario, mut cfg: loki_bench::ExperimentConfig, path: &str, flags: &Flags) {
    if cfg.trace_sample == 0 {
        cfg.trace_sample = 100;
    }
    let runner = runner_from_flags(flags);
    let mut results = runner.run(vec![scenario::scenario_point(sc, &cfg)]);
    let point = results.remove(0);
    let Some(trace) = &point.result.trace else {
        fail("run produced no trace (simulation recorded zero sampled roots)");
    };
    if let Err(err) = std::fs::write(path, trace.to_chrome_json()) {
        fail(&format!("cannot write trace to {path:?}: {err}"));
    }
    let s = &point.result.summary;
    if flags.json {
        let mut obj = Json::object();
        obj.push("scenario", sc.name.into())
            .push("trace_path", path.into())
            .push("trace_sample", cfg.trace_sample.into())
            .push("roots", Json::UInt(trace.roots.len() as u64))
            .push("spans", Json::UInt(trace.num_spans() as u64))
            .push("p50_ms", s.p50_ms.into())
            .push("p99_ms", s.p99_ms.into());
        print!("{}", obj.render());
    } else {
        println!(
            "traced {}: {} sampled roots, {} spans (every {}th arrival) -> {}",
            sc.name,
            trace.roots.len(),
            trace.num_spans(),
            cfg.trace_sample,
            path
        );
        println!(
            "latency_ms p50 {:.1}  p90 {:.1}  p99 {:.1}  p999 {:.1}",
            s.p50_ms, s.p90_ms, s.p99_ms, s.p999_ms
        );
        println!("open in Perfetto (ui.perfetto.dev) or chrome://tracing");
    }
}

/// Sibling CSV path of a `--timeline` JSON path: swap a `.json` suffix for
/// `.csv`, else append `.csv`.
fn timeline_csv_path(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.csv"),
        None => format!("{path}.csv"),
    }
}

/// `run --timeline PATH`: execute the scenario's canonical point once with the
/// timeline channel on and write the windowed time-series export — JSON at
/// PATH (interval rows interleaved with journal events + the burn analysis)
/// and the flat per-interval CSV next to it. Skips the kind-specific executor:
/// the timeline is the deliverable, not the figure.
fn cmd_run_timeline(
    sc: &Scenario,
    mut cfg: loki_bench::ExperimentConfig,
    path: &str,
    flags: &Flags,
) {
    cfg.timeline = true;
    let runner = runner_from_flags(flags);
    let mut results = runner.run(vec![scenario::scenario_point(sc, &cfg)]);
    let point = results.remove(0);
    let json = loki_bench::timeline::timeline_json(sc.name, &point);
    if let Err(err) = std::fs::write(path, &json) {
        fail(&format!("cannot write timeline to {path:?}: {err}"));
    }
    let csv_path = timeline_csv_path(path);
    let csv = loki_bench::timeline::timeline_csv(&point);
    if let Err(err) = std::fs::write(&csv_path, &csv) {
        fail(&format!("cannot write timeline to {csv_path:?}: {err}"));
    }
    let events = point.result.journal.as_ref().map_or(0, |j| j.len());
    let intervals = point.result.intervals.len();
    let lanes = point.per_pipeline.len().max(1);
    if flags.json {
        let mut obj = Json::object();
        obj.push("scenario", sc.name.into())
            .push("timeline_path", path.into())
            .push("timeline_csv_path", csv_path.as_str().into())
            .push("intervals", Json::UInt(intervals as u64))
            .push("lanes", Json::UInt(lanes as u64))
            .push("journal_events", Json::UInt(events as u64));
        if let Some(burn) = &point.burn {
            obj.push("burn_episodes", Json::UInt(burn.episodes.len() as u64))
                .push("budget_consumed", burn.budget_consumed.into())
                .push("worst_burn_rate", burn.worst_burn_rate.into());
        }
        print!("{}", obj.render());
    } else {
        println!(
            "timeline {}: {} intervals x {} lane(s), {} journal events -> {} (+ {})",
            sc.name, intervals, lanes, events, path, csv_path
        );
        if let Some(burn) = &point.burn {
            println!(
                "slo budget: {:.1}% consumed, worst burn rate {:.2}x, {} episode(s)",
                burn.budget_consumed * 100.0,
                burn.worst_burn_rate,
                burn.episodes.len()
            );
            for ep in &burn.episodes {
                println!(
                    "  [{:.0}s..{:.0}s] {}: peak {:.1}x, {} bad queries ({:.1}% of budget) — {}",
                    ep.start_s,
                    ep.end_s,
                    ep.cause.name(),
                    ep.peak_burn_rate,
                    ep.bad_queries,
                    ep.budget_consumed_pct,
                    ep.evidence
                );
            }
        }
    }
}

fn cmd_sweep(args: &[String]) {
    let flags = parse_flags(args);
    if flags.json && flags.csv {
        fail("--json and --csv are mutually exclusive");
    }
    if flags.trace.is_some() {
        fail("--trace is only available for run");
    }
    if flags.timeline.is_some() {
        fail("--timeline is only available for run");
    }
    let Some((name, operands)) = flags.kv.split_first() else {
        fail("sweep requires a scenario name");
    };
    let sc = lookup_scenario(name);
    let mut cfg = sc.config();
    let mut axes: Vec<(String, String)> = Vec::new();
    for arg in operands {
        let Some((key, value)) = arg.split_once('=') else {
            fail(&format!("expected key=value, got {arg:?}"));
        };
        match key {
            // Axis keys accept comma-separated lists and are applied to the grid.
            "controllers" | "controller" | "slo" | "peak" | "cluster" | "links" | "route"
            | "elastic" | "spot" | "revoke" | "stockout" | "provisioner" | "jobs" | "seed" => {
                axes.push((key.to_string(), value.to_string()));
            }
            // Everything else is a base-config override.
            _ => {
                if let Err(message) = cfg.set(key, value) {
                    fail(&message);
                }
            }
        }
    }
    let mut sweep = Sweep::for_scenario(sc, cfg.clone());
    for (axis, values) in &axes {
        if let Err(message) = sweep.set_axis(axis, values) {
            fail(&message);
        }
    }
    if sweep.is_empty() {
        fail("sweep grid is empty");
    }
    let runner = runner_from_flags(&flags);
    eprintln!(
        "sweep {}: {} points across {} worker thread(s)",
        sc.name,
        sweep.len(),
        runner.jobs.min(sweep.len())
    );
    let points = sweep.points();
    let results = runner.run(points.clone());
    let multi_seed = sweep.seed.len() > 1;

    if flags.csv {
        print!("{}", report::sweep_csv(sc.name, &points, &results));
        return;
    }
    if flags.json {
        let mut out = Json::object();
        out.push("scenario", sc.name.into())
            .push("config", figures::config_json(&cfg))
            .push("jobs", runner.jobs.into())
            .push(
                "points",
                Json::Arr(
                    results
                        .iter()
                        .map(|point| {
                            let mut obj = Json::object();
                            obj.push("label", point.label.as_str().into())
                                .push("wall_s", point.wall_s.into())
                                .push("summary", figures::summary_json(&point.result.summary));
                            if let Some(cost) = &point.cost {
                                obj.push("cost", figures::cost_json(cost));
                            }
                            if let Some(burn) = &point.burn {
                                obj.push("burn", loki_bench::timeline::burn_json(burn));
                            }
                            if !point.per_pipeline.is_empty() {
                                obj.push(
                                    "pipelines",
                                    Json::Arr(
                                        point
                                            .per_pipeline
                                            .iter()
                                            .map(|lane| {
                                                let mut entry = Json::object();
                                                entry.push("name", lane.name.as_str().into()).push(
                                                    "summary",
                                                    figures::summary_json(&lane.summary),
                                                );
                                                entry
                                            })
                                            .collect(),
                                    ),
                                );
                            }
                            obj
                        })
                        .collect(),
                ),
            );
        if multi_seed {
            out.push(
                "aggregates",
                Json::Arr(
                    report::aggregate_sweep(&points, &results)
                        .iter()
                        .map(|agg| {
                            let mut obj = Json::object();
                            obj.push("label", agg.label.as_str().into()).push(
                                "seeds",
                                Json::Arr(agg.seeds.iter().map(|&s| Json::UInt(s)).collect()),
                            );
                            for (i, metric) in report::SWEEP_METRICS.iter().enumerate() {
                                obj.push(&format!("{metric}_mean"), agg.mean[i].into())
                                    .push(&format!("{metric}_stddev"), agg.stddev[i].into());
                            }
                            obj
                        })
                        .collect(),
                ),
            );
        }
        print!("{}", out.render());
        return;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>10} {:>10} {:>8} {:>8} {:>10} {:>10} {:>8} {:>9}",
        "point",
        "arrivals",
        "on_time",
        "late",
        "dropped",
        "slo_viol",
        "accuracy",
        "budget%",
        "max_burn"
    );
    // SLO error-budget columns: fraction of the (1 - slo_target) budget the
    // run consumed, and the worst fast-window burn rate (see loki_sim::burn).
    let burn_cols = |burn: Option<&loki_sim::BurnReport>| match burn {
        Some(b) => (
            format!("{:.1}", b.budget_consumed * 100.0),
            format!("{:.2}", b.worst_burn_rate),
        ),
        None => (String::from("-"), String::from("-")),
    };
    for point in &results {
        let s = &point.result.summary;
        let (budget, worst) = burn_cols(point.burn.as_ref());
        let _ = writeln!(
            out,
            "{:<40} {:>10} {:>10} {:>8} {:>8} {:>10.4} {:>10.4} {:>8} {:>9}",
            point.label,
            s.total_arrivals,
            s.total_on_time,
            s.total_late,
            s.total_dropped,
            s.slo_violation_ratio,
            s.system_accuracy,
            budget,
            worst
        );
        // Multi-pipeline points: one indented row per pipeline on the cluster.
        for lane in &point.per_pipeline {
            let s = &lane.summary;
            let (budget, worst) = burn_cols(lane.burn.as_ref());
            let _ = writeln!(
                out,
                "{:<40} {:>10} {:>10} {:>8} {:>8} {:>10.4} {:>10.4} {:>8} {:>9}",
                format!("  └ {}", lane.name),
                s.total_arrivals,
                s.total_on_time,
                s.total_late,
                s.total_dropped,
                s.slo_violation_ratio,
                s.system_accuracy,
                budget,
                worst
            );
        }
    }
    if multi_seed {
        let _ = writeln!(
            out,
            "\ncross-seed aggregates (mean ± stddev per axis point):"
        );
        let _ = writeln!(
            out,
            "{:<34} {:>7} {:>22} {:>22} {:>20}",
            "axis point", "seeds", "slo_viol", "accuracy", "on_time"
        );
        for agg in report::aggregate_sweep(&points, &results) {
            // SWEEP_METRICS indices: 0 = on_time, 6 = slo_violation_ratio,
            // 7 = system_accuracy (see report::SWEEP_METRICS for the full order).
            let _ = writeln!(
                out,
                "{:<34} {:>7} {:>12.4} ± {:>7.4} {:>12.4} ± {:>7.4} {:>11.1} ± {:>6.1}",
                agg.label,
                agg.seeds.len(),
                agg.mean[6],
                agg.stddev[6],
                agg.mean[7],
                agg.stddev[7],
                agg.mean[0],
                agg.stddev[0],
            );
        }
    }
    print!("{out}");
}

fn cmd_report(args: &[String]) {
    let flags = parse_flags(args);
    if flags.json || flags.csv {
        fail("report is always JSON; drop --json/--csv");
    }
    if flags.trace.is_some() {
        fail("--trace is only available for run");
    }
    if flags.timeline.is_some() {
        fail("--timeline is only available for run");
    }
    let mut out_path = "BENCH_sim.json".to_string();
    let mut skip_large = false;
    let mut skip_stress = false;
    let mut min_runs = 1usize;
    for arg in &flags.kv {
        let Some((key, value)) = arg.split_once('=') else {
            fail(&format!("expected key=value, got {arg:?}"));
        };
        match key {
            "out" => out_path = value.to_string(),
            "skip_large" => skip_large = value == "1" || value == "true",
            "skip_stress" => skip_stress = value == "1" || value == "true",
            // Fairness floor: every scenario runs at least this many times and
            // reports its best wall, so fast and slow configs get equal treatment.
            "runs" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => min_runs = n,
                _ => fail(&format!("invalid runs value {value:?} (want a count >= 1)")),
            },
            _ => fail(&format!(
                "unknown report key {key:?} (known: out, runs, skip_large, skip_stress)"
            )),
        }
    }
    // Serial by default so per-scenario wall-clocks stay undistorted; --jobs opts in.
    let runner = if let Some(jobs) = flags.jobs {
        Runner::with_jobs(jobs)
    } else {
        Runner::serial()
    };
    // Engine lane threads used for the parallel leg of multi-pipeline entries.
    const PARALLEL_JOBS: usize = 4;
    let mut entries = Vec::new();
    for name in [
        "traffic_300qps_30s",
        "traffic_1m_arrivals",
        "traffic_hetnet",
        "multi_traffic_social",
        "multi_zipf_16",
        "elastic_diurnal",
        "spot_diurnal",
        "stress_diurnal_day",
    ] {
        if skip_large && name != "traffic_300qps_30s" {
            continue;
        }
        if skip_stress && name == "stress_diurnal_day" {
            continue;
        }
        let sc = lookup_scenario(name);
        let mut cfg = sc.config();
        cfg.runs = cfg.runs.max(min_runs);
        let runs = cfg.runs.max(1);
        if matches!(sc.kind, ScenarioKind::MultiPipeline(..)) {
            // Multi-pipeline scenarios exercise the sharded engine: time the same
            // point with one lane thread and with PARALLEL_JOBS. Summaries are
            // bit-identical across the two legs; only wall-clock differs.
            let mut serial_cfg = cfg.clone();
            serial_cfg.jobs = 1;
            let mut parallel_cfg = cfg.clone();
            parallel_cfg.jobs = PARALLEL_JOBS;
            eprintln!("running {name} ({runs} run(s), jobs=1)...");
            let serial = runner.run(vec![scenario::scenario_point(sc, &serial_cfg)]);
            eprintln!("running {name} ({runs} run(s), jobs={PARALLEL_JOBS})...");
            let parallel = runner.run(vec![scenario::scenario_point(sc, &parallel_cfg)]);
            let host_cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let mut entry = figures::throughput_entry_json(name, runs, &serial[0]);
            entry
                .push("serial_wall_s", serial[0].wall_s.into())
                .push("parallel_wall_s", parallel[0].wall_s.into())
                .push("jobs", PARALLEL_JOBS.into())
                .push(
                    "parallel_speedup",
                    (serial[0].wall_s / parallel[0].wall_s).into(),
                )
                .push("host_cores", host_cores.into());
            // On a single-core host lanes cannot run concurrently, so the
            // jobs>1 leg only demonstrates bit-identity; its wall-clock ratio
            // is scheduling noise, not a speedup measurement.
            if host_cores == 1 {
                eprintln!(
                    "note: single-core host; {name} parallel_speedup is identity-only \
                     (bit-identity check, not a performance measurement)"
                );
                entry.push(
                    "parallel_speedup_note",
                    "identity-only: single-core host, lanes cannot run concurrently".into(),
                );
            }
            entries.push(entry);
        } else {
            eprintln!("running {name} ({runs} run(s))...");
            let results = runner.run(vec![scenario::scenario_point(sc, &cfg)]);
            entries.push(figures::throughput_entry_json(name, runs, &results[0]));
        }
    }
    let mut json = Json::object();
    json.push("benchmark", "simulator_throughput".into())
        .push("scenarios", Json::Arr(entries));
    let rendered = json.render();
    if let Err(error) = std::fs::write(&out_path, &rendered) {
        fail(&format!("cannot write {out_path}: {error}"));
    }
    eprintln!("wrote {out_path}");
    print!("{rendered}");
}

fn emit(report: &ScenarioReport, json: bool) {
    if json {
        print!("{}", report.json.render());
    } else {
        print!("{}", report.text);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        None => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        Some((command, rest)) => match command.as_str() {
            "list" => cmd_list(rest),
            "run" => cmd_run(rest),
            "sweep" => cmd_sweep(rest),
            "report" => cmd_report(rest),
            "help" | "--help" | "-h" => println!("{USAGE}"),
            other => fail(&format!("unknown command {other:?}")),
        },
    }
}
