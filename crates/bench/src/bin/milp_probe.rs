// quick probe of MILP allocator runtime on the traffic pipeline
use loki_core::allocator::{AllocationContext, Allocator};
use loki_core::milp_alloc::MilpAllocator;
use loki_core::perf::{FanoutOverrides, PerfModel};
use loki_pipeline::zoo;
use loki_sim::DropPolicy;
use std::time::{Duration, Instant};

fn main() {
    let g = zoo::traffic_analysis_pipeline(250.0);
    let fanout = FanoutOverrides::new();
    let perf = PerfModel::new(&g, 2.0, 2.0);
    let best: Vec<usize> = g.tasks().map(|(_, t)| t.most_accurate_variant()).collect();
    let hw_cap = perf.max_servable_demand(&best, 20, &fanout);
    println!("hw capacity (20 servers, max acc): {hw_cap:.1} qps");
    let min_choice: Vec<usize> = g.tasks().map(|(_, t)| t.least_accurate_variant()).collect();
    let max_cap = perf.max_servable_demand(&min_choice, 20, &fanout);
    println!(
        "max capacity (20 servers, min acc): {max_cap:.1} qps ({:.2}x)",
        max_cap / hw_cap
    );
    for demand in [hw_cap * 0.5, hw_cap * 1.3, hw_cap * 2.0] {
        let ctx = AllocationContext {
            graph: &g,
            cluster_size: 20,
            demand_qps: demand,
            fanout: &fanout,
            drop_policy: DropPolicy::OpportunisticRerouting,
            slo_divisor: 2.0,
            comm_ms: 2.0,
            upgrade_with_leftover: true,
        };
        let alloc = MilpAllocator::new(Duration::from_secs(10), 4000);
        let t0 = Instant::now();
        let out = alloc.allocate(&ctx);
        println!(
            "demand {:.0}: mode {:?} servers {} acc {:.4} in {:.0} ms",
            demand,
            out.mode,
            out.servers_used,
            out.expected_accuracy,
            t0.elapsed().as_secs_f64() * 1000.0
        );
    }
}
