//! Kind-specific scenario executors and renderers.
//!
//! Each [`ScenarioKind`] maps to one function that turns a scenario + configuration
//! into a [`ScenarioReport`]: the human-readable text the former figure binaries
//! printed, plus a machine-readable [`Json`] tree. Simulator-driven kinds express
//! their work as [`RunPoint`]s and execute through the (possibly parallel)
//! [`Runner`]; analytic kinds (phase diagram, trade-off tables, allocator probes)
//! compute in place.

use crate::report::Json;
use crate::runner::Runner;
use crate::scenario::{ControllerSpec, PointResult, RunPoint, Scenario, ScenarioKind};
use crate::sweep::Sweep;
use crate::{
    bucketize, format_comparison_timeseries, format_headline_ratios, format_summary_table,
};
use crate::{ElasticMode, ExperimentConfig, ProvisionerKind};
use loki_core::allocator::{AllocationContext, Allocator};
use loki_core::greedy::GreedyAllocator;
use loki_core::milp_alloc::MilpAllocator;
use loki_core::perf::{FanoutOverrides, PerfModel};
use loki_core::{LokiConfig, LokiController, ScalingMode};
use loki_sim::{CostSummary, DropPolicy, RunSummary, SimResult};
use loki_workload::TraceSpec;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The rendered outcome of running one scenario.
pub struct ScenarioReport {
    /// Human-readable report (what the former figure binaries printed).
    pub text: String,
    /// Machine-readable report (`loki run <scenario> --json`).
    pub json: Json,
}

/// Pre-refactor (seed-engine) reference wall-clocks for the throughput scenarios,
/// measured on the PR-1 dev container (single CPU, best of 8×3 runs) with the
/// HashMap-based engine the repo seeded with. They anchor the `speedup_vs_seed`
/// field; re-measure and update when the hardware baseline changes.
///
/// Scenario note: PR 2 moved these scenarios onto the Scenario API, which uses one
/// seed (11) for both arrival generation and the simulator RNG, where the deleted
/// `bench_report` binary paired arrival seed 11 with simulator seed 42. The workload
/// scale and arrival stream are identical; only the in-sim stochastic draws differ,
/// so the wall-clock anchors remain statistically comparable (well inside the
/// ±5-10% single-CPU noise) even though exact event counts shifted slightly.
pub const SEED_BASELINE_WALL_S: &[(&str, f64)] = &[
    ("traffic_300qps_30s", 0.009268),
    ("traffic_1m_arrivals", 1.341551),
];

fn seed_baseline_wall(name: &str) -> Option<f64> {
    SEED_BASELINE_WALL_S
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, w)| *w)
}

/// Run a scenario with its kind-specific executor.
pub fn run_scenario(sc: &Scenario, cfg: &ExperimentConfig, runner: &Runner) -> ScenarioReport {
    match sc.kind {
        ScenarioKind::Comparison => comparison(sc, cfg, runner),
        ScenarioKind::SloSweep => slo_sweep(sc, cfg, runner),
        ScenarioKind::DropPolicyAblation => drop_policy_ablation(sc, cfg, runner),
        ScenarioKind::PhaseDiagram => phase_diagram(sc, cfg),
        ScenarioKind::TradeoffTable => tradeoff_table(sc, cfg),
        ScenarioKind::AllocatorAblation => allocator_ablation(sc, cfg),
        ScenarioKind::MultFactorAblation => multfactor_ablation(sc, cfg),
        ScenarioKind::MilpProbe => milp_probe(sc, cfg),
        ScenarioKind::CapacityTable => capacity_table(sc, cfg, runner),
        ScenarioKind::Throughput => throughput(sc, cfg, runner),
        ScenarioKind::MultiPipeline(..) => multi_pipeline(sc, cfg, runner),
        ScenarioKind::Elastic => elastic_family(sc, cfg, runner),
        ScenarioKind::Spot => spot_family(sc, cfg, runner),
    }
}

/// JSON view of a whole-run summary. Every field here is simulated state
/// (bit-identical across `jobs=` values); host-time measurements live in the
/// separate profile object.
pub fn summary_json(s: &RunSummary) -> Json {
    let mut obj = Json::object();
    obj.push("total_arrivals", s.total_arrivals.into())
        .push("on_time", s.total_on_time.into())
        .push("late", s.total_late.into())
        .push("dropped", s.total_dropped.into())
        .push("dropped_deadline", s.total_dropped_deadline.into())
        .push("dropped_reclaimed", s.total_dropped_reclaimed.into())
        .push("dropped_revoked", s.total_dropped_revoked.into())
        .push("slo_violation_ratio", s.slo_violation_ratio.into())
        .push("system_accuracy", s.system_accuracy.into())
        .push("mean_utilization", s.mean_utilization.into())
        .push("p50_ms", s.p50_ms.into())
        .push("p90_ms", s.p90_ms.into())
        .push("p99_ms", s.p99_ms.into())
        .push("p999_ms", s.p999_ms.into())
        .push("min_active_workers", s.min_active_workers.into())
        .push("max_active_workers", s.max_active_workers.into())
        .push("peak_goodput", s.peak_goodput.into())
        .push("rerouted", s.total_rerouted.into())
        .push("events_processed", s.events_processed.into());
    obj
}

/// JSON view of an engine self-profile: host wall-clock seconds per dispatch
/// phase (`profile=true` runs only). Host time, not simulated time — these
/// fields are excluded from determinism comparisons, like `lane_wall_s`.
pub fn profile_json(p: &loki_sim::PhaseProfile) -> Json {
    let mut obj = Json::object();
    obj.push("arrival_s", p.arrival_s.into())
        .push("delivery_s", p.delivery_s.into())
        .push("batch_s", p.batch_s.into())
        .push("control_s", p.control_s.into())
        .push("routing_s", p.routing_s.into())
        .push("metrics_s", p.metrics_s.into())
        .push("swap_s", p.swap_s.into())
        .push("market_s", p.market_s.into())
        .push("elastic_s", p.elastic_s.into())
        .push("rebalance_s", p.rebalance_s.into())
        .push("lane_total_s", p.lane_total_s().into());
    obj
}

/// One-line text rendering of an engine self-profile.
pub fn profile_text(p: &loki_sim::PhaseProfile) -> String {
    format!(
        "engine profile (host-s): arrival {:.4}  delivery {:.4}  batch {:.4}  control {:.4}  \
         routing {:.4}  metrics {:.4}  swap {:.4}  market {:.4}  elastic {:.4}  rebalance {:.4}",
        p.arrival_s,
        p.delivery_s,
        p.batch_s,
        p.control_s,
        p.routing_s,
        p.metrics_s,
        p.swap_s,
        p.market_s,
        p.elastic_s,
        p.rebalance_s
    )
}

/// JSON view of the experiment knobs a report was produced with.
pub fn config_json(cfg: &ExperimentConfig) -> Json {
    let mut obj = Json::object();
    obj.push("cluster", cfg.cluster_size.into())
        .push("slo_ms", cfg.slo_ms.into())
        .push("duration_s", cfg.duration_s.into())
        .push("peak_qps", cfg.peak_qps.into())
        .push("base_qps", cfg.base_qps.into())
        .push("seed", cfg.seed.into())
        .push("bucket_s", cfg.bucket_s.into())
        .push("drain_s", cfg.drain_s.into())
        .push("runs", cfg.runs.into())
        .push("jobs", cfg.jobs.into())
        .push("links", cfg.links.name().into())
        .push("elastic", cfg.elastic.name().into())
        .push("classes", cfg.classes.name().into())
        .push("spot", cfg.spot.into())
        .push("revoke_per_hour", cfg.revoke_per_hour.into())
        .push("stockout", cfg.stockout.into())
        .push("provisioner", cfg.provisioner.name().into())
        .push("route", cfg.route.label().into())
        .push("trace", cfg.trace_sample.into())
        .push("profile", cfg.profile.into())
        .push("hist", cfg.hist.into())
        .push("timeline", cfg.timeline.into());
    obj
}

/// JSON view of an elastic run's fleet-cost accounting.
pub fn cost_json(cost: &CostSummary) -> Json {
    let mut obj = Json::object();
    obj.push("gpu_seconds", cost.total_gpu_seconds.into())
        .push("gpu_hours", cost.gpu_hours().into())
        .push("dollars", cost.total_dollars.into())
        .push("served_queries", cost.served_queries.into())
        .push("cost_per_1k_queries", cost.cost_per_1k_queries.into())
        .push("peak_fleet", cost.peak_fleet.into())
        .push("revocations", cost.revocations.into())
        .push("stockouts", cost.stockouts.into())
        .push("spot_dollars", cost.spot_dollars.into())
        .push("ondemand_dollars", cost.ondemand_dollars.into())
        .push(
            "per_class",
            Json::Arr(
                cost.per_class
                    .iter()
                    .map(|c| {
                        let mut row = Json::object();
                        row.push("class", c.class.as_str().into())
                            .push("spot", c.spot.into())
                            .push("gpu_seconds", c.gpu_seconds.into())
                            .push("dollars", c.dollars.into())
                            .push("peak_warm", c.peak_warm.into())
                            .push("provisioned", c.provisioned.into())
                            .push("retired", c.retired.into())
                            .push("revocations", c.revocations.into())
                            .push("stockouts", c.stockouts.into());
                        row
                    })
                    .collect(),
            ),
        );
    obj
}

fn report_header(sc: &Scenario, cfg: &ExperimentConfig) -> Json {
    let mut obj = Json::object();
    obj.push("scenario", sc.name.into())
        .push("title", sc.title.into())
        .push("kind", format!("{:?}", sc.kind).into())
        .push("pipeline", sc.pipeline.name().into())
        .push("trace", sc.trace.name().into())
        .push("config", config_json(cfg));
    obj
}

fn base_point(sc: &Scenario, cfg: &ExperimentConfig) -> RunPoint {
    crate::scenario::scenario_point(sc, cfg)
}

// ---- simulator-driven kinds ----------------------------------------------------

fn comparison(sc: &Scenario, cfg: &ExperimentConfig, runner: &Runner) -> ScenarioReport {
    let points: Vec<RunPoint> = ControllerSpec::COMPARISON
        .into_iter()
        .map(|controller| RunPoint {
            label: controller.system_label().to_string(),
            controller,
            ..base_point(sc, cfg)
        })
        .collect();
    let trace = points[0].build_trace();
    let results = runner.run(points);
    let named: Vec<(String, SimResult)> =
        results.into_iter().map(|r| (r.label, r.result)).collect();

    let mut text = format_comparison_timeseries(
        &format!("{}: {}", sc.name.to_uppercase(), sc.title),
        &trace,
        &named,
        cfg.bucket_s,
    );
    text.push_str(&format_summary_table(&named));
    text.push_str(&format_headline_ratios(&named));

    let mut json = report_header(sc, cfg);
    json.push(
        "systems",
        Json::Arr(
            named
                .iter()
                .map(|(name, r)| {
                    let mut obj = Json::object();
                    obj.push("name", name.as_str().into())
                        .push("summary", summary_json(&r.summary));
                    obj
                })
                .collect(),
        ),
    );
    ScenarioReport { text, json }
}

fn slo_sweep(sc: &Scenario, cfg: &ExperimentConfig, runner: &Runner) -> ScenarioReport {
    let sweep = Sweep::for_scenario(sc, cfg.clone());
    let slos = sweep.slo_ms.clone();
    let results = runner.run(sweep.points());

    let mut text = format!(
        "# {}: effect of the latency SLO on Loki\n",
        sc.name.to_uppercase()
    );
    let _ = writeln!(
        text,
        "{:>8} {:>14} {:>16} {:>16}",
        "slo_ms", "avg_accuracy", "max_acc_drop_%", "avg_slo_viol"
    );
    let mut rows = Vec::new();
    for (slo, point) in slos.iter().zip(&results) {
        let max_drop = max_accuracy_drop_pct(sc, *slo, &point.result);
        let s = &point.result.summary;
        let _ = writeln!(
            text,
            "{:>8.0} {:>14.4} {:>16.2} {:>16.4}",
            slo, s.system_accuracy, max_drop, s.slo_violation_ratio
        );
        let mut row = Json::object();
        row.push("slo_ms", (*slo).into())
            .push("max_accuracy_drop_pct", max_drop.into())
            .push("summary", summary_json(s));
        rows.push(row);
    }
    text.push_str(
        "\n(The paper reports sharp improvements up to ~300 ms and diminishing returns beyond.)\n",
    );

    let mut json = report_header(sc, cfg);
    json.push("points", Json::Arr(rows));
    ScenarioReport { text, json }
}

/// Maximum accuracy drop of a run: the worst 30 s-bucket accuracy vs the pipeline
/// maximum at this SLO.
fn max_accuracy_drop_pct(sc: &Scenario, slo_ms: f64, result: &SimResult) -> f64 {
    let graph = sc.pipeline.build(slo_ms);
    let buckets = bucketize(&result.intervals, 30);
    let min_acc = buckets
        .iter()
        .filter(|b| b.accuracy_count > 0)
        .map(|b| b.mean_accuracy())
        .fold(f64::INFINITY, f64::min);
    if min_acc.is_finite() {
        100.0 * (graph.max_accuracy() - min_acc) / graph.max_accuracy()
    } else {
        100.0
    }
}

fn drop_policy_ablation(sc: &Scenario, cfg: &ExperimentConfig, runner: &Runner) -> ScenarioReport {
    let points: Vec<RunPoint> = DropPolicy::all()
        .into_iter()
        .map(|policy| RunPoint {
            label: policy.label().to_string(),
            drop_policy: Some(policy),
            ..base_point(sc, cfg)
        })
        .collect();
    let results = runner.run(points);

    let mut text = format!(
        "# {}: load-balancer ablation (traffic pipeline, overload segment)\n",
        sc.name.to_uppercase()
    );
    let _ = writeln!(
        text,
        "{:<28} {:>14} {:>12} {:>12}",
        "policy", "slo_violation", "accuracy", "rerouted"
    );
    let mut rows = Vec::new();
    for point in &results {
        let s = &point.result.summary;
        let _ = writeln!(
            text,
            "{:<28} {:>14.4} {:>12.4} {:>12}",
            point.label, s.slo_violation_ratio, s.system_accuracy, s.total_rerouted
        );
        let mut row = Json::object();
        row.push("policy", point.label.as_str().into())
            .push("summary", summary_json(s));
        rows.push(row);
    }
    text.push_str(
        "\n(The paper's Figure 7 shows opportunistic rerouting with the lowest violation ratio.)\n",
    );

    let mut json = report_header(sc, cfg);
    json.push("points", Json::Arr(rows));
    ScenarioReport { text, json }
}

fn capacity_table(sc: &Scenario, cfg: &ExperimentConfig, runner: &Runner) -> ScenarioReport {
    let mut text = String::from("# T-CAP: headline numbers (paper-reported vs measured)\n");

    // Capacity gain from accuracy scaling (analytical, matches Figure 1).
    let graph = sc.pipeline.build(cfg.slo_ms);
    let mut controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
    let mut hw_cap = 0.0f64;
    let mut max_cap = 0.0f64;
    let mut demand = 25.0;
    while demand <= 3200.0 {
        let out = controller.allocate_for_demand(demand, cfg.cluster_size);
        match out.mode {
            ScalingMode::Hardware => hw_cap = out.servable_demand,
            _ => max_cap = max_cap.max(out.servable_demand),
        }
        demand += 25.0;
    }
    let capacity_gain = max_cap / f64::max(hw_cap, 1.0);
    let _ = writeln!(
        text,
        "effective capacity gain (accuracy vs hardware scaling): measured {capacity_gain:.2}x, paper >2.7x"
    );

    let mut json = report_header(sc, cfg);
    json.push("capacity_gain", capacity_gain.into());

    // End-to-end comparison ratios on both pipelines.
    let mut pipelines_json = Vec::new();
    for (label, pipeline, trace) in [
        (
            "traffic_analysis",
            crate::scenario::PipelineSpec::Traffic,
            TraceSpec::AzureDiurnal,
        ),
        (
            "social_media",
            crate::scenario::PipelineSpec::Social,
            TraceSpec::TwitterBursty,
        ),
    ] {
        let _ = writeln!(text, "\n## {label}");
        let points: Vec<RunPoint> = ControllerSpec::COMPARISON
            .into_iter()
            .map(|controller| RunPoint {
                label: controller.system_label().to_string(),
                pipeline,
                trace,
                controller,
                drop_policy: None,
                multi: None,
                cfg: cfg.clone(),
            })
            .collect();
        let results = runner.run(points);
        let named: Vec<(String, SimResult)> =
            results.into_iter().map(|r| (r.label, r.result)).collect();
        text.push_str(&format_summary_table(&named));
        text.push_str(&format_headline_ratios(&named));
        let mut entry = Json::object();
        entry.push("pipeline", label.into()).push(
            "systems",
            Json::Arr(
                named
                    .iter()
                    .map(|(name, r)| {
                        let mut obj = Json::object();
                        obj.push("name", name.as_str().into())
                            .push("summary", summary_json(&r.summary));
                        obj
                    })
                    .collect(),
            ),
        );
        pipelines_json.push(entry);
    }
    json.push("pipelines", Json::Arr(pipelines_json));
    ScenarioReport { text, json }
}

fn throughput(sc: &Scenario, cfg: &ExperimentConfig, runner: &Runner) -> ScenarioReport {
    let results = runner.run(vec![base_point(sc, cfg)]);
    let entry = throughput_entry_json(sc.name, cfg.runs.max(1), &results[0]);

    let s = &results[0].result.summary;
    let mut text = format!("# {}: simulator throughput\n", sc.name);
    let _ = writeln!(
        text,
        "arrivals {}  best_wall_s {:.6}  events {}  events/s {:.0}  arrivals/s {:.0}",
        results[0].arrivals,
        results[0].wall_s,
        s.events_processed,
        s.events_processed as f64 / results[0].wall_s,
        results[0].arrivals as f64 / results[0].wall_s,
    );
    if let Some(baseline) = seed_baseline_wall(sc.name) {
        let _ = writeln!(
            text,
            "seed baseline {:.6} s -> speedup {:.2}x",
            baseline,
            baseline / results[0].wall_s
        );
    }
    let _ = writeln!(
        text,
        "on_time {}  late {}  dropped {} (deadline {}, reclaimed {}, revoked {})  accuracy {:.4}",
        s.total_on_time,
        s.total_late,
        s.total_dropped,
        s.total_dropped_deadline,
        s.total_dropped_reclaimed,
        s.total_dropped_revoked,
        s.system_accuracy
    );
    if results[0].result.latency.is_some() {
        let _ = writeln!(
            text,
            "latency_ms p50 {:.1}  p90 {:.1}  p99 {:.1}  p999 {:.1}",
            s.p50_ms, s.p90_ms, s.p99_ms, s.p999_ms
        );
    }
    if let Some(p) = &results[0].result.profile {
        let _ = writeln!(text, "{}", profile_text(p));
    }

    let mut json = report_header(sc, cfg);
    json.push("throughput", entry);
    if let Some(p) = &results[0].result.profile {
        json.push("profile", profile_json(p));
    }
    ScenarioReport { text, json }
}

/// SLO attainment of a summary: on-time completions over finished requests.
fn slo_attainment(s: &RunSummary) -> f64 {
    let finished = s.total_on_time + s.total_late + s.total_dropped;
    if finished == 0 {
        0.0
    } else {
        s.total_on_time as f64 / finished as f64
    }
}

fn multi_pipeline(sc: &Scenario, cfg: &ExperimentConfig, runner: &Runner) -> ScenarioReport {
    let results = runner.run(vec![base_point(sc, cfg)]);
    let point = &results[0];
    let stats = point
        .multi_stats
        .as_ref()
        .expect("multi scenario yields arbitration stats");

    let mut text = format!(
        "# {}: {} pipelines on one {}-worker cluster\n",
        sc.name.to_uppercase(),
        point.per_pipeline.len(),
        cfg.cluster_size
    );
    let _ = writeln!(
        text,
        "arbiter {}  rebalances {}  migrations {}  events {}  jobs {}",
        stats.arbiter,
        stats.rebalances,
        stats.migrations,
        point.result.summary.events_processed,
        cfg.jobs.max(1)
    );
    let _ = writeln!(
        text,
        "\n{:<12} {:>10} {:>10} {:>8} {:>9} {:>11} {:>10} {:>11} {:>10}",
        "pipeline",
        "arrivals",
        "on_time",
        "late",
        "dropped",
        "slo_attain",
        "accuracy",
        "lane_wall_s",
        "barrier_s"
    );
    let mut rows = Vec::new();
    for lane in &point.per_pipeline {
        let s = &lane.summary;
        let _ = writeln!(
            text,
            "{:<12} {:>10} {:>10} {:>8} {:>9} {:>11.4} {:>10.4} {:>11.4} {:>10.4}",
            lane.name,
            s.total_arrivals,
            s.total_on_time,
            s.total_late,
            s.total_dropped,
            slo_attainment(s),
            s.system_accuracy,
            lane.lane_wall_s,
            lane.barrier_wait_s
        );
        let mut row = Json::object();
        row.push("pipeline", lane.name.as_str().into())
            .push("slo_attainment", slo_attainment(s).into())
            .push("lane_wall_s", lane.lane_wall_s.into())
            .push("barrier_wait_s", lane.barrier_wait_s.into())
            .push("summary", summary_json(s));
        if let Some(p) = &lane.profile {
            let _ = writeln!(text, "{:<12} {}", "", profile_text(p));
            row.push("profile", profile_json(p));
        }
        rows.push(row);
    }
    let agg = &point.result.summary;
    let _ = writeln!(
        text,
        "{:<12} {:>10} {:>10} {:>8} {:>9} {:>11.4} {:>10.4}",
        "aggregate",
        agg.total_arrivals,
        agg.total_on_time,
        agg.total_late,
        agg.total_dropped,
        slo_attainment(agg),
        agg.system_accuracy
    );
    text.push_str(
        "\n(Compare multi_traffic_social against multi_static_split / multi_oracle_split: \
         under the skewed mix the contended Resource Manager beats the 50/50 split on \
         aggregate SLO attainment.)\n",
    );

    let mut json = report_header(sc, cfg);
    json.push("arbiter", stats.arbiter.as_str().into())
        .push("rebalances", stats.rebalances.into())
        .push("migrations", stats.migrations.into())
        .push("pipelines", Json::Arr(rows))
        .push("aggregate_slo_attainment", slo_attainment(agg).into())
        .push("aggregate", summary_json(agg));
    if let Some(p) = &point.result.profile {
        let _ = writeln!(text, "{}", profile_text(p));
        json.push("profile", profile_json(p));
    }
    ScenarioReport { text, json }
}

/// The elastic provisioning family: the scenario's workload under static-peak,
/// static-mean, and autoscaled fleets, side by side with dollar costs. The
/// headline is cost at comparable SLO attainment: the autoscaler must approach
/// static-peak's attainment at a fraction of its cost, while static-mean shows
/// why "just provision for the average" is not an answer.
fn elastic_family(sc: &Scenario, cfg: &ExperimentConfig, runner: &Runner) -> ScenarioReport {
    let modes = [
        ElasticMode::StaticPeak,
        ElasticMode::StaticMean,
        ElasticMode::Autoscale,
    ];
    let points: Vec<RunPoint> = modes
        .into_iter()
        .map(|mode| RunPoint {
            label: mode.name().to_string(),
            cfg: ExperimentConfig {
                elastic: mode,
                ..cfg.clone()
            },
            ..base_point(sc, cfg)
        })
        .collect();
    let results = runner.run(points);

    let mut text = format!(
        "# {}: provisioning modes on the diurnal trace ({} classes catalog)\n",
        sc.name.to_uppercase(),
        cfg.classes.name()
    );
    let _ = writeln!(
        text,
        "{:<14} {:>10} {:>10} {:>10} {:>9} {:>11} {:>10} {:>10} {:>9}",
        "mode",
        "gpu_hours",
        "cost_usd",
        "cost/1k",
        "fleet",
        "slo_attain",
        "accuracy",
        "dropped",
        "scaled"
    );
    let mut rows = Vec::new();
    for point in &results {
        let s = &point.result.summary;
        let cost = point.cost.as_ref().expect("elastic modes report cost");
        let scaled = cost
            .per_class
            .iter()
            .map(|c| c.provisioned + c.retired)
            .sum::<u64>();
        let _ = writeln!(
            text,
            "{:<14} {:>10.2} {:>10.2} {:>10.4} {:>9} {:>11.4} {:>10.4} {:>10} {:>9}",
            point.label,
            cost.gpu_hours(),
            cost.total_dollars,
            cost.cost_per_1k_queries,
            cost.peak_fleet,
            slo_attainment(s),
            s.system_accuracy,
            s.total_dropped,
            scaled,
        );
        let mut row = Json::object();
        row.push("mode", point.label.as_str().into())
            .push("slo_attainment", slo_attainment(s).into())
            .push("cost", cost_json(cost))
            .push("summary", summary_json(s));
        rows.push(row);
    }

    let mut json = report_header(sc, cfg);
    json.push("modes", Json::Arr(rows));
    let peak = &results[0];
    let auto = &results[2];
    if let (Some(peak_cost), Some(auto_cost)) = (&peak.cost, &auto.cost) {
        let saving_pct = if peak_cost.total_dollars > 0.0 {
            100.0 * (1.0 - auto_cost.total_dollars / peak_cost.total_dollars)
        } else {
            0.0
        };
        let attain_delta =
            slo_attainment(&peak.result.summary) - slo_attainment(&auto.result.summary);
        let _ = writeln!(
            text,
            "\nautoscale vs static-peak: {saving_pct:.1}% cheaper at {attain_delta:+.4} SLO-attainment delta"
        );
        text.push_str(
            "(Static-mean is the cautionary baseline: cheapest fleet, but it melts at peak.)\n",
        );
        json.push("autoscale_saving_pct", saving_pct.into())
            .push("attainment_delta_vs_peak", attain_delta.into());
    }
    ScenarioReport { text, json }
}

/// The adversarial-cloud family: the scenario's workload on the same
/// autoscaled cluster under three fleets — all-on-demand with the reactive
/// autoscaler (the friendly-cloud baseline), spot-enabled with the reactive
/// autoscaler (cheap but naive about revocations), and spot-enabled with the
/// forecasting provisioner (pre-boots ahead of the ramp, hedges the spot mix
/// against observed revocations). The headline is adversity survival: under
/// nonzero revocations the forecasting provisioner must beat the reactive
/// autoscaler on SLO attainment at equal-or-lower dollars, and the spot fleet
/// must undercut all-on-demand cost at comparable attainment.
fn spot_family(sc: &Scenario, cfg: &ExperimentConfig, runner: &Runner) -> ScenarioReport {
    let variants: [(&str, bool, ProvisionerKind); 3] = [
        ("ondemand-reactive", false, ProvisionerKind::Reactive),
        ("spot-reactive", true, ProvisionerKind::Reactive),
        ("spot-forecast", true, ProvisionerKind::Forecast),
    ];
    let points: Vec<RunPoint> = variants
        .into_iter()
        .map(|(label, spot, provisioner)| RunPoint {
            label: label.to_string(),
            cfg: ExperimentConfig {
                elastic: ElasticMode::Autoscale,
                spot,
                provisioner,
                // The on-demand baseline lives on the friendly cloud: no spot
                // classes means no revocations or stockouts to survive.
                revoke_per_hour: if spot { cfg.revoke_per_hour } else { 0.0 },
                stockout: if spot { cfg.stockout } else { 0.0 },
                ..cfg.clone()
            },
            ..base_point(sc, cfg)
        })
        .collect();
    let results = runner.run(points);

    let mut text = format!(
        "# {}: adversarial cloud (revoke={}/h, stockout={}, {} classes catalog)\n",
        sc.name.to_uppercase(),
        cfg.revoke_per_hour,
        cfg.stockout,
        cfg.classes.name()
    );
    let _ = writeln!(
        text,
        "{:<18} {:>9} {:>9} {:>9} {:>8} {:>9} {:>7} {:>11} {:>9} {:>8} {:>8} {:>7}",
        "fleet",
        "cost_usd",
        "spot_usd",
        "od_usd",
        "revoked",
        "stockout",
        "fleet",
        "slo_attain",
        "cost/1k",
        "dropped",
        "budget%",
        "burn_ep"
    );
    let mut rows = Vec::new();
    for point in &results {
        let s = &point.result.summary;
        let cost = point.cost.as_ref().expect("spot modes report cost");
        let burn = point.burn.as_ref().expect("burn analysis always runs");
        let _ = writeln!(
            text,
            "{:<18} {:>9.2} {:>9.2} {:>9.2} {:>8} {:>9} {:>7} {:>11.4} {:>9.4} {:>8} {:>8.1} {:>7}",
            point.label,
            cost.total_dollars,
            cost.spot_dollars,
            cost.ondemand_dollars,
            cost.revocations,
            cost.stockouts,
            cost.peak_fleet,
            slo_attainment(s),
            cost.cost_per_1k_queries,
            s.total_dropped,
            burn.budget_consumed * 100.0,
            burn.episodes.len(),
        );
        let mut row = Json::object();
        row.push("fleet", point.label.as_str().into())
            .push("slo_attainment", slo_attainment(s).into())
            .push("cost", cost_json(cost))
            .push("summary", summary_json(s))
            .push("burn", crate::timeline::burn_json(burn));
        rows.push(row);
    }

    let mut json = report_header(sc, cfg);
    json.push("fleets", Json::Arr(rows));
    let (ondemand, reactive, forecast) = (&results[0], &results[1], &results[2]);
    if let (Some(od_cost), Some(re_cost), Some(fc_cost)) =
        (&ondemand.cost, &reactive.cost, &forecast.cost)
    {
        let fc_attain = slo_attainment(&forecast.result.summary);
        let re_attain = slo_attainment(&reactive.result.summary);
        let od_attain = slo_attainment(&ondemand.result.summary);
        let spot_saving_pct = if od_cost.total_dollars > 0.0 {
            100.0 * (1.0 - fc_cost.total_dollars / od_cost.total_dollars)
        } else {
            0.0
        };
        let _ = writeln!(
            text,
            "\nforecast vs reactive on spot: {:+.4} SLO-attainment at {:+.2} USD",
            fc_attain - re_attain,
            fc_cost.total_dollars - re_cost.total_dollars,
        );
        let _ = writeln!(
            text,
            "spot-forecast vs all-on-demand: {spot_saving_pct:.1}% cheaper at {:+.4} attainment delta",
            fc_attain - od_attain,
        );
        text.push_str(
            "(Revocations force-drain warm spot workers on a short deadline; billing stops \
             at revocation and lost batches re-queue at the lane head.)\n",
        );
        json.push("forecast_attainment_gain", (fc_attain - re_attain).into())
            .push(
                "forecast_cost_delta_usd",
                (fc_cost.total_dollars - re_cost.total_dollars).into(),
            )
            .push("spot_saving_pct_vs_ondemand", spot_saving_pct.into())
            .push(
                "attainment_delta_vs_ondemand",
                (fc_attain - od_attain).into(),
            );
    }
    ScenarioReport { text, json }
}

/// One `BENCH_sim.json` scenario entry (shared between `loki run` and `loki report`).
pub fn throughput_entry_json(name: &str, runs: usize, point: &PointResult) -> Json {
    let s = &point.result.summary;
    let events = s.events_processed;
    let baseline = seed_baseline_wall(name);
    let controller_s = point
        .controller_stats
        .as_ref()
        .map(|st| st.allocation_time_s + st.routing_time_s);
    let plan_build_s = point
        .controller_stats
        .as_ref()
        .map(|st| st.plan_build_time_s);
    let cache = point.controller_stats.as_ref().map(|st| {
        (
            st.routing_cache_consults,
            st.routing_cache_hits,
            st.routing_warnings_total,
        )
    });
    let mut entry = Json::object();
    entry
        .push("name", name.into())
        .push("arrivals", point.arrivals.into())
        .push("runs", runs.into())
        .push("best_wall_s", point.wall_s.into())
        .push(
            "seed_baseline_wall_s",
            baseline.map(Json::Num).unwrap_or(Json::Null),
        )
        .push(
            "speedup_vs_seed",
            baseline
                .map(|b| Json::Num(b / point.wall_s))
                .unwrap_or(Json::Null),
        )
        .push(
            "controller_s",
            controller_s.map(Json::Num).unwrap_or(Json::Null),
        )
        .push(
            "plan_build_s",
            plan_build_s.map(Json::Num).unwrap_or(Json::Null),
        )
        .push(
            "routing_cache_consults",
            cache
                .map(|(c, _, _)| Json::UInt(c as u64))
                .unwrap_or(Json::Null),
        )
        .push(
            "routing_cache_hits",
            cache
                .map(|(_, h, _)| Json::UInt(h as u64))
                .unwrap_or(Json::Null),
        )
        .push(
            "routing_warnings",
            cache
                .map(|(_, _, w)| Json::UInt(w as u64))
                .unwrap_or(Json::Null),
        )
        .push("events_processed", events.into())
        .push("events_per_sec", (events as f64 / point.wall_s).into())
        .push(
            "arrivals_per_sec",
            (point.arrivals as f64 / point.wall_s).into(),
        )
        .push("on_time", s.total_on_time.into())
        .push("late", s.total_late.into())
        .push("dropped", s.total_dropped.into())
        .push("dropped_deadline", s.total_dropped_deadline.into())
        .push("dropped_reclaimed", s.total_dropped_reclaimed.into())
        .push("dropped_revoked", s.total_dropped_revoked.into())
        .push("system_accuracy", s.system_accuracy.into())
        .push("p50_ms", s.p50_ms.into())
        .push("p90_ms", s.p90_ms.into())
        .push("p99_ms", s.p99_ms.into())
        .push("p999_ms", s.p999_ms.into());
    if let Some(cost) = &point.cost {
        entry.push("cost", cost_json(cost));
    }
    // Shard timings of a multi-pipeline run: how the engine's lane threads
    // spent the wall-clock (Section 6.5 load-imbalance signal).
    if !point.per_pipeline.is_empty() {
        let lanes = point
            .per_pipeline
            .iter()
            .map(|lane| {
                let mut row = Json::object();
                row.push("name", lane.name.as_str().into())
                    .push("lane_wall_s", lane.lane_wall_s.into())
                    .push("barrier_wait_s", lane.barrier_wait_s.into());
                row
            })
            .collect();
        entry.push("per_pipeline", Json::Arr(lanes));
    }
    entry
}

// ---- analytic kinds ------------------------------------------------------------

fn phase_diagram(sc: &Scenario, cfg: &ExperimentConfig) -> ScenarioReport {
    let graph = sc.pipeline.build(cfg.slo_ms);
    let mut controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());

    let mut text = format!(
        "# {}: traffic-analysis pipeline, {} workers, SLO {} ms\n",
        sc.name.to_uppercase(),
        cfg.cluster_size,
        cfg.slo_ms
    );
    let _ = writeln!(
        text,
        "{:>8} {:>12} {:>9} {:>11} {:>12}",
        "demand", "mode", "servers", "accuracy", "servable"
    );

    let mut rows = Vec::new();
    let mut hw_limit: Option<f64> = None;
    let mut acc_limit: Option<f64> = None;
    let mut last: Option<loki_core::AllocationOutcome> = None;
    let mut demand = 25.0;
    while demand <= 3200.0 {
        let out = controller.allocate_for_demand(demand, cfg.cluster_size);
        let _ = writeln!(
            text,
            "{:>8.0} {:>12} {:>9} {:>11.4} {:>12.0}",
            demand,
            format!("{:?}", out.mode),
            out.servers_used,
            out.expected_accuracy,
            out.servable_demand
        );
        let mut row = Json::object();
        row.push("demand_qps", demand.into())
            .push("mode", format!("{:?}", out.mode).into())
            .push("servers_used", out.servers_used.into())
            .push("expected_accuracy", out.expected_accuracy.into())
            .push("servable_demand", out.servable_demand.into());
        rows.push(row);
        if let Some(prev) = &last {
            if prev.mode == ScalingMode::Hardware && out.mode != ScalingMode::Hardware {
                hw_limit = Some(prev.servable_demand);
            }
            if prev.mode != ScalingMode::Saturated && out.mode == ScalingMode::Saturated {
                acc_limit = Some(prev.servable_demand);
            }
        }
        last = Some(out);
        demand += 25.0;
    }
    if acc_limit.is_none() {
        acc_limit = last.as_ref().map(|o| o.servable_demand);
    }

    text.push('\n');
    match (hw_limit, acc_limit) {
        (Some(hw), Some(acc)) => {
            let _ = writeln!(
                text,
                "phase 1 -> 2 transition (hardware-scaling capacity): {hw:.0} QPS (paper: ~560 QPS)"
            );
            let _ = writeln!(
                text,
                "maximum throughput with accuracy scaling:            {acc:.0} QPS (paper: ~1765 QPS)"
            );
            let _ = writeln!(
                text,
                "effective capacity gain from accuracy scaling:       {:.2}x (paper: ~2.7-3.1x)",
                acc / hw
            );
        }
        _ => {
            text.push_str("could not identify both phase transitions; widen the demand sweep\n");
        }
    }

    let mut json = report_header(sc, cfg);
    json.push("points", Json::Arr(rows));
    if let (Some(hw), Some(acc)) = (hw_limit, acc_limit) {
        json.push("hardware_capacity_qps", hw.into())
            .push("max_capacity_qps", acc.into())
            .push("capacity_gain", (acc / hw).into());
    }
    ScenarioReport { text, json }
}

fn tradeoff_table(sc: &Scenario, cfg: &ExperimentConfig) -> ScenarioReport {
    let mut text =
        String::from("# FIG3: accuracy-throughput tradeoff per model family (batch size 8)\n");
    let mut families = Vec::new();
    for (family, variants) in loki_pipeline::zoo::all_families() {
        let _ = writeln!(text, "\n## {family}");
        let _ = writeln!(
            text,
            "{:<20} {:>12} {:>16} {:>16}",
            "variant", "accuracy", "qps(batch=8)", "qps(batch=1)"
        );
        let mut rows = Vec::new();
        for v in &variants {
            let _ = writeln!(
                text,
                "{:<20} {:>12.3} {:>16.1} {:>16.1}",
                v.name,
                v.accuracy,
                v.throughput_qps(8),
                v.throughput_qps(1)
            );
            let mut row = Json::object();
            row.push("variant", v.name.as_str().into())
                .push("accuracy", v.accuracy.into())
                .push("qps_batch8", v.throughput_qps(8).into())
                .push("qps_batch1", v.throughput_qps(1).into());
            rows.push(row);
        }
        let mut entry = Json::object();
        entry
            .push("family", family.into())
            .push("variants", Json::Arr(rows));
        families.push(entry);
    }
    text.push_str(
        "\n(The paper's Figure 3 plots the EfficientNet column: lower accuracy => higher throughput.)\n",
    );
    let mut json = report_header(sc, cfg);
    json.push("families", Json::Arr(families));
    ScenarioReport { text, json }
}

fn allocator_ablation(sc: &Scenario, cfg: &ExperimentConfig) -> ScenarioReport {
    let graph = sc.pipeline.build(cfg.slo_ms);
    let fanout = FanoutOverrides::new();
    let greedy = GreedyAllocator::new();
    // The bounded solve budget mirrors how the paper deploys Gurobi (≈500 ms solves).
    let milp = MilpAllocator::new(Duration::from_millis(800), 2_000);

    let mut text =
        String::from("# Allocator ablation: greedy vs MILP (traffic pipeline, 20 workers)\n");
    let _ = writeln!(
        text,
        "{:>8} {:>10} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "demand", "greedy_acc", "milp_acc", "greedy_srv", "milp_srv", "greedy_ms", "milp_ms"
    );
    let mut rows = Vec::new();
    for demand in [200.0, 500.0, 800.0, 1100.0, 1400.0, 1700.0, 2000.0] {
        let ctx = AllocationContext {
            graph: &graph,
            cluster_size: cfg.cluster_size,
            demand_qps: demand,
            fanout: &fanout,
            drop_policy: DropPolicy::OpportunisticRerouting,
            slo_divisor: 2.0,
            budgets: loki_sim::HopBudgets::uniform(2.0, graph.num_tasks()),
            upgrade_with_leftover: true,
        };
        let t0 = Instant::now();
        let g = greedy.allocate(&ctx);
        let greedy_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        let m = milp.allocate(&ctx);
        let milp_ms = t1.elapsed().as_secs_f64() * 1000.0;
        let _ = writeln!(
            text,
            "{:>8.0} {:>10.4} {:>10.4} {:>12} {:>10} {:>10.2} {:>12.1}",
            demand,
            g.expected_accuracy,
            m.expected_accuracy,
            g.servers_used,
            m.servers_used,
            greedy_ms,
            milp_ms
        );
        let mut row = Json::object();
        row.push("demand_qps", demand.into())
            .push("greedy_accuracy", g.expected_accuracy.into())
            .push("milp_accuracy", m.expected_accuracy.into())
            .push("greedy_servers", g.servers_used.into())
            .push("milp_servers", m.servers_used.into())
            .push("greedy_ms", greedy_ms.into())
            .push("milp_ms", milp_ms.into());
        rows.push(row);
    }
    let mut json = report_header(sc, cfg);
    json.push("points", Json::Arr(rows));
    ScenarioReport { text, json }
}

fn multfactor_ablation(sc: &Scenario, cfg: &ExperimentConfig) -> ScenarioReport {
    let graph = sc.pipeline.build(cfg.slo_ms);
    let perf = PerfModel::new(&graph, 2.0, 2.0);
    let fanout = FanoutOverrides::new();
    let choice: Vec<usize> = graph
        .tasks()
        .map(|(_, t)| t.most_accurate_variant())
        .collect();

    let mut text = String::from(
        "# Multiplicative-factor ablation (traffic pipeline, most accurate variants)\n",
    );
    let _ = writeln!(
        text,
        "{:>8} {:<22} {:>16} {:>18} {:>12}",
        "demand", "task", "true_task_qps", "naive_task_qps", "shortfall"
    );
    let mut rows = Vec::new();
    for demand in [200.0, 400.0, 600.0] {
        let true_demands = perf.task_demands(&choice, demand, &fanout);
        for (task_id, task) in graph.tasks() {
            let t = task_id.index();
            // A pipeline-agnostic controller assumes each task sees the root demand.
            let naive = demand;
            let shortfall = (true_demands[t] - naive).max(0.0) / true_demands[t].max(1e-9);
            let _ = writeln!(
                text,
                "{:>8.0} {:<22} {:>16.1} {:>18.1} {:>11.1}%",
                demand,
                task.name,
                true_demands[t],
                naive,
                100.0 * shortfall
            );
            let mut row = Json::object();
            row.push("demand_qps", demand.into())
                .push("task", task.name.as_str().into())
                .push("true_task_qps", true_demands[t].into())
                .push("naive_task_qps", naive.into())
                .push("shortfall_pct", (100.0 * shortfall).into());
            rows.push(row);
        }
    }
    text.push_str(
        "\n(Ignoring multiplication under-provisions the car-classification task by ~30-50%.)\n",
    );
    let mut json = report_header(sc, cfg);
    json.push("points", Json::Arr(rows));
    ScenarioReport { text, json }
}

fn milp_probe(sc: &Scenario, cfg: &ExperimentConfig) -> ScenarioReport {
    let graph = sc.pipeline.build(cfg.slo_ms);
    let fanout = FanoutOverrides::new();
    let perf = PerfModel::new(&graph, 2.0, 2.0);
    let best: Vec<usize> = graph
        .tasks()
        .map(|(_, t)| t.most_accurate_variant())
        .collect();
    let hw_cap = perf.max_servable_demand(&best, cfg.cluster_size, &fanout);
    let min_choice: Vec<usize> = graph
        .tasks()
        .map(|(_, t)| t.least_accurate_variant())
        .collect();
    let max_cap = perf.max_servable_demand(&min_choice, cfg.cluster_size, &fanout);

    let mut text = format!(
        "hw capacity ({} servers, max acc): {hw_cap:.1} qps\n",
        cfg.cluster_size
    );
    let _ = writeln!(
        text,
        "max capacity ({} servers, min acc): {max_cap:.1} qps ({:.2}x)",
        cfg.cluster_size,
        max_cap / hw_cap
    );
    let mut rows = Vec::new();
    for demand in [hw_cap * 0.5, hw_cap * 1.3, hw_cap * 2.0] {
        let ctx = AllocationContext {
            graph: &graph,
            cluster_size: cfg.cluster_size,
            demand_qps: demand,
            fanout: &fanout,
            drop_policy: DropPolicy::OpportunisticRerouting,
            slo_divisor: 2.0,
            budgets: loki_sim::HopBudgets::uniform(2.0, graph.num_tasks()),
            upgrade_with_leftover: true,
        };
        let alloc = MilpAllocator::new(Duration::from_secs(10), 4000);
        let t0 = Instant::now();
        let out = alloc.allocate(&ctx);
        let solve_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let _ = writeln!(
            text,
            "demand {:.0}: mode {:?} servers {} acc {:.4} in {:.0} ms",
            demand, out.mode, out.servers_used, out.expected_accuracy, solve_ms
        );
        let mut row = Json::object();
        row.push("demand_qps", demand.into())
            .push("mode", format!("{:?}", out.mode).into())
            .push("servers_used", out.servers_used.into())
            .push("expected_accuracy", out.expected_accuracy.into())
            .push("solve_ms", solve_ms.into());
        rows.push(row);
    }
    let mut json = report_header(sc, cfg);
    json.push("hardware_capacity_qps", hw_cap.into())
        .push("max_capacity_qps", max_cap.into())
        .push("points", Json::Arr(rows));
    ScenarioReport { text, json }
}
