//! # loki-bench
//!
//! The experiment harness that regenerates every table and figure of the Loki
//! evaluation (Section 6) behind one declarative API and one CLI.
//!
//! * [`scenario`] — the Scenario subsystem: named experiment registrations
//!   ([`scenario::REGISTRY`]), the [`scenario::ControllerSpec`] factory enum, and
//!   self-contained [`scenario::RunPoint`]s.
//! * [`sweep`] — grid builder over scenario axes (controller / SLO / peak / cluster /
//!   seed) with deterministic enumeration.
//! * [`runner`] — a hand-rolled scoped-thread pool that fans independent runs out
//!   across cores; parallel results are bit-identical to serial execution.
//! * [`figures`] — kind-specific executors producing text + JSON reports.
//! * [`report`] — the hand-rolled JSON writer (the vendored serde is a no-op stub).
//!
//! The single `loki` binary (`src/bin/loki.rs`) exposes all of it: `loki list`,
//! `loki run <scenario> [key=value…] [--json]`, `loki sweep <scenario> [axis=v,v…]`,
//! and `loki report` (which refreshes `BENCH_sim.json`). `EXPERIMENTS.md` at the
//! repository root indexes every scenario with the invocation that reproduces the
//! corresponding paper figure. The Criterion benches under `benches/` reproduce the
//! Section 6.5 runtime measurements.

pub mod figures;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod timeline;

use loki_baselines::{InferLineController, ProteusController};
use loki_core::{
    AutoscalerConfig, ForecastConfig, ForecastingProvisioner, LokiConfig, LokiController,
    ReactiveAutoscaler,
};
use loki_pipeline::PipelineGraph;
use loki_sim::{
    Controller, ElasticPolicy, ElasticSimConfig, IntervalMetrics, LinkDelayModel, MarketConfig,
    RouteMode, SimConfig, SimResult, Simulation, WorkerClass, WorkerClassCatalog,
};
use loki_workload::{generate_arrivals, generators, ArrivalProcess, Trace};
use std::fmt::Write as _;

/// Named per-link delay profiles for the experiment harness: the CLI's `links=`
/// key (and sweep axis) selects one by name, and [`LinkProfile::to_model`]
/// expands it into the simulator's [`LinkDelayModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkProfile {
    /// Every hop takes the uniform `network_delay_ms` (2 ms): the paper's
    /// homogeneous testbed.
    #[default]
    Uniform,
    /// Two interconnect classes striped across the cluster (worker `w` is in
    /// class `w % 2`): intra-class hops are PCIe-fast (0.2 ms), cross-class
    /// hops cross the datacenter network (5 ms), and the frontend reaches both
    /// classes in 2 ms.
    TwoTier,
    /// Per-pipeline-edge delays for a detection → classification split across
    /// racks: the edge from task 0 to task 1 costs 5 ms, the edge from task 0
    /// to task 2 is co-located (0.2 ms), everything else (and the frontend)
    /// keeps the uniform 2 ms. Meant for the three-task traffic pipeline; the
    /// engine rejects the model loudly on pipelines without tasks 0–2.
    EdgeSplit,
}

impl LinkProfile {
    /// All profiles, in registry order.
    pub const ALL: [LinkProfile; 3] = [
        LinkProfile::Uniform,
        LinkProfile::TwoTier,
        LinkProfile::EdgeSplit,
    ];

    /// Stable name used by the CLI (`links=` key / sweep axis) and reports.
    pub fn name(self) -> &'static str {
        match self {
            LinkProfile::Uniform => "uniform",
            LinkProfile::TwoTier => "two-tier",
            LinkProfile::EdgeSplit => "edge-split",
        }
    }

    /// Look a profile up by its [`LinkProfile::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Expand into the simulator's per-link delay model.
    pub fn to_model(self) -> LinkDelayModel {
        match self {
            LinkProfile::Uniform => LinkDelayModel::Uniform,
            LinkProfile::TwoTier => LinkDelayModel::PerWorkerClass {
                classes: 2,
                delay_ms: vec![0.2, 5.0, 5.0, 0.2],
                frontend_ms: vec![2.0, 2.0],
            },
            LinkProfile::EdgeSplit => LinkDelayModel::PerEdge {
                frontend_ms: 2.0,
                default_ms: 2.0,
                edges: vec![((0, 1), 5.0), ((0, 2), 0.2)],
            },
        }
    }
}

/// How the worker fleet is provisioned for a run: the CLI's `elastic=` key
/// (and sweep axis). Everything but `fixed` attaches an elastic fleet
/// ([`loki_sim::ElasticSimConfig`]) and reports cost; `autoscale` additionally
/// drives it with the reactive Provisioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ElasticMode {
    /// The historical fixed fleet of `cluster` workers — no billing, no
    /// scaling; bit-identical to pre-elastic runs.
    #[default]
    Fixed,
    /// A static billed fleet sized for the experiment's peak (`cluster`
    /// workers): today's provision-for-peak deployment.
    StaticPeak,
    /// A static billed fleet sized for the trace's *mean* demand: cheap, but
    /// it melts at peak — the cautionary baseline.
    StaticMean,
    /// A billed fleet starting at the mean size, scaled between the pipeline
    /// footprint and `cluster` workers by the reactive Provisioner
    /// ([`loki_core::ReactiveAutoscaler`]).
    Autoscale,
}

impl ElasticMode {
    /// All modes, in registry order.
    pub const ALL: [ElasticMode; 4] = [
        ElasticMode::Fixed,
        ElasticMode::StaticPeak,
        ElasticMode::StaticMean,
        ElasticMode::Autoscale,
    ];

    /// Stable name used by the CLI (`elastic=` key / sweep axis) and reports.
    pub fn name(self) -> &'static str {
        match self {
            ElasticMode::Fixed => "fixed",
            ElasticMode::StaticPeak => "static-peak",
            ElasticMode::StaticMean => "static-mean",
            ElasticMode::Autoscale => "autoscale",
        }
    }

    /// Look a mode up by its [`ElasticMode::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }
}

/// Named GPU-class catalogs: the CLI's `classes=` key. Prices are
/// cloud-list-like reference numbers; what matters for the `elastic_` family
/// is their ratio, not their absolute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GpuClassProfile {
    /// One reference class ("a100"): the paper's homogeneous testbed with a
    /// price tag ($2.50/h, 20 s boots).
    #[default]
    Uniform,
    /// Two classes: "premium" (reference speed, $3.00/h, 20 s boots) and
    /// "budget" (1.5x slower, $1.50/h, 40 s boots). Budget wins on effective
    /// price, so the cost-aware Provisioner prefers it for scale-ups.
    Mixed,
}

impl GpuClassProfile {
    /// All profiles, in registry order.
    pub const ALL: [GpuClassProfile; 2] = [GpuClassProfile::Uniform, GpuClassProfile::Mixed];

    /// Stable name used by the CLI (`classes=` key) and reports.
    pub fn name(self) -> &'static str {
        match self {
            GpuClassProfile::Uniform => "uniform",
            GpuClassProfile::Mixed => "mixed",
        }
    }

    /// Look a profile up by its [`GpuClassProfile::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Expand into the simulator's worker-class catalog.
    pub fn to_catalog(self) -> WorkerClassCatalog {
        match self {
            GpuClassProfile::Uniform => WorkerClassCatalog::single(WorkerClass {
                name: "a100".to_string(),
                latency_scale: 1.0,
                memory_gb: 80.0,
                price_per_hour: 2.5,
                boot_delay_s: 20.0,
                spot: false,
            }),
            GpuClassProfile::Mixed => WorkerClassCatalog {
                classes: vec![
                    WorkerClass {
                        name: "premium".to_string(),
                        latency_scale: 1.0,
                        memory_gb: 80.0,
                        price_per_hour: 3.0,
                        boot_delay_s: 20.0,
                        spot: false,
                    },
                    WorkerClass {
                        name: "budget".to_string(),
                        latency_scale: 1.5,
                        memory_gb: 24.0,
                        price_per_hour: 1.5,
                        boot_delay_s: 40.0,
                        spot: false,
                    },
                ],
            },
        }
    }
}

/// Which [`ElasticPolicy`] drives an autoscaled fleet: the CLI's
/// `provisioner=` key (and sweep axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProvisionerKind {
    /// The reactive autoscaler ([`loki_core::ReactiveAutoscaler`]): scales on
    /// observed demand and pressure, pays the boot lag on every ramp.
    #[default]
    Reactive,
    /// The forecasting provisioner ([`loki_core::ForecastingProvisioner`]):
    /// fits the trace's seasonal profile online, pre-boots ahead of ramps,
    /// and hedges the spot/on-demand mix against observed revocations.
    Forecast,
}

impl ProvisionerKind {
    /// All kinds, in registry order.
    pub const ALL: [ProvisionerKind; 2] = [ProvisionerKind::Reactive, ProvisionerKind::Forecast];

    /// Stable name used by the CLI (`provisioner=` key / sweep axis) and reports.
    pub fn name(self) -> &'static str {
        match self {
            ProvisionerKind::Reactive => "reactive",
            ProvisionerKind::Forecast => "forecast",
        }
    }

    /// Look a kind up by its [`ProvisionerKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Common knobs for an end-to-end comparison experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of workers in the cluster (20, as in the paper).
    pub cluster_size: usize,
    /// End-to-end latency SLO (ms).
    pub slo_ms: f64,
    /// Simulated duration in seconds (the day-long traces are compressed into this).
    pub duration_s: usize,
    /// Peak demand of the trace, in QPS.
    pub peak_qps: f64,
    /// Off-peak floor of the trace, in QPS.
    pub base_qps: f64,
    /// Seed for trace generation and the simulator.
    pub seed: u64,
    /// Reporting bucket for printed time series, in seconds.
    pub bucket_s: usize,
    /// Post-arrival drain time before unfinished queries count as dropped, in seconds.
    pub drain_s: f64,
    /// Repetitions per run point, keeping the best wall-clock (throughput scenarios).
    pub runs: usize,
    /// Engine worker threads for multi-pipeline points (`jobs=` key): each
    /// pipeline lane runs on its own core between rebalance epochs. Results
    /// are bit-identical for every value; only wall-clock changes. Ignored by
    /// single-pipeline points.
    pub jobs: usize,
    /// Per-link network-delay profile (`links=` key; uniform by default).
    pub links: LinkProfile,
    /// Fleet-provisioning mode (`elastic=` key; fixed fleet by default).
    pub elastic: ElasticMode,
    /// GPU-class catalog for elastic fleets (`classes=` key).
    pub classes: GpuClassProfile,
    /// Add a discounted spot twin of the reference class to the catalog and
    /// attach the cloud market (`spot=` key, `true`/`false`).
    pub spot: bool,
    /// Expected spot revocations per warm spot worker per hour (`revoke=`
    /// key). `0` disables the revocation process entirely.
    pub revoke_per_hour: f64,
    /// Probability one requested spot worker is denied by a capacity stockout
    /// (`stockout=` key, in `[0, 1]`).
    pub stockout: f64,
    /// Which policy drives [`ElasticMode::Autoscale`] fleets (`provisioner=`
    /// key; the reactive autoscaler by default).
    pub provisioner: ProvisionerKind,
    /// Load-Balancer candidate-ordering mode (`route=` key; accuracy-first by
    /// default). `link-aware` breaks equal-accuracy ties toward replicas on
    /// cheap links of the `links` profile and budgets the SLO per hop.
    pub route: RouteMode,
    /// Deterministic query-trace sampling: record a span tree for every Nth
    /// root query (`trace=` key; `0` disables tracing). The sample set is
    /// seed-stable and identical for every `jobs=` value.
    pub trace_sample: u64,
    /// Engine self-profiling: accumulate per-phase wall-clock timers in the
    /// dispatch loop (`profile=` key, `true`/`false`). Host time only — never
    /// affects simulated results.
    pub profile: bool,
    /// Latency histograms (p50/p90/p99/p999) per task, worker class, and
    /// end-to-end (`hist=` key; on by default, `false` to disable).
    pub hist: bool,
    /// Timeline telemetry (`timeline=` key, `true`/`false`): the cluster
    /// event journal plus per-interval windowed histogram deltas. Records
    /// simulated time only, so the channel is bit-identical for every `jobs=`
    /// value and never perturbs the run. The `--timeline PATH` CLI flag turns
    /// this on and exports the windowed series + journal to disk.
    pub timeline: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            cluster_size: 20,
            slo_ms: 250.0,
            duration_s: 1200,
            peak_qps: 1500.0,
            base_qps: 80.0,
            seed: 42,
            bucket_s: 60,
            drain_s: 20.0,
            runs: 1,
            jobs: 1,
            links: LinkProfile::Uniform,
            elastic: ElasticMode::Fixed,
            classes: GpuClassProfile::Uniform,
            spot: false,
            revoke_per_hour: 0.0,
            stockout: 0.0,
            provisioner: ProvisionerKind::Reactive,
            route: RouteMode::Accuracy,
            trace_sample: 0,
            profile: false,
            hist: true,
            timeline: false,
        }
    }
}

impl ExperimentConfig {
    /// Apply one `key=value` override. Unknown keys and unparsable values are hard
    /// errors — a typo like `slo=25o` must never silently fall back to the default.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("invalid value for {key}: {value:?}"))
        }
        match key {
            "cluster" => self.cluster_size = parse(key, value)?,
            "slo" => self.slo_ms = parse(key, value)?,
            "duration" => self.duration_s = parse(key, value)?,
            "peak" => self.peak_qps = parse(key, value)?,
            "base" => self.base_qps = parse(key, value)?,
            "seed" => self.seed = parse(key, value)?,
            "bucket" => self.bucket_s = parse(key, value)?,
            "drain" => self.drain_s = parse(key, value)?,
            "runs" => self.runs = parse(key, value)?,
            "jobs" => self.jobs = parse::<usize>(key, value)?.max(1),
            "links" => {
                self.links = LinkProfile::from_name(value).ok_or_else(|| {
                    format!(
                        "invalid value for links: {value:?} (known: {})",
                        LinkProfile::ALL.map(|p| p.name()).join(", ")
                    )
                })?
            }
            "elastic" => {
                self.elastic = ElasticMode::from_name(value).ok_or_else(|| {
                    format!(
                        "invalid value for elastic: {value:?} (known: {})",
                        ElasticMode::ALL.map(|m| m.name()).join(", ")
                    )
                })?
            }
            "classes" => {
                self.classes = GpuClassProfile::from_name(value).ok_or_else(|| {
                    format!(
                        "invalid value for classes: {value:?} (known: {})",
                        GpuClassProfile::ALL.map(|p| p.name()).join(", ")
                    )
                })?
            }
            "spot" => self.spot = parse(key, value)?,
            "revoke" => {
                let rate: f64 = parse(key, value)?;
                if !rate.is_finite() || rate < 0.0 {
                    return Err(format!("invalid value for revoke: {value:?} (want >= 0)"));
                }
                self.revoke_per_hour = rate;
            }
            "stockout" => {
                let p: f64 = parse(key, value)?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!(
                        "invalid value for stockout: {value:?} (want a probability in [0, 1])"
                    ));
                }
                self.stockout = p;
            }
            "provisioner" => {
                self.provisioner = ProvisionerKind::from_name(value).ok_or_else(|| {
                    format!(
                        "invalid value for provisioner: {value:?} (known: {})",
                        ProvisionerKind::ALL.map(|k| k.name()).join(", ")
                    )
                })?
            }
            "route" => {
                self.route = RouteMode::parse(value).ok_or_else(|| {
                    format!("invalid value for route: {value:?} (known: accuracy, link-aware)")
                })?
            }
            "trace" => self.trace_sample = parse(key, value)?,
            "profile" => self.profile = parse(key, value)?,
            "hist" => self.hist = parse(key, value)?,
            "timeline" => self.timeline = parse(key, value)?,
            _ => {
                return Err(format!(
                    "unknown key {key:?} (known: cluster, slo, duration, peak, base, seed, bucket, drain, runs, jobs, links, elastic, classes, spot, revoke, stockout, provisioner, route, trace, profile, hist, timeline)"
                ))
            }
        }
        Ok(())
    }

    /// Apply a sequence of `key=value` overrides, rejecting anything malformed.
    pub fn apply_overrides<'a>(
        &mut self,
        args: impl IntoIterator<Item = &'a str>,
    ) -> Result<(), String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got {arg:?}"));
            };
            self.set(key, value)?;
        }
        Ok(())
    }
}

/// The generator seed a trace family uses for a given experiment seed. The
/// Twitter-like trace perturbs the seed so paired traffic/social runs with the same
/// experiment seed do not share an arrival pattern; this is the single place the
/// perturbation lives.
pub fn trace_seed(trace: loki_workload::TraceSpec, seed: u64) -> u64 {
    match trace {
        loki_workload::TraceSpec::TwitterBursty => seed ^ 0x5eed,
        _ => seed,
    }
}

/// The Azure-Functions-like diurnal trace used for the traffic-analysis pipeline.
pub fn traffic_trace(cfg: &ExperimentConfig) -> Trace {
    generators::azure_like_diurnal(cfg.seed, cfg.duration_s, cfg.base_qps, cfg.peak_qps)
}

/// The Twitter-like bursty trace used for the social-media pipeline.
pub fn social_trace(cfg: &ExperimentConfig) -> Trace {
    generators::twitter_like_bursty(
        trace_seed(loki_workload::TraceSpec::TwitterBursty, cfg.seed),
        cfg.duration_s,
        cfg.base_qps,
        cfg.peak_qps,
    )
}

/// Fleet sizes an elastic experiment derives from its knobs: the peak fleet
/// is the experiment's `cluster` (what the fixed-fleet scenarios provision),
/// the mean fleet scales it by the trace's mean-to-peak demand ratio, and
/// both are floored at the pipeline footprint (below which nothing serves).
/// One derivation shared by the fleet builder and the autoscaler, so the
/// modes can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticFleetSizes {
    /// Pipeline footprint: the minimum viable fleet (`num_tasks`, at least 2).
    pub floor: usize,
    /// Fleet sized for the trace's mean demand.
    pub mean: usize,
    /// Fleet sized for peak demand (the experiment's `cluster`).
    pub peak: usize,
}

impl ElasticFleetSizes {
    /// The reference per-worker serving rate this sizing implies: the rate
    /// each of the `peak` workers must sustain at `peak_qps` — the
    /// calibration the demand-target autoscaler plans with.
    pub fn qps_per_worker(&self, peak_qps: f64) -> f64 {
        if peak_qps > 0.0 {
            peak_qps / self.peak as f64
        } else {
            AutoscalerConfig::default().qps_per_worker
        }
    }
}

/// Derive [`ElasticFleetSizes`] from an experiment's knobs.
pub fn elastic_fleet_sizes(
    cfg: &ExperimentConfig,
    num_tasks: usize,
    mean_qps: f64,
) -> ElasticFleetSizes {
    let peak = cfg.cluster_size.max(1);
    let floor = num_tasks.max(2).min(peak);
    let share = if cfg.peak_qps > 0.0 {
        (mean_qps / cfg.peak_qps).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let mean = ((peak as f64 * share).ceil() as usize).clamp(floor, peak);
    ElasticFleetSizes { floor, mean, peak }
}

/// Spot classes are billed at this fraction of the on-demand list price
/// (before the market's time-varying multiplier): the ~68% discount typical
/// of preemptible capacity.
pub const SPOT_DISCOUNT: f64 = 0.32;

/// The worker-class catalog of an experiment: the named profile, plus — when
/// `spot=true` — a spot twin of the reference class (same silicon, same
/// boots, [`SPOT_DISCOUNT`] of the price, revocable by the market).
pub fn fleet_catalog(cfg: &ExperimentConfig) -> WorkerClassCatalog {
    let mut catalog = cfg.classes.to_catalog();
    if cfg.spot {
        let reference = &catalog.classes[0];
        let twin = WorkerClass {
            name: format!("{}-spot", reference.name),
            price_per_hour: reference.price_per_hour * SPOT_DISCOUNT,
            spot: true,
            ..reference.clone()
        };
        catalog.classes.push(twin);
    }
    catalog
}

/// The cloud market an experiment is exposed to, or `None` when every market
/// knob is off (`spot=false`, `revoke=0`, `stockout=0`) — the friendly cloud,
/// bit-identical to pre-market runs. Spot-enabled runs get a stepwise price
/// schedule over the compressed day: a discounted valley, a demand-peak
/// premium, and a post-peak relaxation.
pub fn market_config(cfg: &ExperimentConfig) -> Option<MarketConfig> {
    if !cfg.spot && cfg.revoke_per_hour == 0.0 && cfg.stockout == 0.0 {
        return None;
    }
    let t = cfg.duration_s as f64;
    let price_schedule = if cfg.spot {
        vec![(0.0, 0.9), (0.45 * t, 1.3), (0.8 * t, 0.95)]
    } else {
        Vec::new()
    };
    Some(MarketConfig {
        revocation_rate_per_hour: cfg.revoke_per_hour,
        price_schedule,
        stockout_probability: cfg.stockout,
        ..MarketConfig::default()
    })
}

/// The elastic-fleet half of the simulator config for an experiment, or
/// `None` for [`ElasticMode::Fixed`]. Static modes pin `max_fleet` at their
/// initial size (they never scale); autoscaled fleets start at the mean size
/// and may grow to the peak fleet.
pub fn elastic_sim_config(
    cfg: &ExperimentConfig,
    num_tasks: usize,
    mean_qps: f64,
) -> Option<ElasticSimConfig> {
    let sizes = elastic_fleet_sizes(cfg, num_tasks, mean_qps);
    let (initial, max_fleet) = match cfg.elastic {
        ElasticMode::Fixed => return None,
        ElasticMode::StaticPeak => (sizes.peak, sizes.peak),
        ElasticMode::StaticMean => (sizes.mean, sizes.mean),
        ElasticMode::Autoscale => (sizes.mean, sizes.peak),
    };
    Some(ElasticSimConfig {
        catalog: fleet_catalog(cfg),
        // The initial fleet is reference-class (on-demand); the policy's
        // scale-ups pick spot or on-demand classes from the catalog.
        initial: vec![(0, initial)],
        max_fleet,
        decide_interval_s: 10.0,
        market: market_config(cfg),
    })
}

/// The autoscaler sizing an experiment implies, shared by both provisioner
/// kinds: bounded by the pipeline footprint below and the experiment's
/// `cluster` above, calibrated to the same per-worker rate the peak fleet was
/// sized with (peak QPS over the peak fleet) — so a re-sized experiment
/// (`peak=`, `cluster=` overrides) re-calibrates the demand target
/// automatically.
pub fn autoscaler_config(
    cfg: &ExperimentConfig,
    num_tasks: usize,
    mean_qps: f64,
) -> AutoscalerConfig {
    let sizes = elastic_fleet_sizes(cfg, num_tasks, mean_qps);
    AutoscalerConfig {
        min_fleet: sizes.floor,
        max_fleet: sizes.peak,
        qps_per_worker: sizes.qps_per_worker(cfg.peak_qps),
        ..AutoscalerConfig::default()
    }
}

/// The reactive Provisioner an autoscaled experiment runs (see
/// [`autoscaler_config`] for the sizing).
pub fn autoscaler(cfg: &ExperimentConfig, num_tasks: usize, mean_qps: f64) -> ReactiveAutoscaler {
    ReactiveAutoscaler::new(autoscaler_config(cfg, num_tasks, mean_qps))
}

/// The [`ElasticPolicy`] an autoscaled experiment runs: the experiment's
/// `provisioner=` choice over the shared [`autoscaler_config`] sizing. The
/// forecasting provisioner fits one seasonal period per compressed day (the
/// run duration) and buys capacity one boot delay plus one decide interval
/// ahead, so pre-boots land exactly when the forecast demand arrives.
pub fn provisioner_policy(
    cfg: &ExperimentConfig,
    num_tasks: usize,
    mean_qps: f64,
) -> Box<dyn ElasticPolicy> {
    let autoscaler = autoscaler_config(cfg, num_tasks, mean_qps);
    match cfg.provisioner {
        ProvisionerKind::Reactive => Box::new(ReactiveAutoscaler::new(autoscaler)),
        ProvisionerKind::Forecast => {
            let max_boot_s = fleet_catalog(cfg)
                .classes
                .iter()
                .map(|c| c.boot_delay_s)
                .fold(0.0, f64::max);
            Box::new(ForecastingProvisioner::new(ForecastConfig {
                autoscaler,
                period_s: (cfg.duration_s as f64).max(1.0),
                lead_s: max_boot_s + 10.0,
                ..ForecastConfig::default()
            }))
        }
    }
}

/// The simulator configuration shared by all end-to-end experiments.
pub fn sim_config(cfg: &ExperimentConfig, trace: &Trace) -> SimConfig {
    SimConfig {
        cluster_size: cfg.cluster_size,
        control_interval_s: 10.0,
        routing_interval_s: 1.0,
        metrics_interval_s: 1.0,
        seed: cfg.seed,
        initial_demand_hint: Some(trace.qps_at(0).max(1.0)),
        drain_s: cfg.drain_s,
        link_delays: cfg.links.to_model(),
        observe: loki_sim::ObserveConfig {
            trace_sample: cfg.trace_sample,
            profile: cfg.profile,
            histograms: cfg.hist,
            timeline: cfg.timeline,
        },
        ..SimConfig::default()
    }
}

/// Run one controller over a trace and return the simulation result.
pub fn run_controller<C: Controller>(
    graph: &PipelineGraph,
    trace: &Trace,
    cfg: &ExperimentConfig,
    controller: C,
) -> SimResult {
    let arrivals = generate_arrivals(trace, ArrivalProcess::Poisson, cfg.seed);
    let mut sim = Simulation::new(graph, sim_config(cfg, trace), controller);
    sim.run(&arrivals)
}

/// Run the three systems of the end-to-end comparison (Loki, InferLine-style,
/// Proteus-style) over the same pipeline and trace.
pub fn run_comparison(
    graph: &PipelineGraph,
    trace: &Trace,
    cfg: &ExperimentConfig,
) -> Vec<(String, SimResult)> {
    let mut out = Vec::new();
    let loki = LokiController::new(graph.clone(), LokiConfig::with_greedy());
    out.push(("loki".to_string(), run_controller(graph, trace, cfg, loki)));
    let inferline = InferLineController::with_defaults(graph.clone());
    out.push((
        "inferline".to_string(),
        run_controller(graph, trace, cfg, inferline),
    ));
    let proteus = ProteusController::with_defaults(graph.clone());
    out.push((
        "proteus".to_string(),
        run_controller(graph, trace, cfg, proteus),
    ));
    out
}

/// Aggregate per-second interval metrics into coarser buckets for printing.
pub fn bucketize(intervals: &[IntervalMetrics], bucket_s: usize) -> Vec<IntervalMetrics> {
    let mut out: Vec<IntervalMetrics> = Vec::new();
    for chunk in intervals.chunks(bucket_s.max(1)) {
        let mut agg = IntervalMetrics {
            start_s: chunk[0].start_s,
            cluster_size: chunk[0].cluster_size,
            ..Default::default()
        };
        let mut active_sum = 0usize;
        for m in chunk {
            agg.arrivals += m.arrivals;
            agg.completed_on_time += m.completed_on_time;
            agg.completed_late += m.completed_late;
            agg.dropped += m.dropped;
            agg.dropped_deadline += m.dropped_deadline;
            agg.dropped_reclaimed += m.dropped_reclaimed;
            agg.dropped_revoked += m.dropped_revoked;
            agg.accuracy_sum += m.accuracy_sum;
            agg.accuracy_count += m.accuracy_count;
            agg.rerouted += m.rerouted;
            active_sum += m.active_workers;
        }
        agg.active_workers = (active_sum as f64 / chunk.len() as f64).round() as usize;
        out.push(agg);
    }
    out
}

/// Render the end-to-end comparison as the four stacked time series of Figures 5/6:
/// demand, system accuracy, cluster utilization, and SLO-violation ratio.
pub fn format_comparison_timeseries(
    title: &str,
    trace: &Trace,
    results: &[(String, SimResult)],
    bucket_s: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "# one row per {bucket_s}s bucket; acc/util/viol reported per system"
    );
    let header: Vec<String> = results.iter().map(|(n, _)| n.clone()).collect();
    let _ = writeln!(
        out,
        "{:>7} {:>9}  {}  {}  {}",
        "time_s",
        "demand",
        header
            .iter()
            .map(|n| format!("{:>9}", format!("acc_{n}")))
            .collect::<Vec<_>>()
            .join(" "),
        header
            .iter()
            .map(|n| format!("{:>10}", format!("util_{n}")))
            .collect::<Vec<_>>()
            .join(" "),
        header
            .iter()
            .map(|n| format!("{:>10}", format!("viol_{n}")))
            .collect::<Vec<_>>()
            .join(" "),
    );
    let buckets: Vec<Vec<IntervalMetrics>> = results
        .iter()
        .map(|(_, r)| bucketize(&r.intervals, bucket_s))
        .collect();
    let rows = buckets.iter().map(|b| b.len()).min().unwrap_or(0);
    for row in 0..rows {
        let t = buckets[0][row].start_s;
        let demand: f64 = (0..bucket_s)
            .map(|i| trace.qps_at(t as usize + i))
            .sum::<f64>()
            / bucket_s as f64;
        let accs: Vec<String> = buckets
            .iter()
            .map(|b| format!("{:>9.4}", b[row].mean_accuracy()))
            .collect();
        let utils: Vec<String> = buckets
            .iter()
            .map(|b| format!("{:>10.3}", b[row].cluster_utilization()))
            .collect();
        let viols: Vec<String> = buckets
            .iter()
            .map(|b| format!("{:>10.4}", b[row].slo_violation_ratio()))
            .collect();
        let _ = writeln!(
            out,
            "{:>7.0} {:>9.1}  {}  {}  {}",
            t,
            demand,
            accs.join(" "),
            utils.join(" "),
            viols.join(" ")
        );
    }
    out
}

/// Render the whole-run summary rows (the numbers quoted in the paper's text).
pub fn format_summary_table(results: &[(String, SimResult)]) -> String {
    let mut out = String::from("\n");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "system",
        "arrivals",
        "on_time",
        "late",
        "dropped",
        "slo_viol",
        "accuracy",
        "mean_util",
        "p50_ms",
        "p99_ms",
        "p999_ms"
    );
    for (name, r) in results {
        let s = &r.summary;
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>12.4} {:>12.4} {:>10.3} {:>8.1} {:>8.1} {:>8.1}",
            name,
            s.total_arrivals,
            s.total_on_time,
            s.total_late,
            s.total_dropped,
            s.slo_violation_ratio,
            s.system_accuracy,
            s.mean_utilization,
            s.p50_ms,
            s.p99_ms,
            s.p999_ms
        );
    }
    out
}

/// Render the derived headline ratios comparing Loki with the baselines (capacity,
/// violation reduction, off-peak server saving).
pub fn format_headline_ratios(results: &[(String, SimResult)]) -> String {
    let get = |name: &str| results.iter().find(|(n, _)| n == name).map(|(_, r)| r);
    let (Some(loki), Some(inferline), Some(proteus)) =
        (get("loki"), get("inferline"), get("proteus"))
    else {
        return String::new();
    };
    let viol_reduction = if loki.summary.slo_violation_ratio > 0.0 {
        proteus.summary.slo_violation_ratio / loki.summary.slo_violation_ratio
    } else {
        f64::INFINITY
    };
    let capacity_gain =
        loki.summary.peak_goodput as f64 / inferline.summary.peak_goodput.max(1) as f64;
    let server_saving =
        proteus.summary.max_active_workers as f64 / loki.summary.min_active_workers.max(1) as f64;
    let mut out = String::from("\n");
    let _ = writeln!(out, "headline ratios (Loki vs baselines):");
    let _ = writeln!(
        out,
        "  peak goodput vs hardware-scaling-only (InferLine-style): {capacity_gain:.2}x (paper: ~2.5-2.7x)"
    );
    let _ = writeln!(
        out,
        "  SLO-violation reduction vs pipeline-agnostic accuracy scaling (Proteus-style): {viol_reduction:.1}x (paper: ~10x)"
    );
    let _ = writeln!(
        out,
        "  off-peak active servers, Proteus-style vs Loki: {server_saving:.2}x fewer with Loki (paper: ~2.67x)"
    );
    let _ = writeln!(
        out,
        "  Loki accuracy {:.3} vs Proteus-style {:.3} (paper: Loki drops up to ~20% less accuracy)",
        loki.summary.system_accuracy, proteus.summary.system_accuracy
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_pipeline::zoo;

    #[test]
    fn bucketize_preserves_totals() {
        let intervals: Vec<IntervalMetrics> = (0..10)
            .map(|i| IntervalMetrics {
                start_s: i as f64,
                arrivals: 10,
                completed_on_time: 8,
                completed_late: 1,
                dropped: 1,
                dropped_deadline: 1,
                dropped_reclaimed: 0,
                dropped_revoked: 0,
                accuracy_sum: 8.0,
                accuracy_count: 9,
                active_workers: 5,
                cluster_size: 20,
                rerouted: 0,
            })
            .collect();
        let buckets = bucketize(&intervals, 5);
        assert_eq!(buckets.len(), 2);
        let total_arrivals: u64 = buckets.iter().map(|b| b.arrivals).sum();
        assert_eq!(total_arrivals, 100);
        assert_eq!(buckets[0].active_workers, 5);
    }

    #[test]
    fn small_comparison_runs_end_to_end() {
        let cfg = ExperimentConfig {
            duration_s: 60,
            peak_qps: 150.0,
            base_qps: 40.0,
            bucket_s: 20,
            ..Default::default()
        };
        let graph = zoo::traffic_analysis_pipeline(cfg.slo_ms);
        let trace = traffic_trace(&cfg);
        let results = run_comparison(&graph, &trace, &cfg);
        assert_eq!(results.len(), 3);
        for (name, r) in &results {
            assert!(r.summary.total_arrivals > 0, "{name} saw no arrivals");
        }
        // The formatters must mention every system.
        let text = format_summary_table(&results) + &format_headline_ratios(&results);
        for (name, _) in &results {
            assert!(text.contains(name.as_str()));
        }
    }

    #[test]
    fn config_overrides_are_strict() {
        let mut cfg = ExperimentConfig::default();
        cfg.apply_overrides(["slo=300", "duration=60", "runs=2"])
            .expect("valid overrides");
        assert_eq!(cfg.slo_ms, 300.0);
        assert_eq!(cfg.duration_s, 60);
        assert_eq!(cfg.runs, 2);
        // The typo the old parser silently swallowed is now a hard error.
        let err = cfg.set("slo", "25o").unwrap_err();
        assert!(err.contains("invalid value"), "{err}");
        let err = cfg.set("slos", "250").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = cfg.apply_overrides(["duration"]).unwrap_err();
        assert!(err.contains("key=value"), "{err}");
        // Failed overrides must not have clobbered earlier state.
        assert_eq!(cfg.slo_ms, 300.0);
    }

    #[test]
    fn link_profiles_round_trip_and_expand() {
        use loki_sim::LinkDelayModel;
        for profile in LinkProfile::ALL {
            assert_eq!(LinkProfile::from_name(profile.name()), Some(profile));
            assert!(profile.to_model().validate().is_ok());
        }
        assert_eq!(LinkProfile::from_name("warp-drive"), None);
        assert_eq!(LinkProfile::Uniform.to_model(), LinkDelayModel::Uniform);
        // The heterogeneous profiles must actually be heterogeneous: their
        // worst hop exceeds the 2 ms uniform delay.
        assert!(LinkProfile::TwoTier.to_model().max_hop_ms(2.0) > 2.0);
        assert!(LinkProfile::EdgeSplit.to_model().max_hop_ms(2.0) > 2.0);

        let mut cfg = ExperimentConfig::default();
        assert_eq!(cfg.links, LinkProfile::Uniform);
        cfg.apply_overrides(["links=two-tier"]).expect("valid");
        assert_eq!(cfg.links, LinkProfile::TwoTier);
        let err = cfg.set("links", "nope").unwrap_err();
        assert!(err.contains("invalid value for links"), "{err}");
        // The simulator config inherits the expanded model.
        let trace = generators::constant(5, 10.0);
        assert_eq!(
            sim_config(&cfg, &trace).link_delays,
            LinkProfile::TwoTier.to_model()
        );
    }
}
