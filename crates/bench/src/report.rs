//! Hand-rolled JSON values and writer.
//!
//! The vendored `serde` is a no-op stub (crates.io is unreachable in the build
//! container), so machine-readable reports are built from this small tree type
//! instead of derives. Object keys keep insertion order, which keeps the emitted
//! reports diff-friendly across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    /// Non-finite floats render as `null` (JSON has no NaN/Infinity).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be extended with [`Json::push`].
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object. Panics when `self` is not an object — report
    /// builders construct shapes statically, so this is a programming error.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(entries) => entries.push((key.to_string(), value)),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// Look up a key in an object (test/diagnostic helper).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Debug formatting is the shortest representation that round-trips,
                    // and always includes a `.` or exponent, so it is valid JSON.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let mut obj = Json::object();
        obj.push("name", "traffic".into())
            .push("count", 3u64.into())
            .push("ratio", 0.25.into())
            .push("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let text = obj.render();
        assert!(text.contains("\"name\": \"traffic\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.25"));
        assert!(text.contains("true"));
        assert!(text.ends_with("}\n"));
        assert_eq!(obj.get("count"), Some(&Json::UInt(3)));
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        let mut out = String::new();
        s.write(&mut out, 0);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn numbers_round_trip_shortest_form() {
        assert_eq!(Json::Num(17802298.119249).render(), "17802298.119249\n");
        assert_eq!(Json::Num(1.0).render(), "1.0\n");
        assert_eq!(Json::UInt(u64::MAX).render(), format!("{}\n", u64::MAX));
    }

    #[test]
    fn empty_collections_render_compactly() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::object().render(), "{}\n");
    }
}
