//! Hand-rolled JSON values and writer, plus the sweep CSV emitter and
//! cross-seed aggregation.
//!
//! The vendored `serde` is a no-op stub (crates.io is unreachable in the build
//! container), so machine-readable reports are built from this small tree type
//! instead of derives. Object keys keep insertion order, which keeps the emitted
//! reports diff-friendly across runs.
//!
//! [`sweep_csv`] renders a `loki sweep` result as one flat CSV (per-point rows
//! tagged `stat=point`, cross-seed aggregates as `stat=mean` / `stat=stddev`),
//! so figure plotting needs no post-processing; [`aggregate_sweep`] exposes the
//! same aggregation programmatically.

use crate::scenario::{PointResult, RunPoint};
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    /// Non-finite floats render as `null` (JSON has no NaN/Infinity).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be extended with [`Json::push`].
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key to an object. Panics when `self` is not an object — report
    /// builders construct shapes statically, so this is a programming error.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(entries) => entries.push((key.to_string(), value)),
            _ => panic!("Json::push on a non-object"),
        }
        self
    }

    /// Look up a key in an object (test/diagnostic helper).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Debug formatting is the shortest representation that round-trips,
                    // and always includes a `.` or exponent, so it is valid JSON.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

// ---- sweep aggregation and CSV -------------------------------------------------

/// The metrics a sweep point contributes to cross-seed statistics, in the
/// column order of [`sweep_csv`]. The cost columns are zero for fixed-fleet
/// points (no billing) and for per-pipeline rows (cost is cluster-level); the
/// percentile columns are zero when `hist=false` disabled the latency
/// histograms; the control-plane columns (`plan_build_s`,
/// `routing_cache_*`, `routing_warnings`) are zero for controllers that do
/// not track [`loki_core::ControllerStats`]; the shard-timing columns
/// (`lane_wall_s`, `barrier_wait_s`) are populated only on `stat=pipeline`
/// rows (they are per-lane host timings, zero at cluster level).
pub const SWEEP_METRICS: [&str; 30] = [
    "on_time",
    "late",
    "dropped",
    "dropped_deadline",
    "dropped_reclaimed",
    "dropped_revoked",
    "slo_violation_ratio",
    "system_accuracy",
    "mean_utilization",
    "p50_ms",
    "p90_ms",
    "p99_ms",
    "p999_ms",
    "wall_s",
    "gpu_hours",
    "cost_usd",
    "cost_per_1k",
    "revocations",
    "stockouts",
    "spot_usd",
    "ondemand_usd",
    "plan_build_s",
    "routing_cache_consults",
    "routing_cache_hits",
    "routing_warnings",
    "budget_consumed",
    "worst_burn_rate",
    "burn_episodes",
    "lane_wall_s",
    "barrier_wait_s",
];

/// The [`SWEEP_METRICS`] column values of one summary; `wall_s` is the run's
/// wall-clock (shared by every pipeline of a multi-pipeline point), `cost`
/// the run's fleet billing (elastic runs only), `stats` the control-plane
/// statistics of whichever controller produced the summary, `burn` the SLO
/// error-budget analysis of the summary's interval series, and the shard
/// timings come from the lane on `stat=pipeline` rows (zero at cluster level).
fn summary_metrics(
    s: &loki_sim::RunSummary,
    wall_s: f64,
    cost: Option<&loki_sim::CostSummary>,
    stats: Option<&loki_core::ControllerStats>,
    burn: Option<&loki_sim::BurnReport>,
    lane_wall_s: f64,
    barrier_wait_s: f64,
) -> [f64; 30] {
    [
        s.total_on_time as f64,
        s.total_late as f64,
        s.total_dropped as f64,
        s.total_dropped_deadline as f64,
        s.total_dropped_reclaimed as f64,
        s.total_dropped_revoked as f64,
        s.slo_violation_ratio,
        s.system_accuracy,
        s.mean_utilization,
        s.p50_ms,
        s.p90_ms,
        s.p99_ms,
        s.p999_ms,
        wall_s,
        cost.map_or(0.0, |c| c.gpu_hours()),
        cost.map_or(0.0, |c| c.total_dollars),
        cost.map_or(0.0, |c| c.cost_per_1k_queries),
        cost.map_or(0.0, |c| c.revocations as f64),
        cost.map_or(0.0, |c| c.stockouts as f64),
        cost.map_or(0.0, |c| c.spot_dollars),
        cost.map_or(0.0, |c| c.ondemand_dollars),
        stats.map_or(0.0, |st| st.plan_build_time_s),
        stats.map_or(0.0, |st| st.routing_cache_consults as f64),
        stats.map_or(0.0, |st| st.routing_cache_hits as f64),
        stats.map_or(0.0, |st| st.routing_warnings_total as f64),
        burn.map_or(0.0, |b| b.budget_consumed),
        burn.map_or(0.0, |b| b.worst_burn_rate),
        burn.map_or(0.0, |b| b.episodes.len() as f64),
        lane_wall_s,
        barrier_wait_s,
    ]
}

fn metric_values(point: &PointResult) -> [f64; 30] {
    summary_metrics(
        &point.result.summary,
        point.wall_s,
        point.cost.as_ref(),
        point.controller_stats.as_ref(),
        point.burn.as_ref(),
        0.0,
        0.0,
    )
}

/// One axis point of a sweep (every knob except the seed), aggregated across
/// the seeds that ran it.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisAggregate {
    /// The point's label with its ` seed=N` component removed.
    pub label: String,
    /// Seeds aggregated, in grid order.
    pub seeds: Vec<u64>,
    /// Per-metric means, ordered as [`SWEEP_METRICS`].
    pub mean: [f64; 30],
    /// Per-metric sample standard deviations (0 for a single seed), ordered as
    /// [`SWEEP_METRICS`].
    pub stddev: [f64; 30],
}

/// The grouping key of an axis point: everything the grid varies except the
/// seed. Controller and drop policy come from the point, the rest from its
/// config; floats key by bit pattern (grid values are exact, not computed).
type AxisKey = (String, u64, u64, usize, &'static str, &'static str);

fn axis_key(point: &RunPoint) -> AxisKey {
    (
        format!(
            "{:?}|{:?}|{}|{}|{}|{}",
            point.controller,
            point.drop_policy,
            point.cfg.spot,
            point.cfg.revoke_per_hour.to_bits(),
            point.cfg.stockout.to_bits(),
            point.cfg.provisioner.name(),
        ),
        point.cfg.slo_ms.to_bits(),
        point.cfg.peak_qps.to_bits(),
        point.cfg.cluster_size,
        point.cfg.links.name(),
        point.cfg.elastic.name(),
    )
}

fn strip_seed(label: &str) -> String {
    label
        .split_whitespace()
        .filter(|part| !part.starts_with("seed="))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Group a sweep's results by axis point (all knobs except the seed) and
/// compute per-metric mean and sample standard deviation across seeds.
/// `points` and `results` must be the sweep's grid and its results in the same
/// (input) order — which is what [`crate::runner::Runner::run`] guarantees.
pub fn aggregate_sweep(points: &[RunPoint], results: &[PointResult]) -> Vec<AxisAggregate> {
    assert_eq!(points.len(), results.len(), "one result per grid point");
    struct Group {
        key: AxisKey,
        label: String,
        seeds: Vec<u64>,
        rows: Vec<[f64; 30]>,
    }
    let mut groups: Vec<Group> = Vec::new();
    for (point, result) in points.iter().zip(results) {
        let key = axis_key(point);
        let values = metric_values(result);
        match groups.iter_mut().find(|g| g.key == key) {
            Some(group) => {
                group.seeds.push(point.cfg.seed);
                group.rows.push(values);
            }
            None => groups.push(Group {
                key,
                label: strip_seed(&point.label),
                seeds: vec![point.cfg.seed],
                rows: vec![values],
            }),
        }
    }
    groups
        .into_iter()
        .map(
            |Group {
                 label, seeds, rows, ..
             }| {
                let n = rows.len() as f64;
                let mut mean = [0.0; 30];
                let mut stddev = [0.0; 30];
                for row in &rows {
                    for (m, v) in mean.iter_mut().zip(row) {
                        *m += v / n;
                    }
                }
                if rows.len() > 1 {
                    for row in &rows {
                        for ((sd, v), m) in stddev.iter_mut().zip(row).zip(&mean) {
                            *sd += (v - m) * (v - m) / (n - 1.0);
                        }
                    }
                    for sd in &mut stddev {
                        *sd = sd.sqrt();
                    }
                }
                AxisAggregate {
                    label,
                    seeds,
                    mean,
                    stddev,
                }
            },
        )
        .collect()
}

/// Render one CSV field, quoting only when the content requires it.
pub(crate) fn csv_field(out: &mut String, field: &str) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

pub(crate) fn csv_row(out: &mut String, fields: &[String]) {
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        csv_field(out, field);
    }
    out.push('\n');
}

/// Render a sweep as one flat CSV: a `stat=point` row per grid point (with its
/// seed), then — when the seed axis has more than one value — `stat=mean` and
/// `stat=stddev` rows per axis point with the seed column empty. Uniform
/// columns throughout, so a plotting script filters on `stat` and is done.
pub fn sweep_csv(scenario: &str, points: &[RunPoint], results: &[PointResult]) -> String {
    assert_eq!(points.len(), results.len(), "one result per grid point");
    let mut out = String::new();
    let mut header: Vec<String> = [
        "scenario",
        "stat",
        "label",
        "controller",
        "pipeline",
        "trace",
        "slo_ms",
        "peak_qps",
        "base_qps",
        "cluster",
        "links",
        "elastic",
        "spot",
        "revoke",
        "stockout",
        "provisioner",
        "seed",
        "arrivals",
    ]
    .map(str::to_string)
    .to_vec();
    header.extend(SWEEP_METRICS.map(str::to_string));
    csv_row(&mut out, &header);

    let axis_fields = |point: &RunPoint| -> Vec<String> {
        vec![
            point.controller.name().to_string(),
            point.pipeline.name().to_string(),
            point.trace.name().to_string(),
            format!("{}", point.cfg.slo_ms),
            format!("{}", point.cfg.peak_qps),
            format!("{}", point.cfg.base_qps),
            format!("{}", point.cfg.cluster_size),
            point.cfg.links.name().to_string(),
            point.cfg.elastic.name().to_string(),
            format!("{}", point.cfg.spot),
            format!("{}", point.cfg.revoke_per_hour),
            format!("{}", point.cfg.stockout),
            point.cfg.provisioner.name().to_string(),
        ]
    };

    for (point, result) in points.iter().zip(results) {
        let mut row = vec![
            scenario.to_string(),
            "point".to_string(),
            point.label.clone(),
        ];
        row.extend(axis_fields(point));
        row.push(format!("{}", point.cfg.seed));
        row.push(format!("{}", result.arrivals));
        row.extend(metric_values(result).map(|v| format!("{v}")));
        csv_row(&mut out, &row);
        // Multi-pipeline points additionally emit one `stat=pipeline` row per
        // pipeline on the cluster, same columns (wall_s is the shared run's).
        for lane in &result.per_pipeline {
            let s = &lane.summary;
            let mut row = vec![
                scenario.to_string(),
                "pipeline".to_string(),
                format!("{}/{}", point.label, lane.name),
            ];
            row.extend(axis_fields(point));
            row.push(format!("{}", point.cfg.seed));
            row.push(format!("{}", s.total_arrivals));
            // Cost is cluster-level; per-pipeline rows carry zeros.
            row.extend(
                summary_metrics(
                    s,
                    result.wall_s,
                    None,
                    lane.controller_stats.as_ref(),
                    lane.burn.as_ref(),
                    lane.lane_wall_s,
                    lane.barrier_wait_s,
                )
                .map(|v| format!("{v}")),
            );
            csv_row(&mut out, &row);
        }
    }

    let multi_seed = {
        let mut seeds: Vec<u64> = points.iter().map(|p| p.cfg.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        seeds.len() > 1
    };
    if multi_seed {
        let aggregates = aggregate_sweep(points, results);
        // The representative point of each group carries the axis columns.
        for agg in &aggregates {
            let rep = points
                .iter()
                .position(|p| strip_seed(&p.label) == agg.label)
                .expect("aggregate label comes from a point");
            for (stat, values) in [("mean", &agg.mean), ("stddev", &agg.stddev)] {
                let mut row = vec![scenario.to_string(), stat.to_string(), agg.label.clone()];
                row.extend(axis_fields(&points[rep]));
                row.push(String::new()); // seed
                row.push(String::new()); // arrivals
                row.extend(values.iter().map(|v| format!("{v}")));
                csv_row(&mut out, &row);
            }
        }
    }
    out
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let mut obj = Json::object();
        obj.push("name", "traffic".into())
            .push("count", 3u64.into())
            .push("ratio", 0.25.into())
            .push("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let text = obj.render();
        assert!(text.contains("\"name\": \"traffic\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.25"));
        assert!(text.contains("true"));
        assert!(text.ends_with("}\n"));
        assert_eq!(obj.get("count"), Some(&Json::UInt(3)));
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        let mut out = String::new();
        s.write(&mut out, 0);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn numbers_round_trip_shortest_form() {
        assert_eq!(Json::Num(17802298.119249).render(), "17802298.119249\n");
        assert_eq!(Json::Num(1.0).render(), "1.0\n");
        assert_eq!(Json::UInt(u64::MAX).render(), format!("{}\n", u64::MAX));
    }

    #[test]
    fn empty_collections_render_compactly() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::object().render(), "{}\n");
    }

    #[test]
    fn csv_fields_escape_only_when_needed() {
        let mut out = String::new();
        csv_row(
            &mut out,
            &[
                "plain".to_string(),
                "with,comma".to_string(),
                "with\"quote".to_string(),
            ],
        );
        assert_eq!(out, "plain,\"with,comma\",\"with\"\"quote\"\n");
    }

    fn tiny_sweep() -> (Vec<RunPoint>, Vec<PointResult>) {
        use crate::scenario::{ControllerSpec, PipelineSpec};
        use crate::ExperimentConfig;
        let cfg = ExperimentConfig {
            duration_s: 10,
            peak_qps: 60.0,
            base_qps: 60.0,
            drain_s: 5.0,
            ..ExperimentConfig::default()
        };
        let points: Vec<RunPoint> = [41u64, 42]
            .into_iter()
            .map(|seed| RunPoint {
                label: format!("loki-greedy seed={seed}"),
                pipeline: PipelineSpec::Tiny,
                trace: loki_workload::TraceSpec::Constant,
                controller: ControllerSpec::LokiGreedy,
                drop_policy: None,
                multi: None,
                cfg: ExperimentConfig {
                    seed,
                    ..cfg.clone()
                },
            })
            .collect();
        let results: Vec<PointResult> = points.iter().map(|p| p.execute()).collect();
        (points, results)
    }

    #[test]
    fn cross_seed_aggregation_means_and_deviations() {
        let (points, results) = tiny_sweep();
        let aggs = aggregate_sweep(&points, &results);
        assert_eq!(aggs.len(), 1, "one axis point across two seeds");
        let agg = &aggs[0];
        assert_eq!(agg.label, "loki-greedy");
        assert_eq!(agg.seeds, vec![41, 42]);
        // Mean of on_time is the arithmetic mean of the two runs.
        let on_time: Vec<f64> = results
            .iter()
            .map(|r| r.result.summary.total_on_time as f64)
            .collect();
        let mean = (on_time[0] + on_time[1]) / 2.0;
        assert!((agg.mean[0] - mean).abs() < 1e-9);
        // Sample stddev of two points: |a - b| / sqrt(2).
        let sd = (on_time[0] - on_time[1]).abs() / 2f64.sqrt();
        assert!((agg.stddev[0] - sd).abs() < 1e-9);
    }

    #[test]
    fn sweep_csv_has_point_and_aggregate_rows() {
        let (points, results) = tiny_sweep();
        let csv = sweep_csv("unit", &points, &results);
        let lines: Vec<&str> = csv.lines().collect();
        // header + 2 points + mean + stddev
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("scenario,stat,label,controller,"));
        let columns = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
        }
        assert!(lines[1].contains(",point,") && lines[1].contains(",41,"));
        assert!(lines[2].contains(",point,") && lines[2].contains(",42,"));
        assert!(lines[3].contains(",mean,loki-greedy,"));
        assert!(lines[4].contains(",stddev,loki-greedy,"));
    }

    #[test]
    fn single_seed_sweep_csv_skips_aggregates() {
        let (points, results) = tiny_sweep();
        let csv = sweep_csv("unit", &points[..1], &results[..1]);
        assert_eq!(csv.lines().count(), 2, "header + one point, no aggregates");
    }
}
