//! Parallel execution of independent simulation runs.
//!
//! The bounded scoped-thread pool itself lives in `loki_sim::par` (the engine's
//! sharded lane execution uses the same one); this module re-exports it and adds
//! the [`Runner`] that drives batches of bench points through it. Each
//! [`crate::scenario::RunPoint`] is fully self-contained (it builds its own
//! graph, trace, and controller), which is what makes parallel summaries
//! bit-identical to serial ones.

use crate::scenario::{PointResult, RunPoint};

pub use loki_sim::par::par_map;

/// Executes batches of [`RunPoint`]s, serially or across a bounded thread pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    /// Number of worker threads; `1` means inline serial execution.
    pub jobs: usize,
}

impl Runner {
    /// Strictly serial execution on the calling thread.
    pub fn serial() -> Self {
        Self { jobs: 1 }
    }

    /// A pool with an explicit worker count (clamped to at least one).
    pub fn with_jobs(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The default parallel runner: one worker per available core, and at least two
    /// so multi-point batches always exercise the pool.
    pub fn auto() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self { jobs: cores.max(2) }
    }

    /// Execute every point, returning results in input order.
    pub fn run(&self, points: Vec<RunPoint>) -> Vec<PointResult> {
        par_map(points, self.jobs, |p| p.execute())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order_and_runs_everything() {
        let items: Vec<usize> = (0..37).collect();
        let calls = AtomicUsize::new(0);
        let out = par_map(items.clone(), 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 3
        });
        assert_eq!(calls.load(Ordering::Relaxed), 37);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_maps_agree() {
        let items: Vec<u64> = (0..16).collect();
        let serial = par_map(items.clone(), 1, |i| i.wrapping_mul(0x9e3779b9) >> 7);
        let parallel = par_map(items, 5, |i| i.wrapping_mul(0x9e3779b9) >> 7);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pool_sizes_clamp_sensibly() {
        assert_eq!(Runner::with_jobs(0).jobs, 1);
        assert_eq!(Runner::serial().jobs, 1);
        assert!(Runner::auto().jobs >= 2);
        // More workers than items must not deadlock or drop work.
        let out = par_map(vec![1, 2], 16, |i| i + 1);
        assert_eq!(out, vec![2, 3]);
        let empty: Vec<i32> = par_map(Vec::<i32>::new(), 4, |i| i);
        assert!(empty.is_empty());
    }
}
