//! The declarative Scenario subsystem.
//!
//! Every experiment of the Loki evaluation is described by data rather than by a
//! dedicated binary: a [`Scenario`] names a pipeline ([`PipelineSpec`]), a workload
//! ([`loki_workload::TraceSpec`]), a [`ScenarioKind`] (which figure archetype it
//! reproduces), and default [`ExperimentConfig`] knobs. Sweeps construct fresh
//! controllers per grid point through the [`ControllerSpec`] factory enum, and every
//! simulator-driven point is a self-contained [`RunPoint`] that the parallel
//! [`crate::runner::Runner`] can execute on any thread.

use crate::{ElasticMode, ExperimentConfig, LinkProfile};
use loki_baselines::{InferLineController, ProteusController};
use loki_core::{ControllerStats, LokiConfig, LokiController, ResourceManager};
use loki_pipeline::{zoo, PipelineGraph};
use loki_sim::{
    analyze_burn, AllocationPlan, BurnConfig, BurnReport, CompiledPlan, Controller, CostSummary,
    DropPolicy, IntervalMetrics, LinkDelayModel, MultiPipeline, MultiSimConfig, MultiSimulation,
    ObservedState, ResourceArbiter, RouteMode, RunSummary, SimResult, Simulation, StaticPartition,
};
use loki_workload::{generate_arrivals, ArrivalProcess, Trace, TraceSpec};
use std::time::Instant;

/// The pipelines of the evaluation, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineSpec {
    /// The traffic-analysis pipeline (YOLO → EfficientNet car classification + VGG
    /// pedestrian branch).
    Traffic,
    /// The social-media pipeline (ResNet classification feeding CLIP-ViT captioning).
    Social,
    /// The two-task toy pipeline used by unit tests.
    Tiny,
}

impl PipelineSpec {
    /// All pipeline specs, in registry order.
    pub const ALL: [PipelineSpec; 3] = [
        PipelineSpec::Traffic,
        PipelineSpec::Social,
        PipelineSpec::Tiny,
    ];

    /// Stable name used by the CLI and reports.
    pub fn name(self) -> &'static str {
        match self {
            PipelineSpec::Traffic => "traffic",
            PipelineSpec::Social => "social",
            PipelineSpec::Tiny => "tiny",
        }
    }

    /// Look a spec up by its [`PipelineSpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Build the pipeline graph for a latency SLO.
    pub fn build(self, slo_ms: f64) -> PipelineGraph {
        match self {
            PipelineSpec::Traffic => zoo::traffic_analysis_pipeline(slo_ms),
            PipelineSpec::Social => zoo::social_media_pipeline(slo_ms),
            PipelineSpec::Tiny => zoo::tiny_pipeline(slo_ms),
        }
    }
}

/// Factory enum for the serving systems under comparison. Sweeps construct a fresh
/// controller per grid point (controllers carry run state and must never be shared
/// between runs), so the spec — not the controller — is what grids enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerSpec {
    /// Loki with the greedy Resource-Manager allocator (the paper's deployed setup).
    LokiGreedy,
    /// Loki with the exact MILP allocator (slower; used by the allocator ablation).
    LokiMilp,
    /// InferLine-style pipeline-aware hardware scaling, fixed variants.
    InferLine,
    /// Proteus-style pipeline-agnostic accuracy scaling.
    Proteus,
}

impl ControllerSpec {
    /// All controller specs, in comparison order.
    pub const ALL: [ControllerSpec; 4] = [
        ControllerSpec::LokiGreedy,
        ControllerSpec::LokiMilp,
        ControllerSpec::InferLine,
        ControllerSpec::Proteus,
    ];

    /// The default three-system comparison of Figures 5/6.
    pub const COMPARISON: [ControllerSpec; 3] = [
        ControllerSpec::LokiGreedy,
        ControllerSpec::InferLine,
        ControllerSpec::Proteus,
    ];

    /// Stable name used by the CLI (`controllers=` axis) and sweep labels.
    pub fn name(self) -> &'static str {
        match self {
            ControllerSpec::LokiGreedy => "loki-greedy",
            ControllerSpec::LokiMilp => "loki-milp",
            ControllerSpec::InferLine => "inferline",
            ControllerSpec::Proteus => "proteus",
        }
    }

    /// The system label used in comparison tables and headline ratios ("loki",
    /// "inferline", "proteus"); distinct Loki allocators share the "loki" label
    /// only for the greedy default.
    pub fn system_label(self) -> &'static str {
        match self {
            ControllerSpec::LokiGreedy => "loki",
            ControllerSpec::LokiMilp => "loki-milp",
            ControllerSpec::InferLine => "inferline",
            ControllerSpec::Proteus => "proteus",
        }
    }

    /// Look a spec up by its [`ControllerSpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Construct a fresh controller for a pipeline, optionally overriding the runtime
    /// drop policy (used by the Figure 7 ablation). `links` is the cluster's per-link
    /// delay model: Loki mirrors it into its planner config, the baselines budget
    /// with its worst-case hop (they only know one comm latency), so every system
    /// plans against the interconnect it will actually be simulated on.
    pub fn build(
        self,
        graph: &PipelineGraph,
        drop_policy: Option<DropPolicy>,
        links: &LinkDelayModel,
        route: RouteMode,
    ) -> AnyController {
        match self {
            ControllerSpec::LokiGreedy => {
                let mut config = LokiConfig::with_greedy();
                if let Some(policy) = drop_policy {
                    config.drop_policy = policy;
                }
                config.link_delays = links.clone();
                config.route = route;
                AnyController::Loki(LokiController::new(graph.clone(), config))
            }
            ControllerSpec::LokiMilp => {
                let mut config = LokiConfig::with_milp();
                if let Some(policy) = drop_policy {
                    config.drop_policy = policy;
                }
                config.link_delays = links.clone();
                config.route = route;
                AnyController::Loki(LokiController::new(graph.clone(), config))
            }
            ControllerSpec::InferLine => {
                let mut controller = match drop_policy {
                    Some(policy) => InferLineController::with_drop_policy(graph.clone(), policy),
                    None => InferLineController::with_defaults(graph.clone()),
                };
                let comm = links.max_hop_ms(controller.config().comm_latency_ms);
                controller.config_mut().comm_latency_ms = comm;
                AnyController::InferLine(controller)
            }
            ControllerSpec::Proteus => {
                let mut controller = match drop_policy {
                    Some(policy) => ProteusController::with_drop_policy(graph.clone(), policy),
                    None => ProteusController::with_defaults(graph.clone()),
                };
                let comm = links.max_hop_ms(controller.config().comm_latency_ms);
                controller.config_mut().comm_latency_ms = comm;
                AnyController::Proteus(controller)
            }
        }
    }
}

/// A controller built by [`ControllerSpec::build`]: static dispatch over the three
/// concrete controller types behind one value the runner can own. One controller
/// exists per in-flight run, so the size skew between variants is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum AnyController {
    Loki(LokiController),
    InferLine(InferLineController),
    Proteus(ProteusController),
}

impl AnyController {
    /// Control-plane runtime statistics, when the underlying controller tracks them.
    pub fn controller_stats(&self) -> Option<&ControllerStats> {
        match self {
            AnyController::Loki(c) => Some(&c.stats),
            _ => None,
        }
    }
}

impl Controller for AnyController {
    fn name(&self) -> &str {
        match self {
            AnyController::Loki(c) => c.name(),
            AnyController::InferLine(c) => c.name(),
            AnyController::Proteus(c) => c.name(),
        }
    }

    fn control_interval_s(&self) -> f64 {
        match self {
            AnyController::Loki(c) => c.control_interval_s(),
            AnyController::InferLine(c) => c.control_interval_s(),
            AnyController::Proteus(c) => c.control_interval_s(),
        }
    }

    fn routing_interval_s(&self) -> f64 {
        match self {
            AnyController::Loki(c) => c.routing_interval_s(),
            AnyController::InferLine(c) => c.routing_interval_s(),
            AnyController::Proteus(c) => c.routing_interval_s(),
        }
    }

    fn plan(&mut self, observed: &ObservedState<'_>) -> Option<AllocationPlan> {
        match self {
            AnyController::Loki(c) => c.plan(observed),
            AnyController::InferLine(c) => c.plan(observed),
            AnyController::Proteus(c) => c.plan(observed),
        }
    }

    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<CompiledPlan> {
        match self {
            AnyController::Loki(c) => c.routing(observed),
            AnyController::InferLine(c) => c.routing(observed),
            AnyController::Proteus(c) => c.routing(observed),
        }
    }
}

/// How the shared cluster is arbitrated in a multi-pipeline scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiMode {
    /// The cluster-level [`ResourceManager`]: demand/SLO-weighted partitions,
    /// rebalanced at epoch cadence with hysteresis.
    Contended,
    /// A naive fixed 50/50 (1/N) split — the baseline the contended manager
    /// must beat under skewed demand.
    StaticEven,
    /// A fixed split proportional to each pipeline's *true* mean offered load
    /// (an oracle no online system has).
    OracleSplit,
}

impl MultiMode {
    /// Stable name used in labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            MultiMode::Contended => "contended",
            MultiMode::StaticEven => "static-even",
            MultiMode::OracleSplit => "oracle-split",
        }
    }

    /// Build the arbiter for this mode. `offered_qps` is each pipeline's mean
    /// offered load (only the oracle split reads it).
    pub fn arbiter(self, offered_qps: &[f64]) -> Box<dyn ResourceArbiter> {
        match self {
            MultiMode::Contended => Box::new(ResourceManager::default()),
            MultiMode::StaticEven => Box::new(StaticPartition::even(offered_qps.len())),
            MultiMode::OracleSplit => Box::new(StaticPartition::with_shares(
                "oracle-split",
                offered_qps.to_vec(),
            )),
        }
    }
}

/// One pipeline of a multi-pipeline scenario, parameterized against the
/// experiment's shared knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLane {
    /// Lane label in reports ("traffic", "social", "zipf03").
    pub name: String,
    pub pipeline: PipelineSpec,
    pub trace: TraceSpec,
    /// Fraction of the experiment's `peak_qps`/`base_qps` this lane carries.
    pub demand_share: f64,
    /// Multiplier on the experiment's `slo_ms` for this lane.
    pub slo_scale: f64,
}

/// The multi-pipeline half of a [`RunPoint`]: which pipelines share the
/// cluster and how it is arbitrated.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSpec {
    pub mode: MultiMode,
    pub lanes: Vec<MultiLane>,
}

/// The pipeline mix of the `multi_` scenario family: the traffic-analysis
/// pipeline carrying the bulk of the demand on the diurnal trace, plus the
/// social-media pipeline at a tenth of the demand on the bursty trace with a
/// 20% looser SLO — the skewed mix under which a 50/50 split starves traffic
/// while social idles.
pub fn traffic_social_lanes() -> Vec<MultiLane> {
    vec![
        MultiLane {
            name: "traffic".to_string(),
            pipeline: PipelineSpec::Traffic,
            trace: TraceSpec::AzureDiurnal,
            demand_share: 1.0,
            slo_scale: 1.0,
        },
        MultiLane {
            name: "social".to_string(),
            pipeline: PipelineSpec::Social,
            trace: TraceSpec::TwitterBursty,
            demand_share: 0.1,
            slo_scale: 1.2,
        },
    ]
}

/// A 16-tenant mix with Zipf-distributed popularity: lane `i` carries a
/// `1/(i+1)` share of the demand (normalized by the 16th harmonic number, so
/// the shares sum to 1), alternating traffic-analysis lanes on the diurnal
/// trace with social-media lanes on the bursty trace, the latter with a 20%
/// looser SLO. The long-tail skew — lane 0 alone carries ~30% of the load —
/// is what exercises both the contended arbiter and the sharded engine's
/// barrier-wait accounting (the head lanes dominate each epoch's wall time).
pub fn zipf_lanes() -> Vec<MultiLane> {
    const LANES: usize = 16;
    let harmonic: f64 = (1..=LANES).map(|k| 1.0 / k as f64).sum();
    (0..LANES)
        .map(|i| {
            let social = i % 2 == 1;
            MultiLane {
                name: format!("zipf{i:02}"),
                pipeline: if social {
                    PipelineSpec::Social
                } else {
                    PipelineSpec::Traffic
                },
                trace: if social {
                    TraceSpec::TwitterBursty
                } else {
                    TraceSpec::AzureDiurnal
                },
                demand_share: 1.0 / ((i + 1) as f64 * harmonic),
                slo_scale: if social { 1.2 } else { 1.0 },
            }
        })
        .collect()
}

/// One self-contained simulator run: everything needed to build the pipeline(s), the
/// workload, and fresh controllers on any thread. Equality compares the full spec,
/// which is what makes grid enumeration testable.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPoint {
    /// Label used in tables, sweep output, and JSON reports.
    pub label: String,
    pub pipeline: PipelineSpec,
    pub trace: TraceSpec,
    pub controller: ControllerSpec,
    /// Override of the controller's runtime drop policy (Figure 7 ablation).
    pub drop_policy: Option<DropPolicy>,
    /// When set, this point runs several pipelines on one shared cluster
    /// (`pipeline`/`trace` above are ignored in favour of the lanes).
    pub multi: Option<MultiSpec>,
    pub cfg: ExperimentConfig,
}

/// One pipeline's summary within a multi-pipeline point.
#[derive(Debug, Clone)]
pub struct PipelineSummary {
    pub name: String,
    pub summary: RunSummary,
    /// Wall-clock seconds the lane's execution shard spent processing events
    /// (host time; from the best run when `runs > 1`).
    pub lane_wall_s: f64,
    /// Estimated wall-clock seconds the lane's shard spent waiting on slower
    /// shards at epoch barriers — the sharded engine's load-imbalance signal.
    pub barrier_wait_s: f64,
    /// The lane's control-plane statistics, when its controller tracks them
    /// (threaded out through `MultiSimulation::into_pipelines`).
    pub controller_stats: Option<ControllerStats>,
    /// The lane's engine self-profile (host seconds per dispatch phase) —
    /// `Some` only for `profile=true` runs, next to `lane_wall_s`.
    pub profile: Option<loki_sim::PhaseProfile>,
    /// The lane's per-interval metrics series (simulated time; feeds the
    /// timeline export's per-lane rows).
    pub intervals: Vec<IntervalMetrics>,
    /// Per-interval end-to-end latency histogram deltas (`timeline=true` runs
    /// only) — windowed percentiles are exact, not approximations.
    pub window: Option<Vec<loki_sim::Histogram>>,
    /// The lane's SLO error-budget analysis against its own interval series
    /// (cluster journal shared for causal attribution).
    pub burn: Option<BurnReport>,
}

/// Cluster-arbitration statistics of a multi-pipeline point.
#[derive(Debug, Clone)]
pub struct MultiStats {
    /// The arbiter that partitioned the cluster.
    pub arbiter: String,
    /// Rebalance ticks that moved at least one worker.
    pub rebalances: u64,
    /// Workers moved across pipelines over the run.
    pub migrations: u64,
}

/// The outcome of executing one [`RunPoint`].
#[derive(Debug, Clone)]
pub struct PointResult {
    pub label: String,
    /// Per-interval metrics and whole-run summary (bit-identical across repeated
    /// executions of the same point — the determinism the figure harness rests
    /// on). For multi-pipeline points this is the cluster-level aggregate.
    pub result: SimResult,
    /// Best simulation wall-clock over `cfg.runs` repetitions, in seconds.
    pub wall_s: f64,
    /// Number of generated root arrivals (all pipelines).
    pub arrivals: usize,
    /// Control-plane statistics of the best run, when the controller tracks
    /// them. For multi-pipeline points this is the sum over lanes (per-lane
    /// stats are on [`PointResult::per_pipeline`]).
    pub controller_stats: Option<ControllerStats>,
    /// Per-pipeline summaries (empty for single-pipeline points).
    pub per_pipeline: Vec<PipelineSummary>,
    /// Cluster-arbitration statistics (multi-pipeline points only).
    pub multi_stats: Option<MultiStats>,
    /// Fleet cost accounting (elastic points only).
    pub cost: Option<CostSummary>,
    /// SLO error-budget analysis of the point's (cluster-level) interval
    /// series: budget consumed, worst burn rate, and causally attributed burn
    /// episodes. Always computed — attribution falls back to the interval drop
    /// counters when the run carries no journal.
    pub burn: Option<BurnReport>,
}

impl RunPoint {
    /// The workload trace for this point. The Twitter-like trace perturbs the seed
    /// (matching the original harness) so paired traffic/social runs with the same
    /// seed do not share an arrival pattern.
    pub fn build_trace(&self) -> Trace {
        self.trace.build(
            crate::trace_seed(self.trace, self.cfg.seed),
            self.cfg.duration_s,
            self.cfg.base_qps,
            self.cfg.peak_qps,
        )
    }

    /// Execute the point: build graph, trace, and arrivals, run the simulator
    /// `cfg.runs` times (keeping the best wall-clock, the standard way to suppress
    /// scheduler noise in throughput numbers), and return the result.
    pub fn execute(&self) -> PointResult {
        if let Some(multi) = &self.multi {
            return self.execute_multi(multi);
        }
        let graph = self.pipeline.build(self.cfg.slo_ms);
        let trace = self.build_trace();
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, self.cfg.seed);
        let links = self.cfg.links.to_model();
        let mut config = crate::sim_config(&self.cfg, &trace);
        config.elastic = crate::elastic_sim_config(&self.cfg, graph.num_tasks(), trace.mean_qps());
        let runs = self.cfg.runs.max(1);
        let mut best_wall_s = f64::INFINITY;
        let mut result = None;
        let mut controller_stats = None;
        for _ in 0..runs {
            let controller =
                self.controller
                    .build(&graph, self.drop_policy, &links, self.cfg.route);
            let mut sim = Simulation::new(&graph, config.clone(), controller);
            let start = Instant::now();
            let run = match self.cfg.elastic {
                ElasticMode::Autoscale => {
                    let mut policy =
                        crate::provisioner_policy(&self.cfg, graph.num_tasks(), trace.mean_qps());
                    sim.run_elastic(&arrivals, &mut *policy)
                }
                _ => sim.run(&arrivals),
            };
            let wall_s = start.elapsed().as_secs_f64();
            if wall_s < best_wall_s {
                best_wall_s = wall_s;
                controller_stats = sim.into_controller().controller_stats().cloned();
            }
            result = Some(run);
        }
        let result = result.expect("runs >= 1");
        let burn = analyze_burn(
            &result.intervals,
            config.metrics_interval_s,
            result.journal.as_ref(),
            &BurnConfig::default(),
        );
        PointResult {
            label: self.label.clone(),
            cost: result.cost.clone(),
            burn: Some(burn),
            result,
            wall_s: best_wall_s,
            arrivals: arrivals.len(),
            controller_stats,
            per_pipeline: Vec::new(),
            multi_stats: None,
        }
    }

    /// Execute a multi-pipeline point: every lane's pipeline, trace, and
    /// arrivals are built from the shared experiment knobs (scaled by the
    /// lane's `demand_share`/`slo_scale`), fresh controllers are constructed
    /// per lane, and one engine run serves them all on the shared cluster
    /// under the mode's arbiter.
    fn execute_multi(&self, spec: &MultiSpec) -> PointResult {
        assert!(
            !spec.lanes.is_empty(),
            "multi point needs at least one lane"
        );
        let cfg = &self.cfg;
        let links = cfg.links.to_model();
        let graphs: Vec<PipelineGraph> = spec
            .lanes
            .iter()
            .map(|lane| lane.pipeline.build(cfg.slo_ms * lane.slo_scale))
            .collect();
        let traces: Vec<Trace> = spec
            .lanes
            .iter()
            .map(|lane| {
                lane.trace.build(
                    crate::trace_seed(lane.trace, cfg.seed),
                    cfg.duration_s,
                    cfg.base_qps * lane.demand_share,
                    cfg.peak_qps * lane.demand_share,
                )
            })
            .collect();
        // Lane 0 keeps the experiment seed (comparable with single-pipeline
        // runs); later lanes perturb it so co-served frontends do not share an
        // arrival pattern.
        let arrivals: Vec<Vec<f64>> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                generate_arrivals(
                    trace,
                    ArrivalProcess::Poisson,
                    cfg.seed.wrapping_add(i as u64 * 7919),
                )
            })
            .collect();
        let offered: Vec<f64> = traces.iter().map(Trace::mean_qps).collect();
        let total_arrivals: usize = arrivals.iter().map(Vec::len).sum();
        // Elastic sizing for the shared cluster: the combined footprint and
        // offered load across lanes.
        let total_tasks: usize = graphs.iter().map(|g| g.num_tasks()).sum();
        let offered_total: f64 = offered.iter().sum();

        let runs = cfg.runs.max(1);
        let mut best_wall_s = f64::INFINITY;
        let mut outcome = None;
        let mut lane_stats: Vec<Option<ControllerStats>> = vec![None; spec.lanes.len()];
        let mut lane_walls: Vec<(f64, f64)> = vec![(0.0, 0.0); spec.lanes.len()];
        for _ in 0..runs {
            let mut config = crate::sim_config(cfg, &traces[0]);
            config.initial_demand_hint = None;
            config.elastic = crate::elastic_sim_config(cfg, total_tasks, offered_total);
            let mut sim: MultiSimulation<'_, AnyController> =
                MultiSimulation::new(MultiSimConfig {
                    sim: config,
                    jobs: cfg.jobs.max(1),
                });
            for (i, lane) in spec.lanes.iter().enumerate() {
                sim.add_pipeline(MultiPipeline {
                    name: lane.name.clone(),
                    graph: &graphs[i],
                    controller: self.controller.build(
                        &graphs[i],
                        self.drop_policy,
                        &links,
                        cfg.route,
                    ),
                    arrivals_s: arrivals[i].clone(),
                    initial_demand_hint: Some(traces[i].qps_at(0).max(1.0)),
                });
            }
            let mut arbiter = spec.mode.arbiter(&offered);
            let start = Instant::now();
            let run = match cfg.elastic {
                ElasticMode::Autoscale => {
                    let mut policy = crate::provisioner_policy(cfg, total_tasks, offered_total);
                    sim.run_elastic(&mut *arbiter, &mut *policy)
                }
                _ => sim.run(&mut *arbiter),
            };
            let wall_s = start.elapsed().as_secs_f64();
            if wall_s < best_wall_s {
                best_wall_s = wall_s;
                // Thread each lane's control-plane statistics and shard
                // timings out of the best run (Section 6.5 runtime analysis
                // for contended serving).
                lane_walls = run
                    .pipelines
                    .iter()
                    .map(|p| (p.lane_wall_s, p.barrier_wait_s))
                    .collect();
                lane_stats = sim
                    .into_pipelines()
                    .iter()
                    .map(|p| p.controller.controller_stats().cloned())
                    .collect();
            }
            outcome = Some(run);
        }
        let outcome = outcome.expect("runs >= 1");
        // The point-level stats aggregate the lanes (the shared run has one
        // control-plane cost, paid across every lane's controller).
        let controller_stats = lane_stats.iter().flatten().cloned().reduce(|mut a, b| {
            a.allocations += b.allocations;
            a.allocation_time_s += b.allocation_time_s;
            a.last_allocation_time_s = a.last_allocation_time_s.max(b.last_allocation_time_s);
            a.routings += b.routings;
            a.routing_time_s += b.routing_time_s;
            a.plan_build_time_s += b.plan_build_time_s;
            a.routing_cache_consults += b.routing_cache_consults;
            a.routing_cache_hits += b.routing_cache_hits;
            a.routing_warnings.extend(b.routing_warnings);
            a.routing_warnings_total += b.routing_warnings_total;
            a
        });
        let result = outcome.aggregate(cfg.cluster_size);
        // Burn analysis: the cluster series against the cluster journal, and
        // each lane's own series against the same (shared) journal — one
        // revocation storm can burn several lanes' budgets at once.
        let interval_s = outcome.metrics_interval_s;
        let burn = analyze_burn(
            &result.intervals,
            interval_s,
            result.journal.as_ref(),
            &BurnConfig::default(),
        );
        PointResult {
            label: self.label.clone(),
            cost: outcome.cost.clone(),
            result,
            wall_s: best_wall_s,
            arrivals: total_arrivals,
            controller_stats,
            per_pipeline: outcome
                .pipelines
                .iter()
                .zip(&lane_stats)
                .zip(&lane_walls)
                .map(
                    |((p, stats), &(lane_wall_s, barrier_wait_s))| PipelineSummary {
                        name: p.name.clone(),
                        summary: p.result.summary.clone(),
                        lane_wall_s,
                        barrier_wait_s,
                        controller_stats: stats.clone(),
                        profile: p.result.profile,
                        intervals: p.result.intervals.clone(),
                        window: p.result.window.clone(),
                        burn: Some(analyze_burn(
                            &p.result.intervals,
                            interval_s,
                            outcome.journal.as_ref(),
                            &BurnConfig::default(),
                        )),
                    },
                )
                .collect(),
            multi_stats: Some(MultiStats {
                arbiter: outcome.arbiter.clone(),
                rebalances: outcome.rebalances,
                migrations: outcome.migrations,
            }),
            burn: Some(burn),
        }
    }
}

/// The pipeline mixes a multi-pipeline scenario can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneSet {
    /// The skewed two-lane traffic+social mix ([`traffic_social_lanes`]).
    TrafficSocial,
    /// Sixteen tenants with Zipf-distributed popularity ([`zipf_lanes`]) —
    /// the lane count that gives the sharded parallel engine real fan-out.
    Zipf16,
}

impl LaneSet {
    /// Build the lanes of this mix.
    pub fn lanes(self) -> Vec<MultiLane> {
        match self {
            LaneSet::TrafficSocial => traffic_social_lanes(),
            LaneSet::Zipf16 => zipf_lanes(),
        }
    }
}

/// Which figure archetype a scenario reproduces; decides how its report is computed
/// and rendered (see `crate::figures`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Three-system end-to-end comparison with stacked time series (Figures 5/6).
    Comparison,
    /// Loki accuracy/violation sensitivity across the SLO axis (Figure 8).
    SloSweep,
    /// Runtime drop-policy ablation (Figure 7).
    DropPolicyAblation,
    /// Analytic hardware→accuracy scaling phase diagram (Figure 1).
    PhaseDiagram,
    /// Accuracy/throughput trade-off table of the model zoo (Figure 3).
    TradeoffTable,
    /// Greedy vs MILP allocator ablation (Section 6.5 complement).
    AllocatorAblation,
    /// Multiplicative-factor awareness ablation (Section 2.2.1 failure mode).
    MultFactorAblation,
    /// MILP allocator runtime probe.
    MilpProbe,
    /// Headline capacity/efficiency numbers (abstract / Section 6.2).
    CapacityTable,
    /// Simulator-throughput measurement feeding `BENCH_sim.json`.
    Throughput,
    /// Several pipelines on one shared cluster under a resource arbiter
    /// (Section 7's contended multi-pipeline serving), over a named lane mix.
    MultiPipeline(MultiMode, LaneSet),
    /// Elastic provisioning comparison: the same workload under static-peak,
    /// static-mean, and autoscaled fleets, with cost accounting (the
    /// cost/SLO/accuracy trade-off the `elastic_` family studies).
    Elastic,
    /// Adversarial-cloud comparison: the same workload on an all-on-demand
    /// fleet vs a spot-enabled fleet under revocations, price dynamics, and
    /// stockouts, driven by the reactive and the forecasting provisioner
    /// (the `spot_` family).
    Spot,
}

/// A registered experiment: a named, declarative description of one figure or table
/// of the evaluation. `defaults` is a function pointer so the registry can stay a
/// `const` table while `ExperimentConfig` carries floats.
#[derive(Clone)]
pub struct Scenario {
    pub name: &'static str,
    pub title: &'static str,
    pub kind: ScenarioKind,
    pub pipeline: PipelineSpec,
    pub trace: TraceSpec,
    pub defaults: fn() -> ExperimentConfig,
}

impl Scenario {
    /// The default configuration of this scenario.
    pub fn config(&self) -> ExperimentConfig {
        (self.defaults)()
    }

    /// The multi-pipeline spec of a [`ScenarioKind::MultiPipeline`] scenario:
    /// its arbitration mode over its registered lane mix.
    pub fn multi_spec(&self) -> Option<MultiSpec> {
        match self.kind {
            ScenarioKind::MultiPipeline(mode, lane_set) => Some(MultiSpec {
                mode,
                lanes: lane_set.lanes(),
            }),
            _ => None,
        }
    }
}

/// The canonical [`RunPoint`] of a scenario: Loki-greedy controllers, default
/// drop policy, and the scenario's multi-pipeline spec when it has one. The
/// figure executors, sweeps, and `loki report` all start from this.
pub fn scenario_point(sc: &Scenario, cfg: &ExperimentConfig) -> RunPoint {
    RunPoint {
        label: sc.name.to_string(),
        pipeline: sc.pipeline,
        trace: sc.trace,
        controller: ControllerSpec::LokiGreedy,
        drop_policy: None,
        multi: sc.multi_spec(),
        cfg: cfg.clone(),
    }
}

fn base_cfg() -> ExperimentConfig {
    ExperimentConfig::default()
}

fn fig5_cfg() -> ExperimentConfig {
    ExperimentConfig::default()
}

fn fig6_cfg() -> ExperimentConfig {
    ExperimentConfig {
        peak_qps: 1200.0,
        base_qps: 60.0,
        ..ExperimentConfig::default()
    }
}

fn fig7_cfg() -> ExperimentConfig {
    ExperimentConfig {
        duration_s: 300,
        peak_qps: 1100.0,
        base_qps: 700.0,
        ..ExperimentConfig::default()
    }
}

fn fig8_cfg() -> ExperimentConfig {
    ExperimentConfig {
        duration_s: 600,
        ..ExperimentConfig::default()
    }
}

fn capacity_cfg() -> ExperimentConfig {
    ExperimentConfig {
        duration_s: 900,
        ..ExperimentConfig::default()
    }
}

fn smoke_cfg() -> ExperimentConfig {
    ExperimentConfig {
        duration_s: 30,
        peak_qps: 120.0,
        base_qps: 120.0,
        bucket_s: 10,
        drain_s: 10.0,
        ..ExperimentConfig::default()
    }
}

fn throughput_300qps_cfg() -> ExperimentConfig {
    ExperimentConfig {
        cluster_size: 20,
        duration_s: 30,
        peak_qps: 300.0,
        base_qps: 300.0,
        seed: 11,
        drain_s: 10.0,
        runs: 3,
        ..ExperimentConfig::default()
    }
}

fn throughput_1m_cfg() -> ExperimentConfig {
    ExperimentConfig {
        cluster_size: 100,
        duration_s: 500,
        peak_qps: 2000.0,
        base_qps: 2000.0,
        seed: 11,
        drain_s: 10.0,
        runs: 1,
        ..ExperimentConfig::default()
    }
}

fn stress_diurnal_day_cfg() -> ExperimentConfig {
    // A full day at diurnal rates averaging ~1150 QPS: ≈100M root arrivals.
    ExperimentConfig {
        cluster_size: 100,
        duration_s: 86_400,
        peak_qps: 2000.0,
        base_qps: 300.0,
        seed: 11,
        drain_s: 10.0,
        runs: 1,
        bucket_s: 3600,
        ..ExperimentConfig::default()
    }
}

fn traffic_hetnet_cfg() -> ExperimentConfig {
    // The 1M-arrival workload on a two-tier interconnect: PCIe-fast intra-class
    // hops (0.2 ms) mixed with 5 ms cross-class hops, which exercises the
    // calendar queue's out-of-order delivery scheduling at trace scale.
    ExperimentConfig {
        cluster_size: 100,
        duration_s: 500,
        peak_qps: 2000.0,
        base_qps: 2000.0,
        seed: 11,
        drain_s: 10.0,
        runs: 1,
        links: LinkProfile::TwoTier,
        ..ExperimentConfig::default()
    }
}

fn traffic_hetnet_linkaware_cfg() -> ExperimentConfig {
    // The two-tier hetnet workload with link-aware routing: same interconnect,
    // same trace, but the Load Balancer breaks equal-accuracy ties toward
    // intra-class (0.2 ms) hops instead of spreading across the 5 ms tier
    // boundary, and the allocator budgets the SLO with per-hop link delays
    // instead of taxing every hop at the worst-case 5 ms.
    ExperimentConfig {
        route: RouteMode::LinkAware,
        ..traffic_hetnet_cfg()
    }
}

fn elastic_diurnal_cfg() -> ExperimentConfig {
    // The fig5 diurnal day compressed to 10 minutes: a deep off-peak valley
    // (~80 QPS) against a 1500 QPS evening peak. A peak-sized static fleet
    // (20 workers) idles through most of the run — exactly the gap between
    // provision-for-peak cost and autoscaled cost the elastic_ family pins.
    ExperimentConfig {
        duration_s: 600,
        peak_qps: 1500.0,
        base_qps: 80.0,
        bucket_s: 60,
        elastic: ElasticMode::Autoscale,
        ..ExperimentConfig::default()
    }
}

fn spot_diurnal_cfg() -> ExperimentConfig {
    // The elastic diurnal day on an adversarial cloud: a spot twin of the
    // reference class at a deep discount, ~1 revocation per spot worker per
    // compressed day (6/h over the 600 s run), occasional stockouts, and the
    // stepwise spot-price schedule of `market_config`. The forecasting
    // provisioner is the canonical driver; the `spot_` executor compares it
    // against the reactive autoscaler and an all-on-demand fleet. The fleet
    // cap carries slack over the peak (28 against elastic_diurnal's
    // peak-sized 20): on an adversarial cloud the interesting question is
    // how a policy absorbs revocation dips and boot lag, and a cap pinned
    // exactly at peak demand drowns that signal in saturation noise every
    // policy suffers alike.
    ExperimentConfig {
        cluster_size: 28,
        duration_s: 600,
        peak_qps: 1500.0,
        base_qps: 80.0,
        bucket_s: 60,
        elastic: ElasticMode::Autoscale,
        spot: true,
        revoke_per_hour: 6.0,
        stockout: 0.05,
        provisioner: crate::ProvisionerKind::Forecast,
        ..ExperimentConfig::default()
    }
}

fn multi_cfg() -> ExperimentConfig {
    // The skewed-demand shared-cluster mix: the traffic pipeline peaks at
    // 1600 QPS — far past what half the cluster can serve even at minimum
    // accuracy (~880 QPS on 10 workers), so a 50/50 split collapses at peak —
    // while social carries a tenth of the load. The contended Resource
    // Manager re-weights the partition to roughly 17:3 and serves both.
    ExperimentConfig {
        cluster_size: 20,
        duration_s: 300,
        peak_qps: 1600.0,
        base_qps: 200.0,
        bucket_s: 60,
        drain_s: 20.0,
        ..ExperimentConfig::default()
    }
}

fn multi_zipf_cfg() -> ExperimentConfig {
    // Sixteen Zipf-popularity tenants on a 64-worker cluster: enough lanes
    // that the sharded engine has real fan-out (the tentpole throughput
    // scenario recorded with both serial and parallel wall-clock in
    // BENCH_sim.json), and enough demand skew that the contended arbiter's
    // partition tracks the 1/rank popularity curve.
    ExperimentConfig {
        cluster_size: 64,
        duration_s: 600,
        peak_qps: 1600.0,
        base_qps: 400.0,
        bucket_s: 60,
        drain_s: 10.0,
        ..ExperimentConfig::default()
    }
}

/// The scenario registry: every former figure/ablation/capacity binary, plus the
/// throughput scenarios tracked in `BENCH_sim.json`. `loki list` prints this table.
pub const REGISTRY: &[Scenario] = &[
    Scenario {
        name: "fig1_phases",
        title: "Phase diagram: hardware -> accuracy scaling transitions (Figure 1)",
        kind: ScenarioKind::PhaseDiagram,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: base_cfg,
    },
    Scenario {
        name: "fig3_tradeoff",
        title: "Accuracy/throughput trade-off per model family (Figure 3)",
        kind: ScenarioKind::TradeoffTable,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::Constant,
        defaults: base_cfg,
    },
    Scenario {
        name: "fig5_traffic",
        title: "End-to-end comparison, traffic pipeline, diurnal trace (Figure 5)",
        kind: ScenarioKind::Comparison,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: fig5_cfg,
    },
    Scenario {
        name: "fig6_social",
        title: "End-to-end comparison, social pipeline, bursty trace (Figure 6)",
        kind: ScenarioKind::Comparison,
        pipeline: PipelineSpec::Social,
        trace: TraceSpec::TwitterBursty,
        defaults: fig6_cfg,
    },
    Scenario {
        name: "fig7_ablation",
        title: "Load-balancer drop-policy ablation on an overload segment (Figure 7)",
        kind: ScenarioKind::DropPolicyAblation,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: fig7_cfg,
    },
    Scenario {
        name: "fig8_slo_sweep",
        title: "SLO sensitivity: accuracy and violations vs latency SLO (Figure 8)",
        kind: ScenarioKind::SloSweep,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: fig8_cfg,
    },
    Scenario {
        name: "ablation_allocator",
        title: "Resource-Manager ablation: greedy vs exact MILP allocator",
        kind: ScenarioKind::AllocatorAblation,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::Constant,
        defaults: base_cfg,
    },
    Scenario {
        name: "ablation_multfactor",
        title: "Multiplicative-factor awareness ablation (per-task shortfall)",
        kind: ScenarioKind::MultFactorAblation,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::Constant,
        defaults: base_cfg,
    },
    Scenario {
        name: "capacity_table",
        title: "Headline capacity/violation/off-peak ratios (T-CAP)",
        kind: ScenarioKind::CapacityTable,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: capacity_cfg,
    },
    Scenario {
        name: "milp_probe",
        title: "MILP allocator runtime probe",
        kind: ScenarioKind::MilpProbe,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::Constant,
        defaults: base_cfg,
    },
    Scenario {
        name: "smoke",
        title: "Fast end-to-end comparison for CI smoke runs (30 s sim)",
        kind: ScenarioKind::Comparison,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::Constant,
        defaults: smoke_cfg,
    },
    Scenario {
        name: "traffic_300qps_30s",
        title: "Simulator throughput: 300 QPS x 30 s constant trace (best of 3)",
        kind: ScenarioKind::Throughput,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::Constant,
        defaults: throughput_300qps_cfg,
    },
    Scenario {
        name: "traffic_1m_arrivals",
        title: "Simulator throughput: one million arrivals (2000 QPS x 500 s)",
        kind: ScenarioKind::Throughput,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::Constant,
        defaults: throughput_1m_cfg,
    },
    Scenario {
        name: "stress_diurnal_day",
        title: "Trace-scale stress: day-long diurnal trace, ~100M arrivals",
        kind: ScenarioKind::Throughput,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: stress_diurnal_day_cfg,
    },
    Scenario {
        name: "traffic_hetnet",
        title: "Heterogeneous per-link delays: 1M arrivals on a two-tier interconnect",
        kind: ScenarioKind::Throughput,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::Constant,
        defaults: traffic_hetnet_cfg,
    },
    Scenario {
        name: "traffic_hetnet_linkaware",
        title: "Heterogeneous per-link delays with link-aware routing and per-hop budgets",
        kind: ScenarioKind::Throughput,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::Constant,
        defaults: traffic_hetnet_linkaware_cfg,
    },
    Scenario {
        name: "elastic_diurnal",
        title: "Elastic fleet: static-peak vs static-mean vs autoscaled provisioning, with cost",
        kind: ScenarioKind::Elastic,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: elastic_diurnal_cfg,
    },
    Scenario {
        name: "spot_diurnal",
        title:
            "Adversarial cloud: spot revocations and price dynamics vs the forecasting provisioner",
        kind: ScenarioKind::Spot,
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: spot_diurnal_cfg,
    },
    Scenario {
        name: "multi_traffic_social",
        title: "Shared cluster: traffic + social pipelines under the contended Resource Manager",
        kind: ScenarioKind::MultiPipeline(MultiMode::Contended, LaneSet::TrafficSocial),
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: multi_cfg,
    },
    Scenario {
        name: "multi_static_split",
        title: "Shared cluster: traffic + social pipelines on a naive static 50/50 split",
        kind: ScenarioKind::MultiPipeline(MultiMode::StaticEven, LaneSet::TrafficSocial),
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: multi_cfg,
    },
    Scenario {
        name: "multi_oracle_split",
        title: "Shared cluster: traffic + social pipelines on an oracle offered-load split",
        kind: ScenarioKind::MultiPipeline(MultiMode::OracleSplit, LaneSet::TrafficSocial),
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: multi_cfg,
    },
    Scenario {
        name: "multi_zipf_16",
        title: "Shared cluster: 16 Zipf-popularity tenants; sharded-engine throughput scenario",
        kind: ScenarioKind::MultiPipeline(MultiMode::Contended, LaneSet::Zipf16),
        pipeline: PipelineSpec::Traffic,
        trace: TraceSpec::AzureDiurnal,
        defaults: multi_zipf_cfg,
    },
];

/// Look a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<_> = REGISTRY.iter().map(|s| s.name).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate scenario names");
        for sc in REGISTRY {
            assert!(find(sc.name).is_some());
            // Defaults must be constructible and sane.
            let cfg = sc.config();
            assert!(cfg.duration_s > 0);
            assert!(cfg.peak_qps >= cfg.base_qps || sc.trace == TraceSpec::Constant);
        }
        assert!(find("no_such_scenario").is_none());
    }

    #[test]
    fn every_former_binary_is_registered() {
        for name in [
            "fig1_phases",
            "fig3_tradeoff",
            "fig5_traffic",
            "fig6_social",
            "fig7_ablation",
            "fig8_slo_sweep",
            "ablation_allocator",
            "ablation_multfactor",
            "capacity_table",
            "milp_probe",
        ] {
            assert!(find(name).is_some(), "{name} missing from registry");
        }
    }

    #[test]
    fn controller_spec_round_trips_and_builds_fresh_controllers() {
        let graph = zoo::tiny_pipeline(100.0);
        for spec in ControllerSpec::ALL {
            assert_eq!(ControllerSpec::from_name(spec.name()), Some(spec));
            let ctl = spec.build(
                &graph,
                Some(DropPolicy::PerTask),
                &LinkDelayModel::Uniform,
                RouteMode::Accuracy,
            );
            assert!(!ctl.name().is_empty());
        }
        assert_eq!(ControllerSpec::from_name("gurobi"), None);
        // Loki controllers expose stats; baselines do not.
        assert!(ControllerSpec::LokiGreedy
            .build(&graph, None, &LinkDelayModel::Uniform, RouteMode::Accuracy)
            .controller_stats()
            .is_some());
        assert!(ControllerSpec::Proteus
            .build(&graph, None, &LinkDelayModel::Uniform, RouteMode::Accuracy)
            .controller_stats()
            .is_none());
    }

    #[test]
    fn controllers_budget_with_the_link_delay_model() {
        let graph = zoo::tiny_pipeline(100.0);
        let links = LinkProfile::TwoTier.to_model();
        // Loki mirrors the model; the baselines budget with its worst hop.
        let AnyController::Loki(loki) =
            ControllerSpec::LokiGreedy.build(&graph, None, &links, RouteMode::Accuracy)
        else {
            panic!("loki spec must build a loki controller");
        };
        assert_eq!(loki.config().link_delays, links);
        assert_eq!(loki.config().effective_comm_ms(), 5.0);
        let AnyController::InferLine(inferline) =
            ControllerSpec::InferLine.build(&graph, None, &links, RouteMode::Accuracy)
        else {
            panic!("inferline spec must build an inferline controller");
        };
        assert_eq!(inferline.config().comm_latency_ms, 5.0);
        let AnyController::Proteus(proteus) =
            ControllerSpec::Proteus.build(&graph, None, &links, RouteMode::Accuracy)
        else {
            panic!("proteus spec must build a proteus controller");
        };
        assert_eq!(proteus.config().comm_latency_ms, 5.0);
    }

    #[test]
    fn traffic_hetnet_scenario_is_registered_with_two_tier_links() {
        let sc = find("traffic_hetnet").expect("traffic_hetnet registered");
        let cfg = sc.config();
        assert_eq!(cfg.links, LinkProfile::TwoTier);
        assert_ne!(cfg.links.to_model(), LinkDelayModel::Uniform);
    }

    #[test]
    fn run_point_execution_is_deterministic() {
        let point = RunPoint {
            label: "det".to_string(),
            pipeline: PipelineSpec::Traffic,
            trace: TraceSpec::Constant,
            controller: ControllerSpec::LokiGreedy,
            drop_policy: None,
            multi: None,
            cfg: ExperimentConfig {
                duration_s: 10,
                peak_qps: 100.0,
                base_qps: 100.0,
                drain_s: 5.0,
                ..ExperimentConfig::default()
            },
        };
        let a = point.execute();
        let b = point.execute();
        assert_eq!(a.result.summary, b.result.summary);
        assert!(a.result.summary.total_arrivals > 0);
    }
}
