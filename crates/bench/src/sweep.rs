//! Declarative sweep grids over scenario axes.
//!
//! A [`Sweep`] takes a base scenario configuration and per-axis value lists
//! (controller, SLO, peak demand, cluster size, seed) and enumerates the cartesian
//! product as [`RunPoint`]s in a fixed nesting order — controller outermost, seed
//! innermost — so grid enumeration is deterministic and parallel execution (which
//! preserves input order) reports points exactly where a serial loop would.

use crate::scenario::{ControllerSpec, RunPoint, Scenario, ScenarioKind};
use crate::{ElasticMode, ExperimentConfig, LinkProfile, ProvisionerKind};
use loki_sim::RouteMode;
use std::fmt::Write as _;

/// A grid of experiment points over a base configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    pub scenario_name: String,
    pub base: RunPoint,
    pub controllers: Vec<ControllerSpec>,
    pub slo_ms: Vec<f64>,
    pub peak_qps: Vec<f64>,
    pub cluster_size: Vec<usize>,
    pub links: Vec<LinkProfile>,
    pub route: Vec<RouteMode>,
    pub elastic: Vec<ElasticMode>,
    pub spot: Vec<bool>,
    pub revoke: Vec<f64>,
    pub stockout: Vec<f64>,
    pub provisioner: Vec<ProvisionerKind>,
    pub jobs: Vec<usize>,
    pub seed: Vec<u64>,
}

impl Sweep {
    /// A sweep whose axes are all singletons taken from `cfg` — `points()` returns
    /// exactly the scenario's canonical runs until axes are widened. Comparison
    /// scenarios default to the three-system panel, the SLO-sensitivity scenario to
    /// its canonical 200–400 ms axis, everything else to Loki-greedy alone.
    pub fn for_scenario(scenario: &Scenario, cfg: ExperimentConfig) -> Self {
        let controllers = match scenario.kind {
            ScenarioKind::Comparison | ScenarioKind::CapacityTable => {
                ControllerSpec::COMPARISON.to_vec()
            }
            _ => vec![ControllerSpec::LokiGreedy],
        };
        let slo_ms = match scenario.kind {
            ScenarioKind::SloSweep => vec![200.0, 250.0, 300.0, 350.0, 400.0],
            _ => vec![cfg.slo_ms],
        };
        let base = crate::scenario::scenario_point(scenario, &cfg);
        Self {
            scenario_name: scenario.name.to_string(),
            base,
            controllers,
            slo_ms,
            peak_qps: vec![cfg.peak_qps],
            cluster_size: vec![cfg.cluster_size],
            links: vec![cfg.links],
            route: vec![cfg.route],
            elastic: vec![cfg.elastic],
            spot: vec![cfg.spot],
            revoke: vec![cfg.revoke_per_hour],
            stockout: vec![cfg.stockout],
            provisioner: vec![cfg.provisioner],
            jobs: vec![cfg.jobs.max(1)],
            seed: vec![cfg.seed],
        }
    }

    /// Set an axis from a comma-separated value list (CLI surface). Unknown axes and
    /// unparsable values are hard errors, never silently ignored.
    pub fn set_axis(&mut self, axis: &str, values: &str) -> Result<(), String> {
        fn parse_list<T: std::str::FromStr>(axis: &str, values: &str) -> Result<Vec<T>, String> {
            let parsed: Result<Vec<T>, _> = values.split(',').map(|v| v.trim().parse()).collect();
            match parsed {
                Ok(list) if !list.is_empty() => Ok(list),
                _ => Err(format!("invalid value list for axis {axis}: {values:?}")),
            }
        }
        match axis {
            "slo" => self.slo_ms = parse_list(axis, values)?,
            "peak" => self.peak_qps = parse_list(axis, values)?,
            "cluster" => self.cluster_size = parse_list(axis, values)?,
            "jobs" => {
                self.jobs = parse_list::<usize>(axis, values)?
                    .into_iter()
                    .map(|j: usize| j.max(1))
                    .collect()
            }
            "seed" => self.seed = parse_list(axis, values)?,
            "controllers" | "controller" => {
                let specs: Option<Vec<ControllerSpec>> = values
                    .split(',')
                    .map(|v| ControllerSpec::from_name(v.trim()))
                    .collect();
                match specs {
                    Some(list) if !list.is_empty() => self.controllers = list,
                    _ => {
                        return Err(format!(
                            "invalid controller list {values:?} (known: {})",
                            ControllerSpec::ALL.map(|c| c.name()).join(", ")
                        ))
                    }
                }
            }
            "links" => {
                let profiles: Option<Vec<LinkProfile>> = values
                    .split(',')
                    .map(|v| LinkProfile::from_name(v.trim()))
                    .collect();
                match profiles {
                    Some(list) if !list.is_empty() => self.links = list,
                    _ => {
                        return Err(format!(
                            "invalid links list {values:?} (known: {})",
                            LinkProfile::ALL.map(|p| p.name()).join(", ")
                        ))
                    }
                }
            }
            "route" => {
                let modes: Option<Vec<RouteMode>> = values
                    .split(',')
                    .map(|v| RouteMode::parse(v.trim()))
                    .collect();
                match modes {
                    Some(list) if !list.is_empty() => self.route = list,
                    _ => {
                        return Err(format!(
                            "invalid route list {values:?} (known: accuracy, link-aware)"
                        ))
                    }
                }
            }
            "elastic" => {
                let modes: Option<Vec<ElasticMode>> = values
                    .split(',')
                    .map(|v| ElasticMode::from_name(v.trim()))
                    .collect();
                match modes {
                    Some(list) if !list.is_empty() => self.elastic = list,
                    _ => {
                        return Err(format!(
                            "invalid elastic list {values:?} (known: {})",
                            ElasticMode::ALL.map(|m| m.name()).join(", ")
                        ))
                    }
                }
            }
            "spot" => {
                let flags: Result<Vec<bool>, _> =
                    values.split(',').map(|v| v.trim().parse()).collect();
                match flags {
                    Ok(list) if !list.is_empty() => self.spot = list,
                    _ => return Err(format!("invalid spot list {values:?} (want true/false)")),
                }
            }
            "revoke" => {
                let rates = parse_list::<f64>(axis, values)?;
                if rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
                    return Err(format!("invalid revoke list {values:?} (want rates >= 0)"));
                }
                self.revoke = rates;
            }
            "stockout" => {
                let probs = parse_list::<f64>(axis, values)?;
                if probs.iter().any(|p| !(0.0..=1.0).contains(p)) {
                    return Err(format!(
                        "invalid stockout list {values:?} (want probabilities in [0, 1])"
                    ));
                }
                self.stockout = probs;
            }
            "provisioner" => {
                let kinds: Option<Vec<ProvisionerKind>> = values
                    .split(',')
                    .map(|v| ProvisionerKind::from_name(v.trim()))
                    .collect();
                match kinds {
                    Some(list) if !list.is_empty() => self.provisioner = list,
                    _ => {
                        return Err(format!(
                            "invalid provisioner list {values:?} (known: {})",
                            ProvisionerKind::ALL.map(|k| k.name()).join(", ")
                        ))
                    }
                }
            }
            _ => {
                return Err(format!(
                "unknown sweep axis {axis:?} (axes: controllers, slo, peak, cluster, links, route, elastic, spot, revoke, stockout, provisioner, jobs, seed)"
            ))
            }
        }
        Ok(())
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.controllers.len()
            * self.slo_ms.len()
            * self.peak_qps.len()
            * self.cluster_size.len()
            * self.links.len()
            * self.route.len()
            * self.elastic.len()
            * self.spot.len()
            * self.revoke.len()
            * self.stockout.len()
            * self.provisioner.len()
            * self.jobs.len()
            * self.seed.len()
    }

    /// True when the grid is empty (some axis has no values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The market axes (spot, revoke, stockout, provisioner) flattened into
    /// one nesting level, in spot-outermost order.
    fn market_grid(&self) -> Vec<(bool, f64, f64, ProvisionerKind)> {
        let mut out = Vec::new();
        for &spot in &self.spot {
            for &revoke in &self.revoke {
                for &stockout in &self.stockout {
                    for &provisioner in &self.provisioner {
                        out.push((spot, revoke, stockout, provisioner));
                    }
                }
            }
        }
        out
    }

    /// Enumerate the grid in its fixed nesting order. Labels name only the axes that
    /// actually vary, so single-axis sweeps stay readable.
    pub fn points(&self) -> Vec<RunPoint> {
        let mut out = Vec::with_capacity(self.len());
        for &controller in &self.controllers {
            for &slo in &self.slo_ms {
                for &peak in &self.peak_qps {
                    for &cluster in &self.cluster_size {
                        for &links in &self.links {
                            for &route in &self.route {
                                for &elastic in &self.elastic {
                                    for market in self.market_grid() {
                                        for &jobs in &self.jobs {
                                            for &seed in &self.seed {
                                                let (spot, revoke, stockout, provisioner) = market;
                                                let mut cfg = self.base.cfg.clone();
                                                cfg.slo_ms = slo;
                                                cfg.peak_qps = peak;
                                                cfg.cluster_size = cluster;
                                                cfg.links = links;
                                                cfg.route = route;
                                                cfg.elastic = elastic;
                                                cfg.spot = spot;
                                                cfg.revoke_per_hour = revoke;
                                                cfg.stockout = stockout;
                                                cfg.provisioner = provisioner;
                                                cfg.jobs = jobs;
                                                cfg.seed = seed;
                                                let mut label = controller.name().to_string();
                                                if self.slo_ms.len() > 1 {
                                                    let _ = write!(label, " slo={slo}");
                                                }
                                                if self.peak_qps.len() > 1 {
                                                    let _ = write!(label, " peak={peak}");
                                                }
                                                if self.cluster_size.len() > 1 {
                                                    let _ = write!(label, " cluster={cluster}");
                                                }
                                                if self.links.len() > 1 {
                                                    let _ =
                                                        write!(label, " links={}", links.name());
                                                }
                                                if self.route.len() > 1 {
                                                    let _ =
                                                        write!(label, " route={}", route.label());
                                                }
                                                if self.elastic.len() > 1 {
                                                    let _ = write!(
                                                        label,
                                                        " elastic={}",
                                                        elastic.name()
                                                    );
                                                }
                                                if self.spot.len() > 1 {
                                                    let _ = write!(label, " spot={spot}");
                                                }
                                                if self.revoke.len() > 1 {
                                                    let _ = write!(label, " revoke={revoke}");
                                                }
                                                if self.stockout.len() > 1 {
                                                    let _ = write!(label, " stockout={stockout}");
                                                }
                                                if self.provisioner.len() > 1 {
                                                    let _ = write!(
                                                        label,
                                                        " provisioner={}",
                                                        provisioner.name()
                                                    );
                                                }
                                                if self.jobs.len() > 1 {
                                                    let _ = write!(label, " jobs={jobs}");
                                                }
                                                if self.seed.len() > 1 {
                                                    let _ = write!(label, " seed={seed}");
                                                }
                                                out.push(RunPoint {
                                                    label,
                                                    controller,
                                                    cfg,
                                                    ..self.base.clone()
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    fn fig8() -> &'static Scenario {
        scenario::find("fig8_slo_sweep").expect("fig8 registered")
    }

    #[test]
    fn singleton_sweep_has_one_point_per_controller() {
        let sc = scenario::find("fig5_traffic").unwrap();
        let sweep = Sweep::for_scenario(sc, sc.config());
        assert_eq!(sweep.len(), 3, "comparison panel has three systems");
        let labels: Vec<_> = sweep.points().into_iter().map(|p| p.label).collect();
        assert_eq!(labels, vec!["loki-greedy", "inferline", "proteus"]);
    }

    #[test]
    fn slo_scenario_defaults_to_canonical_axis() {
        let sweep = Sweep::for_scenario(fig8(), fig8().config());
        assert_eq!(sweep.slo_ms, vec![200.0, 250.0, 300.0, 350.0, 400.0]);
        assert_eq!(sweep.len(), 5);
    }

    #[test]
    fn grid_enumeration_is_deterministic_and_complete() {
        let mut sweep = Sweep::for_scenario(fig8(), fig8().config());
        sweep.set_axis("seed", "1,2,3").unwrap();
        sweep.set_axis("cluster", "10,20").unwrap();
        assert_eq!(sweep.len(), 5 * 3 * 2);
        let a = sweep.points();
        let b = sweep.points();
        assert_eq!(a, b, "enumeration must be reproducible");
        assert_eq!(a.len(), sweep.len());
        // Seed is the innermost axis; the first three points share every other knob.
        assert_eq!(a[0].cfg.seed, 1);
        assert_eq!(a[1].cfg.seed, 2);
        assert_eq!(a[2].cfg.seed, 3);
        assert_eq!(a[0].cfg.slo_ms, a[2].cfg.slo_ms);
        // All labels unique.
        let mut labels: Vec<_> = a.iter().map(|p| p.label.clone()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), sweep.len());
    }

    #[test]
    fn axis_errors_are_loud() {
        let mut sweep = Sweep::for_scenario(fig8(), fig8().config());
        assert!(sweep.set_axis("slo", "200,25o").is_err());
        assert!(sweep.set_axis("warp", "9").is_err());
        assert!(sweep.set_axis("controllers", "loki-greedy,gurobi").is_err());
        assert!(sweep.set_axis("links", "uniform,warp-drive").is_err());
        assert!(sweep.set_axis("controllers", "loki-milp,proteus").is_ok());
        assert_eq!(
            sweep.controllers,
            vec![ControllerSpec::LokiMilp, ControllerSpec::Proteus]
        );
    }

    #[test]
    fn route_axis_enumerates_and_labels_modes() {
        let sc = scenario::find("traffic_hetnet").unwrap();
        let mut sweep = Sweep::for_scenario(sc, sc.config());
        assert_eq!(sweep.route, vec![RouteMode::Accuracy]);
        sweep.set_axis("route", "accuracy,link-aware").unwrap();
        assert_eq!(sweep.len(), 2);
        let points = sweep.points();
        assert_eq!(points[0].cfg.route, RouteMode::Accuracy);
        assert_eq!(points[1].cfg.route, RouteMode::LinkAware);
        assert!(points[1].label.contains("route=link-aware"));
        assert!(sweep.set_axis("route", "telepathy").is_err());
    }

    #[test]
    fn links_axis_enumerates_and_labels_profiles() {
        let sc = scenario::find("traffic_hetnet").unwrap();
        let mut sweep = Sweep::for_scenario(sc, sc.config());
        assert_eq!(sweep.links, vec![LinkProfile::TwoTier]);
        sweep.set_axis("links", "uniform,two-tier").unwrap();
        sweep.set_axis("seed", "1,2").unwrap();
        assert_eq!(sweep.len(), 4);
        let points = sweep.points();
        assert_eq!(points[0].cfg.links, LinkProfile::Uniform);
        assert_eq!(points[2].cfg.links, LinkProfile::TwoTier);
        assert!(points[0].label.contains("links=uniform"));
        assert!(points[2].label.contains("links=two-tier"));
        assert!(points[0].label.contains("seed=1"));
    }
}
