//! Windowed time-series export (`loki run <scenario> --timeline PATH`).
//!
//! Renders one executed [`PointResult`] as a machine-readable timeline:
//! per-interval rows for the cluster and for every lane — counters from
//! [`IntervalMetrics`] plus *exact* windowed latency percentiles from the
//! per-interval histogram deltas — with the cluster event journal interleaved
//! at its simulated timestamps, and the SLO burn analysis attached.
//!
//! Everything here is derived from simulated time only: no wall-clock fields,
//! no `jobs` field, no host identifiers. Two exports of the same point are
//! byte-identical regardless of lane parallelism — CI diffs the files
//! produced under `jobs=1` and `jobs=2` with `cmp`.
//!
//! Fleet context per row (`fleet_warm`, `billed_usd`, `spot_mult`) is the
//! step-function value of the most recent [`JournalKind::CostSample`] /
//! [`JournalKind::PriceStep`] event in effect at the interval's end; rows
//! before the first sample fall back to the interval's own `active_workers`,
//! `0.0`, and `1.0`.

use crate::report::{csv_row, Json};
use crate::scenario::PointResult;
use loki_sim::{
    BurnReport, Histogram, IntervalMetrics, Journal, JournalEvent, JournalKind, CLUSTER_LANE,
};

/// The label the cluster-level rows carry in the `lane` column.
pub const CLUSTER_LABEL: &str = "cluster";

/// Column order of the timeline CSV (one row per interval per lane).
pub const TIMELINE_COLUMNS: [&str; 19] = [
    "time_s",
    "lane",
    "arrivals",
    "on_time",
    "late",
    "dropped",
    "dropped_deadline",
    "dropped_reclaimed",
    "dropped_revoked",
    "accuracy",
    "active_workers",
    "rerouted",
    "p50_ms",
    "p90_ms",
    "p99_ms",
    "p999_ms",
    "fleet_warm",
    "billed_usd",
    "spot_mult",
];

/// A right-continuous step function sampled from journal events: `at(t)` is
/// the value of the latest sample with `time <= t`.
struct StepSeries {
    points: Vec<(f64, f64)>,
}

impl StepSeries {
    fn from_journal(
        journal: Option<&Journal>,
        mut pick: impl FnMut(&JournalKind) -> Option<f64>,
    ) -> Self {
        let mut points = Vec::new();
        if let Some(journal) = journal {
            for event in &journal.events {
                if let Some(v) = pick(&event.kind) {
                    points.push((event.time_s(), v));
                }
            }
        }
        Self { points }
    }

    fn at(&self, t: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|(time, _)| *time <= t)
            .last()
            .map(|(_, v)| *v)
    }
}

/// The fleet/market context attached to every interval row.
struct FleetContext {
    warm: StepSeries,
    dollars: StepSeries,
    multiplier: StepSeries,
}

impl FleetContext {
    fn new(journal: Option<&Journal>) -> Self {
        Self {
            warm: StepSeries::from_journal(journal, |k| match k {
                JournalKind::CostSample { warm, .. } => Some(f64::from(*warm)),
                _ => None,
            }),
            dollars: StepSeries::from_journal(journal, |k| match k {
                JournalKind::CostSample { dollars, .. } => Some(*dollars),
                _ => None,
            }),
            multiplier: StepSeries::from_journal(journal, |k| match k {
                JournalKind::PriceStep { multiplier } => Some(*multiplier),
                _ => None,
            }),
        }
    }
}

/// One lane's (or the cluster's) interval series plus its windowed histogram
/// deltas, ready to emit.
struct Series<'a> {
    lane: &'a str,
    intervals: &'a [IntervalMetrics],
    window: Option<&'a [Histogram]>,
}

fn point_series(point: &PointResult) -> Vec<Series<'_>> {
    let mut series = vec![Series {
        lane: CLUSTER_LABEL,
        intervals: &point.result.intervals,
        window: point.result.window.as_deref(),
    }];
    for lane in &point.per_pipeline {
        series.push(Series {
            lane: &lane.name,
            intervals: &lane.intervals,
            window: lane.window.as_deref(),
        });
    }
    series
}

/// The uniform reporting-interval length, recovered from the series itself so
/// the export never needs host-side configuration.
fn interval_length_s(intervals: &[IntervalMetrics]) -> f64 {
    match intervals {
        [a, b, ..] => b.start_s - a.start_s,
        _ => 1.0,
    }
}

/// Windowed percentiles of one interval's histogram delta, `None` when the
/// delta is absent or recorded nothing.
fn window_percentiles(window: Option<&[Histogram]>, index: usize) -> Option<[f64; 4]> {
    let hist = window?.get(index)?;
    if hist.is_empty() {
        None
    } else {
        Some(hist.percentiles_ms())
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        String::new()
    }
}

/// Render the timeline as CSV: a header row, then one row per interval per
/// lane, ordered by interval start time with the cluster row first.
pub fn timeline_csv(point: &PointResult) -> String {
    let series = point_series(point);
    let fleet = FleetContext::new(point.result.journal.as_ref());
    let interval_s = interval_length_s(&point.result.intervals);
    let mut out = String::new();
    csv_row(&mut out, &TIMELINE_COLUMNS.map(String::from));
    let rows = point.result.intervals.len();
    for index in 0..rows {
        for s in &series {
            let Some(m) = s.intervals.get(index) else {
                continue;
            };
            let end_s = m.start_s + interval_s;
            let pcts = window_percentiles(s.window, index);
            let pct = |i: usize| pcts.map(|p| fmt_f64(p[i])).unwrap_or_default();
            csv_row(
                &mut out,
                &[
                    fmt_f64(m.start_s),
                    s.lane.to_string(),
                    m.arrivals.to_string(),
                    m.completed_on_time.to_string(),
                    m.completed_late.to_string(),
                    m.dropped.to_string(),
                    m.dropped_deadline.to_string(),
                    m.dropped_reclaimed.to_string(),
                    m.dropped_revoked.to_string(),
                    fmt_f64(m.mean_accuracy()),
                    m.active_workers.to_string(),
                    m.rerouted.to_string(),
                    pct(0),
                    pct(1),
                    pct(2),
                    pct(3),
                    fmt_f64(fleet.warm.at(end_s).unwrap_or(m.active_workers as f64)),
                    fmt_f64(fleet.dollars.at(end_s).unwrap_or(0.0)),
                    fmt_f64(fleet.multiplier.at(end_s).unwrap_or(1.0)),
                ],
            );
        }
    }
    out
}

/// One journal event as a JSON object: timestamp, owning lane, deterministic
/// sequence number, the kind's stable name, and its kind-specific fields.
fn event_json(event: &JournalEvent, lane_names: &[&str]) -> Json {
    let mut obj = Json::object();
    obj.push("type", "event".into())
        .push("t", event.time_s().into())
        .push("lane", lane_label(event.lane, lane_names))
        .push("seq", event.seq.into())
        .push("kind", event.kind.name().into());
    match &event.kind {
        JournalKind::Rebalance {
            epoch,
            moved,
            reason,
        } => {
            obj.push("epoch", (*epoch).into())
                .push("moved", (*moved).into());
            obj.push("reason", reason.map(Json::from).unwrap_or(Json::Null));
        }
        JournalKind::Migration {
            worker,
            from_lane,
            to_lane,
        } => {
            obj.push("worker", u64::from(*worker).into())
                .push("from_lane", lane_label(*from_lane, lane_names))
                .push("to_lane", lane_label(*to_lane, lane_names));
        }
        JournalKind::PlanInstall { epoch } => {
            obj.push("epoch", (*epoch).into());
        }
        JournalKind::AutoscaleDecision {
            provision,
            class,
            count,
            reason,
        } => {
            obj.push("provision", (*provision).into())
                .push("class", u64::from(*class).into())
                .push("count", u64::from(*count).into())
                .push("reason", reason.name().into());
        }
        JournalKind::Stockout { class, denied } => {
            obj.push("class", u64::from(*class).into())
                .push("denied", u64::from(*denied).into());
        }
        JournalKind::Boot { worker, class }
        | JournalKind::DrainStart { worker, class }
        | JournalKind::Retire { worker, class } => {
            obj.push("worker", u64::from(*worker).into())
                .push("class", u64::from(*class).into());
        }
        JournalKind::Revocation {
            worker,
            class,
            lane,
        } => {
            obj.push("worker", u64::from(*worker).into())
                .push("class", u64::from(*class).into())
                .push("owner", lane_label(*lane, lane_names));
        }
        JournalKind::RevokeGrace {
            worker,
            clean,
            lost,
        } => {
            obj.push("worker", u64::from(*worker).into())
                .push("clean", (*clean).into())
                .push("lost", (*lost).into());
        }
        JournalKind::PriceStep { multiplier } => {
            obj.push("multiplier", (*multiplier).into());
        }
        JournalKind::CostSample { warm, dollars } => {
            obj.push("warm", u64::from(*warm).into())
                .push("dollars", (*dollars).into());
        }
    }
    obj
}

fn lane_label(lane: u32, lane_names: &[&str]) -> Json {
    if lane == CLUSTER_LANE {
        Json::Str(CLUSTER_LABEL.to_string())
    } else {
        match lane_names.get(lane as usize) {
            Some(name) => Json::Str((*name).to_string()),
            None => Json::UInt(u64::from(lane)),
        }
    }
}

fn interval_json(
    lane: &str,
    m: &IntervalMetrics,
    pcts: Option<[f64; 4]>,
    fleet: &FleetContext,
    end_s: f64,
) -> Json {
    let mut obj = Json::object();
    obj.push("type", "interval".into())
        .push("t", m.start_s.into())
        .push("lane", lane.into())
        .push("arrivals", m.arrivals.into())
        .push("on_time", m.completed_on_time.into())
        .push("late", m.completed_late.into())
        .push("dropped", m.dropped.into())
        .push("dropped_deadline", m.dropped_deadline.into())
        .push("dropped_reclaimed", m.dropped_reclaimed.into())
        .push("dropped_revoked", m.dropped_revoked.into())
        .push("accuracy", m.mean_accuracy().into())
        .push("active_workers", m.active_workers.into())
        .push("rerouted", m.rerouted.into());
    for (key, i) in [("p50_ms", 0), ("p90_ms", 1), ("p99_ms", 2), ("p999_ms", 3)] {
        obj.push(key, pcts.map(|p| Json::Num(p[i])).unwrap_or(Json::Null));
    }
    obj.push(
        "fleet_warm",
        fleet
            .warm
            .at(end_s)
            .unwrap_or(m.active_workers as f64)
            .into(),
    )
    .push("billed_usd", fleet.dollars.at(end_s).unwrap_or(0.0).into())
    .push(
        "spot_mult",
        fleet.multiplier.at(end_s).unwrap_or(1.0).into(),
    );
    obj
}

/// A [`BurnReport`] as JSON (used both for the cluster and per lane).
pub fn burn_json(report: &BurnReport) -> Json {
    let mut obj = Json::object();
    obj.push("slo_target", report.slo_target.into())
        .push("budget_queries", report.budget_queries.into())
        .push("budget_consumed", report.budget_consumed.into())
        .push("worst_burn_rate", report.worst_burn_rate.into());
    let episodes = report
        .episodes
        .iter()
        .map(|e| {
            let mut ep = Json::object();
            ep.push("start_s", e.start_s.into())
                .push("end_s", e.end_s.into())
                .push("peak_burn_rate", e.peak_burn_rate.into())
                .push("bad_queries", e.bad_queries.into())
                .push("budget_consumed_pct", e.budget_consumed_pct.into())
                .push("cause", e.cause.name().into())
                .push("evidence", e.evidence.as_str().into());
            ep
        })
        .collect();
    obj.push("episodes", Json::Arr(episodes));
    obj
}

/// Render the timeline as JSON: run identity (simulated quantities only), the
/// burn analysis, and a single `timeline` array interleaving interval rows
/// with journal events in simulated-time order.
pub fn timeline_json(scenario: &str, point: &PointResult) -> String {
    let series = point_series(point);
    let fleet = FleetContext::new(point.result.journal.as_ref());
    let interval_s = interval_length_s(&point.result.intervals);
    let lane_names: Vec<&str> = point.per_pipeline.iter().map(|p| p.name.as_str()).collect();

    let mut obj = Json::object();
    obj.push("scenario", scenario.into())
        .push("label", point.label.as_str().into())
        .push("interval_s", interval_s.into())
        .push(
            "lanes",
            Json::Arr(series.iter().map(|s| Json::from(s.lane)).collect()),
        );
    let journal = point.result.journal.as_ref();
    obj.push(
        "journal_events",
        journal.map_or(0u64, |j| j.len() as u64).into(),
    );
    if let Some(burn) = &point.burn {
        obj.push("burn", burn_json(burn));
    }
    let lane_burns: Vec<Json> = point
        .per_pipeline
        .iter()
        .filter_map(|p| {
            p.burn.as_ref().map(|b| {
                let mut entry = Json::object();
                entry.push("lane", p.name.as_str().into());
                entry.push("report", burn_json(b));
                entry
            })
        })
        .collect();
    if !lane_burns.is_empty() {
        obj.push("lane_burn", Json::Arr(lane_burns));
    }

    // Interleave: for each interval window emit the cluster row, the lane
    // rows, then every journal event inside the window. Events outside all
    // windows (before the first or after the last) bracket the array.
    let mut timeline = Vec::new();
    let events: &[JournalEvent] = journal.map_or(&[], |j| &j.events);
    let mut next_event = 0usize;
    let first_start = point.result.intervals.first().map_or(0.0, |m| m.start_s);
    while next_event < events.len() && events[next_event].time_s() < first_start {
        timeline.push(event_json(&events[next_event], &lane_names));
        next_event += 1;
    }
    for index in 0..point.result.intervals.len() {
        let end_s = point.result.intervals[index].start_s + interval_s;
        for s in &series {
            if let Some(m) = s.intervals.get(index) {
                timeline.push(interval_json(
                    s.lane,
                    m,
                    window_percentiles(s.window, index),
                    &fleet,
                    end_s,
                ));
            }
        }
        while next_event < events.len() && events[next_event].time_s() < end_s {
            timeline.push(event_json(&events[next_event], &lane_names));
            next_event += 1;
        }
    }
    while next_event < events.len() {
        timeline.push(event_json(&events[next_event], &lane_names));
        next_event += 1;
    }
    obj.push("timeline", Json::Arr(timeline));
    obj.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_series_is_right_continuous() {
        let s = StepSeries {
            points: vec![(1.0, 10.0), (3.0, 30.0)],
        };
        assert_eq!(s.at(0.5), None);
        assert_eq!(s.at(1.0), Some(10.0));
        assert_eq!(s.at(2.9), Some(10.0));
        assert_eq!(s.at(3.0), Some(30.0));
        assert_eq!(s.at(100.0), Some(30.0));
    }

    #[test]
    fn interval_length_recovers_from_series_and_defaults_to_one() {
        let mk = |start_s: f64| IntervalMetrics {
            start_s,
            ..IntervalMetrics::default()
        };
        assert_eq!(interval_length_s(&[mk(0.0), mk(0.5), mk(1.0)]), 0.5);
        assert_eq!(interval_length_s(&[mk(0.0)]), 1.0);
        assert_eq!(interval_length_s(&[]), 1.0);
    }
}
