//! The `elastic_` scenario family: acceptance, determinism, and plumbing.
//!
//! * `autoscaler_cuts_cost_vs_static_peak_at_comparable_attainment`: the
//!   headline acceptance property — on the registry-default diurnal day, the
//!   autoscaled fleet must cost at least 30% less in dollars than the
//!   static-peak fleet while keeping aggregate SLO attainment within 2
//!   points of it.
//! * `elastic_autoscale_golden`: a pinned same-seed snapshot of a scaled-down
//!   autoscaled run (summary and cost). Any engine, provisioner, or billing
//!   change that alters elastic behaviour trips this and must justify
//!   re-pinning.
//! * Registry/CLI plumbing: `elastic=`/`classes=` config keys, the `elastic`
//!   sweep axis, cost columns in the CSV, and the mixed-catalog path.

use loki_bench::report::sweep_csv;
use loki_bench::scenario::{self, scenario_point, PointResult, ScenarioKind};
use loki_bench::{ElasticMode, ExperimentConfig, GpuClassProfile};
use loki_sim::RunSummary;

fn slo_attainment(s: &RunSummary) -> f64 {
    let finished = s.total_on_time + s.total_late + s.total_dropped;
    if finished == 0 {
        0.0
    } else {
        s.total_on_time as f64 / finished as f64
    }
}

fn run_mode(cfg: &ExperimentConfig, mode: ElasticMode) -> PointResult {
    let sc = scenario::find("elastic_diurnal").expect("elastic_diurnal registered");
    let cfg = ExperimentConfig {
        elastic: mode,
        ..cfg.clone()
    };
    scenario_point(sc, &cfg).execute()
}

#[test]
fn elastic_family_is_registered_with_config_keys_and_axis() {
    let sc = scenario::find("elastic_diurnal").expect("registered");
    assert_eq!(sc.kind, ScenarioKind::Elastic);
    let cfg = sc.config();
    assert_eq!(cfg.elastic, ElasticMode::Autoscale);
    assert_eq!(cfg.classes, GpuClassProfile::Uniform);

    // Config keys parse strictly.
    let mut cfg = ExperimentConfig::default();
    cfg.apply_overrides(["elastic=static-peak", "classes=mixed"])
        .expect("valid overrides");
    assert_eq!(cfg.elastic, ElasticMode::StaticPeak);
    assert_eq!(cfg.classes, GpuClassProfile::Mixed);
    assert!(cfg.set("elastic", "spot").is_err());
    assert!(cfg.set("classes", "h100").is_err());
    for mode in ElasticMode::ALL {
        assert_eq!(ElasticMode::from_name(mode.name()), Some(mode));
    }

    // The elastic sweep axis enumerates and labels modes.
    let mut sweep = loki_bench::sweep::Sweep::for_scenario(sc, sc.config());
    assert_eq!(sweep.elastic, vec![ElasticMode::Autoscale]);
    sweep
        .set_axis("elastic", "static-peak,autoscale")
        .expect("valid axis");
    assert!(sweep.set_axis("elastic", "fixed,warp").is_err());
    assert_eq!(sweep.len(), 2);
    let points = sweep.points();
    assert_eq!(points[0].cfg.elastic, ElasticMode::StaticPeak);
    assert!(points[0].label.contains("elastic=static-peak"));
    assert!(points[1].label.contains("elastic=autoscale"));
}

#[test]
fn autoscaler_cuts_cost_vs_static_peak_at_comparable_attainment() {
    let sc = scenario::find("elastic_diurnal").expect("registered");
    let cfg = sc.config();
    let static_peak = run_mode(&cfg, ElasticMode::StaticPeak);
    let autoscale = run_mode(&cfg, ElasticMode::Autoscale);

    let peak_cost = static_peak.cost.as_ref().expect("static-peak bills");
    let auto_cost = autoscale.cost.as_ref().expect("autoscale bills");
    assert!(
        auto_cost.total_dollars <= 0.70 * peak_cost.total_dollars,
        "autoscaling must cut dollars by >= 30% vs static-peak: {} vs {}",
        auto_cost.total_dollars,
        peak_cost.total_dollars
    );
    let peak_attain = slo_attainment(&static_peak.result.summary);
    let auto_attain = slo_attainment(&autoscale.result.summary);
    assert!(
        peak_attain - auto_attain <= 0.02,
        "autoscaled attainment must stay within 2 points of static-peak: \
         {auto_attain:.4} vs {peak_attain:.4}"
    );
    // The mechanism: the autoscaled fleet actually scales (boots and drains
    // both happen) and runs at far higher utilization than the peak fleet.
    let scaled: u64 = auto_cost
        .per_class
        .iter()
        .map(|c| c.provisioned + c.retired)
        .sum();
    assert!(scaled > 0, "the autoscaler must actually scale the fleet");
    assert!(
        autoscale.result.summary.mean_utilization
            > static_peak.result.summary.mean_utilization + 0.1,
        "autoscaling should lift fleet utilization: {} vs {}",
        autoscale.result.summary.mean_utilization,
        static_peak.result.summary.mean_utilization
    );
    // Static-peak itself never scales and bills the full fleet for the run.
    let peak_scaled: u64 = peak_cost
        .per_class
        .iter()
        .map(|c| c.provisioned + c.retired)
        .sum();
    assert_eq!(peak_scaled, 0);
}

/// A scaled-down autoscaled run for the determinism golden: small enough for
/// test time, large enough to include boots, drains, and billing.
fn golden_cfg() -> ExperimentConfig {
    let sc = scenario::find("elastic_diurnal").expect("registered");
    ExperimentConfig {
        duration_s: 180,
        peak_qps: 600.0,
        base_qps: 60.0,
        cluster_size: 12,
        drain_s: 10.0,
        ..sc.config()
    }
}

#[test]
fn elastic_autoscale_golden() {
    let a = run_mode(&golden_cfg(), ElasticMode::Autoscale);
    let b = run_mode(&golden_cfg(), ElasticMode::Autoscale);
    assert_eq!(
        a.result.summary, b.result.summary,
        "same-seed elastic runs must be identical"
    );
    assert_eq!(a.cost, b.cost, "billing must be deterministic too");

    let s = &a.result.summary;
    let cost = a.cost.as_ref().expect("cost");
    println!("golden candidate summary: {s:?}");
    println!("golden candidate cost: {cost:?}");
    assert_eq!(s.total_arrivals, GOLDEN_ARRIVALS);
    assert_eq!(s.total_on_time, GOLDEN_ON_TIME);
    assert_eq!(s.total_late, GOLDEN_LATE);
    assert_eq!(s.total_dropped, GOLDEN_DROPPED);
    assert_eq!(s.events_processed, GOLDEN_EVENTS);
    assert!((cost.total_gpu_seconds - GOLDEN_GPU_SECONDS).abs() < 1e-6);
    assert_eq!(cost.per_class[0].provisioned, GOLDEN_PROVISIONED);
    assert_eq!(cost.per_class[0].retired, GOLDEN_RETIRED);
}

#[test]
fn fixed_mode_is_free_and_elastic_modes_bill() {
    let mut cfg = golden_cfg();
    cfg.duration_s = 30;
    let fixed = run_mode(&cfg, ElasticMode::Fixed);
    assert!(fixed.cost.is_none(), "fixed fleets carry no billing");
    for mode in [
        ElasticMode::StaticPeak,
        ElasticMode::StaticMean,
        ElasticMode::Autoscale,
    ] {
        let point = run_mode(&cfg, mode);
        let cost = point.cost.expect("elastic modes bill");
        assert!(cost.total_dollars > 0.0, "{mode:?} must report dollars");
        assert!(cost.total_gpu_seconds > 0.0);
    }
    // Static-mean provisions fewer workers than static-peak and costs less.
    let peak = run_mode(&cfg, ElasticMode::StaticPeak);
    let mean = run_mode(&cfg, ElasticMode::StaticMean);
    assert!(mean.cost.as_ref().unwrap().total_dollars < peak.cost.as_ref().unwrap().total_dollars);
}

#[test]
fn sweep_csv_carries_cost_columns_for_elastic_points() {
    let sc = scenario::find("elastic_diurnal").expect("registered");
    let mut cfg = golden_cfg();
    cfg.duration_s = 30;
    let fixed_cfg = ExperimentConfig {
        elastic: ElasticMode::Fixed,
        ..cfg.clone()
    };
    let points = vec![scenario_point(sc, &cfg), scenario_point(sc, &fixed_cfg)];
    let results: Vec<_> = points.iter().map(|p| p.execute()).collect();
    let csv = sweep_csv(sc.name, &points, &results);
    let lines: Vec<&str> = csv.lines().collect();
    let header: Vec<&str> = lines[0].split(',').collect();
    for column in ["elastic", "gpu_hours", "cost_usd", "cost_per_1k"] {
        assert!(header.contains(&column), "missing {column} in {header:?}");
    }
    let cost_col = header.iter().position(|c| *c == "cost_usd").unwrap();
    let elastic_col = header.iter().position(|c| *c == "elastic").unwrap();
    let autoscale_row: Vec<&str> = lines[1].split(',').collect();
    let fixed_row: Vec<&str> = lines[2].split(',').collect();
    assert_eq!(autoscale_row[elastic_col], "autoscale");
    assert!(autoscale_row[cost_col].parse::<f64>().unwrap() > 0.0);
    assert_eq!(fixed_row[elastic_col], "fixed");
    assert_eq!(fixed_row[cost_col].parse::<f64>().unwrap(), 0.0);
}

#[test]
fn mixed_catalog_provisions_the_cheaper_class() {
    // On the mixed catalog the autoscaler reasons in reference-worker
    // equivalents: scale-ups pick the budget class (effective price 2.25 vs
    // premium 3.0) while the fleet bound leaves capacity room, switch to
    // premium when slots get scarce, and drains retire the most expensive
    // effective class (premium) first — so the cost report shows both
    // classes provisioned, each with its own billing row.
    let cfg = ExperimentConfig {
        classes: GpuClassProfile::Mixed,
        cluster_size: 20,
        peak_qps: 300.0,
        base_qps: 40.0,
        ..golden_cfg()
    };
    let point = run_mode(&cfg, ElasticMode::Autoscale);
    let cost = point.cost.expect("cost");
    assert_eq!(cost.per_class.len(), 2);
    assert_eq!(cost.per_class[0].class, "premium");
    assert_eq!(cost.per_class[1].class, "budget");
    assert!(
        cost.per_class[1].provisioned > 0,
        "slot-unconstrained scale-ups must pick the cheaper effective class: {cost:?}"
    );
    assert!(
        cost.per_class[0].retired > 0,
        "drains must retire the most expensive effective class first: {cost:?}"
    );
    assert!(cost.per_class[0].dollars > 0.0 && cost.per_class[1].dollars > 0.0);
}

// Golden values for the scaled-down autoscaled diurnal run (pinned when the
// elastic subsystem landed): 180 s compressed day, 600 QPS peak, 12-worker
// peak fleet, seed 42. Billing is exact (same-seed runs reproduce GPU-seconds
// bit-for-bit).
// Re-pinned when the autoscaler's demand target became calibrated to the
// experiment's own sizing (qps_per_worker = peak QPS / peak fleet, 50 here
// instead of the registry default's 75): the scaled-down run now holds a
// proportionally larger fleet through the shoulders.
const GOLDEN_ARRIVALS: u64 = 59_840;
const GOLDEN_ON_TIME: u64 = 45_815;
const GOLDEN_LATE: u64 = 1_508;
const GOLDEN_DROPPED: u64 = 12_517;
const GOLDEN_EVENTS: u64 = 283_714;
const GOLDEN_GPU_SECONDS: f64 = 1509.986425;
const GOLDEN_PROVISIONED: u64 = 8;
const GOLDEN_RETIRED: u64 = 10;
