//! The `multi_` scenario family: acceptance and determinism guards.
//!
//! * `contended_beats_static_even_split`: the headline acceptance property —
//!   under the skewed traffic+social mix, the contended Resource Manager must
//!   beat a naive 50/50 split on aggregate SLO attainment.
//! * `multi_traffic_social_golden`: a pinned same-seed snapshot of the
//!   flagship scenario (scaled down), per pipeline. Any engine or arbiter
//!   change that alters multi-pipeline behaviour trips this and must justify
//!   re-pinning.
//! * Registry/report plumbing: per-pipeline rows in sweep CSV and the JSON
//!   report path.

use loki_bench::report::sweep_csv;
use loki_bench::scenario::{self, scenario_point, LaneSet, MultiMode, ScenarioKind};
use loki_bench::ExperimentConfig;

/// The registry-default skewed-demand config. The full 300 s matters: the
/// compressed diurnal ramp is steep, and shorter runs turn control-plane lag
/// into the dominant effect for *both* arbiters.
fn short_cfg(sc: &scenario::Scenario) -> ExperimentConfig {
    sc.config()
}

fn slo_attainment(s: &loki_sim::RunSummary) -> f64 {
    let finished = s.total_on_time + s.total_late + s.total_dropped;
    if finished == 0 {
        0.0
    } else {
        s.total_on_time as f64 / finished as f64
    }
}

#[test]
fn multi_family_is_registered_with_modes() {
    for (name, mode) in [
        ("multi_traffic_social", MultiMode::Contended),
        ("multi_static_split", MultiMode::StaticEven),
        ("multi_oracle_split", MultiMode::OracleSplit),
    ] {
        let sc = scenario::find(name).unwrap_or_else(|| panic!("{name} missing from registry"));
        assert_eq!(
            sc.kind,
            ScenarioKind::MultiPipeline(mode, LaneSet::TrafficSocial)
        );
        let spec = sc.multi_spec().expect("multi scenarios carry a spec");
        assert_eq!(spec.mode, mode);
        assert_eq!(spec.lanes.len(), 2);
        assert_eq!(spec.lanes[0].name, "traffic");
        assert_eq!(spec.lanes[1].name, "social");
    }
    // Single-pipeline scenarios carry none.
    assert!(scenario::find("fig5_traffic")
        .unwrap()
        .multi_spec()
        .is_none());
}

#[test]
fn zipf_scenario_registers_sixteen_lanes_with_zipf_demand() {
    let sc = scenario::find("multi_zipf_16").expect("multi_zipf_16 registered");
    assert_eq!(
        sc.kind,
        ScenarioKind::MultiPipeline(MultiMode::Contended, LaneSet::Zipf16)
    );
    let spec = sc.multi_spec().expect("zipf scenario carries a spec");
    assert_eq!(spec.lanes.len(), 16);
    // Zipf demand shares: strictly decreasing by rank, normalised to 1.
    let shares: Vec<f64> = spec.lanes.iter().map(|l| l.demand_share).collect();
    for pair in shares.windows(2) {
        assert!(
            pair[0] > pair[1],
            "shares must decrease by rank: {shares:?}"
        );
    }
    let total: f64 = shares.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "shares sum to 1, got {total}");
    // Lane names are unique (they key per-pipeline report rows).
    let mut names: Vec<&str> = spec.lanes.iter().map(|l| l.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 16);
}

#[test]
fn contended_beats_static_even_split_on_aggregate_slo_attainment() {
    let contended_sc = scenario::find("multi_traffic_social").unwrap();
    let static_sc = scenario::find("multi_static_split").unwrap();
    let contended = scenario_point(contended_sc, &short_cfg(contended_sc)).execute();
    let static_even = scenario_point(static_sc, &short_cfg(static_sc)).execute();

    let contended_attain = slo_attainment(&contended.result.summary);
    let static_attain = slo_attainment(&static_even.result.summary);
    assert!(
        contended_attain > static_attain,
        "contended Resource Manager ({contended_attain:.4}) must beat the naive 50/50 \
         split ({static_attain:.4}) on aggregate SLO attainment under skewed demand"
    );
    // The skew is the mechanism: the static split pins traffic to half the
    // cluster, which cannot serve the 1600 QPS peak even at minimum accuracy.
    let static_traffic = &static_even.per_pipeline[0];
    assert_eq!(static_traffic.name, "traffic");
    assert!(
        slo_attainment(&static_traffic.summary) < 0.8,
        "the 50/50 split should starve traffic at peak, got {:?}",
        static_traffic.summary
    );
    let contended_traffic = &contended.per_pipeline[0];
    assert!(
        slo_attainment(&contended_traffic.summary) > 0.85,
        "the contended manager should serve traffic, got {:?}",
        contended_traffic.summary
    );
    // Both runs served both pipelines' arrival streams.
    for point in [&contended, &static_even] {
        assert_eq!(point.per_pipeline.len(), 2);
        let stats = point.multi_stats.as_ref().expect("multi stats");
        assert!(!stats.arbiter.is_empty());
        for lane in &point.per_pipeline {
            assert!(lane.summary.total_arrivals > 0, "{} idle", lane.name);
        }
    }
}

#[test]
fn multi_traffic_social_golden() {
    let sc = scenario::find("multi_traffic_social").unwrap();
    let point = scenario_point(sc, &short_cfg(sc)).execute();
    let traffic = &point.per_pipeline[0].summary;
    let social = &point.per_pipeline[1].summary;
    println!("golden candidate traffic: {traffic:?}");
    println!("golden candidate social:  {social:?}");
    println!(
        "golden candidate stats: {:?} total_events {}",
        point.multi_stats, point.result.summary.events_processed
    );
    assert_eq!(traffic.total_arrivals, GOLDEN_TRAFFIC_ARRIVALS);
    assert_eq!(traffic.total_on_time, GOLDEN_TRAFFIC_ON_TIME);
    assert_eq!(traffic.total_late, GOLDEN_TRAFFIC_LATE);
    assert_eq!(traffic.total_dropped, GOLDEN_TRAFFIC_DROPPED);
    assert_eq!(traffic.events_processed, GOLDEN_TRAFFIC_EVENTS);
    assert_eq!(social.total_arrivals, GOLDEN_SOCIAL_ARRIVALS);
    assert_eq!(social.total_on_time, GOLDEN_SOCIAL_ON_TIME);
    assert_eq!(social.total_late, GOLDEN_SOCIAL_LATE);
    assert_eq!(social.total_dropped, GOLDEN_SOCIAL_DROPPED);
    assert_eq!(social.events_processed, GOLDEN_SOCIAL_EVENTS);
}

// Golden values pinned when the multi-pipeline subsystem landed: the flagship
// contended scenario at its registry-default config (300 s, seed 42). The
// per-lane event counts exclude cluster-level rebalance ticks by design.
const GOLDEN_TRAFFIC_ARRIVALS: u64 = 271_526;
const GOLDEN_TRAFFIC_ON_TIME: u64 = 243_175;
const GOLDEN_TRAFFIC_LATE: u64 = 7_436;
const GOLDEN_TRAFFIC_DROPPED: u64 = 20_915;
const GOLDEN_TRAFFIC_EVENTS: u64 = 1_285_499;
const GOLDEN_SOCIAL_ARRIVALS: u64 = 19_949;
const GOLDEN_SOCIAL_ON_TIME: u64 = 18_586;
const GOLDEN_SOCIAL_LATE: u64 = 684;
const GOLDEN_SOCIAL_DROPPED: u64 = 679;
const GOLDEN_SOCIAL_EVENTS: u64 = 92_874;

#[test]
fn sweep_csv_emits_per_pipeline_rows_for_multi_points() {
    let sc = scenario::find("multi_traffic_social").unwrap();
    let mut cfg = short_cfg(sc);
    cfg.duration_s = 20;
    cfg.drain_s = 5.0;
    cfg.peak_qps = 300.0;
    cfg.base_qps = 100.0;
    let points = vec![scenario_point(sc, &cfg)];
    let results: Vec<_> = points.iter().map(|p| p.execute()).collect();
    let csv = sweep_csv(sc.name, &points, &results);
    let lines: Vec<&str> = csv.lines().collect();
    // header + point + one row per pipeline
    assert_eq!(lines.len(), 4, "{csv}");
    let columns = lines[0].split(',').count();
    for line in &lines {
        assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
    }
    assert!(lines[1].contains(",point,"));
    assert!(lines[2].contains(",pipeline,") && lines[2].contains("/traffic,"));
    assert!(lines[3].contains(",pipeline,") && lines[3].contains("/social,"));
}
