//! Bench-layer guard for the sharded engine: every registered multi-pipeline
//! scenario must produce bit-identical results at every `jobs` setting.
//!
//! The sim-level identity tests (`loki_sim/tests/parallel_identity.rs`) pin
//! the engine under synthetic controllers; this test pins the full bench
//! stack — registry scenario, real Loki controllers per lane, Resource
//! Manager arbitration — at scaled-down durations, for `jobs ∈ {1, 2, 4}`
//! across seeds. Wall-clock fields (`wall_s`, `lane_wall_s`,
//! `barrier_wait_s`, controller timing) are host measurements and excluded.

use loki_bench::scenario::{self, scenario_point, PointResult};
use loki_bench::ExperimentConfig;

/// A scaled-down config for identity runs: short duration, modest load, one
/// run per point (bit-identity needs no best-of-N).
fn short_cfg(sc: &scenario::Scenario, seed: u64) -> ExperimentConfig {
    let mut cfg = sc.config();
    cfg.duration_s = 20;
    cfg.drain_s = 5.0;
    cfg.peak_qps = 300.0;
    cfg.base_qps = 100.0;
    cfg.runs = 1;
    cfg.seed = seed;
    cfg
}

fn run(sc: &scenario::Scenario, seed: u64, jobs: usize) -> PointResult {
    let mut cfg = short_cfg(sc, seed);
    cfg.jobs = jobs;
    scenario_point(sc, &cfg).execute()
}

/// Compare everything deterministic about two multi-pipeline points.
fn assert_identical(a: &PointResult, b: &PointResult, what: &str) {
    assert_eq!(
        a.result.summary, b.result.summary,
        "{what}: aggregate summary"
    );
    assert_eq!(
        a.result.intervals, b.result.intervals,
        "{what}: aggregate interval series"
    );
    assert_eq!(a.arrivals, b.arrivals, "{what}: arrivals");
    assert_eq!(
        a.per_pipeline.len(),
        b.per_pipeline.len(),
        "{what}: lane count"
    );
    for (lane_a, lane_b) in a.per_pipeline.iter().zip(&b.per_pipeline) {
        assert_eq!(lane_a.name, lane_b.name, "{what}: lane order");
        assert_eq!(
            lane_a.summary, lane_b.summary,
            "{what}: lane {} summary",
            lane_a.name
        );
    }
    let (stats_a, stats_b) = (
        a.multi_stats.as_ref().expect("multi stats"),
        b.multi_stats.as_ref().expect("multi stats"),
    );
    assert_eq!(stats_a.arbiter, stats_b.arbiter, "{what}: arbiter");
    assert_eq!(stats_a.rebalances, stats_b.rebalances, "{what}: rebalances");
    assert_eq!(stats_a.migrations, stats_b.migrations, "{what}: migrations");
}

#[test]
fn multi_traffic_social_is_bit_identical_across_jobs_and_seeds() {
    let sc = scenario::find("multi_traffic_social").unwrap();
    for seed in [7, 11, 42] {
        let serial = run(sc, seed, 1);
        assert!(serial.result.summary.total_arrivals > 0);
        for jobs in [2, 4] {
            let parallel = run(sc, seed, jobs);
            assert_identical(
                &serial,
                &parallel,
                &format!("multi_traffic_social seed {seed} jobs {jobs}"),
            );
        }
    }
}

#[test]
fn multi_zipf_16_is_bit_identical_across_jobs() {
    let sc = scenario::find("multi_zipf_16").unwrap();
    let serial = run(sc, 42, 1);
    assert_eq!(serial.per_pipeline.len(), 16);
    assert!(serial.result.summary.total_arrivals > 0);
    for jobs in [2, 4] {
        let parallel = run(sc, 42, jobs);
        assert_identical(&serial, &parallel, &format!("multi_zipf_16 jobs {jobs}"));
    }
}
