//! Pins the `route=` axis semantics end-to-end.
//!
//! Two guarantees ride on this file. First, `route=link-aware` must actually
//! *win* on a heterogeneous interconnect: on the two-tier hetnet profile
//! (0.2 ms intra-class hops, 5 ms across the tier boundary) with a tight SLO,
//! keeping chains inside an interconnect class and budgeting the SLO per hop
//! must convert into strictly better SLO attainment than accuracy-only
//! ordering. Second, `route=link-aware` must be a no-op on a homogeneous
//! interconnect: with uniform links the stable candidate sort never reorders
//! anything and the hop budgets collapse to the legacy scalar, so summaries
//! are bit-identical to `route=accuracy` — which is what lets the flag default
//! on without re-pinning any determinism golden.

use loki_bench::scenario::{self, RunPoint};
use loki_bench::LinkProfile;
use loki_sim::RouteMode;

/// A small, deterministic hetnet point: 300 QPS for 30 s on 20 workers striped
/// over the two-tier interconnect, with an SLO tight enough (100 ms) that the
/// ~5 ms-per-hop tier-crossing tax shows up as lateness.
fn hetnet_point(route: RouteMode) -> RunPoint {
    let sc = scenario::find("traffic_hetnet").expect("traffic_hetnet registered");
    let mut cfg = sc.config();
    cfg.cluster_size = 20;
    cfg.duration_s = 30;
    cfg.peak_qps = 300.0;
    cfg.base_qps = 300.0;
    cfg.slo_ms = 100.0;
    cfg.route = route;
    let mut point = scenario::scenario_point(sc, &cfg);
    point.label = format!("hetnet route={}", route.label());
    point
}

#[test]
fn link_aware_routing_beats_accuracy_only_on_the_two_tier_hetnet() {
    let accuracy = hetnet_point(RouteMode::Accuracy).execute().result.summary;
    let link_aware = hetnet_point(RouteMode::LinkAware).execute().result.summary;

    assert_eq!(accuracy.total_arrivals, link_aware.total_arrivals);
    assert!(
        accuracy.total_late + accuracy.total_dropped > 0,
        "the pin needs a config where accuracy-only routing actually violates \
         the SLO (got a clean run; tighten the SLO or raise demand)"
    );
    assert!(
        link_aware.total_on_time > accuracy.total_on_time,
        "link-aware must improve SLO attainment on the two-tier interconnect: \
         on_time {} (link-aware) vs {} (accuracy)",
        link_aware.total_on_time,
        accuracy.total_on_time
    );
    assert!(
        link_aware.slo_violation_ratio < accuracy.slo_violation_ratio,
        "link-aware must lower the violation ratio: {} vs {}",
        link_aware.slo_violation_ratio,
        accuracy.slo_violation_ratio
    );
    // The win must come from routing, not from trading accuracy away.
    assert!(link_aware.system_accuracy >= accuracy.system_accuracy - 1e-9);
}

#[test]
fn link_aware_is_bit_identical_to_accuracy_on_uniform_links() {
    let mut a = hetnet_point(RouteMode::Accuracy);
    let mut b = hetnet_point(RouteMode::LinkAware);
    a.cfg.links = LinkProfile::Uniform;
    b.cfg.links = LinkProfile::Uniform;
    let a = a.execute().result.summary;
    let b = b.execute().result.summary;
    assert_eq!(a, b, "uniform links must make route= a no-op");
}

#[test]
fn hetnet_linkaware_scenario_differs_from_hetnet_only_in_route() {
    let base = scenario::find("traffic_hetnet").unwrap().config();
    let aware = scenario::find("traffic_hetnet_linkaware").unwrap().config();
    assert_eq!(base.route, RouteMode::Accuracy);
    assert_eq!(aware.route, RouteMode::LinkAware);
    let rebased = loki_bench::ExperimentConfig {
        route: RouteMode::Accuracy,
        ..aware
    };
    assert_eq!(rebased, base);
}
