//! Integration tests for the Scenario subsystem: deterministic grid enumeration and
//! the core guarantee of the parallel runner — summaries bit-identical to serial
//! execution for the same seeds.

use loki_bench::runner::Runner;
use loki_bench::scenario::{self, ControllerSpec};
use loki_bench::sweep::Sweep;
use loki_bench::ExperimentConfig;

/// A short fig8-style SLO×seed grid (kept small so the suite stays fast).
fn short_slo_sweep() -> Sweep {
    let sc = scenario::find("fig8_slo_sweep").expect("fig8 registered");
    let cfg = ExperimentConfig {
        duration_s: 20,
        peak_qps: 200.0,
        base_qps: 120.0,
        drain_s: 10.0,
        ..sc.config()
    };
    let mut sweep = Sweep::for_scenario(sc, cfg);
    sweep.set_axis("slo", "200,300").expect("slo axis");
    sweep.set_axis("seed", "7,8").expect("seed axis");
    sweep
}

#[test]
fn sweep_grid_enumeration_is_deterministic() {
    let sweep = short_slo_sweep();
    assert_eq!(sweep.len(), 4);
    let a = sweep.points();
    let b = sweep.points();
    assert_eq!(a, b, "two enumerations of the same grid must be identical");
    // The enumeration order is the documented nesting: slo outer, seed inner.
    let keys: Vec<(f64, u64)> = a.iter().map(|p| (p.cfg.slo_ms, p.cfg.seed)).collect();
    assert_eq!(keys, vec![(200.0, 7), (200.0, 8), (300.0, 7), (300.0, 8)]);
}

#[test]
fn parallel_runner_matches_serial_bit_for_bit() {
    let sweep = short_slo_sweep();
    let serial = Runner::serial().run(sweep.points());
    let parallel = Runner::with_jobs(3).run(sweep.points());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label, "parallel results must keep input order");
        // `RunSummary` is `PartialEq` over every counter and float: bit-identical.
        assert_eq!(
            s.result.summary, p.result.summary,
            "parallel summary diverged from serial for {}",
            s.label
        );
        assert_eq!(s.result.intervals.len(), p.result.intervals.len());
        assert!(s.result.summary.total_arrivals > 0);
    }
}

#[test]
fn comparison_points_run_all_three_systems_in_parallel() {
    let sc = scenario::find("smoke").expect("smoke registered");
    let mut cfg = sc.config();
    cfg.duration_s = 20;
    let mut sweep = Sweep::for_scenario(sc, cfg);
    sweep
        .set_axis("controllers", "loki-greedy,inferline,proteus")
        .unwrap();
    let results = Runner::with_jobs(2).run(sweep.points());
    assert_eq!(results.len(), 3);
    let labels: Vec<_> = results.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, vec!["loki-greedy", "inferline", "proteus"]);
    for r in &results {
        assert!(r.result.summary.total_arrivals > 0, "{} idle", r.label);
    }
}

#[test]
fn fresh_controllers_per_point_keep_milp_and_greedy_separate() {
    let graph = scenario::PipelineSpec::Traffic.build(250.0);
    // Building twice from the same spec must not share state: both start with
    // zeroed stats.
    for spec in [ControllerSpec::LokiGreedy, ControllerSpec::LokiMilp] {
        let a = spec.build(
            &graph,
            None,
            &loki_sim::LinkDelayModel::Uniform,
            loki_sim::RouteMode::Accuracy,
        );
        let b = spec.build(
            &graph,
            None,
            &loki_sim::LinkDelayModel::Uniform,
            loki_sim::RouteMode::Accuracy,
        );
        assert_eq!(a.controller_stats().unwrap().allocations, 0);
        assert_eq!(b.controller_stats().unwrap().allocations, 0);
    }
}
