//! The `spot_` scenario family: the elastic diurnal day on an adversarial
//! cloud. Pins the headline the family exists to demonstrate — under nonzero
//! revocations the forecasting provisioner beats the reactive autoscaler on
//! SLO attainment at equal-or-lower cost, and the spot-enabled fleet
//! undercuts the all-on-demand fleet's dollars at comparable attainment —
//! plus the registry entry, config keys, sweep axes, and CSV plumbing.

use loki_bench::report::sweep_csv;
use loki_bench::scenario::{self, scenario_point, PointResult, ScenarioKind};
use loki_bench::{ExperimentConfig, ProvisionerKind};
use loki_sim::RunSummary;

fn slo_attainment(s: &RunSummary) -> f64 {
    let finished = s.total_on_time + s.total_late + s.total_dropped;
    s.total_on_time as f64 / finished.max(1) as f64
}

/// One fleet of the `spot_family` comparison (mirrors the executor's triple).
fn run_fleet(spot: bool, provisioner: ProvisionerKind) -> PointResult {
    let sc = scenario::find("spot_diurnal").expect("registered");
    let base = sc.config();
    let cfg = ExperimentConfig {
        spot,
        provisioner,
        // The on-demand baseline lives on the friendly cloud: no spot classes
        // means no revocations or stockouts to survive.
        revoke_per_hour: if spot { base.revoke_per_hour } else { 0.0 },
        stockout: if spot { base.stockout } else { 0.0 },
        ..base
    };
    scenario_point(sc, &cfg).execute()
}

#[test]
fn spot_family_is_registered_with_config_keys_and_axes() {
    let sc = scenario::find("spot_diurnal").expect("registered");
    assert_eq!(sc.kind, ScenarioKind::Spot);
    let cfg = sc.config();
    assert!(cfg.spot);
    assert!(cfg.revoke_per_hour > 0.0);
    assert!(cfg.stockout > 0.0);
    assert_eq!(cfg.provisioner, ProvisionerKind::Forecast);

    // Config keys parse strictly.
    let mut over = ExperimentConfig::default();
    over.apply_overrides([
        "spot=true",
        "revoke=8.5",
        "stockout=0.1",
        "provisioner=forecast",
    ])
    .expect("valid overrides");
    assert!(over.spot);
    assert_eq!(over.revoke_per_hour, 8.5);
    assert_eq!(over.stockout, 0.1);
    assert_eq!(over.provisioner, ProvisionerKind::Forecast);
    assert!(over.set("spot", "maybe").is_err());
    assert!(over.set("revoke", "-1").is_err());
    assert!(over.set("stockout", "1.5").is_err());
    assert!(over.set("provisioner", "oracle").is_err());
    for kind in ProvisionerKind::ALL {
        assert_eq!(ProvisionerKind::from_name(kind.name()), Some(kind));
    }

    // The market sweep axes enumerate with deterministic labels.
    let mut sweep = loki_bench::sweep::Sweep::for_scenario(sc, sc.config());
    assert_eq!(sweep.provisioner, vec![ProvisionerKind::Forecast]);
    sweep.set_axis("revoke", "0,6,12").expect("valid axis");
    sweep
        .set_axis("provisioner", "reactive,forecast")
        .expect("valid axis");
    assert!(sweep.set_axis("revoke", "-2").is_err());
    assert!(sweep.set_axis("stockout", "2").is_err());
    assert!(sweep.set_axis("provisioner", "oracle").is_err());
    assert_eq!(sweep.len(), 6);
    let points = sweep.points();
    assert_eq!(points.len(), 6);
    assert!(points[0].label.contains("revoke=0"));
    assert!(points[0].label.contains("provisioner=reactive"));
    assert!(points[5].label.contains("revoke=12"));
    assert!(points[5].label.contains("provisioner=forecast"));
}

/// The tentpole headline, pinned at the scenario's default configuration.
/// Deterministic per seed, so the comparisons hold exactly — re-examine the
/// provisioner (not just this test) if a change flips them.
#[test]
fn forecast_beats_reactive_and_spot_undercuts_ondemand() {
    let ondemand = run_fleet(false, ProvisionerKind::Reactive);
    let reactive = run_fleet(true, ProvisionerKind::Reactive);
    let forecast = run_fleet(true, ProvisionerKind::Forecast);

    let od_cost = ondemand.cost.as_ref().expect("cost");
    let re_cost = reactive.cost.as_ref().expect("cost");
    let fc_cost = forecast.cost.as_ref().expect("cost");

    // The market actually bites: the spot fleets suffer revocations, and the
    // friendly-cloud baseline never sees one.
    assert!(re_cost.revocations > 0);
    assert!(fc_cost.revocations > 0);
    assert_eq!(od_cost.revocations, 0);
    assert_eq!(od_cost.spot_dollars, 0.0);
    assert!(fc_cost.spot_dollars > 0.0);
    assert!(fc_cost.ondemand_dollars > 0.0);

    // Headline 1: prediction beats reaction under revocations, on attainment
    // AND dollars.
    let re_attain = slo_attainment(&reactive.result.summary);
    let fc_attain = slo_attainment(&forecast.result.summary);
    assert!(
        fc_attain > re_attain,
        "forecast must beat reactive on SLO attainment under revocations: \
         {fc_attain:.4} vs {re_attain:.4}"
    );
    assert!(
        fc_cost.total_dollars <= re_cost.total_dollars,
        "forecast must cost no more than reactive: {} vs {}",
        fc_cost.total_dollars,
        re_cost.total_dollars
    );

    // Headline 2: the spot fleet undercuts all-on-demand dollars at
    // attainment within one point.
    let od_attain = slo_attainment(&ondemand.result.summary);
    assert!(
        fc_cost.total_dollars < 0.6 * od_cost.total_dollars,
        "spot must undercut all-on-demand by >= 40%: {} vs {}",
        fc_cost.total_dollars,
        od_cost.total_dollars
    );
    assert!(
        od_attain - fc_attain <= 0.01,
        "spot attainment must stay within one point of all-on-demand: \
         {fc_attain:.4} vs {od_attain:.4}"
    );
}

#[test]
fn sweep_csv_carries_market_columns() {
    let sc = scenario::find("spot_diurnal").expect("registered");
    // A small fast grid: short run, both provisioners.
    let mut cfg = sc.config();
    cfg.apply_overrides(["duration=60", "peak=300", "cluster=6"])
        .expect("valid overrides");
    let mut sweep = loki_bench::sweep::Sweep::for_scenario(sc, cfg);
    sweep
        .set_axis("provisioner", "reactive,forecast")
        .expect("valid axis");
    let points: Vec<_> = sweep
        .points()
        .into_iter()
        .map(|p| scenario_point(sc, &p.cfg))
        .collect();
    let results: Vec<_> = points.iter().map(|p| p.execute()).collect();
    let csv = sweep_csv(sc.name, &points, &results);
    let header = csv.lines().next().expect("header");
    for column in [
        "spot",
        "revoke",
        "stockout",
        "provisioner",
        "revocations",
        "stockouts",
        "spot_usd",
        "ondemand_usd",
    ] {
        assert!(header.contains(column), "missing CSV column {column}");
    }
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rows.len(), 2);
    assert!(rows[0].contains("reactive"));
    assert!(rows[1].contains("forecast"));
    // Every row is fully populated (same field count as the header).
    let fields = header.split(',').count();
    for row in rows {
        assert_eq!(row.split(',').count(), fields, "ragged CSV row: {row}");
    }
}
