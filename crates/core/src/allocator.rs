//! The Resource-Manager allocation interface shared by the greedy and MILP engines.

use crate::config::{AllocatorBackend, LokiConfig};
use crate::greedy::GreedyAllocator;
use crate::milp_alloc::MilpAllocator;
use crate::perf::FanoutOverrides;
use loki_pipeline::PipelineGraph;
use loki_sim::{AllocationPlan, DropPolicy, HopBudgets};
use serde::{Deserialize, Serialize};

/// Which regime the Resource Manager ended up in for a given demand level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingMode {
    /// The demand fits on a subset of the cluster with the most accurate variants:
    /// hardware scaling minimizes the number of active servers (Step 1, Eq. 11).
    Hardware,
    /// The demand exceeds the cluster's capacity at maximum accuracy: accuracy scaling
    /// maximizes system accuracy subject to serving the demand (Step 2, Eq. 12).
    Accuracy,
    /// The demand exceeds the cluster's capacity even at minimum accuracy: the plan
    /// provisions for the maximum servable demand and the excess will be dropped or
    /// delayed by the data plane.
    Saturated,
}

/// Everything an allocator needs to produce a plan.
#[derive(Debug, Clone)]
pub struct AllocationContext<'a> {
    /// The pipeline being served.
    pub graph: &'a PipelineGraph,
    /// Number of workers in the cluster (`S`).
    pub cluster_size: usize,
    /// Estimated root demand to provision for (QPS).
    pub demand_qps: f64,
    /// Observed fan-out overrides from worker heartbeats.
    pub fanout: &'a FanoutOverrides,
    /// Drop policy to embed in the produced plan.
    pub drop_policy: DropPolicy,
    /// SLO headroom divisor (2.0 in the paper).
    pub slo_divisor: f64,
    /// Per-hop communication latency budgets (uniform when derived from the scalar
    /// `comm_latency_ms`, per-edge under link-aware routing).
    pub budgets: HopBudgets,
    /// Whether to spend leftover servers on upgrading a fraction of traffic.
    pub upgrade_with_leftover: bool,
}

/// The result of one Resource-Manager allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationOutcome {
    /// The plan handed to the data plane.
    pub plan: AllocationPlan,
    /// Which scaling regime produced it.
    pub mode: ScalingMode,
    /// Number of servers the plan activates.
    pub servers_used: usize,
    /// Expected end-to-end system accuracy under this plan (assuming MostAccurateFirst
    /// routing saturates the most accurate instances first).
    pub expected_accuracy: f64,
    /// The demand (QPS) the plan was provisioned for.
    pub demand_planned: f64,
    /// The maximum demand (QPS) the plan can actually absorb.
    pub servable_demand: f64,
}

/// A Resource-Manager allocation engine.
pub trait Allocator {
    /// Human-readable engine name.
    fn name(&self) -> &str;
    /// Produce an allocation for the given context.
    fn allocate(&self, ctx: &AllocationContext<'_>) -> AllocationOutcome;
}

/// The concrete allocator selected by [`LokiConfig::backend`].
#[derive(Debug, Clone)]
pub enum AllocatorKind {
    /// Fast greedy allocation (also the MILP warm start).
    Greedy(GreedyAllocator),
    /// Exact MILP allocation via `loki-milp`.
    Milp(MilpAllocator),
}

impl AllocatorKind {
    /// Build the allocator requested by a configuration.
    pub fn from_config(config: &LokiConfig) -> Self {
        match config.backend {
            AllocatorBackend::Greedy => AllocatorKind::Greedy(GreedyAllocator::new()),
            AllocatorBackend::Milp => AllocatorKind::Milp(MilpAllocator::new(
                config.milp_time_budget,
                config.milp_node_limit,
            )),
        }
    }
}

impl Allocator for AllocatorKind {
    fn name(&self) -> &str {
        match self {
            AllocatorKind::Greedy(a) => a.name(),
            AllocatorKind::Milp(a) => a.name(),
        }
    }

    fn allocate(&self, ctx: &AllocationContext<'_>) -> AllocationOutcome {
        match self {
            AllocatorKind::Greedy(a) => a.allocate(ctx),
            AllocatorKind::Milp(a) => a.allocate(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_kind_follows_config() {
        let greedy = AllocatorKind::from_config(&LokiConfig::with_greedy());
        assert!(matches!(greedy, AllocatorKind::Greedy(_)));
        assert_eq!(greedy.name(), "greedy");
        let milp = AllocatorKind::from_config(&LokiConfig::with_milp());
        assert!(matches!(milp, AllocatorKind::Milp(_)));
        assert_eq!(milp.name(), "milp");
    }
}
