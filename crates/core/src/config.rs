//! Configuration of the Loki controller.

use loki_sim::{DropPolicy, HopBudgets, LinkDelayModel, RouteMode};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which resource-allocation engine the Resource Manager uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AllocatorBackend {
    /// The exact MILP formulation of Section 4.1, solved with `loki-milp`
    /// (branch-and-bound with the greedy solution as warm start). Matches the paper's
    /// Gurobi-based implementation; slower but optimal.
    Milp,
    /// A greedy allocator that mirrors the structure of the MILP (hardware scaling
    /// first, then pipeline-aware accuracy degradation). Orders of magnitude faster,
    /// near-optimal on the evaluated pipelines, and used as the MILP warm start.
    #[default]
    Greedy,
}

/// Configuration of the Loki controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LokiConfig {
    /// Allocation engine.
    pub backend: AllocatorBackend,
    /// Resource Manager invocation interval in seconds (10 s in the paper).
    pub control_interval_s: f64,
    /// Load Balancer refresh interval in seconds.
    pub routing_interval_s: f64,
    /// Runtime drop policy pushed to the data plane (opportunistic rerouting is Loki's
    /// full mechanism; the alternatives exist for the Figure 7 ablation).
    pub drop_policy: DropPolicy,
    /// Divisor applied to the latency SLO to reserve queueing headroom. The paper
    /// divides the SLO by two ("a query may wait for the current batch to finish
    /// before its own batch starts").
    pub slo_headroom_divisor: f64,
    /// One-way communication latency between servers in milliseconds (subtracted from
    /// the SLO once per hop along a path). Under a non-uniform [`LinkDelayModel`] the
    /// planner budgets with the model's worst-case hop instead (see
    /// [`LokiConfig::effective_comm_ms`]).
    pub comm_latency_ms: f64,
    /// The cluster's per-link delay model, mirrored from
    /// [`loki_sim::SimConfig::link_delays`]. The Resource Manager cannot know which
    /// worker a query will traverse at plan time, so it budgets the SLO with the
    /// worst-case hop delay of this model — conservative, but safe on the slowest
    /// link.
    pub link_delays: LinkDelayModel,
    /// Relative demand change (e.g. 0.05 = 5%) below which the Resource Manager keeps
    /// the previous plan instead of re-allocating.
    pub replan_threshold: f64,
    /// Wall-clock budget for a single MILP solve.
    pub milp_time_budget: Duration,
    /// Maximum branch-and-bound nodes per MILP solve.
    pub milp_node_limit: usize,
    /// When true, spend servers left over after accuracy scaling on upgrading a
    /// fraction of the traffic to more accurate variants.
    pub upgrade_with_leftover: bool,
    /// Multiplier applied to the demand estimate before provisioning, so that workers
    /// run below saturation and queueing delays stay within the SLO headroom (i.e. a
    /// target utilization of `1 / provisioning_margin`).
    pub provisioning_margin: f64,
    /// Relative demand change below which the Load Balancer keeps the previous routing
    /// tables instead of rebuilding them every tick, provided worker assignments and
    /// the adopted fan-out observations are also unchanged. `0.0` disables the cache
    /// (only bit-identical demand estimates reuse tables).
    pub routing_cache_threshold: f64,
    /// Candidate-ordering mode for the Load Balancer. [`RouteMode::Accuracy`] is the
    /// historical most-accurate-first order; [`RouteMode::LinkAware`] additionally
    /// breaks equal-accuracy ties toward replicas on cheap links of `link_delays`, and
    /// switches the planner's SLO accounting from the worst-case-hop scalar to per-hop
    /// budgets (see [`LokiConfig::hop_budgets`]).
    pub route: RouteMode,
}

impl Default for LokiConfig {
    fn default() -> Self {
        Self {
            backend: AllocatorBackend::Greedy,
            control_interval_s: 10.0,
            routing_interval_s: 1.0,
            drop_policy: DropPolicy::OpportunisticRerouting,
            slo_headroom_divisor: 2.0,
            comm_latency_ms: 2.0,
            link_delays: LinkDelayModel::Uniform,
            replan_threshold: 0.05,
            milp_time_budget: Duration::from_millis(800),
            milp_node_limit: 2_000,
            upgrade_with_leftover: true,
            provisioning_margin: 1.25,
            routing_cache_threshold: 0.02,
            route: RouteMode::Accuracy,
        }
    }
}

impl LokiConfig {
    /// The per-hop latency (ms) the planner subtracts from the SLO: the
    /// configured uniform latency under [`LinkDelayModel::Uniform`], the
    /// worst-case hop of the model otherwise.
    pub fn effective_comm_ms(&self) -> f64 {
        self.link_delays.max_hop_ms(self.comm_latency_ms)
    }

    /// The per-hop latency budgets the planner charges against the SLO. Under
    /// [`RouteMode::Accuracy`] this collapses to the historical uniform
    /// worst-case-hop scalar ([`LokiConfig::effective_comm_ms`]), keeping the
    /// allocator bit-identical to previous releases; under
    /// [`RouteMode::LinkAware`] the budgets follow [`LokiConfig::link_delays`]
    /// per edge, so paths on cheap links stop paying for the slowest link in
    /// the cluster.
    pub fn hop_budgets(&self, num_tasks: usize) -> HopBudgets {
        match self.route {
            RouteMode::Accuracy => HopBudgets::uniform(self.effective_comm_ms(), num_tasks),
            RouteMode::LinkAware => self
                .link_delays
                .hop_budgets(self.comm_latency_ms, num_tasks),
        }
    }

    /// A configuration using the exact MILP allocator.
    pub fn with_milp() -> Self {
        Self {
            backend: AllocatorBackend::Milp,
            ..Self::default()
        }
    }

    /// A configuration using the greedy allocator.
    pub fn with_greedy() -> Self {
        Self {
            backend: AllocatorBackend::Greedy,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = LokiConfig::default();
        assert!((c.control_interval_s - 10.0).abs() < 1e-12);
        assert!((c.slo_headroom_divisor - 2.0).abs() < 1e-12);
        assert_eq!(c.drop_policy, DropPolicy::OpportunisticRerouting);
    }

    #[test]
    fn backend_constructors() {
        assert_eq!(LokiConfig::with_milp().backend, AllocatorBackend::Milp);
        assert_eq!(LokiConfig::with_greedy().backend, AllocatorBackend::Greedy);
    }

    #[test]
    fn effective_comm_budgets_the_worst_hop() {
        let mut c = LokiConfig::default();
        assert_eq!(c.effective_comm_ms(), c.comm_latency_ms);
        c.link_delays = LinkDelayModel::PerWorkerClass {
            classes: 2,
            delay_ms: vec![0.2, 5.0, 5.0, 0.2],
            frontend_ms: vec![1.0, 1.0],
        };
        assert_eq!(c.effective_comm_ms(), 5.0);
    }
}
