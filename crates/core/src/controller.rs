//! The Loki controller: glues the Resource Manager (allocation) and the Load Balancer
//! (routing) behind the simulator's [`Controller`] interface, mirroring the Controller
//! component of Figure 4.

use crate::allocator::{AllocationContext, AllocationOutcome, Allocator, AllocatorKind};
use crate::config::LokiConfig;
use crate::load_balancer::{MostAccurateFirst, PlannerWarning};
use crate::perf::FanoutOverrides;
use loki_pipeline::{BatchSize, PipelineGraph, VariantId};
use loki_sim::{AllocationPlan, CompiledPlan, Controller, ObservedState, WorkerId, WorkerView};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Runtime statistics of the control plane, used for the Section 6.5 runtime analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Number of Resource-Manager allocations performed.
    pub allocations: usize,
    /// Total wall-clock time spent in allocation (seconds).
    pub allocation_time_s: f64,
    /// Wall-clock time of the most recent allocation (seconds).
    pub last_allocation_time_s: f64,
    /// Number of Load-Balancer routing computations.
    pub routings: usize,
    /// Total wall-clock time spent computing routing tables (seconds).
    pub routing_time_s: f64,
    /// Of `routing_time_s`, the portion spent emitting the compiled plan itself
    /// (dense table construction), excluding cache bookkeeping.
    pub plan_build_time_s: f64,
    /// Routing ticks on which the cache was consulted (every routing tick with a
    /// populated cache). Tracked separately from hits so the hit ratio stays
    /// meaningful even when a controller is driven outside the simulator loop.
    pub routing_cache_consults: usize,
    /// Routing ticks answered from the cache (demand within the configured deadband
    /// and worker assignments + fan-out unchanged), skipping the table rebuild.
    pub routing_cache_hits: usize,
    /// Warnings from the most recent routing emission: tasks that received demand
    /// but had no routable workers (traffic the data plane can only drop).
    pub routing_warnings: Vec<PlannerWarning>,
    /// Cumulative count of unroutable-task warnings across all emissions.
    pub routing_warnings_total: usize,
}

impl ControllerStats {
    /// Mean allocation time in milliseconds.
    pub fn mean_allocation_ms(&self) -> f64 {
        if self.allocations == 0 {
            0.0
        } else {
            1000.0 * self.allocation_time_s / self.allocations as f64
        }
    }

    /// Mean routing time in milliseconds.
    pub fn mean_routing_ms(&self) -> f64 {
        if self.routings == 0 {
            0.0
        } else {
            1000.0 * self.routing_time_s / self.routings as f64
        }
    }

    /// Fraction of cache consults that were hits. Falls back to
    /// hits / (rebuilds + hits) for stats that predate consult tracking.
    pub fn routing_cache_hit_ratio(&self) -> f64 {
        let total = if self.routing_cache_consults > 0 {
            self.routing_cache_consults
        } else {
            self.routings + self.routing_cache_hits
        };
        if total == 0 {
            0.0
        } else {
            self.routing_cache_hits as f64 / total as f64
        }
    }
}

/// The routing inputs that produced the last built routing plan. A routing tick whose
/// inputs still match (demand within the deadband, identical worker assignments, same
/// adopted fan-out) keeps the engine's current tables instead of rebuilding.
#[derive(Debug, Clone)]
struct RoutingCacheKey {
    demand_qps: f64,
    /// Assignment fields of each worker view; `queue_len` is deliberately excluded
    /// because `MostAccurateFirst` never reads it.
    workers: Vec<(WorkerId, Option<VariantId>, BatchSize, bool)>,
    /// Generation of the adopted fan-out observations (bumped whenever `plan` adopts a
    /// new heartbeat aggregate). Comparing generations avoids cloning the map per tick.
    fanout_generation: u64,
    /// Simulated time of the rebuild. A hit certifies "the engine already holds these
    /// tables", which no longer holds if the controller is moved to a fresh engine —
    /// observed time jumping backwards detects that and invalidates the cache.
    now_s: f64,
}

fn worker_assignments_match(
    cached: &[(WorkerId, Option<VariantId>, BatchSize, bool)],
    current: &[WorkerView],
) -> bool {
    cached.len() == current.len()
        && cached
            .iter()
            .zip(current)
            .all(|(c, w)| *c == (w.id, w.variant, w.max_batch, w.swapping))
}

/// The Loki controller.
pub struct LokiController {
    graph: PipelineGraph,
    config: LokiConfig,
    allocator: AllocatorKind,
    /// The Load Balancer's plan emitter (owns the reusable emission scratch).
    lb: MostAccurateFirst,
    fanout: FanoutOverrides,
    fanout_generation: u64,
    last_outcome: Option<AllocationOutcome>,
    last_planned_demand: f64,
    routing_cache: Option<RoutingCacheKey>,
    /// Runtime statistics (allocation / routing latency, invocation counts).
    pub stats: ControllerStats,
}

impl LokiController {
    /// Create a controller for a pipeline with the given configuration.
    pub fn new(graph: PipelineGraph, config: LokiConfig) -> Self {
        graph.validate().expect("pipeline graph must be valid");
        let allocator = AllocatorKind::from_config(&config);
        Self {
            graph,
            config,
            allocator,
            lb: MostAccurateFirst::default(),
            fanout: FanoutOverrides::new(),
            fanout_generation: 0,
            last_outcome: None,
            last_planned_demand: 0.0,
            routing_cache: None,
            stats: ControllerStats::default(),
        }
    }

    /// The pipeline this controller serves.
    pub fn graph(&self) -> &PipelineGraph {
        &self.graph
    }

    /// The controller configuration.
    pub fn config(&self) -> &LokiConfig {
        &self.config
    }

    /// The most recent allocation outcome, if any.
    pub fn last_outcome(&self) -> Option<&AllocationOutcome> {
        self.last_outcome.as_ref()
    }

    /// Run a one-off allocation for a specific demand and cluster size without going
    /// through the simulator. Used by the Figure 1 phase analysis and by capacity
    /// planning tools.
    pub fn allocate_for_demand(
        &mut self,
        demand_qps: f64,
        cluster_size: usize,
    ) -> AllocationOutcome {
        let ctx = AllocationContext {
            graph: &self.graph,
            cluster_size,
            demand_qps,
            fanout: &self.fanout,
            drop_policy: self.config.drop_policy,
            slo_divisor: self.config.slo_headroom_divisor,
            budgets: self.config.hop_budgets(self.graph.num_tasks()),
            upgrade_with_leftover: self.config.upgrade_with_leftover,
        };
        let start = Instant::now();
        let outcome = self.allocator.allocate(&ctx);
        let elapsed = start.elapsed().as_secs_f64();
        self.stats.allocations += 1;
        self.stats.allocation_time_s += elapsed;
        self.stats.last_allocation_time_s = elapsed;
        self.last_outcome = Some(outcome.clone());
        self.last_planned_demand = demand_qps;
        outcome
    }

    /// The demand estimate to provision for, given the observations.
    fn demand_estimate(&self, observed: &ObservedState<'_>) -> f64 {
        if observed.demand.is_empty() {
            observed.initial_demand_hint.unwrap_or(0.0)
        } else {
            observed
                .demand
                .provisioning_estimate()
                .max(observed.initial_demand_hint.unwrap_or(0.0))
        }
    }

    /// Whether the demand changed enough (or the current plan became insufficient) to
    /// warrant a re-allocation.
    fn needs_replan(&self, demand: f64) -> bool {
        let Some(outcome) = &self.last_outcome else {
            return true;
        };
        let relative_change =
            (demand - self.last_planned_demand).abs() / self.last_planned_demand.max(1.0);
        if relative_change > self.config.replan_threshold {
            return true;
        }
        // The estimate is within the threshold but the plan cannot absorb it.
        demand > outcome.servable_demand * 1.02 && outcome.servable_demand > 0.0
    }
}

impl Controller for LokiController {
    fn name(&self) -> &str {
        "loki"
    }

    fn control_interval_s(&self) -> f64 {
        self.config.control_interval_s
    }

    fn routing_interval_s(&self) -> f64 {
        self.config.routing_interval_s
    }

    fn plan(&mut self, observed: &ObservedState<'_>) -> Option<AllocationPlan> {
        // Heartbeat aggregation: adopt the observed multiplicative factors. The
        // generation bump conservatively invalidates the routing cache (adopted
        // aggregates usually differ between control ticks).
        if !observed.observed_fanout.is_empty() {
            self.fanout = observed.observed_fanout.clone();
            self.fanout_generation += 1;
        }
        // Provision for the estimate times the margin so workers run below saturation.
        let demand = self.demand_estimate(observed) * self.config.provisioning_margin;
        if !self.needs_replan(demand) {
            return None;
        }
        let outcome = self.allocate_for_demand(demand, observed.cluster_size);
        Some(outcome.plan)
    }

    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<CompiledPlan> {
        let demand = self.demand_estimate(observed) * self.config.provisioning_margin;
        // Routing cache: if nothing the table builder reads has changed materially
        // since the last rebuild, keep the engine's current tables (`None`). The
        // deadband is relative to the demand the cached tables were built for, so
        // drift cannot accumulate across consecutive hits.
        if let Some(cache) = &self.routing_cache {
            self.stats.routing_cache_consults += 1;
            let tolerance = self.config.routing_cache_threshold * cache.demand_qps.max(1.0);
            if observed.now_s >= cache.now_s
                && cache.fanout_generation == self.fanout_generation
                && (demand - cache.demand_qps).abs() <= tolerance
                && worker_assignments_match(&cache.workers, observed.workers)
            {
                self.stats.routing_cache_hits += 1;
                return None;
            }
        }
        let start = Instant::now();
        let plan = self.lb.emit_with_route(
            &self.graph,
            observed.workers,
            demand,
            &self.fanout,
            self.config.route,
            &self.config.link_delays,
            self.config.comm_latency_ms,
        );
        let build_s = start.elapsed().as_secs_f64();
        self.stats.routings += 1;
        self.stats.plan_build_time_s += build_s;
        self.stats.routing_warnings = self.lb.warnings().to_vec();
        self.stats.routing_warnings_total += self.lb.warnings().len();
        self.routing_cache = Some(RoutingCacheKey {
            demand_qps: demand,
            workers: observed
                .workers
                .iter()
                .map(|w| (w.id, w.variant, w.max_batch, w.swapping))
                .collect(),
            fanout_generation: self.fanout_generation,
            now_s: observed.now_s,
        });
        self.stats.routing_time_s += start.elapsed().as_secs_f64();
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::ScalingMode;
    use loki_pipeline::zoo;
    use loki_sim::{SimConfig, Simulation};
    use loki_workload::{generate_arrivals, generators, ArrivalProcess};

    /// Maximum demand a 20-worker cluster can absorb with the most accurate variants.
    fn full_cluster_hw_capacity(g: &loki_pipeline::PipelineGraph) -> f64 {
        let perf = crate::perf::PerfModel::new(g, 2.0, 2.0);
        let best: Vec<usize> = g.tasks().map(|(_, t)| t.most_accurate_variant()).collect();
        perf.max_servable_demand(&best, 20, &crate::perf::FanoutOverrides::new())
    }

    #[test]
    fn allocate_for_demand_tracks_phases() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let hw_cap = full_cluster_hw_capacity(&g);
        let mut ctl = LokiController::new(g, LokiConfig::with_greedy());
        let low = ctl.allocate_for_demand(100.0, 20);
        assert_eq!(low.mode, ScalingMode::Hardware);
        let high = ctl.allocate_for_demand(hw_cap * 1.5, 20);
        assert_eq!(high.mode, ScalingMode::Accuracy);
        assert!(ctl.stats.allocations == 2);
        assert!(ctl.stats.mean_allocation_ms() >= 0.0);
        assert!(ctl.last_outcome().is_some());
    }

    #[test]
    fn replan_only_on_significant_demand_change() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let mut ctl = LokiController::new(g, LokiConfig::with_greedy());
        ctl.allocate_for_demand(200.0, 20);
        assert!(
            !ctl.needs_replan(205.0),
            "a 2.5% change should not trigger a replan"
        );
        assert!(ctl.needs_replan(400.0), "a 2x change must trigger a replan");
    }

    #[test]
    fn end_to_end_simulation_with_loki_controller() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let controller = LokiController::new(g.clone(), LokiConfig::with_greedy());
        let trace = generators::constant(40, 120.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 3);
        let config = SimConfig {
            cluster_size: 20,
            control_interval_s: 5.0,
            initial_demand_hint: Some(120.0),
            drain_s: 15.0,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&g, config, controller);
        let result = sim.run(&arrivals);
        assert!(result.summary.total_arrivals > 4000);
        assert!(
            result.summary.slo_violation_ratio < 0.05,
            "violations {}",
            result.summary.slo_violation_ratio
        );
        assert!(
            result.summary.system_accuracy > 0.95,
            "accuracy {}",
            result.summary.system_accuracy
        );
        // Hardware scaling: nowhere near the whole cluster should be needed.
        assert!(result.summary.max_active_workers < 20);
        let ctl = sim.into_controller();
        assert!(ctl.stats.allocations >= 1);
        assert!(ctl.stats.routings >= 1);
    }

    #[test]
    fn routing_cache_skips_rebuilds_at_steady_demand() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let controller = LokiController::new(g.clone(), LokiConfig::with_greedy());
        let trace = generators::constant(60, 150.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 5);
        let config = SimConfig {
            cluster_size: 20,
            initial_demand_hint: Some(150.0),
            drain_s: 10.0,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&g, config, controller);
        sim.run(&arrivals);
        let stats = sim.into_controller().stats;
        // At steady demand, most of the ~60 one-second routing ticks must be served
        // from the cache rather than rebuilding the tables.
        assert!(
            stats.routing_cache_hits > stats.routings,
            "cache hits {} vs rebuilds {}",
            stats.routing_cache_hits,
            stats.routings
        );
        assert!(stats.routing_cache_hit_ratio() > 0.5);
        // Disabling the deadband (exact matching only) must produce far fewer hits.
        let mut strict_cfg = LokiConfig::with_greedy();
        strict_cfg.routing_cache_threshold = 0.0;
        let strict = LokiController::new(g.clone(), strict_cfg);
        let config = SimConfig {
            cluster_size: 20,
            initial_demand_hint: Some(150.0),
            drain_s: 10.0,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&g, config, strict);
        sim.run(&arrivals);
        let strict_stats = sim.into_controller().stats;
        assert!(strict_stats.routings >= stats.routings);
    }

    #[test]
    fn overload_simulation_scales_accuracy_not_violations() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let hw_cap = full_cluster_hw_capacity(&g);
        // Demand well beyond the best-accuracy capacity of the full cluster, but
        // within what accuracy scaling can absorb.
        let mut probe = LokiController::new(g.clone(), LokiConfig::with_greedy());
        let max_cap = probe.allocate_for_demand(100_000.0, 20).servable_demand;
        let demand = (hw_cap * 1.5).min(max_cap * 0.85);
        let controller = LokiController::new(g.clone(), LokiConfig::with_greedy());
        let trace = generators::constant(40, demand);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 17);
        let config = SimConfig {
            cluster_size: 20,
            control_interval_s: 5.0,
            initial_demand_hint: Some(demand),
            drain_s: 20.0,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&g, config, controller);
        let result = sim.run(&arrivals);
        // Accuracy scaling should keep most requests within the SLO while lowering
        // accuracy below the maximum.
        assert!(
            result.summary.slo_violation_ratio < 0.2,
            "violations {}",
            result.summary.slo_violation_ratio
        );
        assert!(result.summary.system_accuracy < g.max_accuracy() - 0.01);
        assert!(result.summary.system_accuracy > g.min_accuracy());
    }
}
