//! The forecasting Provisioner: seasonal demand prediction plus a spot /
//! on-demand hedge over the adversarial cloud market.
//!
//! Where the [`crate::ReactiveAutoscaler`] pays a boot-lag attainment dip on
//! every ramp (it scales when demand has already arrived), the
//! [`ForecastingProvisioner`] fits the workload's seasonal profile online
//! with a windowed per-phase estimator ([`loki_workload::SeasonalEstimator`])
//! and provisions against the demand forecast one boot-delay-plus-margin
//! ahead — capacity is warm when the ramp lands. Against the market's
//! adversity it hedges: spot capacity is bought only up to a share that
//! shrinks with the *observed* revocation rate, so a hostile market shifts
//! the mix toward on-demand before attainment collapses, and a spot price
//! spike pauses spot purchases entirely.
//!
//! The forecast is only trusted while it is earning its keep: the estimator
//! scores its own predictions, and when the rolling forecast error crosses
//! [`ForecastConfig::fallback_error`] the provisioner delegates the tick to
//! its embedded reactive autoscaler (prediction off, reaction on) until the
//! error subsides.

use crate::provisioner::{AutoscalerConfig, ReactiveAutoscaler};
use loki_sim::{DecisionReason, ElasticAction, ElasticObservation, ElasticPolicy};
use loki_workload::SeasonalEstimator;
use serde::{Deserialize, Serialize};

/// Configuration of the [`ForecastingProvisioner`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForecastConfig {
    /// The embedded reactive autoscaler: sizing parameters (`min_fleet`,
    /// `max_fleet`, `qps_per_worker`, `headroom`, pressure thresholds) are
    /// shared, and the whole policy is delegated to it when the forecast
    /// error spikes.
    pub autoscaler: AutoscalerConfig,
    /// Seasonal period of the workload, seconds (one "day" of the trace).
    pub period_s: f64,
    /// Phase bins the period is split into.
    pub num_phases: usize,
    /// How far ahead the provisioner buys capacity, seconds. Cover at least
    /// the catalog's boot delay plus one decide interval, or the pre-boot
    /// lands after the ramp it was meant to absorb.
    pub lead_s: f64,
    /// Rolling forecast error above which the tick falls back to the
    /// reactive autoscaler (symmetric relative error in `[0, 1]`-ish; see
    /// [`SeasonalEstimator::error`]).
    pub fallback_error: f64,
    /// Spot share of the fleet the hedge targets in a calm market. The
    /// default 1.0 is deliberate: the hedge prices *observed* adversity, so
    /// until the market revokes something, spot's discount is free money and
    /// the fleet leans on it fully; the share backs off as revocations land.
    pub base_spot_share: f64,
    /// How hard observed revocations shrink the spot target: the share is
    /// `base / (1 + aversion * revocations_per_spot_worker_hour)`. The
    /// default halves the spot appetite around 100 revocations per
    /// spot-worker-hour — ordinary spot weather (single-digit rates) barely
    /// moves the hedge, a market that shreds the fleet pushes it toward
    /// on-demand.
    pub revocation_aversion: f64,
    /// Spot price multiplier above which spot purchases pause (the schedule
    /// has made spot a bad deal; existing spot workers keep serving).
    pub max_spot_multiplier: f64,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        Self {
            autoscaler: AutoscalerConfig::default(),
            period_s: 600.0,
            num_phases: 20,
            lead_s: 40.0,
            fallback_error: 0.45,
            base_spot_share: 1.0,
            revocation_aversion: 0.01,
            max_spot_multiplier: 1.5,
        }
    }
}

/// The forecasting provisioner (see module docs).
#[derive(Debug, Clone)]
pub struct ForecastingProvisioner {
    config: ForecastConfig,
    reactive: ReactiveAutoscaler,
    estimator: SeasonalEstimator,
    /// Cumulative revocation count at the previous tick.
    last_revocations: u64,
    /// Time of the previous tick (for the revocation-rate window).
    last_now_s: Option<f64>,
    /// Smoothed revocations per spot worker per hour.
    revocation_rate: f64,
    /// Idle-streak start for the sustained scale-down window.
    idle_since_s: Option<f64>,
    scale_ups: u64,
    scale_downs: u64,
    /// Ticks delegated to the reactive autoscaler on forecast-error spikes.
    fallbacks: u64,
    /// Scale-ups taken while the forecast exceeded observed demand — the
    /// pre-boots the policy exists for.
    pre_boots: u64,
    /// Why each action of the last `decide` call was taken (index-aligned);
    /// drained by [`ElasticPolicy::last_reasons`] for the timeline journal.
    last_reasons: Vec<DecisionReason>,
}

impl Default for ForecastingProvisioner {
    fn default() -> Self {
        Self::new(ForecastConfig::default())
    }
}

impl ForecastingProvisioner {
    /// A forecasting provisioner with the given configuration.
    pub fn new(config: ForecastConfig) -> Self {
        assert!(config.period_s > 0.0, "period_s must be positive");
        assert!(config.num_phases >= 1, "num_phases must be >= 1");
        assert!(config.lead_s >= 0.0, "lead_s must be >= 0");
        assert!(
            config.fallback_error > 0.0,
            "fallback_error must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.base_spot_share),
            "base_spot_share must be in [0, 1]"
        );
        assert!(config.revocation_aversion >= 0.0);
        assert!(config.max_spot_multiplier > 0.0);
        let reactive = ReactiveAutoscaler::new(config.autoscaler.clone());
        let estimator =
            SeasonalEstimator::new(config.period_s, config.num_phases, config.lead_s.max(1.0));
        Self {
            config,
            reactive,
            estimator,
            last_revocations: 0,
            last_now_s: None,
            revocation_rate: 0.0,
            idle_since_s: None,
            scale_ups: 0,
            scale_downs: 0,
            fallbacks: 0,
            pre_boots: 0,
            last_reasons: Vec::new(),
        }
    }

    /// The provisioner's configuration.
    pub fn config(&self) -> &ForecastConfig {
        &self.config
    }

    /// Scale-up decisions taken (including delegated ones).
    pub fn scale_ups(&self) -> u64 {
        self.scale_ups + self.reactive.scale_ups()
    }

    /// Scale-down decisions taken (including delegated ones).
    pub fn scale_downs(&self) -> u64 {
        self.scale_downs + self.reactive.scale_downs()
    }

    /// Ticks delegated to the reactive autoscaler on forecast-error spikes.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Scale-ups taken while the forecast exceeded observed demand.
    pub fn pre_boots(&self) -> u64 {
        self.pre_boots
    }

    /// The smoothed observed revocation rate, per spot worker per hour.
    pub fn observed_revocation_rate(&self) -> f64 {
        self.revocation_rate
    }

    /// The spot share of the fleet the hedge currently targets.
    pub fn target_spot_share(&self) -> f64 {
        self.config.base_spot_share / (1.0 + self.config.revocation_aversion * self.revocation_rate)
    }

    /// Update the revocation-rate estimate from the cumulative counter.
    fn observe_market(&mut self, observation: &ElasticObservation<'_>) {
        let now = observation.now_s;
        let delta = observation
            .revocations
            .saturating_sub(self.last_revocations);
        self.last_revocations = observation.revocations;
        let Some(last) = self.last_now_s else {
            self.last_now_s = Some(now);
            return;
        };
        self.last_now_s = Some(now);
        let window_h = (now - last) / 3600.0;
        if window_h <= 0.0 {
            return;
        }
        let spot_live: usize = observation
            .classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.spot)
            .map(|(i, _)| observation.warm[i] + observation.provisioning[i])
            .sum();
        let rate = delta as f64 / spot_live.max(1) as f64 / window_h;
        // A slow EWMA: one revocation-free tick must not erase the memory of
        // a hostile market (revocations are rare events against short ticks).
        self.revocation_rate = 0.9 * self.revocation_rate + 0.1 * rate;
    }

    /// The cheapest-effective spot class with room in the catalog, if any.
    fn spot_class(observation: &ElasticObservation<'_>) -> Option<usize> {
        observation
            .classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.spot)
            .min_by(|(_, a), (_, b)| {
                a.effective_price()
                    .partial_cmp(&b.effective_price())
                    .expect("validated finite prices")
            })
            .map(|(i, _)| i)
    }

    /// The cheapest-effective on-demand class.
    fn ondemand_class(observation: &ElasticObservation<'_>) -> usize {
        observation
            .classes
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.spot)
            .min_by(|(_, a), (_, b)| {
                a.effective_price()
                    .partial_cmp(&b.effective_price())
                    .expect("validated finite prices")
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl ElasticPolicy for ForecastingProvisioner {
    fn name(&self) -> &str {
        "forecasting-provisioner"
    }

    fn decide(&mut self, observation: &ElasticObservation<'_>) -> Vec<ElasticAction> {
        let demand: f64 = observation.demand_qps.iter().sum();
        self.estimator.observe(observation.now_s, demand);
        self.observe_market(observation);
        self.last_reasons.clear();
        let cfg = &self.config.autoscaler;

        // Forecast-error spike: prediction has stopped earning its keep
        // (workload broke its own profile); hand the tick to the reactive
        // autoscaler until the error subsides.
        if self.estimator.scored() && self.estimator.error() > self.config.fallback_error {
            self.fallbacks += 1;
            self.idle_since_s = None;
            let actions = self.reactive.decide(observation);
            self.last_reasons = self.reactive.last_reasons();
            return actions;
        }

        let warm = observation.total_warm();
        let live = observation.total_live();
        let queued = observation.total_queued();
        let cap = cfg.max_fleet.min(observation.max_fleet);
        let scale_of = |i: usize| observation.classes[i].latency_scale;
        let eq_of = |counts: &[usize]| -> f64 {
            counts
                .iter()
                .enumerate()
                .map(|(i, &n)| n as f64 / scale_of(i))
                .sum()
        };
        let warm_eq = eq_of(observation.warm);
        let live_eq = warm_eq + eq_of(observation.provisioning) + eq_of(observation.draining);

        // The demand target covers whichever is larger: what is arriving now,
        // or what the forecast says will be arriving when capacity bought
        // this tick turns warm. That max is the pre-boot — and also the
        // anti-thrash guard (an optimistic forecast never drains a fleet the
        // current demand still needs).
        let forecast = self
            .estimator
            .forecast(observation.now_s, self.config.lead_s);
        let demand_target = demand.max(forecast);
        let spot_live_eq: f64 = observation
            .classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.spot)
            .map(|(i, _)| (observation.warm[i] + observation.provisioning[i]) as f64 / scale_of(i))
            .sum();
        // The revocation reserve: a market revoking at `rate` per spot
        // worker-hour keeps an expected `rate × spot × boot` equivalents dead
        // in reboot at any instant. Holding that much extra warm capacity
        // turns each revocation dip into slack consumption instead of an SLO
        // hole — the premium is a fraction of one worker at ordinary rates.
        // A lightly-loaded fleet self-insures (a dip lands on idle workers),
        // so the reserve is held only while the fleet is actually busy.
        let spot_boot_h = observation
            .classes
            .iter()
            .filter(|c| c.spot)
            .map(|c| c.boot_delay_s)
            .fold(0.0, f64::max)
            / 3600.0;
        let reserve_eq = self.revocation_rate * spot_live_eq * spot_boot_h;
        let desired_eq = (demand_target * (1.0 + cfg.headroom) / cfg.qps_per_worker + reserve_eq)
            .max(cfg.min_fleet as f64);

        // The reactive pressure kick, unchanged: forecasts based on a fitted
        // profile can still miss a burst, and the kick is the safety net.
        let worst_attainment = observation
            .window_attainment
            .iter()
            .copied()
            .fold(1.0f64, f64::min);
        let backlogged = warm > 0 && queued as f64 / warm as f64 > cfg.backlog_per_worker;
        let booting: usize = observation.provisioning.iter().sum();
        let mut target_eq = desired_eq;
        let mut up_reason = if forecast > demand {
            DecisionReason::Forecast
        } else {
            DecisionReason::DemandTrack
        };
        if (worst_attainment < cfg.attainment_floor || backlogged) && booting == 0 {
            let mut step = ((live as f64 * cfg.up_step_fraction).ceil() as usize).max(1);
            let severe = worst_attainment < cfg.attainment_floor - 0.05
                || (warm > 0 && queued as f64 / warm as f64 > 3.0 * cfg.backlog_per_worker);
            if severe {
                step *= 2;
            }
            let kicked = live_eq + step as f64;
            if kicked > target_eq {
                target_eq = kicked;
                up_reason = if severe {
                    DecisionReason::SevereOverload
                } else {
                    DecisionReason::PressureKick
                };
            }
        }

        let missing_eq = target_eq - live_eq;
        if missing_eq > 1e-9 && live < cap {
            let slots = cap - live;
            let ondemand = Self::ondemand_class(observation);
            // The hedge: spot equivalents may grow only up to the target
            // share of the post-provision fleet, and not at all while the
            // price schedule has spot above the pause threshold.
            let spot = Self::spot_class(observation)
                .filter(|_| observation.spot_price_multiplier <= self.config.max_spot_multiplier);
            // The reserve rides in the spot budget on top of the hedge share:
            // it exists to absorb *spot* losses, so buying it on-demand would
            // pay the insurance premium twice.
            let spot_eq = match spot {
                Some(_) => {
                    let allowed = self.target_spot_share() * (live_eq + missing_eq) + reserve_eq
                        - spot_live_eq;
                    missing_eq.min(allowed.max(0.0))
                }
                None => 0.0,
            };
            let ondemand_eq = missing_eq - spot_eq;
            let mut actions = Vec::new();
            let mut slots_left = slots;
            if let Some(class) = spot {
                let count = ((spot_eq * scale_of(class)).ceil() as usize).min(slots_left);
                if count > 0 {
                    actions.push(ElasticAction::Provision { class, count });
                    slots_left -= count;
                }
            }
            let count = ((ondemand_eq * scale_of(ondemand)).ceil() as usize).min(slots_left);
            if count > 0 {
                actions.push(ElasticAction::Provision {
                    class: ondemand,
                    count,
                });
            }
            if !actions.is_empty() {
                self.idle_since_s = None;
                self.scale_ups += 1;
                if forecast > demand {
                    self.pre_boots += 1;
                }
                self.last_reasons = vec![up_reason; actions.len()];
                return actions;
            }
        }

        // Scale down, with the reactive hysteresis (sustained idle window,
        // small backlog). The down target is *predictive* in both directions:
        // an upcoming ramp holds the fleet (max with the forecast, above),
        // and a trusted forecast of falling demand walks it down one lead
        // early — the reactive baseline pays `lead_s` of peak-sized fleet on
        // every descent that prediction does not. Only a scored forecast may
        // undercut observed demand (an unproven estimator must not drain a
        // fleet the present still needs), and the error-spike fallback has
        // already taken the tick when the forecast stopped earning trust.
        let down_demand = if self.estimator.scored() {
            demand.min(forecast)
        } else {
            demand
        };
        let down_eq = (down_demand * (1.0 + cfg.headroom) / cfg.qps_per_worker + reserve_eq)
            .max(cfg.min_fleet as f64);
        let desired_workers = (down_eq.ceil() as usize).clamp(cfg.min_fleet, cap);
        let wants_down = desired_workers < warm && queued <= warm;
        if !wants_down {
            self.idle_since_s = None;
            return Vec::new();
        }
        let idle_since = *self.idle_since_s.get_or_insert(observation.now_s);
        if observation.now_s - idle_since < cfg.idle_window_s || warm <= cfg.min_fleet {
            return Vec::new();
        }
        // Drain the class most over-represented against the hedge: spot when
        // its share exceeds the target (revocation exposure shrinks first),
        // the most expensive effective on-demand class otherwise (dollars
        // shrink first).
        let spot_warm_eq: f64 = observation
            .classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.spot)
            .map(|(i, _)| observation.warm[i] as f64 / scale_of(i))
            .sum();
        let spot_over = warm_eq > 0.0 && spot_warm_eq / warm_eq > self.target_spot_share() + 0.05;
        let class = if spot_over {
            Self::spot_class(observation).filter(|&i| observation.warm[i] > 0)
        } else {
            observation
                .classes
                .iter()
                .enumerate()
                .filter(|(i, _)| observation.warm[*i] > 0)
                .max_by(|(_, a), (_, b)| {
                    a.effective_price()
                        .partial_cmp(&b.effective_price())
                        .expect("validated finite prices")
                })
                .map(|(i, _)| i)
        };
        let Some(class) = class else {
            return Vec::new();
        };
        let mut step = ((warm as f64 * cfg.down_step_fraction).ceil() as usize).max(1);
        // The geometric walk-down exists to hedge against demand coming
        // back; a trusted forecast of a *deep* descent (the lead lands below
        // 80% of current demand) has already priced that in, so it collapses
        // the fleet toward the target in one step and banks the fleet-time
        // the reactive walk would burn. Shallow
        // descents keep the cautious walk — there the forecast margin is
        // thinner than its own error.
        if self.estimator.scored() && forecast < 0.8 * demand {
            step = step.max(warm);
        }
        let drainable_eq = warm_eq - down_eq;
        let count = step
            .min((drainable_eq * scale_of(class)).floor().max(0.0) as usize)
            .min(warm - cfg.min_fleet)
            .min(observation.warm[class]);
        if count == 0 {
            return Vec::new();
        }
        self.idle_since_s = Some(observation.now_s);
        self.scale_downs += 1;
        self.last_reasons.push(if spot_over {
            DecisionReason::RevocationHedge
        } else if self.estimator.scored() && forecast < 0.8 * demand {
            DecisionReason::Forecast
        } else {
            DecisionReason::SustainedIdle
        });
        vec![ElasticAction::Drain { class, count }]
    }

    fn last_reasons(&mut self) -> Vec<DecisionReason> {
        std::mem::take(&mut self.last_reasons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_sim::{WorkerClass, WorkerClassCatalog};

    fn spot_catalog() -> WorkerClassCatalog {
        WorkerClassCatalog {
            classes: vec![
                WorkerClass {
                    name: "ondemand".to_string(),
                    latency_scale: 1.0,
                    memory_gb: 80.0,
                    price_per_hour: 2.5,
                    boot_delay_s: 20.0,
                    spot: false,
                },
                WorkerClass {
                    name: "spot".to_string(),
                    latency_scale: 1.0,
                    memory_gb: 80.0,
                    price_per_hour: 0.8,
                    boot_delay_s: 20.0,
                    spot: true,
                },
            ],
        }
    }

    struct Obs {
        warm: Vec<usize>,
        provisioning: Vec<usize>,
        draining: Vec<usize>,
        queued: Vec<usize>,
        attainment: Vec<f64>,
        demand: Vec<f64>,
        revocations: u64,
        spot_price_multiplier: f64,
    }

    fn calm(warm: Vec<usize>, demand: f64) -> Obs {
        Obs {
            warm,
            provisioning: vec![0, 0],
            draining: vec![0, 0],
            queued: vec![0],
            attainment: vec![1.0],
            demand: vec![demand],
            revocations: 0,
            spot_price_multiplier: 1.0,
        }
    }

    fn observe<'a>(
        catalog: &'a WorkerClassCatalog,
        state: &'a Obs,
        now_s: f64,
    ) -> ElasticObservation<'a> {
        ElasticObservation {
            now_s,
            classes: &catalog.classes,
            warm: &state.warm,
            active: state.warm.iter().sum(),
            provisioning: &state.provisioning,
            draining: &state.draining,
            demand_qps: &state.demand,
            queued: &state.queued,
            window_attainment: &state.attainment,
            busy_fraction: 0.6,
            max_fleet: 32,
            revocations: state.revocations,
            stockouts: 0,
            spot_price_multiplier: state.spot_price_multiplier,
        }
    }

    fn config() -> ForecastConfig {
        ForecastConfig {
            autoscaler: AutoscalerConfig {
                max_fleet: 32,
                qps_per_worker: 75.0,
                ..AutoscalerConfig::default()
            },
            ..ForecastConfig::default()
        }
    }

    #[test]
    fn pre_boots_ahead_of_a_ramp() {
        let catalog = spot_catalog();
        let mut p = ForecastingProvisioner::new(config());
        // A steep ramp: demand doubles every tick. 8 warm workers cover the
        // *current* 300 QPS (needs ceil(300*1.2/75) = 5), but the forecast 40 s
        // out must request more capacity before the demand arrives.
        let mut actions = Vec::new();
        for (i, d) in [75.0, 150.0, 225.0, 300.0].iter().enumerate() {
            let state = calm(vec![8, 0], *d);
            actions = p.decide(&observe(&catalog, &state, i as f64 * 10.0));
        }
        let bought: usize = actions
            .iter()
            .map(|a| match a {
                ElasticAction::Provision { count, .. } => *count,
                _ => 0,
            })
            .sum();
        // Current demand alone wants nothing beyond the 8 warm workers
        // (desired = ceil(300*1.2/75) = 5); only the forecast explains a buy.
        assert!(
            bought > 0,
            "the ramp forecast must pre-boot, got {actions:?}"
        );
        assert!(p.pre_boots() >= 1);
        // And the buy is hedged: mostly spot in a calm market.
        let spot_count: usize = actions
            .iter()
            .map(|a| match a {
                ElasticAction::Provision { class: 1, count } => *count,
                _ => 0,
            })
            .sum();
        assert!(
            spot_count * 2 >= bought,
            "calm-market pre-boot should lean on spot: {actions:?}"
        );
    }

    #[test]
    fn observed_revocations_shrink_the_spot_target() {
        let catalog = spot_catalog();
        let mut p = ForecastingProvisioner::new(config());
        let calm_share = p.target_spot_share();
        // Ten ticks, each revoking 2 of the 4 warm spot workers: a brutal
        // market. The observed rate must push the hedge toward on-demand.
        for i in 0..10 {
            let mut state = calm(vec![4, 4], 300.0);
            state.revocations = 2 * (i + 1) as u64;
            p.decide(&observe(&catalog, &state, i as f64 * 10.0));
        }
        assert!(p.observed_revocation_rate() > 10.0);
        assert!(
            p.target_spot_share() < 0.6 * calm_share,
            "hedge must shrink: calm={calm_share}, now={}",
            p.target_spot_share()
        );
    }

    #[test]
    fn price_spike_pauses_spot_purchases() {
        let catalog = spot_catalog();
        let mut p = ForecastingProvisioner::new(config());
        // Under-provisioned with an expensive spot market: everything bought
        // this tick must be on-demand.
        let mut state = calm(vec![2, 0], 600.0);
        state.spot_price_multiplier = 2.0;
        let actions = p.decide(&observe(&catalog, &state, 0.0));
        assert!(!actions.is_empty());
        for a in &actions {
            assert!(
                matches!(a, ElasticAction::Provision { class: 0, .. }),
                "spot must pause above the multiplier cap: {actions:?}"
            );
        }
    }

    #[test]
    fn forecast_error_spike_falls_back_to_reactive() {
        let catalog = spot_catalog();
        let mut p = ForecastingProvisioner::new(ForecastConfig {
            lead_s: 10.0,
            ..config()
        });
        // Feed a profile, then betray it: demand alternates wildly so the
        // probes keep missing and the error EWMA climbs past the threshold.
        for i in 0..40 {
            let d = if i % 2 == 0 { 40.0 } else { 1200.0 };
            let state = calm(vec![8, 0], d);
            p.decide(&observe(&catalog, &state, i as f64 * 10.0));
        }
        assert!(
            p.fallbacks() > 0,
            "alternating demand must trip the reactive fallback (error={})",
            p.estimator.error()
        );
    }

    #[test]
    fn drains_spot_first_when_over_the_hedge() {
        let catalog = spot_catalog();
        let mut p = ForecastingProvisioner::new(config());
        // A deep valley with a fleet that is 100% spot *after the market has
        // turned hostile* (revocations land every tick, so the hedge target
        // falls below 1): the sustained-idle drain must come from the spot
        // class — shrink the revocation exposure before the dollars.
        let mut drained = None;
        for i in 0..8 {
            let mut state = calm(vec![0, 12], 75.0);
            state.revocations = 3 * (i + 1) as u64;
            let actions = p.decide(&observe(&catalog, &state, i as f64 * 10.0));
            if let Some(ElasticAction::Drain { class, .. }) = actions.first() {
                drained = Some(*class);
                break;
            }
        }
        assert_eq!(drained, Some(1), "over-hedge drains must hit spot first");
    }
}
