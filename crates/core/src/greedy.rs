//! The greedy Resource-Manager allocator.
//!
//! The greedy allocator mirrors the structure of the paper's two-step MILP:
//!
//! 1. **Hardware scaling.** Provision the most accurate variant for every task with the
//!    fewest servers that cover the estimated demand (batch sizes enlarged greedily
//!    while every root-to-sink path stays within its latency budget). If that fits in
//!    the cluster, done — only those servers are activated.
//! 2. **Accuracy scaling.** Otherwise, repeatedly downgrade the task whose downgrade
//!    saves the most servers per unit of end-to-end accuracy lost (the pipeline-aware
//!    criterion the paper motivates with Figure 1: the second task of the traffic
//!    pipeline is degraded before the first). Once the demand fits, any leftover
//!    servers are spent hosting higher-accuracy replicas that `MostAccurateFirst`
//!    routing will saturate first, so accuracy degrades continuously rather than in
//!    steps.
//! 3. **Saturation.** If even the least accurate configuration cannot absorb the
//!    demand, provision for the maximum servable demand; the excess is handled by the
//!    runtime drop policies.
//!
//! Besides being the default engine for long simulations, the greedy solution is also
//! used as the warm-start incumbent for the exact MILP.

use crate::allocator::{AllocationContext, AllocationOutcome, Allocator, ScalingMode};
use crate::perf::{ChoicePlan, PerfModel};
use loki_pipeline::{BatchSize, VariantId};
use loki_sim::{AllocationPlan, InstanceSpec};
use std::collections::HashMap;

/// The greedy allocation engine.
#[derive(Debug, Clone, Default)]
pub struct GreedyAllocator;

impl GreedyAllocator {
    /// Create a greedy allocator.
    pub fn new() -> Self {
        Self
    }

    /// The per-task variant choice that uses the most accurate variant everywhere.
    fn most_accurate_choice(ctx: &AllocationContext<'_>) -> Vec<usize> {
        ctx.graph
            .tasks()
            .map(|(_, t)| t.most_accurate_variant())
            .collect()
    }

    /// Greedy accuracy degradation: starting from `choice`, repeatedly apply the
    /// downgrade with the best servers-saved-per-accuracy-lost ratio until the plan
    /// fits in the cluster or no further downgrade exists. Returns the final choice and
    /// its plan (if any plan is latency-feasible at all).
    fn degrade_until_feasible(
        perf: &PerfModel<'_>,
        ctx: &AllocationContext<'_>,
        mut choice: Vec<usize>,
    ) -> (Vec<usize>, Option<ChoicePlan>) {
        let mut current_plan = perf.plan_for_choice(&choice, ctx.demand_qps, ctx.fanout);
        let max_steps: usize = ctx.graph.tasks().map(|(_, t)| t.variants.len()).sum();
        for _ in 0..max_steps {
            if let Some(p) = &current_plan {
                if p.servers <= ctx.cluster_size {
                    return (choice, current_plan);
                }
            }
            // Evaluate every single-task downgrade.
            let current_servers = current_plan
                .as_ref()
                .map(|p| p.servers as f64)
                .unwrap_or(f64::INFINITY);
            let current_accuracy = current_plan
                .as_ref()
                .map(|p| p.accuracy)
                .unwrap_or_else(|| perf.choice_accuracy(&choice));
            let mut best: Option<(f64, Vec<usize>, ChoicePlan)> = None;
            // Among downgrades that already make the plan fit the cluster, prefer the
            // one losing the least accuracy; otherwise fall back to the best
            // servers-saved-per-accuracy-lost ratio.
            let mut best_feasible: Option<(f64, Vec<usize>, ChoicePlan)> = None;
            for (task_id, task) in ctx.graph.tasks() {
                let t = task_id.index();
                let order = task.variants_by_accuracy_desc();
                let pos = order.iter().position(|&k| k == choice[t]).unwrap();
                if pos + 1 >= order.len() {
                    continue; // already at the least accurate variant
                }
                let mut cand = choice.clone();
                cand[t] = order[pos + 1];
                let Some(plan) = perf.plan_for_choice(&cand, ctx.demand_qps, ctx.fanout) else {
                    continue;
                };
                if plan.servers <= ctx.cluster_size
                    && best_feasible
                        .as_ref()
                        .is_none_or(|(a, _, _)| plan.accuracy > *a)
                {
                    best_feasible = Some((plan.accuracy, cand.clone(), plan.clone()));
                }
                let saved = if current_servers.is_finite() {
                    current_servers - plan.servers as f64
                } else {
                    // Any latency-feasible plan beats an infeasible one.
                    1e9 - plan.servers as f64
                };
                let lost = (current_accuracy - plan.accuracy).max(1e-6);
                let score = saved / lost;
                if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                    best = Some((score, cand, plan));
                }
            }
            match best_feasible.or(best) {
                Some((_, cand, plan)) => {
                    choice = cand;
                    current_plan = Some(plan);
                }
                None => break,
            }
        }
        (choice, current_plan)
    }

    /// Convert a single-choice plan into the data-plane allocation plan.
    fn plan_to_alloc(
        ctx: &AllocationContext<'_>,
        plan: &ChoicePlan,
    ) -> (AllocationPlan, HashMap<VariantId, f64>) {
        let perf = PerfModel::with_budgets(ctx.graph, ctx.slo_divisor, ctx.budgets.clone());
        let mut instances = Vec::new();
        let mut budgets = HashMap::new();
        for (t, &k) in plan.choice.iter().enumerate() {
            if plan.replicas[t] == 0 {
                continue;
            }
            let variant = VariantId::new(t, k);
            let batch = plan.batches[t];
            instances.push(InstanceSpec {
                variant,
                max_batch: batch,
                count: plan.replicas[t],
            });
            budgets.insert(variant, perf.runtime_budget_ms(variant, batch));
        }
        (
            AllocationPlan {
                instances,
                latency_budgets_ms: budgets.clone(),
                drop_policy: ctx.drop_policy,
            },
            budgets,
        )
    }

    /// Spend leftover servers on replicas of more accurate variants so that part of the
    /// traffic can be served at higher accuracy (MostAccurateFirst saturates these
    /// first). Returns the extra instances and an estimate of the accuracy uplift.
    fn upgrade_with_leftover(
        perf: &PerfModel<'_>,
        ctx: &AllocationContext<'_>,
        plan: &ChoicePlan,
        leftover: usize,
        alloc: &mut AllocationPlan,
    ) -> f64 {
        if leftover == 0 {
            return plan.accuracy;
        }
        let mut upgraded_capacity: HashMap<usize, f64> = HashMap::new();
        let mut remaining = leftover;
        let mut expected_accuracy = plan.accuracy;
        while remaining > 0 {
            let mut best: Option<(f64, usize, usize, BatchSize, f64)> = None; // (gain, task, variant, batch, fraction)
            for (task_id, task) in ctx.graph.tasks() {
                let t = task_id.index();
                if plan.task_demands[t] <= 1e-9 {
                    continue;
                }
                let order = task.variants_by_accuracy_desc();
                let pos = order.iter().position(|&k| k == plan.choice[t]).unwrap();
                if pos == 0 {
                    continue; // already the most accurate
                }
                let up = order[pos - 1];
                // The upgraded variant is slower; find the largest batch that keeps
                // every path feasible when this task runs the upgraded variant.
                let mut cand_choice = plan.choice.clone();
                cand_choice[t] = up;
                let mut best_batch = None;
                for &b in ctx.graph.batch_sizes() {
                    let mut batches = plan.batches.clone();
                    batches[t] = b;
                    if perf.batches_fit(&cand_choice, &batches) {
                        best_batch = Some(match best_batch {
                            Some(prev) if prev >= b => prev,
                            _ => b,
                        });
                    }
                }
                let Some(batch) = best_batch else { continue };
                let up_variant = VariantId::new(t, up);
                let added = ctx.graph.variant(up_variant).throughput_qps(batch);
                let already = upgraded_capacity.get(&t).copied().unwrap_or(0.0);
                let coverable = ((already + added).min(plan.task_demands[t]) - already).max(0.0);
                if coverable <= 1e-9 {
                    continue;
                }
                let fraction = coverable / plan.task_demands[t];
                let mut up_choice = plan.choice.clone();
                up_choice[t] = up;
                let acc_gain = (perf.choice_accuracy(&up_choice)
                    - perf.choice_accuracy(&plan.choice))
                .max(0.0)
                    * fraction;
                if acc_gain > 1e-9 && best.as_ref().is_none_or(|(g, ..)| acc_gain > *g) {
                    best = Some((acc_gain, t, up, batch, fraction));
                }
            }
            let Some((gain, t, up, batch, _fraction)) = best else {
                break;
            };
            let up_variant = VariantId::new(t, up);
            let added = ctx.graph.variant(up_variant).throughput_qps(batch);
            *upgraded_capacity.entry(t).or_insert(0.0) += added;
            expected_accuracy += gain;
            if let Some(existing) = alloc
                .instances
                .iter_mut()
                .find(|i| i.variant == up_variant && i.max_batch == batch)
            {
                existing.count += 1;
            } else {
                alloc.instances.push(InstanceSpec {
                    variant: up_variant,
                    max_batch: batch,
                    count: 1,
                });
            }
            alloc
                .latency_budgets_ms
                .entry(up_variant)
                .or_insert_with(|| perf.runtime_budget_ms(up_variant, batch));
            remaining -= 1;
        }
        expected_accuracy.min(ctx.graph.max_accuracy())
    }

    /// The least accurate (highest throughput) variant choice.
    fn least_accurate_choice(ctx: &AllocationContext<'_>) -> Vec<usize> {
        ctx.graph
            .tasks()
            .map(|(_, t)| t.least_accurate_variant())
            .collect()
    }
}

impl Allocator for GreedyAllocator {
    fn name(&self) -> &str {
        "greedy"
    }

    fn allocate(&self, ctx: &AllocationContext<'_>) -> AllocationOutcome {
        let perf = PerfModel::with_budgets(ctx.graph, ctx.slo_divisor, ctx.budgets.clone());
        let best_choice = Self::most_accurate_choice(ctx);
        let demand = ctx.demand_qps.max(0.0);

        // Step 1: hardware scaling with the most accurate variants.
        if let Some(plan) = perf.plan_for_choice(&best_choice, demand, ctx.fanout) {
            if plan.servers <= ctx.cluster_size {
                let (alloc, _) = Self::plan_to_alloc(ctx, &plan);
                let servable =
                    perf.max_servable_demand(&best_choice, plan.servers.max(1), ctx.fanout);
                return AllocationOutcome {
                    expected_accuracy: plan.accuracy,
                    servers_used: plan.servers,
                    demand_planned: demand,
                    servable_demand: servable,
                    mode: ScalingMode::Hardware,
                    plan: alloc,
                };
            }
        }

        // Step 2: accuracy scaling.
        let (choice, plan) = Self::degrade_until_feasible(&perf, ctx, best_choice);
        if let Some(plan) = plan {
            if plan.servers <= ctx.cluster_size {
                let (mut alloc, _) = Self::plan_to_alloc(ctx, &plan);
                let leftover = ctx.cluster_size - plan.servers;
                let expected_accuracy = if ctx.upgrade_with_leftover {
                    Self::upgrade_with_leftover(&perf, ctx, &plan, leftover, &mut alloc)
                } else {
                    plan.accuracy
                };
                let servers_used = alloc.total_workers();
                let servable = perf.max_servable_demand(&choice, ctx.cluster_size, ctx.fanout);
                return AllocationOutcome {
                    plan: alloc,
                    mode: ScalingMode::Accuracy,
                    servers_used,
                    expected_accuracy,
                    demand_planned: demand,
                    servable_demand: servable,
                };
            }
        }

        // Step 3: saturated — provision for the maximum demand the cluster can absorb
        // with the cheapest latency-feasible configuration.
        let min_choice = Self::least_accurate_choice(ctx);
        let capacity = perf.max_servable_demand(&min_choice, ctx.cluster_size, ctx.fanout);
        let target = (capacity * 0.98).max(1.0);
        match perf.plan_for_choice(&min_choice, target, ctx.fanout) {
            // A cluster smaller than the number of loaded tasks cannot host the
            // pipeline at all; report an empty plan rather than an oversized one.
            Some(plan) if plan.servers > ctx.cluster_size => AllocationOutcome {
                plan: AllocationPlan {
                    instances: Vec::new(),
                    latency_budgets_ms: HashMap::new(),
                    drop_policy: ctx.drop_policy,
                },
                mode: ScalingMode::Saturated,
                servers_used: 0,
                expected_accuracy: 0.0,
                demand_planned: demand,
                servable_demand: 0.0,
            },
            Some(plan) => {
                let (mut alloc, _) = Self::plan_to_alloc(ctx, &plan);
                let leftover = ctx.cluster_size.saturating_sub(plan.servers);
                let expected_accuracy = if ctx.upgrade_with_leftover {
                    Self::upgrade_with_leftover(&perf, ctx, &plan, leftover, &mut alloc)
                } else {
                    plan.accuracy
                };
                let servers_used = alloc.total_workers();
                AllocationOutcome {
                    plan: alloc,
                    mode: ScalingMode::Saturated,
                    servers_used,
                    expected_accuracy,
                    demand_planned: demand,
                    servable_demand: capacity,
                }
            }
            None => AllocationOutcome {
                // The SLO is so tight that no configuration is latency-feasible at all;
                // return an empty plan (the paper observes the same below ~200 ms for
                // the traffic pipeline).
                plan: AllocationPlan {
                    instances: Vec::new(),
                    latency_budgets_ms: HashMap::new(),
                    drop_policy: ctx.drop_policy,
                },
                mode: ScalingMode::Saturated,
                servers_used: 0,
                expected_accuracy: 0.0,
                demand_planned: demand,
                servable_demand: 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::FanoutOverrides;
    use loki_pipeline::{zoo, TaskId};
    use loki_sim::DropPolicy;

    fn ctx<'a>(
        graph: &'a loki_pipeline::PipelineGraph,
        fanout: &'a FanoutOverrides,
        demand: f64,
        cluster: usize,
    ) -> AllocationContext<'a> {
        AllocationContext {
            graph,
            cluster_size: cluster,
            demand_qps: demand,
            fanout,
            drop_policy: DropPolicy::OpportunisticRerouting,
            slo_divisor: 2.0,
            budgets: loki_sim::HopBudgets::uniform(2.0, graph.num_tasks()),
            upgrade_with_leftover: true,
        }
    }

    #[test]
    fn low_demand_uses_hardware_scaling_and_few_servers() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let fanout = FanoutOverrides::new();
        let out = GreedyAllocator::new().allocate(&ctx(&g, &fanout, 50.0, 20));
        assert_eq!(out.mode, ScalingMode::Hardware);
        assert!(out.servers_used < 20, "servers={}", out.servers_used);
        assert!((out.expected_accuracy - g.max_accuracy()).abs() < 1e-9);
        // All hosted variants are the most accurate of their task.
        for spec in &out.plan.instances {
            let task = g.task(TaskId(spec.variant.task));
            assert_eq!(spec.variant.variant, task.most_accurate_variant());
        }
        assert!(out.servable_demand >= 50.0);
    }

    #[test]
    fn servers_scale_with_demand_in_hardware_mode() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let fanout = FanoutOverrides::new();
        let a = GreedyAllocator::new().allocate(&ctx(&g, &fanout, 50.0, 20));
        let b = GreedyAllocator::new().allocate(&ctx(&g, &fanout, 200.0, 20));
        assert!(a.servers_used < b.servers_used);
    }

    #[test]
    fn overload_switches_to_accuracy_scaling() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let fanout = FanoutOverrides::new();
        let perf = PerfModel::new(&g, 2.0, 2.0);
        let best: Vec<usize> = g.tasks().map(|(_, t)| t.most_accurate_variant()).collect();
        let hw_capacity = perf.max_servable_demand(&best, 20, &fanout);
        let demand = hw_capacity * 1.5;
        let out = GreedyAllocator::new().allocate(&ctx(&g, &fanout, demand, 20));
        assert_eq!(out.mode, ScalingMode::Accuracy);
        assert!(out.expected_accuracy < g.max_accuracy());
        assert!(out.expected_accuracy > g.min_accuracy());
        assert!(out.plan.total_workers() <= 20);
        assert!(out.servable_demand >= demand * 0.95);
    }

    #[test]
    fn accuracy_scaling_prefers_downgrading_downstream_tasks_first() {
        // Mild overload: only a little accuracy has to be sacrificed. The detector
        // (task 0) appears on every path, so downgrading it costs more end-to-end
        // accuracy per server saved; the greedy allocator should keep it at maximum
        // accuracy and downgrade a downstream task instead (the Figure 1 behaviour).
        let g = zoo::traffic_analysis_pipeline(250.0);
        let fanout = FanoutOverrides::new();
        let perf = PerfModel::new(&g, 2.0, 2.0);
        let best: Vec<usize> = g.tasks().map(|(_, t)| t.most_accurate_variant()).collect();
        let hw_capacity = perf.max_servable_demand(&best, 20, &fanout);
        let out = GreedyAllocator::new().allocate(&ctx(&g, &fanout, hw_capacity * 1.3, 20));
        assert_eq!(out.mode, ScalingMode::Accuracy);
        let detector_variants: Vec<usize> = out
            .plan
            .instances
            .iter()
            .filter(|s| s.variant.task == 0)
            .map(|s| s.variant.variant)
            .collect();
        let best_det = g.task(TaskId(0)).most_accurate_variant();
        assert!(
            detector_variants.contains(&best_det),
            "detector should still host its most accurate variant, got {detector_variants:?}"
        );
    }

    #[test]
    fn extreme_demand_saturates() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let fanout = FanoutOverrides::new();
        let out = GreedyAllocator::new().allocate(&ctx(&g, &fanout, 100_000.0, 20));
        assert_eq!(out.mode, ScalingMode::Saturated);
        assert!(out.servable_demand < 100_000.0);
        assert!(out.plan.total_workers() <= 20);
        assert!(out.servable_demand > 0.0);
    }

    #[test]
    fn impossible_slo_yields_empty_plan() {
        let g = zoo::traffic_analysis_pipeline(15.0);
        let fanout = FanoutOverrides::new();
        let out = GreedyAllocator::new().allocate(&ctx(&g, &fanout, 100.0, 20));
        assert!(out.plan.instances.is_empty());
        assert_eq!(out.servers_used, 0);
        assert_eq!(out.servable_demand, 0.0);
    }

    #[test]
    fn plans_never_exceed_the_cluster() {
        let g = zoo::social_media_pipeline(250.0);
        let fanout = FanoutOverrides::new();
        for demand in [10.0, 100.0, 400.0, 900.0, 2500.0, 8000.0] {
            let out = GreedyAllocator::new().allocate(&ctx(&g, &fanout, demand, 20));
            assert!(
                out.plan.total_workers() <= 20,
                "demand {demand}: {} workers",
                out.plan.total_workers()
            );
        }
    }

    #[test]
    fn accuracy_trends_downwards_with_demand() {
        // The greedy allocator is a heuristic, so we allow tiny local wiggles (its
        // leftover-upgrade step can recover a little accuracy at specific demand
        // levels) but the overall trend must be a substantial decrease.
        let g = zoo::traffic_analysis_pipeline(250.0);
        let fanout = FanoutOverrides::new();
        let demands = [100.0, 300.0, 600.0, 900.0, 1200.0, 1500.0, 1800.0];
        let accs: Vec<f64> = demands
            .iter()
            .map(|&d| {
                GreedyAllocator::new()
                    .allocate(&ctx(&g, &fanout, d, 20))
                    .expected_accuracy
            })
            .collect();
        for w in accs.windows(2) {
            assert!(
                w[1] <= w[0] + 0.05,
                "accuracy should not jump up with demand: {accs:?}"
            );
        }
        assert!(
            accs[accs.len() - 1] < accs[0] - 0.05,
            "high demand must cost accuracy: {accs:?}"
        );
    }

    #[test]
    fn leftover_upgrade_raises_expected_accuracy() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let fanout = FanoutOverrides::new();
        let perf = PerfModel::new(&g, 2.0, 2.0);
        let best: Vec<usize> = g.tasks().map(|(_, t)| t.most_accurate_variant()).collect();
        let hw_capacity = perf.max_servable_demand(&best, 20, &fanout);
        let demand = hw_capacity * 1.4;
        let mut with = ctx(&g, &fanout, demand, 20);
        with.upgrade_with_leftover = true;
        let mut without = ctx(&g, &fanout, demand, 20);
        without.upgrade_with_leftover = false;
        let a = GreedyAllocator::new().allocate(&with);
        let b = GreedyAllocator::new().allocate(&without);
        assert!(a.expected_accuracy >= b.expected_accuracy - 1e-9);
    }
}
