//! # loki-core
//!
//! The Loki controller (HPDC'24): an inference-serving control plane that combines
//! **hardware scaling** and **accuracy scaling** for ML inference pipelines.
//!
//! The controller has two cooperating components, mirroring Figure 4 of the paper:
//!
//! * the **Resource Manager** ([`allocator`], [`greedy`], [`milp_alloc`]) periodically
//!   decides which model variants to host, with how many replicas and which maximum
//!   batch size. It first tries *hardware scaling* — serve the estimated demand with
//!   the most accurate variants on as few servers as possible — and, when the whole
//!   cluster cannot absorb the demand at maximum accuracy, switches to *accuracy
//!   scaling* — maximize system accuracy subject to serving the demand (Section 4).
//!   Both steps can be solved exactly with the bundled MILP solver (`loki-milp`,
//!   standing in for Gurobi) or with a fast greedy allocator that mirrors the MILP's
//!   structure and doubles as its warm start.
//! * the **Load Balancer** ([`load_balancer`]) turns an allocation into per-worker
//!   routing tables with the `MostAccurateFirst` algorithm (Algorithm 1), plus the
//!   backup tables and per-task latency budgets that drive early dropping and
//!   opportunistic rerouting at the workers (Section 5).
//!
//! [`controller::LokiController`] packages both behind the [`loki_sim::Controller`]
//! interface so the whole system can be driven by the discrete-event simulator.
//!
//! Above the per-pipeline controller sits the **cluster-level Resource Manager**
//! ([`resource_manager`]): when several pipelines share one cluster, it
//! implements the simulator's [`loki_sim::ResourceArbiter`] interface and
//! partitions the worker fleet across them (weighted by demand estimates,
//! SLO tightness, and observed backlog pressure, with rebalance epochs and
//! hysteresis), handing each pipeline's Loki controller a capacity-scoped
//! view of its share.
//!
//! Above even that sits the **cloud Provisioner** ([`provisioner`]): a
//! reactive autoscaler implementing [`loki_sim::ElasticPolicy`] that scales
//! the worker fleet itself — provisioning heterogeneous GPU classes under
//! boot delays and draining idle capacity — so dollars, not just workers,
//! become a managed resource.

pub mod allocator;
pub mod config;
pub mod controller;
pub mod forecast;
pub mod greedy;
pub mod load_balancer;
pub mod milp_alloc;
pub mod perf;
pub mod provisioner;
pub mod resource_manager;

pub use allocator::{AllocationOutcome, Allocator, AllocatorKind, ScalingMode};
pub use config::LokiConfig;
pub use controller::{ControllerStats, LokiController};
pub use forecast::{ForecastConfig, ForecastingProvisioner};
pub use load_balancer::{MostAccurateFirst, PlannerWarning};
pub use provisioner::{AutoscalerConfig, ReactiveAutoscaler};
pub use resource_manager::{ResourceManager, ResourceManagerConfig};
