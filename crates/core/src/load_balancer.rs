//! The Load Balancer: the `MostAccurateFirst` request-routing algorithm (Algorithm 1)
//! and the backup tables used by opportunistic rerouting (Section 5).
//!
//! `MostAccurateFirst` walks the pipeline graph in topological order and, for every
//! task, saturates its workers in non-increasing order of single-model accuracy: the
//! estimated demand is poured into the most accurate worker until its profiled capacity
//! is full, then into the next one, and so on. Because end-to-end pipeline accuracy is
//! monotone in the single-model accuracies, giving every node the most accurate worker
//! available for its traffic maximizes end-to-end accuracy for the given allocation.
//!
//! Workers left with spare capacity afterwards are advertised in per-task *backup
//! tables*; the data plane consults them when a query falls behind its latency budget
//! (opportunistic rerouting, Section 5.2).
//!
//! # Plan emission
//!
//! [`MostAccurateFirst::emit`] builds the engine's dense [`CompiledPlan`] in
//! place through [`loki_sim::PlanBuilder`] — no `HashMap` intermediate, with
//! the per-task worker groups and all table scratch reused across refreshes.
//! Under [`RouteMode::Accuracy`] the emitted plan samples bit-identically to
//! lowering the legacy [`RoutingPlan`] built by
//! [`MostAccurateFirst::build_routing`] (kept as the reference
//! implementation, pinned by the round-trip test in
//! `crates/core/tests/plan_roundtrip.rs`). Under [`RouteMode::LinkAware`]
//! equal-accuracy candidates (replicas of the same variant) are re-ordered by
//! the actual hop delay from the run's [`LinkDelayModel`] before each
//! saturation pass, so demand prefers network-local replicas on heterogeneous
//! interconnects without ever sacrificing accuracy-first ordering.
//!
//! Emission also reports [`PlannerWarning`]s for demand that reaches a task
//! with no routable workers — traffic the engine can only drop — instead of
//! leaving those tasks silently unroutable.

use crate::perf::{FanoutOverrides, PerfModel};
use loki_pipeline::{PipelineGraph, TaskId, VariantId};
use loki_sim::{
    BackupWorker, CompiledPlan, LinkDelayModel, PlanBuilder, RouteMode, RoutingPlan, WorkerId,
    WorkerView,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A structured planner warning: estimated demand reaches `task` but no
/// routable worker serves it, so the engine's only recourse is the
/// queue-length fallback over an empty set — i.e. dropping. Surfaced through
/// `ControllerStats::routing_warnings` instead of failing silently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerWarning {
    /// The pipeline task with traffic but no routable workers.
    pub task: usize,
    /// Estimated demand (QPS) that reaches the task and cannot be routed.
    pub demand_qps: f64,
}

/// The `MostAccurateFirst` routing-table builder.
///
/// Stateful: one instance lives inside a controller and reuses its grouping,
/// saturation, and alias-table scratch across routing refreshes.
#[derive(Debug, Default)]
pub struct MostAccurateFirst {
    builder: PlanBuilder,
    /// Per-task worker groups (dense by task index), reused across emissions.
    by_task: Vec<Vec<WorkerState>>,
    /// Snapshot of one task's upstream workers: `(id, variant, incoming)`.
    upstream_scratch: Vec<(WorkerId, VariantId, f64)>,
    /// Saturation output scratch: `(worker, routed)`.
    assign_scratch: Vec<(WorkerId, f64)>,
    /// Normalized-table scratch handed to the plan builder.
    table_scratch: Vec<(WorkerId, f64)>,
    /// Backup-list scratch (filtered, exec-ascending).
    backup_scratch: Vec<BackupWorker>,
    /// Per-task demand that could not be routed in the last emission.
    unrouted_scratch: Vec<f64>,
    warnings: Vec<PlannerWarning>,
}

/// Map a NaN (degenerate profile) to `-inf` so `f64::total_cmp` sorts it below
/// every real value — `total_cmp` alone ranks NaN *above* `+inf`, which would
/// hand a degenerate worker all the traffic; `partial_cmp(..).unwrap()`, the
/// previous comparator, panicked outright.
#[inline]
fn nan_last(value: f64) -> f64 {
    if value.is_nan() {
        f64::NEG_INFINITY
    } else {
        value
    }
}

/// Companion of [`nan_last`] for ascending sorts: NaN maps to `+inf` so a
/// degenerate execution time is never advertised as the fastest backup.
#[inline]
fn nan_slowest(value: f64) -> f64 {
    if value.is_nan() {
        f64::INFINITY
    } else {
        value
    }
}

/// Internal per-worker routing state.
#[derive(Debug, Clone)]
struct WorkerState {
    id: WorkerId,
    variant: VariantId,
    accuracy: f64,
    capacity: f64,
    capacity_left: f64,
    incoming: f64,
    exec_time_ms: f64,
}

impl MostAccurateFirst {
    /// Emit a compiled routing plan with accuracy-first candidate ordering:
    /// the historical behaviour, sampling bit-identically to lowering
    /// [`MostAccurateFirst::build_routing`]'s plan.
    pub fn emit(
        &mut self,
        graph: &PipelineGraph,
        workers: &[WorkerView],
        demand_qps: f64,
        fanout: &FanoutOverrides,
    ) -> CompiledPlan {
        self.emit_with_route(
            graph,
            workers,
            demand_qps,
            fanout,
            RouteMode::Accuracy,
            &LinkDelayModel::Uniform,
            0.0,
        )
    }

    /// Emit a compiled routing plan. `route` selects the candidate ordering;
    /// under [`RouteMode::LinkAware`], `links` (with `uniform_ms` as the
    /// uniform-model hop delay) supplies the per-hop delays that break
    /// equal-accuracy ties toward network-local replicas.
    #[allow(clippy::too_many_arguments)]
    pub fn emit_with_route(
        &mut self,
        graph: &PipelineGraph,
        workers: &[WorkerView],
        demand_qps: f64,
        fanout: &FanoutOverrides,
        route: RouteMode,
        links: &LinkDelayModel,
        uniform_ms: f64,
    ) -> CompiledPlan {
        let perf = PerfModel::new(graph, 1.0, 0.0);
        let num_tasks = graph.num_tasks();
        self.warnings.clear();
        self.group_by_task(graph, workers, num_tasks);

        self.builder.begin(num_tasks);

        // Frontend: pour the root demand into the root task's workers.
        let root = graph.root().index();
        let mut routed_any = false;
        if let Some(states) = self.by_task.get_mut(root) {
            if route == RouteMode::LinkAware {
                states.sort_by(|a, b| {
                    nan_last(b.accuracy)
                        .total_cmp(&nan_last(a.accuracy))
                        .then(
                            links
                                .frontend_worker_hop_ms(a.id, uniform_ms)
                                .total_cmp(&links.frontend_worker_hop_ms(b.id, uniform_ms)),
                        )
                        .then(a.id.cmp(&b.id))
                });
            }
            Self::saturate_into(states, demand_qps, &mut self.assign_scratch);
            for &(id, routed) in &self.assign_scratch {
                if routed > 0.0 {
                    self.builder.push_frontend(id, routed);
                    routed_any = true;
                }
            }
        }
        if demand_qps > 1e-9 && !routed_any {
            self.warnings.push(PlannerWarning {
                task: root,
                demand_qps,
            });
        }

        // Walk tasks in topological order, assigning each worker's outgoing
        // traffic to downstream workers most-accurate-first.
        self.unrouted_scratch.clear();
        self.unrouted_scratch.resize(num_tasks, 0.0);
        for task_id in graph.topological_order() {
            let t = task_id.index();
            let children = &graph.task(task_id).children;
            if children.is_empty() {
                continue;
            }
            self.upstream_scratch.clear();
            if let Some(states) = self.by_task.get(t) {
                self.upstream_scratch
                    .extend(states.iter().map(|s| (s.id, s.variant, s.incoming)));
            }
            for i in 0..self.upstream_scratch.len() {
                let (worker_id, variant, incoming) = self.upstream_scratch[i];
                for edge in children {
                    let child = edge.child.index();
                    let outgoing = incoming * perf.fanout(variant, edge.child, fanout);
                    let Some(child_states) = self.by_task.get_mut(child) else {
                        continue;
                    };
                    // Link-aware: among equal-accuracy candidates, prefer the
                    // cheapest hop from *this* upstream worker. Exact-equality
                    // tie-break (accuracy first) keeps the comparator a strict
                    // weak order and leaves cross-variant ordering untouched.
                    if route == RouteMode::LinkAware && child_states.len() > 1 {
                        child_states.sort_by(|a, b| {
                            nan_last(b.accuracy)
                                .total_cmp(&nan_last(a.accuracy))
                                .then(
                                    links
                                        .worker_hop_ms(worker_id, t, a.id, child, uniform_ms)
                                        .total_cmp(
                                            &links.worker_hop_ms(
                                                worker_id, t, b.id, child, uniform_ms,
                                            ),
                                        ),
                                )
                                .then(a.id.cmp(&b.id))
                        });
                    }
                    Self::saturate_into(child_states, outgoing, &mut self.assign_scratch);
                    let total: f64 = self.assign_scratch.iter().map(|(_, r)| r).sum();
                    if total <= 0.0 {
                        if outgoing > 1e-9 {
                            self.unrouted_scratch[child] += outgoing;
                        }
                        continue;
                    }
                    self.table_scratch.clear();
                    self.table_scratch.extend(
                        self.assign_scratch
                            .iter()
                            .filter(|(_, r)| *r > 0.0)
                            .map(|(id, r)| (*id, r / total)),
                    );
                    self.builder
                        .set_downstream(worker_id, child, &self.table_scratch);
                }
            }
        }
        for (task, &unrouted) in self.unrouted_scratch.iter().enumerate() {
            if unrouted > 1e-9 {
                self.warnings.push(PlannerWarning {
                    task,
                    demand_qps: unrouted,
                });
            }
        }

        // Per-task default tables (used for queries whose upstream worker has
        // no specific entry, e.g. right after a re-allocation): proportional
        // to capacity. Backup tables: leftover capacity per task, pushed
        // exec-ascending (the builder's stable accuracy sort keeps that order
        // among ties).
        for t in 0..num_tasks {
            let states = &self.by_task[t];
            if states.is_empty() {
                continue;
            }
            self.table_scratch.clear();
            self.table_scratch
                .extend(states.iter().map(|s| (s.id, s.capacity.max(1e-9))));
            self.builder.set_default(t, &self.table_scratch);

            self.backup_scratch.clear();
            self.backup_scratch
                .extend(
                    states
                        .iter()
                        .filter(|s| s.capacity_left > 1e-6)
                        .map(|s| BackupWorker {
                            worker: s.id,
                            exec_time_ms: s.exec_time_ms,
                            accuracy: s.accuracy,
                        }),
                );
            self.backup_scratch.sort_by(|a, b| {
                nan_slowest(a.exec_time_ms).total_cmp(&nan_slowest(b.exec_time_ms))
            });
            for &bw in &self.backup_scratch {
                self.builder.push_backup(t, bw);
            }
        }

        self.builder.finish()
    }

    /// Warnings from the most recent emission (tasks left unroutable).
    pub fn warnings(&self) -> &[PlannerWarning] {
        &self.warnings
    }

    /// Group `workers` by task into the reusable dense scratch, most accurate
    /// first (ties by id for determinism).
    fn group_by_task(&mut self, graph: &PipelineGraph, workers: &[WorkerView], num_tasks: usize) {
        self.by_task.resize_with(num_tasks, Vec::new);
        self.by_task.truncate(num_tasks);
        for states in self.by_task.iter_mut() {
            states.clear();
        }
        for w in workers {
            let Some(variant) = w.variant else { continue };
            if w.swapping {
                // A worker still loading its model has no usable capacity right
                // now; it will be picked up at the next routing refresh.
                continue;
            }
            let Some(states) = self.by_task.get_mut(variant.task) else {
                continue;
            };
            let profile = graph.variant(variant);
            let capacity = profile.throughput_qps(w.max_batch);
            states.push(WorkerState {
                id: w.id,
                variant,
                accuracy: profile.accuracy,
                capacity,
                capacity_left: capacity,
                incoming: 0.0,
                exec_time_ms: profile.batch_latency_ms(w.max_batch),
            });
        }
        for states in self.by_task.iter_mut() {
            states.sort_by(|a, b| {
                nan_last(b.accuracy)
                    .total_cmp(&nan_last(a.accuracy))
                    .then(a.id.cmp(&b.id))
            });
        }
    }

    /// Build routing tables for the current worker assignments and estimated demand.
    ///
    /// `demand_qps` is the estimated root arrival rate; `fanout` carries observed
    /// multiplicative factors (profiled values are used where no observation exists).
    ///
    /// The legacy `HashMap`-keyed reference implementation: production
    /// controllers emit [`CompiledPlan`]s directly via
    /// [`MostAccurateFirst::emit`]; this remains as the semantic reference the
    /// round-trip test pins emission against (and as a convenient
    /// introspectable form for unit tests).
    pub fn build_routing(
        graph: &PipelineGraph,
        workers: &[WorkerView],
        demand_qps: f64,
        fanout: &FanoutOverrides,
    ) -> RoutingPlan {
        let perf = PerfModel::new(graph, 1.0, 0.0);
        // Group workers by task, sorted most-accurate-first (ties by id for
        // determinism).
        let mut by_task: HashMap<usize, Vec<WorkerState>> = HashMap::new();
        for w in workers {
            let Some(variant) = w.variant else { continue };
            if w.swapping {
                continue;
            }
            let profile = graph.variant(variant);
            let capacity = profile.throughput_qps(w.max_batch);
            by_task.entry(variant.task).or_default().push(WorkerState {
                id: w.id,
                variant,
                accuracy: profile.accuracy,
                capacity,
                capacity_left: capacity,
                incoming: 0.0,
                exec_time_ms: profile.batch_latency_ms(w.max_batch),
            });
        }
        for states in by_task.values_mut() {
            states.sort_by(|a, b| {
                nan_last(b.accuracy)
                    .total_cmp(&nan_last(a.accuracy))
                    .then(a.id.cmp(&b.id))
            });
        }

        let mut plan = RoutingPlan::default();

        // Frontend: pour the root demand into the root task's workers.
        let root = graph.root().index();
        if let Some(states) = by_task.get_mut(&root) {
            let mut assignments = Vec::new();
            Self::saturate_into(states, demand_qps, &mut assignments);
            for (id, routed) in assignments {
                if routed > 0.0 {
                    plan.frontend.push((id, routed));
                }
            }
        }

        // Walk tasks in topological order, assigning each worker's outgoing traffic to
        // downstream workers most-accurate-first.
        for task_id in graph.topological_order() {
            let t = task_id.index();
            let children: Vec<TaskId> = graph
                .task(task_id)
                .children
                .iter()
                .map(|e| e.child)
                .collect();
            if children.is_empty() {
                continue;
            }
            let upstream: Vec<(WorkerId, VariantId, f64)> = by_task
                .get(&t)
                .map(|states| {
                    states
                        .iter()
                        .map(|s| (s.id, s.variant, s.incoming))
                        .collect()
                })
                .unwrap_or_default();
            for (worker_id, variant, incoming) in upstream {
                for &child in &children {
                    let outgoing = incoming * perf.fanout(variant, child, fanout);
                    let Some(child_states) = by_task.get_mut(&child.index()) else {
                        continue;
                    };
                    let mut assignments = Vec::new();
                    Self::saturate_into(child_states, outgoing, &mut assignments);
                    let total: f64 = assignments.iter().map(|(_, r)| r).sum();
                    if total <= 0.0 {
                        continue;
                    }
                    let table: Vec<(WorkerId, f64)> = assignments
                        .into_iter()
                        .filter(|(_, r)| *r > 0.0)
                        .map(|(id, r)| (id, r / total))
                        .collect();
                    plan.downstream.insert((worker_id, child.index()), table);
                }
            }
        }

        // Per-task default tables (used for queries whose upstream worker has no
        // specific entry, e.g. right after a re-allocation): proportional to capacity.
        for (task, states) in &by_task {
            let table: Vec<(WorkerId, f64)> = states
                .iter()
                .map(|s| (s.id, s.capacity.max(1e-9)))
                .collect();
            plan.downstream_default.insert(*task, table);
        }

        // Backup tables: leftover capacity per task, most accurate first.
        for (task, states) in &by_task {
            let mut backups: Vec<BackupWorker> = states
                .iter()
                .filter(|s| s.capacity_left > 1e-6)
                .map(|s| BackupWorker {
                    worker: s.id,
                    exec_time_ms: s.exec_time_ms,
                    accuracy: s.accuracy,
                })
                .collect();
            backups.sort_by(|a, b| {
                nan_slowest(a.exec_time_ms).total_cmp(&nan_slowest(b.exec_time_ms))
            });
            if !backups.is_empty() {
                plan.backup.insert(*task, backups);
            }
        }

        plan
    }

    /// Pour `demand` into the (accuracy-sorted) worker list, saturating each worker's
    /// remaining capacity in turn. Any demand exceeding the total remaining capacity is
    /// spread proportionally to total capacity so that overload degrades gracefully
    /// instead of leaving traffic unroutable. Writes `(worker, routed)` pairs into
    /// `out` (cleared first).
    fn saturate_into(states: &mut [WorkerState], demand: f64, out: &mut Vec<(WorkerId, f64)>) {
        out.clear();
        out.extend(states.iter().map(|s| (s.id, 0.0)));
        if demand <= 0.0 || states.is_empty() {
            return;
        }
        let mut remaining = demand;
        for (i, s) in states.iter_mut().enumerate() {
            if remaining <= 0.0 {
                break;
            }
            let routed = remaining.min(s.capacity_left);
            if routed > 0.0 {
                s.capacity_left -= routed;
                s.incoming += routed;
                out[i].1 += routed;
                remaining -= routed;
            }
        }
        if remaining > 1e-9 {
            let total_capacity: f64 = states.iter().map(|s| s.capacity).sum();
            if total_capacity > 0.0 {
                for (i, s) in states.iter_mut().enumerate() {
                    let share = remaining * s.capacity / total_capacity;
                    s.incoming += share;
                    out[i].1 += share;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_pipeline::zoo;

    fn view(id: usize, variant: VariantId, batch: u32) -> WorkerView {
        WorkerView {
            id: WorkerId(id),
            variant: Some(variant),
            max_batch: batch,
            queue_len: 0,
            swapping: false,
        }
    }

    #[test]
    fn frontend_prefers_most_accurate_worker() {
        let g = zoo::tiny_pipeline(100.0);
        // Two root-task workers: one accurate (a-large), one cheap (a-small).
        let workers = vec![
            view(0, VariantId::new(0, 0), 4), // a-small, acc 0.8
            view(1, VariantId::new(0, 1), 4), // a-large, acc 1.0
            view(2, VariantId::new(1, 1), 4),
        ];
        // Low demand: everything fits on the accurate worker.
        let plan = MostAccurateFirst::build_routing(&g, &workers, 10.0, &FanoutOverrides::new());
        let accurate_weight: f64 = plan
            .frontend
            .iter()
            .filter(|(w, _)| *w == WorkerId(1))
            .map(|(_, p)| *p)
            .sum();
        let cheap_weight: f64 = plan
            .frontend
            .iter()
            .filter(|(w, _)| *w == WorkerId(0))
            .map(|(_, p)| *p)
            .sum();
        assert!(accurate_weight > 0.0);
        assert!(
            cheap_weight.abs() < 1e-9,
            "cheap worker should get no traffic at low demand"
        );
    }

    #[test]
    fn overflow_spills_to_less_accurate_workers() {
        let g = zoo::tiny_pipeline(100.0);
        let workers = vec![
            view(0, VariantId::new(0, 0), 4),
            view(1, VariantId::new(0, 1), 4),
            view(2, VariantId::new(1, 1), 8),
        ];
        let accurate_capacity = g.variant(VariantId::new(0, 1)).throughput_qps(4);
        let demand = accurate_capacity * 1.5;
        let plan = MostAccurateFirst::build_routing(&g, &workers, demand, &FanoutOverrides::new());
        let cheap_weight: f64 = plan
            .frontend
            .iter()
            .filter(|(w, _)| *w == WorkerId(0))
            .map(|(_, p)| *p)
            .sum();
        assert!(
            cheap_weight > 0.0,
            "overflow should spill to the less accurate worker"
        );
    }

    #[test]
    fn downstream_tables_and_backups_exist() {
        let g = zoo::tiny_pipeline(100.0);
        let workers = vec![
            view(0, VariantId::new(0, 1), 4),
            view(1, VariantId::new(1, 1), 4),
            view(2, VariantId::new(1, 0), 4),
        ];
        let plan = MostAccurateFirst::build_routing(&g, &workers, 20.0, &FanoutOverrides::new());
        // The root worker must have a table for task 1.
        let table = plan
            .downstream
            .get(&(WorkerId(0), 1))
            .expect("routing table");
        let total: f64 = table.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "probabilities should sum to 1");
        // At 20 QPS the accurate downstream worker has leftover capacity -> backup.
        let backup = plan.backup.get(&1).expect("backup table");
        assert!(!backup.is_empty());
        // Default tables exist for both tasks.
        assert!(plan.downstream_default.contains_key(&0));
        assert!(plan.downstream_default.contains_key(&1));
    }

    #[test]
    fn traffic_pipeline_routes_both_branches() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let workers = vec![
            view(0, VariantId::new(0, 4), 4),
            view(1, VariantId::new(1, 7), 8),
            view(2, VariantId::new(1, 0), 8),
            view(3, VariantId::new(2, 3), 8),
        ];
        let plan = MostAccurateFirst::build_routing(&g, &workers, 50.0, &FanoutOverrides::new());
        assert!(plan.downstream.contains_key(&(WorkerId(0), 1)));
        assert!(plan.downstream.contains_key(&(WorkerId(0), 2)));
        // Car-classification traffic prefers the accurate B7 worker while it has
        // capacity.
        let table = &plan.downstream[&(WorkerId(0), 1)];
        let b7_share: f64 = table
            .iter()
            .filter(|(w, _)| *w == WorkerId(1))
            .map(|(_, p)| *p)
            .sum();
        assert!(b7_share > 0.5, "b7 share = {b7_share}");
    }

    #[test]
    fn nan_accuracy_from_a_degenerate_profile_does_not_panic() {
        use loki_pipeline::{LatencyProfile, ModelVariant, PipelineGraph};
        // A corrupted/degenerate profile can surface a NaN accuracy at runtime;
        // the router must keep working (NaNs sort last) instead of panicking on
        // `partial_cmp(..).unwrap()`.
        let mut bad = ModelVariant::new("bad", "fam", 0.5, LatencyProfile::new(2.0, 1.0), 1.0);
        bad.accuracy = f64::NAN;
        let good = ModelVariant::new("good", "fam", 0.9, LatencyProfile::new(2.0, 1.0), 1.0);
        let leaf = ModelVariant::new("leaf", "fam", 1.0, LatencyProfile::new(2.0, 1.0), 0.0);
        let mut g = PipelineGraph::new("degenerate", 100.0);
        let t0 = g.add_task("a", vec![bad, good]);
        let t1 = g.add_task("b", vec![leaf]);
        g.add_edge(t0, t1, 1.0);
        let workers = vec![
            view(0, VariantId::new(0, 0), 4), // NaN accuracy
            view(1, VariantId::new(0, 1), 4),
            view(2, VariantId::new(1, 0), 4),
        ];
        let plan = MostAccurateFirst::build_routing(&g, &workers, 5.0, &FanoutOverrides::new());
        // The well-profiled worker absorbs the low demand; the NaN one gets none.
        let weight = |w: usize| -> f64 {
            plan.frontend
                .iter()
                .filter(|(id, _)| *id == WorkerId(w))
                .map(|(_, p)| *p)
                .sum()
        };
        assert!(weight(1) > 0.0);
        assert!(weight(0).abs() < 1e-9, "NaN-profiled worker must sort last");
    }

    #[test]
    fn empty_cluster_produces_empty_plan() {
        let g = zoo::tiny_pipeline(100.0);
        let plan = MostAccurateFirst::build_routing(&g, &[], 100.0, &FanoutOverrides::new());
        assert!(plan.frontend.is_empty());
        assert!(plan.downstream.is_empty());
        assert!(plan.backup.is_empty());
    }

    #[test]
    fn observed_fanout_changes_downstream_distribution() {
        let g = zoo::tiny_pipeline(100.0);
        let workers = vec![
            view(0, VariantId::new(0, 1), 4),
            view(1, VariantId::new(1, 1), 1), // accurate but tiny capacity
            view(2, VariantId::new(1, 0), 8),
        ];
        // With a huge observed fan-out, the accurate downstream worker saturates and
        // more traffic shifts to the cheap one.
        let mut fanout = FanoutOverrides::new();
        fanout.insert((VariantId::new(0, 1), 1), 10.0);
        let plan_hi = MostAccurateFirst::build_routing(&g, &workers, 30.0, &fanout);
        let plan_lo = MostAccurateFirst::build_routing(&g, &workers, 30.0, &FanoutOverrides::new());
        let cheap_share = |plan: &RoutingPlan| -> f64 {
            plan.downstream[&(WorkerId(0), 1)]
                .iter()
                .filter(|(w, _)| *w == WorkerId(2))
                .map(|(_, p)| *p)
                .sum()
        };
        assert!(cheap_share(&plan_hi) > cheap_share(&plan_lo));
    }

    #[test]
    fn emission_warns_on_unroutable_tasks() {
        let g = zoo::tiny_pipeline(100.0);
        // Only root-task workers: everything pouring into task 1 is unroutable.
        let workers = vec![view(0, VariantId::new(0, 1), 4)];
        let mut lb = MostAccurateFirst::default();
        let _ = lb.emit(&g, &workers, 20.0, &FanoutOverrides::new());
        assert_eq!(lb.warnings().len(), 1);
        assert_eq!(lb.warnings()[0].task, 1);
        assert!(lb.warnings()[0].demand_qps > 0.0);

        // No workers at all: the root itself is unroutable.
        let _ = lb.emit(&g, &[], 20.0, &FanoutOverrides::new());
        assert_eq!(lb.warnings().len(), 1);
        assert_eq!(lb.warnings()[0].task, 0);

        // A fully covered pipeline emits no warnings.
        let covered = vec![
            view(0, VariantId::new(0, 1), 4),
            view(1, VariantId::new(1, 0), 8),
        ];
        let _ = lb.emit(&g, &covered, 5.0, &FanoutOverrides::new());
        assert!(lb.warnings().is_empty());
    }

    #[test]
    fn link_aware_prefers_local_replicas_among_equal_accuracy() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = zoo::tiny_pipeline(100.0);
        // Upstream worker 0 (class 0 under 2-way striping). Two replicas of the
        // SAME downstream variant: worker 2 (class 0, cheap hop) and worker 3
        // (class 1, expensive hop). Low demand fits entirely on one replica.
        let workers = vec![
            view(0, VariantId::new(0, 1), 4),
            view(2, VariantId::new(1, 1), 8),
            view(3, VariantId::new(1, 1), 8),
        ];
        let links = LinkDelayModel::PerWorkerClass {
            classes: 2,
            delay_ms: vec![0.2, 5.0, 5.0, 0.2],
            frontend_ms: vec![2.0, 2.0],
        };
        let mut lb = MostAccurateFirst::default();
        let plan = lb.emit_with_route(
            &g,
            &workers,
            5.0,
            &FanoutOverrides::new(),
            RouteMode::LinkAware,
            &links,
            2.0,
        );
        // All task-1 traffic from worker 0 lands on the same-class replica.
        let mut rng = StdRng::seed_from_u64(1);
        let t = plan.downstream_table(WorkerId(0), 1).expect("table");
        for _ in 0..200 {
            assert_eq!(t.sample(&mut rng), Some(WorkerId(2)));
        }

        // Accuracy mode with the same inputs ties by id, which also picks
        // worker 2 here — so flip the classes to show link-awareness actually
        // drives the choice: now worker 3 is the local one.
        let flipped = LinkDelayModel::PerWorkerClass {
            classes: 2,
            delay_ms: vec![5.0, 0.2, 0.2, 5.0],
            frontend_ms: vec![2.0, 2.0],
        };
        let plan = lb.emit_with_route(
            &g,
            &workers,
            5.0,
            &FanoutOverrides::new(),
            RouteMode::LinkAware,
            &flipped,
            2.0,
        );
        let t = plan.downstream_table(WorkerId(0), 1).expect("table");
        for _ in 0..200 {
            assert_eq!(t.sample(&mut rng), Some(WorkerId(3)));
        }
    }
}
