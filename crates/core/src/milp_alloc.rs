//! The exact MILP Resource-Manager allocator (Section 4.1 of the paper).
//!
//! The formulation follows the paper's notation. For every model variant `v_{i,k}` and
//! allowed batch size `b` we introduce
//!
//! * `n(i,k,b)` — an integer count of instances of `v_{i,k}` configured with maximum
//!   batch size `b` (the paper's `x(i,k)` split by batch size so that the product
//!   `x(i,k) · q(i,k,y(i,k))` of Constraint 2 becomes linear),
//! * `z(i,k,b)` — a binary selecting `b` as the variant's batch size `y(i,k)` (at most
//!   one per variant, Constraint 4),
//!
//! and for every root-to-sink path `p` of the augmented graph
//!
//! * `c(p)` — the fraction of queries routed through `p`,
//! * `I(p)` — a binary indicating whether `p` carries any traffic (Constraint 7's
//!   big-M latency guard).
//!
//! **Step 1 (hardware scaling)** restricts the variant set to the most accurate variant
//! of every task and minimizes `Σ n` (Equation 11). **Step 2 (accuracy scaling)** keeps
//! all variants and maximizes `Σ_p c(p)·Â(p)` (Equation 12). Both steps share the
//! throughput (Constraint 2), cluster-size (Constraint 3), and latency (Constraints
//! 4–7) models. The greedy allocator's plan is passed to the solver as a warm-start
//! incumbent so branch-and-bound can prune aggressively.

use crate::allocator::{AllocationContext, AllocationOutcome, Allocator, ScalingMode};
use crate::greedy::GreedyAllocator;
use crate::perf::PerfModel;
use loki_milp::{LinExpr, Model, ObjectiveSense, Sense, SolveOptions, Var};
use loki_pipeline::{AugmentedGraph, BatchSize, PipelineGraph, TaskId, VariantId};
use loki_sim::{AllocationPlan, InstanceSpec};
use std::collections::HashMap;
use std::time::Duration;

/// The MILP allocation engine.
#[derive(Debug, Clone)]
pub struct MilpAllocator {
    time_budget: Duration,
    node_limit: usize,
}

/// Handles into a built allocation MILP, used to extract the plan from a solution and
/// to express warm starts.
pub struct MilpVars {
    /// `n(i,k,b)` instance-count variables.
    pub n: HashMap<(VariantId, BatchSize), Var>,
    /// `z(i,k,b)` batch-selection binaries.
    pub z: HashMap<(VariantId, BatchSize), Var>,
    /// `c(p)` path traffic ratios.
    pub c: HashMap<usize, Var>,
    /// `I(p)` path-use indicators.
    pub i_use: HashMap<usize, Var>,
}

impl MilpAllocator {
    /// Create a MILP allocator with the given solve budget.
    pub fn new(time_budget: Duration, node_limit: usize) -> Self {
        Self {
            time_budget,
            node_limit,
        }
    }

    /// Build the allocation MILP for the given context.
    ///
    /// When `restrict_to_most_accurate` is true only the most accurate variant of each
    /// task is considered and the objective minimizes the number of servers (Step 1,
    /// hardware scaling); otherwise every variant participates and the objective
    /// maximizes system accuracy (Step 2, accuracy scaling).
    pub fn build_model(
        ctx: &AllocationContext<'_>,
        aug: &AugmentedGraph,
        restrict_to_most_accurate: bool,
    ) -> (Model, MilpVars) {
        let graph = ctx.graph;
        let perf = PerfModel::with_budgets(graph, ctx.slo_divisor, ctx.budgets.clone());
        let s = ctx.cluster_size as f64;
        let demand = ctx.demand_qps.max(0.0);

        let mut model = Model::new(if restrict_to_most_accurate {
            "loki-hardware-scaling"
        } else {
            "loki-accuracy-scaling"
        });

        // Which variants participate.
        let allowed_variant = |v: VariantId| -> bool {
            if !restrict_to_most_accurate {
                return true;
            }
            graph.task(TaskId(v.task)).most_accurate_variant() == v.variant
        };

        // Per-variant: the largest path budget among paths through it (batches whose
        // single-task latency exceeds it can never be used).
        let mut max_budget: HashMap<VariantId, f64> = HashMap::new();
        for path in aug.paths() {
            let budget = perf.path_budget_ms(path.vertices.len());
            for &v in &path.vertices {
                let e = max_budget.entry(v).or_insert(f64::MIN);
                *e = e.max(budget);
            }
        }

        let mut vars = MilpVars {
            n: HashMap::new(),
            z: HashMap::new(),
            c: HashMap::new(),
            i_use: HashMap::new(),
        };

        // n and z variables plus the per-variant linking constraints.
        for v in graph.variant_ids() {
            if !allowed_variant(v) {
                continue;
            }
            let budget = max_budget.get(&v).copied().unwrap_or(f64::MIN);
            let mut z_sum = LinExpr::new();
            let mut any_batch = false;
            for &b in graph.batch_sizes() {
                let latency = graph.variant(v).batch_latency_ms(b);
                if latency > budget + 1e-9 {
                    continue;
                }
                any_batch = true;
                let n = model.add_integer(format!("n_{}_{}_{b}", v.task, v.variant), 0.0, s);
                let z = model.add_binary(format!("z_{}_{}_{b}", v.task, v.variant));
                // n(i,k,b) <= S * z(i,k,b)
                model.add_constraint(
                    format!("link_{}_{}_{b}", v.task, v.variant),
                    1.0 * n - s * z,
                    Sense::Le,
                    0.0,
                );
                vars.n.insert((v, b), n);
                vars.z.insert((v, b), z);
                z_sum += z;
            }
            if any_batch {
                // Σ_b z(i,k,b) <= 1 : a single batch size per variant (Constraint 4).
                model.add_constraint(
                    format!("one_batch_{}_{}", v.task, v.variant),
                    z_sum,
                    Sense::Le,
                    1.0,
                );
            }
        }

        // Path variables: only paths whose variants all participate and whose minimum
        // possible latency fits the budget.
        let min_batch = *graph.batch_sizes().iter().min().unwrap();
        for (pid, path) in aug.paths().iter().enumerate() {
            if !path.vertices.iter().all(|&v| allowed_variant(v)) {
                continue;
            }
            let budget = perf.path_budget_ms(path.vertices.len());
            let min_latency: f64 = path
                .vertices
                .iter()
                .map(|&v| graph.variant(v).batch_latency_ms(min_batch))
                .sum();
            if min_latency > budget + 1e-9 {
                continue;
            }
            let c = model.add_continuous(format!("c_{pid}"), 0.0, 1.0);
            let i_use = model.add_binary(format!("i_{pid}"));
            // c(p) <= I(p)
            model.add_constraint(format!("use_{pid}"), 1.0 * c - 1.0 * i_use, Sense::Le, 0.0);
            vars.c.insert(pid, c);
            vars.i_use.insert(pid, i_use);

            // Latency (Constraints 5-7): Σ_(i,k)∈p Σ_b l(i,k,b)·z(i,k,b) <= budget + M(1-I(p)).
            let mut latency_expr = LinExpr::new();
            let mut big_m = 0.0f64;
            for &v in &path.vertices {
                let mut max_l = 0.0f64;
                for &b in graph.batch_sizes() {
                    if let Some(&z) = vars.z.get(&(v, b)) {
                        let l = graph.variant(v).batch_latency_ms(b);
                        latency_expr.add_term(z, l);
                        max_l = max_l.max(l);
                    }
                }
                big_m += max_l;
            }
            // latency + M*I <= budget + M
            latency_expr.add_term(i_use, big_m);
            model.add_constraint(
                format!("lat_{pid}"),
                latency_expr,
                Sense::Le,
                budget + big_m,
            );
        }

        // Demand coverage (Constraint 2): every task path must route all of its traffic.
        for tp in 0..aug.num_task_paths() {
            let mut sum = LinExpr::new();
            let mut any = false;
            for &pid in aug.paths_for_task_path(tp) {
                if let Some(&c) = vars.c.get(&pid) {
                    sum += c;
                    any = true;
                }
            }
            if any {
                model.add_constraint(format!("route_all_{tp}"), sum, Sense::Eq, 1.0);
            } else {
                // No latency-feasible path for this task path: force infeasibility so
                // the caller falls back (mirrors the paper's observation below 200 ms).
                let dummy = model.add_continuous(format!("infeasible_{tp}"), 1.0, 1.0);
                model.add_constraint(format!("route_all_{tp}"), 1.0 * dummy, Sense::Le, 0.0);
            }
        }

        // Throughput capacity per variant (Constraint 2).
        for v in graph.variant_ids() {
            if !allowed_variant(v) {
                continue;
            }
            let mut expr = LinExpr::new();
            let mut touches = false;
            for &pid in aug.paths_through(v) {
                if let Some(&c) = vars.c.get(&pid) {
                    let m = aug.arrival_multiplier(pid, v).unwrap_or(0.0);
                    if m > 0.0 {
                        expr.add_term(c, demand * m);
                        touches = true;
                    }
                }
            }
            let mut capacity = LinExpr::new();
            let mut has_capacity_vars = false;
            for &b in graph.batch_sizes() {
                if let Some(&n) = vars.n.get(&(v, b)) {
                    capacity.add_term(n, graph.variant(v).throughput_qps(b));
                    has_capacity_vars = true;
                }
            }
            if touches && has_capacity_vars {
                model.add_constraint(
                    format!("cap_{}_{}", v.task, v.variant),
                    expr - capacity,
                    Sense::Le,
                    0.0,
                );
            } else if touches {
                // The variant can carry traffic but has no feasible batch size: forbid
                // routing through it.
                for &pid in aug.paths_through(v) {
                    if let Some(&c) = vars.c.get(&pid) {
                        model.add_constraint(
                            format!("forbid_{}_{}_{pid}", v.task, v.variant),
                            1.0 * c,
                            Sense::Le,
                            0.0,
                        );
                    }
                }
            }
        }

        // Cluster size (Constraint 3): Σ n <= S.
        let total: LinExpr = vars.n.values().map(|&n| 1.0 * n).sum();
        model.add_constraint("cluster", total.clone(), Sense::Le, s);

        // Objective.
        if restrict_to_most_accurate {
            model.set_objective(ObjectiveSense::Minimize, total);
        } else {
            let mut obj = LinExpr::new();
            for (pid, &c) in &vars.c {
                obj.add_term(c, aug.path(*pid).accuracy);
            }
            model.set_objective(ObjectiveSense::Maximize, obj);
        }

        (model, vars)
    }

    /// Convert a greedy allocation into a warm-start assignment for the MILP.
    fn warm_start(
        model: &Model,
        vars: &MilpVars,
        aug: &AugmentedGraph,
        graph: &PipelineGraph,
        greedy_plan: &AllocationPlan,
    ) -> Vec<f64> {
        let mut values = vec![0.0; model.num_vars()];
        // Instances.
        let mut hosted: HashMap<usize, Vec<VariantId>> = HashMap::new();
        for spec in &greedy_plan.instances {
            if let (Some(&n), Some(&z)) = (
                vars.n.get(&(spec.variant, spec.max_batch)),
                vars.z.get(&(spec.variant, spec.max_batch)),
            ) {
                values[n.index()] = spec.count as f64;
                values[z.index()] = 1.0;
                hosted
                    .entry(spec.variant.task)
                    .or_default()
                    .push(spec.variant);
            }
        }
        // Route each task path entirely through the least accurate hosted variant of
        // each task (the greedy "floor"), which is the combination guaranteed to have
        // enough capacity.
        for tp in 0..aug.num_task_paths() {
            let mut chosen: Option<usize> = None;
            for &pid in aug.paths_for_task_path(tp) {
                if !vars.c.contains_key(&pid) {
                    continue;
                }
                let path = aug.path(pid);
                let all_floor = path.vertices.iter().all(|v| {
                    hosted
                        .get(&v.task)
                        .map(|hs| {
                            let floor = hs
                                .iter()
                                .min_by(|a, b| {
                                    graph
                                        .variant(**a)
                                        .accuracy
                                        .partial_cmp(&graph.variant(**b).accuracy)
                                        .unwrap()
                                })
                                .unwrap();
                            *floor == *v
                        })
                        .unwrap_or(false)
                });
                if all_floor {
                    chosen = Some(pid);
                    break;
                }
            }
            if let Some(pid) = chosen {
                values[vars.c[&pid].index()] = 1.0;
                values[vars.i_use[&pid].index()] = 1.0;
            }
        }
        values
    }

    /// Extract a data-plane allocation plan from a MILP solution.
    fn extract_plan(
        ctx: &AllocationContext<'_>,
        vars: &MilpVars,
        solution: &loki_milp::Solution,
    ) -> (AllocationPlan, usize) {
        let perf = PerfModel::with_budgets(ctx.graph, ctx.slo_divisor, ctx.budgets.clone());
        let mut instances = Vec::new();
        let mut budgets = HashMap::new();
        let mut servers = 0usize;
        for (&(variant, batch), &n) in &vars.n {
            let count = solution.int_value(n).max(0) as usize;
            if count == 0 {
                continue;
            }
            servers += count;
            instances.push(InstanceSpec {
                variant,
                max_batch: batch,
                count,
            });
            budgets.insert(variant, perf.runtime_budget_ms(variant, batch));
        }
        instances.sort_by_key(|s| (s.variant.task, s.variant.variant, s.max_batch));
        (
            AllocationPlan {
                instances,
                latency_budgets_ms: budgets,
                drop_policy: ctx.drop_policy,
            },
            servers,
        )
    }

    /// Expected system accuracy of a solution: the accuracy-weighted traffic split,
    /// averaged over task paths.
    fn expected_accuracy(
        aug: &AugmentedGraph,
        vars: &MilpVars,
        solution: &loki_milp::Solution,
    ) -> f64 {
        let mut total = 0.0;
        for (&pid, &c) in &vars.c {
            total += solution.value(c).max(0.0) * aug.path(pid).accuracy;
        }
        total / aug.num_task_paths() as f64
    }

    fn solve_options(&self, warm: Option<Vec<f64>>, vars: &MilpVars) -> SolveOptions {
        // Branch on batch-selection binaries first, then path indicators: once they are
        // integral, the instance counts round almost freely.
        let mut priority: Vec<Var> = vars.z.values().copied().collect();
        priority.extend(vars.i_use.values().copied());
        SolveOptions {
            node_limit: self.node_limit,
            time_limit: self.time_budget,
            mip_gap: 5e-3,
            warm_start: warm,
            heuristic_frequency: 10,
            branch_priority: priority,
            ..SolveOptions::default()
        }
    }
}

impl Allocator for MilpAllocator {
    fn name(&self) -> &str {
        "milp"
    }

    fn allocate(&self, ctx: &AllocationContext<'_>) -> AllocationOutcome {
        let aug = AugmentedGraph::new(ctx.graph);
        let perf = PerfModel::with_budgets(ctx.graph, ctx.slo_divisor, ctx.budgets.clone());
        let greedy = GreedyAllocator::new().allocate(ctx);

        // ---- Step 1: hardware scaling ---------------------------------------------
        let (hw_model, hw_vars) = Self::build_model(ctx, &aug, true);
        let hw_warm = if greedy.mode == ScalingMode::Hardware {
            Some(Self::warm_start(
                &hw_model,
                &hw_vars,
                &aug,
                ctx.graph,
                &greedy.plan,
            ))
        } else {
            None
        };
        let hw_opts = self.solve_options(hw_warm, &hw_vars);
        if let Ok(solution) = hw_model.solve_with(&hw_opts) {
            if solution.status.has_solution() {
                let (plan, servers) = Self::extract_plan(ctx, &hw_vars, &solution);
                if servers > 0 && servers <= ctx.cluster_size {
                    let choice: Vec<usize> = ctx
                        .graph
                        .tasks()
                        .map(|(_, t)| t.most_accurate_variant())
                        .collect();
                    return AllocationOutcome {
                        expected_accuracy: ctx.graph.max_accuracy(),
                        servers_used: servers,
                        demand_planned: ctx.demand_qps,
                        servable_demand: perf.max_servable_demand(
                            &choice,
                            servers.max(1),
                            ctx.fanout,
                        ),
                        mode: ScalingMode::Hardware,
                        plan,
                    };
                }
            }
        }

        // ---- Step 2: accuracy scaling ----------------------------------------------
        let (acc_model, acc_vars) = Self::build_model(ctx, &aug, false);
        let warm = Some(Self::warm_start(
            &acc_model,
            &acc_vars,
            &aug,
            ctx.graph,
            &greedy.plan,
        ));
        let acc_opts = self.solve_options(warm, &acc_vars);
        match acc_model.solve_with(&acc_opts) {
            Ok(solution) if solution.status.has_solution() => {
                let (plan, servers) = Self::extract_plan(ctx, &acc_vars, &solution);
                if servers == 0 {
                    return greedy;
                }
                let expected_accuracy = Self::expected_accuracy(&aug, &acc_vars, &solution);
                AllocationOutcome {
                    plan,
                    mode: ScalingMode::Accuracy,
                    servers_used: servers,
                    expected_accuracy,
                    demand_planned: ctx.demand_qps,
                    servable_demand: ctx.demand_qps,
                }
            }
            // Infeasible (demand beyond even minimum-accuracy capacity) or solver
            // limits hit: fall back to the greedy plan, which handles saturation.
            _ => greedy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::FanoutOverrides;
    use loki_pipeline::zoo;
    use loki_sim::DropPolicy;

    fn ctx<'a>(
        graph: &'a PipelineGraph,
        fanout: &'a FanoutOverrides,
        demand: f64,
        cluster: usize,
    ) -> AllocationContext<'a> {
        AllocationContext {
            graph,
            cluster_size: cluster,
            demand_qps: demand,
            fanout,
            drop_policy: DropPolicy::OpportunisticRerouting,
            slo_divisor: 2.0,
            budgets: loki_sim::HopBudgets::uniform(2.0, graph.num_tasks()),
            upgrade_with_leftover: true,
        }
    }

    fn milp() -> MilpAllocator {
        MilpAllocator::new(Duration::from_secs(20), 4_000)
    }

    #[test]
    fn tiny_pipeline_hardware_scaling_is_optimal() {
        let g = zoo::tiny_pipeline(100.0);
        let fanout = FanoutOverrides::new();
        let out = milp().allocate(&ctx(&g, &fanout, 100.0, 10));
        assert_eq!(out.mode, ScalingMode::Hardware);
        assert!((out.expected_accuracy - g.max_accuracy()).abs() < 1e-9);
        assert!(out.servers_used <= 10);
        // The greedy allocator should not beat the optimal MILP on server count.
        let greedy = GreedyAllocator::new().allocate(&ctx(&g, &fanout, 100.0, 10));
        assert!(out.servers_used <= greedy.servers_used);
    }

    #[test]
    fn tiny_pipeline_accuracy_scaling_when_overloaded() {
        let g = zoo::tiny_pipeline(100.0);
        let fanout = FanoutOverrides::new();
        let perf = PerfModel::new(&g, 2.0, 2.0);
        let best: Vec<usize> = g.tasks().map(|(_, t)| t.most_accurate_variant()).collect();
        let hw_cap = perf.max_servable_demand(&best, 4, &fanout);
        let out = milp().allocate(&ctx(&g, &fanout, hw_cap * 1.5, 4));
        assert_eq!(out.mode, ScalingMode::Accuracy);
        assert!(out.plan.total_workers() <= 4);
        assert!(out.expected_accuracy <= g.max_accuracy() + 1e-9);
        assert!(out.expected_accuracy >= g.min_accuracy() - 1e-9);
        // The MILP's accuracy should be at least as good as the greedy floor estimate.
        let greedy = GreedyAllocator::new().allocate(&ctx(&g, &fanout, hw_cap * 1.5, 4));
        assert!(out.expected_accuracy >= greedy.expected_accuracy - 0.05);
    }

    #[test]
    fn hardware_model_restricts_variants() {
        let g = zoo::tiny_pipeline(100.0);
        let fanout = FanoutOverrides::new();
        let context = ctx(&g, &fanout, 50.0, 8);
        let aug = AugmentedGraph::new(&g);
        let (model, vars) = MilpAllocator::build_model(&context, &aug, true);
        // Only the most accurate variant of each task has n/z variables.
        for &(v, _) in vars.n.keys() {
            assert_eq!(
                v.variant,
                g.task(TaskId(v.task)).most_accurate_variant(),
                "hardware-scaling model must only host the most accurate variants"
            );
        }
        assert!(model.num_constraints() > 0);
        let (full_model, full_vars) = MilpAllocator::build_model(&context, &aug, false);
        assert!(full_vars.n.len() > vars.n.len());
        assert!(full_model.num_vars() > model.num_vars());
    }

    #[test]
    fn saturated_demand_falls_back_to_greedy() {
        let g = zoo::tiny_pipeline(100.0);
        let fanout = FanoutOverrides::new();
        let out = milp().allocate(&ctx(&g, &fanout, 1_000_000.0, 2));
        assert_eq!(out.mode, ScalingMode::Saturated);
        assert!(out.plan.total_workers() <= 2);
    }
}
