//! Performance models: how a resource-allocation plan translates into latency,
//! throughput capacity, and end-to-end accuracy (Section 4.1 of the paper).
//!
//! These models are shared by the greedy allocator, the MILP formulation (which uses
//! them to pre-compute coefficients and latency budgets), and the baseline controllers.

use loki_pipeline::{BatchSize, PipelineGraph, TaskId, VariantId};
use loki_sim::HopBudgets;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Observed fan-out overrides: (upstream variant, downstream task) -> average number of
/// intermediate queries generated per processed query (already including the branch
/// ratio). Reported by workers through heartbeats and aggregated by the controller.
pub type FanoutOverrides = HashMap<(VariantId, usize), f64>;

/// The latency/throughput/accuracy model for one pipeline under one SLO policy.
#[derive(Debug, Clone)]
pub struct PerfModel<'a> {
    graph: &'a PipelineGraph,
    /// Divisor applied to the SLO to reserve queueing headroom (2.0 in the paper).
    slo_divisor: f64,
    /// Per-hop one-way network latency budgets, charged once per hop on a path.
    budgets: HopBudgets,
}

/// The provisioning implied by choosing one specific model variant per task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChoicePlan {
    /// The variant index chosen for each task.
    pub choice: Vec<usize>,
    /// The maximum batch size chosen for each task.
    pub batches: Vec<BatchSize>,
    /// Replicas required per task to absorb the task's demand.
    pub replicas: Vec<usize>,
    /// Demand (QPS) arriving at each task, including workload multiplication.
    pub task_demands: Vec<f64>,
    /// Total servers required (`Σ replicas`).
    pub servers: usize,
    /// End-to-end pipeline accuracy of this choice (average over task paths of the
    /// product of per-task accuracies).
    pub accuracy: f64,
}

impl<'a> PerfModel<'a> {
    /// Create a performance model with a uniform per-hop latency of `comm_ms` —
    /// every hop (frontend or worker-to-worker) is charged the same scalar, the
    /// historical behaviour.
    pub fn new(graph: &'a PipelineGraph, slo_divisor: f64, comm_ms: f64) -> Self {
        assert!(comm_ms >= 0.0);
        Self::with_budgets(
            graph,
            slo_divisor,
            HopBudgets::uniform(comm_ms, graph.num_tasks()),
        )
    }

    /// Create a performance model with explicit per-hop latency budgets (e.g. from
    /// `LinkDelayModel::hop_budgets`), so paths that stay on cheap links are not
    /// charged the cluster's worst-case hop.
    pub fn with_budgets(graph: &'a PipelineGraph, slo_divisor: f64, budgets: HopBudgets) -> Self {
        assert!(slo_divisor >= 1.0, "the SLO divisor must be at least 1");
        Self {
            graph,
            slo_divisor,
            budgets,
        }
    }

    /// The underlying pipeline graph.
    pub fn graph(&self) -> &PipelineGraph {
        self.graph
    }

    /// The per-hop latency budgets in use.
    pub fn budgets(&self) -> &HopBudgets {
        &self.budgets
    }

    /// Total one-way network latency (ms) charged to a concrete root-to-sink task
    /// path: one frontend hop in, each inter-task edge, and one frontend hop out.
    pub fn path_comm_ms(&self, tasks: &[TaskId]) -> f64 {
        2.0 * self.budgets.frontend_ms()
            + tasks
                .windows(2)
                .map(|w| self.budgets.edge_ms(w[0].index(), w[1].index()))
                .sum::<f64>()
    }

    /// The processing-latency budget (ms) available to a root-to-sink path with
    /// `num_tasks` tasks: the SLO divided by the queueing-headroom divisor, minus the
    /// worst-case network charge for a path of that length (one hop per edge plus the
    /// frontend hop each way). Concrete paths may enjoy a looser budget under per-edge
    /// models; see [`PerfModel::path_comm_ms`].
    pub fn path_budget_ms(&self, num_tasks: usize) -> f64 {
        self.graph.slo_ms() / self.slo_divisor - self.budgets.worst_path_comm_ms(num_tasks)
    }

    /// The effective fan-out from `variant` to `child` task: the observed value if the
    /// controller has heartbeat data, otherwise the profiled multiplicative factor
    /// times the edge's branch ratio.
    pub fn fanout(&self, variant: VariantId, child: TaskId, overrides: &FanoutOverrides) -> f64 {
        if let Some(&v) = overrides.get(&(variant, child.index())) {
            return v;
        }
        let ratio = self
            .graph
            .branch_ratio(TaskId(variant.task), child)
            .unwrap_or(0.0);
        self.graph.variant(variant).mult_factor * ratio
    }

    /// Demand (QPS) arriving at each task when the root receives `demand` QPS and each
    /// task uses the variant given by `choice` (the workload-multiplication model of
    /// Section 2.2.1).
    pub fn task_demands(
        &self,
        choice: &[usize],
        demand: f64,
        overrides: &FanoutOverrides,
    ) -> Vec<f64> {
        assert_eq!(choice.len(), self.graph.num_tasks());
        let mut demands = vec![0.0; self.graph.num_tasks()];
        demands[self.graph.root().index()] = demand;
        for task_id in self.graph.topological_order() {
            let t = task_id.index();
            let variant = VariantId::new(t, choice[t]);
            let incoming = demands[t];
            for edge in &self.graph.task(task_id).children {
                demands[edge.child.index()] +=
                    incoming * self.fanout(variant, edge.child, overrides);
            }
        }
        demands
    }

    /// End-to-end accuracy of a per-task variant choice.
    pub fn choice_accuracy(&self, choice: &[usize]) -> f64 {
        let paths = self.graph.task_paths();
        let total: f64 = paths
            .iter()
            .map(|p| {
                p.tasks
                    .iter()
                    .map(|&t| self.graph.task(t).variants[choice[t.index()]].accuracy)
                    .product::<f64>()
            })
            .sum();
        total / paths.len() as f64
    }

    /// True if the given per-task batch sizes keep the processing latency of every
    /// root-to-sink path within its budget.
    pub fn batches_fit(&self, choice: &[usize], batches: &[BatchSize]) -> bool {
        for path in self.graph.task_paths() {
            let budget = self.graph.slo_ms() / self.slo_divisor - self.path_comm_ms(&path.tasks);
            let total: f64 = path
                .tasks
                .iter()
                .map(|&t| {
                    let i = t.index();
                    self.graph.task(t).variants[choice[i]].batch_latency_ms(batches[i])
                })
                .sum();
            if total > budget + 1e-9 {
                return false;
            }
        }
        true
    }

    /// Compute the provisioning (batch sizes, replicas, server count) required to serve
    /// `demand` QPS with a fixed per-task variant choice, or `None` if the latency SLO
    /// cannot be met even with batch size 1.
    ///
    /// Batch sizes are chosen greedily: start at 1 everywhere and repeatedly enlarge
    /// the batch of the task that currently needs the most replicas, as long as every
    /// path still fits its latency budget and the enlargement reduces the total server
    /// count.
    pub fn plan_for_choice(
        &self,
        choice: &[usize],
        demand: f64,
        overrides: &FanoutOverrides,
    ) -> Option<ChoicePlan> {
        let n = self.graph.num_tasks();
        assert_eq!(choice.len(), n);
        let allowed = self.graph.batch_sizes().to_vec();
        let min_batch = *allowed.iter().min().expect("batch size set is non-empty");
        let mut batches = vec![min_batch; n];
        if !self.batches_fit(choice, &batches) {
            return None;
        }
        let demands = self.task_demands(choice, demand, overrides);

        let replicas_for = |batches: &[BatchSize]| -> Vec<usize> {
            (0..n)
                .map(|t| {
                    if demands[t] <= 1e-9 {
                        0
                    } else {
                        let q = self.graph.task(TaskId(t)).variants[choice[t]]
                            .throughput_qps(batches[t]);
                        (demands[t] / q).ceil().max(1.0) as usize
                    }
                })
                .collect()
        };

        let mut replicas = replicas_for(&batches);
        // Greedy batch enlargement: at each step apply the single-task batch increase
        // (to any larger allowed size) that reduces the total server count the most,
        // while keeping every path within its latency budget.
        loop {
            let total: usize = replicas.iter().sum();
            let mut best: Option<(usize, BatchSize, Vec<usize>, usize)> = None;
            for t in 0..n {
                for &cand_batch in allowed.iter().filter(|&&b| b > batches[t]) {
                    let mut cand = batches.clone();
                    cand[t] = cand_batch;
                    if !self.batches_fit(choice, &cand) {
                        continue;
                    }
                    let cand_replicas = replicas_for(&cand);
                    let cand_total: usize = cand_replicas.iter().sum();
                    if cand_total < total && best.as_ref().is_none_or(|b| cand_total < b.3) {
                        best = Some((t, cand_batch, cand_replicas, cand_total));
                    }
                }
            }
            match best {
                Some((t, b, new_replicas, _)) => {
                    batches[t] = b;
                    replicas = new_replicas;
                }
                None => break,
            }
        }

        let servers: usize = replicas.iter().sum();
        Some(ChoicePlan {
            choice: choice.to_vec(),
            batches,
            replicas,
            task_demands: demands,
            servers,
            accuracy: self.choice_accuracy(choice),
        })
    }

    /// The runtime latency budget (queueing + execution, in ms) assigned to a hosted
    /// variant, used by the early-dropping policies of Section 5.2.
    ///
    /// The planner keeps the sum of *execution* times along every path within
    /// `SLO / divisor`; at runtime a query may additionally wait in queues, so the
    /// budget for a task is the larger of `divisor ×` its execution time and an equal
    /// share of the full path allowance. This partitions (approximately) the whole SLO
    /// across the tasks of a path instead of only its execution half, which is what
    /// makes per-task progress checks meaningful rather than hair-trigger.
    pub fn runtime_budget_ms(&self, variant: VariantId, batch: BatchSize) -> f64 {
        let exec = self.graph.variant(variant).batch_latency_ms(batch);
        // The tightest equal share over the root-to-sink paths through this variant's
        // task, each charged its own per-hop network cost. (Under uniform budgets the
        // tightest share always comes from the longest path, matching the historical
        // worst-case-length formula exactly.)
        let share = self
            .graph
            .task_paths()
            .iter()
            .filter(|p| p.tasks.iter().any(|t| t.index() == variant.task))
            .map(|p| {
                (self.graph.slo_ms() - self.path_comm_ms(&p.tasks)).max(exec) / p.tasks.len() as f64
            })
            .min_by(f64::total_cmp)
            .unwrap_or_else(|| {
                (self.graph.slo_ms() - self.budgets.worst_path_comm_ms(1)).max(exec)
            });
        (self.slo_divisor * exec).max(share)
    }

    /// The batch sizes that maximize per-server throughput while keeping every path
    /// within its latency budget (used for capacity estimation under overload, where
    /// bigger batches are always better).
    pub fn max_batches_for_choice(&self, choice: &[usize]) -> Option<Vec<BatchSize>> {
        let n = self.graph.num_tasks();
        let allowed = self.graph.batch_sizes().to_vec();
        let min_batch = *allowed.iter().min().unwrap();
        let mut batches = vec![min_batch; n];
        if !self.batches_fit(choice, &batches) {
            return None;
        }
        // Round-robin enlargement until nothing fits any more.
        loop {
            let mut changed = false;
            for t in 0..n {
                let next = allowed.iter().copied().filter(|&b| b > batches[t]).min();
                if let Some(next) = next {
                    let mut cand = batches.clone();
                    cand[t] = next;
                    if self.batches_fit(choice, &cand) {
                        batches[t] = next;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Some(batches)
    }

    /// The maximum root demand (QPS) a cluster of `servers` workers can absorb with the
    /// given per-task variant choice, assuming throughput-optimal batch sizes. Returns
    /// 0 if the choice cannot meet the SLO at all.
    pub fn max_servable_demand(
        &self,
        choice: &[usize],
        servers: usize,
        overrides: &FanoutOverrides,
    ) -> f64 {
        let Some(batches) = self.max_batches_for_choice(choice) else {
            return 0.0;
        };
        let n = self.graph.num_tasks();
        // Per-unit-of-root-demand load multiplier for each task.
        let unit = self.task_demands(choice, 1.0, overrides);
        let per_server_q: Vec<f64> = (0..n)
            .map(|t| self.graph.task(TaskId(t)).variants[choice[t]].throughput_qps(batches[t]))
            .collect();
        // Upper bound ignoring integrality of replicas.
        let mut hi: f64 = f64::INFINITY;
        for t in 0..n {
            if unit[t] > 1e-12 {
                hi = hi.min(per_server_q[t] * servers as f64 / unit[t]);
            }
        }
        if !hi.is_finite() {
            return 0.0;
        }
        let feasible = |d: f64| -> bool {
            let total: usize = (0..n)
                .map(|t| {
                    let load = unit[t] * d;
                    if load <= 1e-9 {
                        0
                    } else {
                        (load / per_server_q[t]).ceil().max(1.0) as usize
                    }
                })
                .sum();
            total <= servers
        };
        if feasible(hi) {
            return hi;
        }
        let mut lo = 0.0;
        let mut hi_b = hi;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi_b);
            if feasible(mid) {
                lo = mid;
            } else {
                hi_b = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_pipeline::zoo;

    fn no_overrides() -> FanoutOverrides {
        HashMap::new()
    }

    #[test]
    fn path_budget_subtracts_headroom_and_hops() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let m = PerfModel::new(&g, 2.0, 2.0);
        // 250/2 - 2*(2+1) = 119
        assert!((m.path_budget_ms(2) - 119.0).abs() < 1e-9);
        let m2 = PerfModel::new(&g, 1.0, 0.0);
        assert!((m2.path_budget_ms(2) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn task_demands_follow_multiplicative_factors() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let m = PerfModel::new(&g, 2.0, 2.0);
        // Most accurate everywhere: yolov5x mult 2.0, branches 0.7 / 0.3.
        let choice = vec![4, 7, 3];
        let d = m.task_demands(&choice, 100.0, &no_overrides());
        assert!((d[0] - 100.0).abs() < 1e-9);
        assert!((d[1] - 100.0 * 2.0 * 0.7).abs() < 1e-9);
        assert!((d[2] - 100.0 * 2.0 * 0.3).abs() < 1e-9);
        // Least accurate detector (yolov5n, mult 1.5) generates less downstream load.
        let d_lo = m.task_demands(&[0, 7, 3], 100.0, &no_overrides());
        assert!(d_lo[1] < d[1]);
        assert!(d_lo[2] < d[2]);
    }

    #[test]
    fn observed_fanout_overrides_profiles() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let m = PerfModel::new(&g, 2.0, 2.0);
        let mut ov = HashMap::new();
        // the detector actually produced 3 car queries per frame
        ov.insert((VariantId::new(0, 4), 1usize), 3.0);
        let d = m.task_demands(&[4, 7, 3], 100.0, &ov);
        assert!((d[1] - 300.0).abs() < 1e-9);
        // the face branch still uses the profiled value
        assert!((d[2] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn plan_for_choice_scales_with_demand() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let m = PerfModel::new(&g, 2.0, 2.0);
        let choice = vec![4, 7, 3];
        let low = m.plan_for_choice(&choice, 50.0, &no_overrides()).unwrap();
        let high = m.plan_for_choice(&choice, 500.0, &no_overrides()).unwrap();
        assert!(low.servers < high.servers);
        assert!(low.servers >= g.num_tasks()); // at least one replica per loaded task
        assert!((low.accuracy - g.max_accuracy()).abs() < 1e-9);
        // The chosen batches must respect the SLO on every path.
        assert!(m.batches_fit(&choice, &low.batches));
        assert!(m.batches_fit(&choice, &high.batches));
        // Capacity must cover demand per task.
        #[allow(clippy::needless_range_loop)]
        for t in 0..g.num_tasks() {
            let q = g.task(TaskId(t)).variants[choice[t]].throughput_qps(high.batches[t]);
            assert!(high.replicas[t] as f64 * q >= high.task_demands[t] - 1e-6);
        }
    }

    #[test]
    fn infeasible_slo_returns_none() {
        // An SLO so tight that even batch-1 processing cannot fit.
        let g = zoo::traffic_analysis_pipeline(20.0);
        let m = PerfModel::new(&g, 2.0, 2.0);
        assert!(m
            .plan_for_choice(&[4, 7, 3], 100.0, &no_overrides())
            .is_none());
        assert!(m.max_batches_for_choice(&[4, 7, 3]).is_none());
        assert_eq!(m.max_servable_demand(&[4, 7, 3], 20, &no_overrides()), 0.0);
    }

    #[test]
    fn cheaper_variants_need_fewer_servers() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let m = PerfModel::new(&g, 2.0, 2.0);
        let best = m
            .plan_for_choice(&[4, 7, 3], 400.0, &no_overrides())
            .unwrap();
        let worst = m
            .plan_for_choice(&[0, 0, 0], 400.0, &no_overrides())
            .unwrap();
        assert!(worst.servers < best.servers);
        assert!(worst.accuracy < best.accuracy);
    }

    #[test]
    fn max_servable_demand_matches_plan_feasibility() {
        let g = zoo::traffic_analysis_pipeline(250.0);
        let m = PerfModel::new(&g, 2.0, 2.0);
        let choice = vec![4, 7, 3];
        let cap = m.max_servable_demand(&choice, 20, &no_overrides());
        assert!(
            cap > 100.0,
            "20-server capacity should be sizable, got {cap}"
        );
        // Just below capacity must fit in 20 servers, just above must not.
        let below = m
            .plan_for_choice(&choice, cap * 0.98, &no_overrides())
            .unwrap();
        assert!(below.servers <= 20, "servers={}", below.servers);
        let above = m
            .plan_for_choice(&choice, cap * 1.10, &no_overrides())
            .unwrap();
        assert!(above.servers > 20, "servers={}", above.servers);
    }

    #[test]
    fn two_tier_per_hop_budgets_strictly_tighter_than_scalar() {
        use loki_sim::LinkDelayModel;
        // The two-tier hetnet link model: cheap intra-class hops (0.2 ms), expensive
        // cross-class hops (5 ms), 2 ms frontend. The legacy scalar model charged the
        // worst hop (5 ms) on EVERY hop including the frontend; per-hop budgets charge
        // the frontend its real 2 ms. The network charge must be strictly smaller on
        // every path (budget strictly looser), and never larger on any.
        let g = zoo::traffic_analysis_pipeline(250.0);
        let links = LinkDelayModel::PerWorkerClass {
            classes: 2,
            delay_ms: vec![0.2, 5.0, 5.0, 0.2],
            frontend_ms: vec![2.0, 2.0],
        };
        let scalar_hop = links.max_hop_ms(2.0);
        assert!((scalar_hop - 5.0).abs() < 1e-9);
        let per_hop = PerfModel::with_budgets(&g, 2.0, links.hop_budgets(2.0, g.num_tasks()));
        let scalar = PerfModel::new(&g, 2.0, scalar_hop);
        let mut strictly_tighter = 0;
        for path in g.task_paths() {
            let new_comm = per_hop.path_comm_ms(&path.tasks);
            let old_comm = scalar.path_comm_ms(&path.tasks);
            assert!(
                new_comm <= old_comm + 1e-9,
                "per-hop charge must never exceed the scalar worst case"
            );
            if new_comm < old_comm - 1e-9 {
                strictly_tighter += 1;
            }
        }
        assert!(
            strictly_tighter >= 1,
            "no path got a tighter network charge"
        );
        // Consequently every per-task runtime budget is at least as generous, and at
        // least one task's strictly more so.
        let mut strictly_looser = 0;
        for t in 0..g.num_tasks() {
            for v in 0..g.task(TaskId(t)).variants.len() {
                let id = VariantId::new(t, v);
                let new_b = per_hop.runtime_budget_ms(id, 4);
                let old_b = scalar.runtime_budget_ms(id, 4);
                assert!(new_b >= old_b - 1e-9, "budget got looser for {id:?}");
                if new_b > old_b + 1e-9 {
                    strictly_looser += 1;
                }
            }
        }
        assert!(strictly_looser >= 1);
    }

    #[test]
    fn accuracy_scaling_raises_capacity() {
        // The premise of the paper: the least accurate configuration supports several
        // times the demand of the most accurate one on the same cluster.
        let g = zoo::traffic_analysis_pipeline(250.0);
        let m = PerfModel::new(&g, 2.0, 2.0);
        let hi = m.max_servable_demand(&[4, 7, 3], 20, &no_overrides());
        let lo = m.max_servable_demand(&[0, 0, 0], 20, &no_overrides());
        assert!(
            lo > 2.0 * hi,
            "accuracy scaling should raise capacity by >2x (hi={hi:.0}, lo={lo:.0})"
        );
        assert!(
            lo < 6.0 * hi,
            "capacity gain implausibly large (hi={hi:.0}, lo={lo:.0})"
        );
    }
}
