//! The cloud Provisioner: a reactive autoscaler over the simulator's elastic
//! fleet.
//!
//! Sits one level above both the per-pipeline Loki controller and the
//! cluster-level [`crate::ResourceManager`]: where those decide what to run on
//! the workers the cluster *has*, the provisioner decides how many workers the
//! cluster has (and of which catalog class), trading dollars against SLO
//! attainment — INFaaS-style hardware elasticity next to Loki's accuracy
//! elasticity.
//!
//! [`ReactiveAutoscaler`] implements [`loki_sim::ElasticPolicy`] as a
//! *demand-target tracker with pressure kicks*. Busy fraction is deliberately
//! not a trigger: Loki packs work onto few highly-utilized servers, so "the
//! active servers are busy" is its normal operating point, not a capacity
//! signal. Instead:
//!
//! * The **desired fleet** tracks the observed demand estimate:
//!   `ceil(demand * (1 + headroom) / qps_per_worker)`, clamped to
//!   `[min_fleet, max_fleet]`. `qps_per_worker` is the reference serving rate
//!   the deployment was sized with (e.g. peak QPS over the peak fleet).
//! * **Scale up** whenever desired exceeds the live fleet — immediately, a
//!   boot delay is already in the way. Pressure (backlog per warm worker
//!   above the threshold, or window SLO attainment below the catastrophic
//!   floor) *kicks* the target a fractional step above the live fleet, so
//!   the scaler recovers even when the demand estimate lags a burst. Boots
//!   in flight count toward the live fleet and suppress further kicks, so
//!   one transient cannot trigger a provisioning spiral.
//! * **Scale down** only when desired sits below the warm fleet for a
//!   *sustained* [`AutoscalerConfig::idle_window_s`] with a small backlog;
//!   drains are fractional steps clamped to the demand target and
//!   [`AutoscalerConfig::min_fleet`]. Draining toward the target deliberately
//!   undercuts Loki's hardware-scaling preference (given free capacity it
//!   activates everything for maximum accuracy): the cost-optimal fleet
//!   forces accuracy scaling in the shoulders of the day, trading a few
//!   accuracy points for dollars while the SLO holds. The headroom band plus
//!   the idle window is the hysteresis that keeps boots (which cost money)
//!   and drains (which throw warm capacity away) from alternating.
//!
//! Provisioning picks the catalog class with the lowest *effective* price
//! (price x latency scale) unless pinned; drains retire the most expensive
//! effective class first.

use loki_sim::{DecisionReason, ElasticAction, ElasticObservation, ElasticPolicy};
use serde::{Deserialize, Serialize};

/// Configuration of the [`ReactiveAutoscaler`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerConfig {
    /// Lower bound on live (provisioning + warm + draining) workers. Keep at
    /// least the pipeline's task count: a smaller fleet serves nothing.
    pub min_fleet: usize,
    /// Upper bound on live workers (the budget cap).
    pub max_fleet: usize,
    /// Reference serving rate (QPS) one worker of the catalog's reference
    /// class sustains — the same number the deployment's peak fleet was sized
    /// with (peak QPS / peak fleet).
    pub qps_per_worker: f64,
    /// Capacity margin kept above the demand estimate (0.2 = 20%): absorbs
    /// estimator lag on ramps and is half of the anti-thrash hysteresis.
    pub headroom: f64,
    /// Window SLO attainment below which the fleet scales up regardless of
    /// the demand target.
    pub attainment_floor: f64,
    /// Queued queries per warm worker above which the fleet scales up
    /// regardless of the demand target.
    pub backlog_per_worker: f64,
    /// Fraction of the live fleet the pressure kick adds per step (at least
    /// one worker).
    pub up_step_fraction: f64,
    /// Fraction of the warm fleet drained per scale-down step (at least one
    /// worker).
    pub down_step_fraction: f64,
    /// Seconds the desired fleet must sit below the warm fleet before a
    /// scale-down (the other half of the hysteresis).
    pub idle_window_s: f64,
    /// Provision this catalog class instead of the cheapest-effective one.
    pub pin_class: Option<usize>,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            min_fleet: 2,
            max_fleet: 20,
            qps_per_worker: 75.0,
            headroom: 0.2,
            // Deliberately low: window attainment is noisy (Loki absorbs
            // bursts by accuracy-scaling and dropping a few percent even on a
            // peak-sized fleet, so 10 s windows dip into the 0.7s routinely
            // at *any* fleet size). The floor marks catastrophic degradation;
            // ordinary capacity shortage shows up as backlog first.
            attainment_floor: 0.75,
            backlog_per_worker: 8.0,
            up_step_fraction: 0.25,
            down_step_fraction: 0.4,
            idle_window_s: 10.0,
            pin_class: None,
        }
    }
}

/// The reactive autoscaler (see module docs).
#[derive(Debug, Clone)]
pub struct ReactiveAutoscaler {
    config: AutoscalerConfig,
    /// Simulated time at which the current idle streak began (None = the
    /// fleet is not idle).
    idle_since_s: Option<f64>,
    /// Scale-up decisions taken.
    scale_ups: u64,
    /// Scale-down decisions taken.
    scale_downs: u64,
    /// Why each action of the last `decide` call was taken (index-aligned);
    /// drained by [`ElasticPolicy::last_reasons`] for the timeline journal.
    last_reasons: Vec<DecisionReason>,
}

impl Default for ReactiveAutoscaler {
    fn default() -> Self {
        Self::new(AutoscalerConfig::default())
    }
}

impl ReactiveAutoscaler {
    /// An autoscaler with the given configuration.
    pub fn new(config: AutoscalerConfig) -> Self {
        assert!(config.min_fleet >= 1, "min_fleet must be at least 1");
        assert!(
            config.max_fleet >= config.min_fleet,
            "max_fleet must be >= min_fleet"
        );
        assert!((0.0..=1.0).contains(&config.attainment_floor));
        assert!(
            config.qps_per_worker.is_finite() && config.qps_per_worker > 0.0,
            "qps_per_worker must be > 0"
        );
        assert!(config.headroom >= 0.0);
        assert!(config.up_step_fraction > 0.0 && config.down_step_fraction > 0.0);
        assert!(config.idle_window_s >= 0.0);
        Self {
            config,
            idle_since_s: None,
            scale_ups: 0,
            scale_downs: 0,
            last_reasons: Vec::new(),
        }
    }

    /// The autoscaler's configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Scale-up decisions taken so far.
    pub fn scale_ups(&self) -> u64 {
        self.scale_ups
    }

    /// Scale-down decisions taken so far.
    pub fn scale_downs(&self) -> u64 {
        self.scale_downs
    }

    /// The class to provision: the pinned one, or the cheapest effective
    /// (shared ranking with [`loki_sim::WorkerClassCatalog::cheapest_effective`]).
    fn provision_class(&self, observation: &ElasticObservation<'_>) -> usize {
        match self.config.pin_class {
            Some(class) if class < observation.classes.len() => class,
            _ => loki_sim::cheapest_effective(observation.classes),
        }
    }

    /// The class to drain from: the most expensive effective class that still
    /// has warm workers (`None` when nothing is warm).
    fn drain_class(&self, observation: &ElasticObservation<'_>) -> Option<usize> {
        observation
            .classes
            .iter()
            .enumerate()
            .filter(|(i, _)| observation.warm[*i] > 0)
            .max_by(|(_, a), (_, b)| {
                a.effective_price()
                    .partial_cmp(&b.effective_price())
                    .expect("validated finite prices")
            })
            .map(|(i, _)| i)
    }
}

impl ElasticPolicy for ReactiveAutoscaler {
    fn name(&self) -> &str {
        "reactive-autoscaler"
    }

    fn decide(&mut self, observation: &ElasticObservation<'_>) -> Vec<ElasticAction> {
        self.last_reasons.clear();
        let cfg = &self.config;
        let warm = observation.total_warm();
        let live = observation.total_live();
        let queued = observation.total_queued();
        let cap = cfg.max_fleet.min(observation.max_fleet);
        let worst_attainment = observation
            .window_attainment
            .iter()
            .copied()
            .fold(1.0f64, f64::min);
        // Capacity is measured in *reference-worker equivalents*: a class
        // with latency_scale s serves 1/s of a reference worker's rate, so a
        // heterogeneous fleet's capacity is Σ count/scale. On a single
        // reference-class catalog this reduces exactly to worker counts.
        let scale_of = |i: usize| observation.classes[i].latency_scale;
        let eq_of = |counts: &[usize]| -> f64 {
            counts
                .iter()
                .enumerate()
                .map(|(i, &n)| n as f64 / scale_of(i))
                .sum()
        };
        let warm_eq = eq_of(observation.warm);
        let live_eq = warm_eq + eq_of(observation.provisioning) + eq_of(observation.draining);
        let demand: f64 = observation.demand_qps.iter().sum();
        let desired_eq =
            (demand * (1.0 + cfg.headroom) / cfg.qps_per_worker).max(cfg.min_fleet as f64);
        let backlogged = warm > 0 && queued as f64 / warm as f64 > cfg.backlog_per_worker;
        let pressured = worst_attainment < cfg.attainment_floor || backlogged;

        // Scale up: toward the demand target, plus a fractional kick when the
        // fleet is visibly hurting (the demand estimate lags bursts). The
        // kick is suppressed while boots are in flight: help is already on
        // the way, and re-kicking every tick during one transient compounds
        // a single dip into a provisioning spiral.
        let booting: usize = observation.provisioning.iter().sum();
        let mut target_eq = desired_eq;
        let mut up_reason = DecisionReason::DemandTrack;
        if pressured && booting == 0 {
            let mut step = ((live as f64 * cfg.up_step_fraction).ceil() as usize).max(1);
            // Severe pressure (attainment far under the floor, or a deep
            // backlog) doubles the kick: waiting another boot delay to
            // discover the first step was too small costs more than the
            // extra workers.
            let severe = worst_attainment < cfg.attainment_floor - 0.05
                || (warm > 0 && queued as f64 / warm as f64 > 3.0 * cfg.backlog_per_worker);
            if severe {
                step *= 2;
            }
            let kicked = live_eq + step as f64;
            if kicked > target_eq {
                target_eq = kicked;
                up_reason = if severe {
                    DecisionReason::SevereOverload
                } else {
                    DecisionReason::PressureKick
                };
            }
        }
        let missing_eq = target_eq - live_eq;
        if missing_eq > 1e-9 && live < cap {
            // The provisioned class's slowdown dilutes each new worker's
            // contribution, so the worker count scales the equivalent
            // shortfall back up (a budget class at 1.5x needs 3 workers to
            // cover 2 reference-equivalents).
            let slots = cap - live;
            let mut class = self.provision_class(observation);
            // Slot-awareness: cheap-but-slow workers occupy slots a peak will
            // need. Pick the cheap class only while filling *every* remaining
            // slot with it would still cover the *demand* target with a 50%
            // margin; otherwise take the fastest class — each remaining slot
            // must carry maximum capacity, or the peak becomes structurally
            // unservable behind a wall of slow workers. (The demand target,
            // not the kicked one: kicks are transient, class choice is
            // strategic.)
            if self.config.pin_class.is_none()
                && live_eq + slots as f64 / scale_of(class) < 1.5 * desired_eq
            {
                for (i, c) in observation.classes.iter().enumerate() {
                    if c.latency_scale < observation.classes[class].latency_scale {
                        class = i;
                    }
                }
            }
            let count = ((missing_eq * scale_of(class)).ceil() as usize)
                .max(1)
                .min(slots);
            self.idle_since_s = None;
            self.scale_ups += 1;
            self.last_reasons.push(up_reason);
            return vec![ElasticAction::Provision { class, count }];
        }

        // Class upgrade: capacity-short with every slot taken, but slower
        // workers hold slots a faster class could use. Drain the slowest
        // warm class now; once those slots free up, the provision branch
        // above refills them with the fastest class (its slot-constrained
        // rule). One swap step per tick bounds the churn. Never fires on a
        // single-class catalog.
        if missing_eq > 1e-9 && live >= cap {
            let fastest = observation
                .classes
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.latency_scale
                        .partial_cmp(&b.latency_scale)
                        .expect("validated finite scales")
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            let slowest_warm = observation
                .classes
                .iter()
                .enumerate()
                .filter(|(i, c)| {
                    observation.warm[*i] > 0
                        && c.latency_scale > observation.classes[fastest].latency_scale + 1e-9
                })
                .max_by(|(_, a), (_, b)| {
                    a.latency_scale
                        .partial_cmp(&b.latency_scale)
                        .expect("validated finite scales")
                })
                .map(|(i, _)| i);
            if let Some(class) = slowest_warm {
                let step = ((live as f64 * cfg.up_step_fraction).ceil() as usize).max(1);
                let count = step.min(observation.warm[class]);
                self.idle_since_s = None;
                self.scale_ups += 1;
                self.last_reasons.push(DecisionReason::ClassUpgrade);
                return vec![ElasticAction::Drain { class, count }];
            }
        }

        // Scale down: only when the demand target sits below the warm fleet
        // for a sustained window with a small backlog (one queued query per
        // warm worker is snapshot noise — under continuous load the
        // instantaneous backlog is rarely exactly zero).
        let desired_workers = (desired_eq.ceil() as usize).clamp(cfg.min_fleet, cap);
        let wants_down = desired_workers < warm && queued <= warm;
        if !wants_down {
            self.idle_since_s = None;
            return Vec::new();
        }
        let idle_since = *self.idle_since_s.get_or_insert(observation.now_s);
        if observation.now_s - idle_since < cfg.idle_window_s || warm <= cfg.min_fleet {
            return Vec::new();
        }
        // No attainment gate here: the headroom band above the demand target
        // means the workers coming off are ones the controller is not even
        // using (the engine drains unassigned workers first), and window
        // attainment is too noisy a signal to hold capacity hostage to.
        // Drain toward the demand target. This deliberately undercuts the
        // controller's hardware-scaling preference (given free capacity Loki
        // activates everything for maximum accuracy): the cost-optimal fleet
        // forces accuracy scaling in the shoulders of the day, trading a few
        // accuracy points for dollars while the SLO holds. The engine drains
        // unassigned workers first, so the disruption is bounded by how far
        // the target sits below the active set.
        let Some(class) = self.drain_class(observation) else {
            return Vec::new();
        };
        let step = ((warm as f64 * cfg.down_step_fraction).ceil() as usize).max(1);
        // Drainable capacity in equivalents, converted to whole workers of
        // the drained class (floor: never dip below the target).
        let drainable_eq = warm_eq - desired_eq.max(cfg.min_fleet as f64);
        let count = step
            .min((drainable_eq * scale_of(class)).floor().max(0.0) as usize)
            .min(warm - cfg.min_fleet)
            .min(observation.warm[class]);
        if count == 0 {
            return Vec::new();
        }
        // Restart the idle clock: the next drain needs another sustained
        // window, so a long valley walks the fleet down one step per window.
        self.idle_since_s = Some(observation.now_s);
        self.scale_downs += 1;
        self.last_reasons.push(DecisionReason::SustainedIdle);
        vec![ElasticAction::Drain { class, count }]
    }

    fn last_reasons(&mut self) -> Vec<DecisionReason> {
        std::mem::take(&mut self.last_reasons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_sim::{WorkerClass, WorkerClassCatalog};

    fn catalog() -> WorkerClassCatalog {
        WorkerClassCatalog {
            classes: vec![
                WorkerClass {
                    name: "premium".to_string(),
                    latency_scale: 1.0,
                    memory_gb: 80.0,
                    price_per_hour: 3.0,
                    boot_delay_s: 20.0,
                    spot: false,
                },
                WorkerClass {
                    name: "budget".to_string(),
                    latency_scale: 1.5,
                    memory_gb: 24.0,
                    price_per_hour: 1.5,
                    boot_delay_s: 40.0,
                    spot: false,
                },
            ],
        }
    }

    struct Obs {
        warm: Vec<usize>,
        active: usize,
        provisioning: Vec<usize>,
        draining: Vec<usize>,
        queued: Vec<usize>,
        attainment: Vec<f64>,
        demand: Vec<f64>,
    }

    fn observe<'a>(
        catalog: &'a WorkerClassCatalog,
        state: &'a Obs,
        now_s: f64,
        busy: f64,
    ) -> ElasticObservation<'a> {
        ElasticObservation {
            now_s,
            classes: &catalog.classes,
            warm: &state.warm,
            active: state.active,
            provisioning: &state.provisioning,
            draining: &state.draining,
            demand_qps: &state.demand,
            queued: &state.queued,
            window_attainment: &state.attainment,
            busy_fraction: busy,
            max_fleet: 32,
            revocations: 0,
            stockouts: 0,
            spot_price_multiplier: 1.0,
        }
    }

    /// Low demand (desired fleet = min_fleet), clean queues, perfect
    /// attainment.
    fn calm(warm: usize) -> Obs {
        Obs {
            warm: vec![warm, 0],
            active: 2,
            provisioning: vec![0, 0],
            draining: vec![0, 0],
            queued: vec![0],
            attainment: vec![1.0],
            demand: vec![100.0],
        }
    }

    #[test]
    fn attainment_collapse_scales_up_with_the_cheapest_effective_class() {
        let catalog = catalog();
        let mut scaler = ReactiveAutoscaler::default();
        // 0.60 is under the catastrophic floor (0.75) by more than 0.05: the
        // 25% kick (2) doubles to 4 reference-equivalents on top of the tiny
        // demand target. Budget's effective price (1.5 * 1.5 = 2.25) beats
        // premium (3.0), and budget's 1.5x slowdown means 4 equivalents take
        // ceil(4 * 1.5) = 6 budget workers.
        let state = Obs {
            attainment: vec![0.60],
            ..calm(8)
        };
        let actions = scaler.decide(&observe(&catalog, &state, 10.0, 0.6));
        assert_eq!(
            actions,
            vec![ElasticAction::Provision { class: 1, count: 6 }]
        );
        assert_eq!(scaler.scale_ups(), 1);
        // An ordinary attainment wobble (0.90) is NOT pressure: Loki's 10 s
        // windows dip there routinely at any fleet size.
        let wobble = Obs {
            attainment: vec![0.90],
            ..calm(8)
        };
        assert!(scaler
            .decide(&observe(&catalog, &wobble, 20.0, 0.6))
            .is_empty());
    }

    #[test]
    fn backlog_pressure_kicks_but_boots_in_flight_suppress_the_spiral() {
        let catalog = catalog();
        // 100 queued over 10 warm (12.5/worker) is pressure; the kick is
        // clamped to the one free slot under the cap. The *demand* target is
        // tiny, so the slot-bias stays out of it and the cheap class wins
        // (kicks are transient; class choice follows demand).
        let mut scaler = ReactiveAutoscaler::new(AutoscalerConfig {
            max_fleet: 11,
            ..AutoscalerConfig::default()
        });
        let backlogged = Obs {
            queued: vec![100],
            ..calm(10)
        };
        let actions = scaler.decide(&observe(&catalog, &backlogged, 10.0, 0.9));
        assert_eq!(
            actions,
            vec![ElasticAction::Provision { class: 1, count: 1 }]
        );
        // The same pressure with boots already in flight does not re-kick:
        // help is on the way, compounding would turn one transient into a
        // provisioning storm.
        let mut scaler = ReactiveAutoscaler::default();
        let booting = Obs {
            provisioning: vec![2, 0],
            queued: vec![100],
            ..calm(8)
        };
        assert!(scaler
            .decide(&observe(&catalog, &booting, 10.0, 0.9))
            .is_empty());
    }

    #[test]
    fn demand_target_scales_up_without_any_pressure() {
        // 1200 QPS of estimated demand at 75 QPS/worker with 20% headroom
        // wants 19.2 reference-equivalents: the fleet grows toward the target
        // even while attainment is still perfect (beat the ramp, not chase
        // it). The 12 free slots cannot cover 1.25x the target on the slow
        // budget class (8 + 12/1.5 = 16 < 24), so the slot-bias provisions
        // premium.
        let catalog = catalog();
        let mut scaler = ReactiveAutoscaler::default();
        let state = Obs {
            demand: vec![1200.0],
            ..calm(8)
        };
        let actions = scaler.decide(&observe(&catalog, &state, 10.0, 0.5));
        assert_eq!(
            actions,
            vec![ElasticAction::Provision {
                class: 0,
                count: 12
            }]
        );
    }

    #[test]
    fn scale_down_requires_a_sustained_idle_window() {
        let catalog = catalog();
        let mut scaler = ReactiveAutoscaler::new(AutoscalerConfig {
            min_fleet: 2,
            idle_window_s: 25.0,
            ..AutoscalerConfig::default()
        });
        let state = calm(10);
        // Desired (2) sits far under warm (10) at t=10: the idle streak
        // starts, nothing drains yet.
        assert!(scaler
            .decide(&observe(&catalog, &state, 10.0, 0.1))
            .is_empty());
        // Still idle at t=20: window not met.
        assert!(scaler
            .decide(&observe(&catalog, &state, 20.0, 0.1))
            .is_empty());
        // A demand blip back to the warm size resets the streak...
        let busy_again = Obs {
            demand: vec![600.0],
            ..calm(10)
        };
        assert!(scaler
            .decide(&observe(&catalog, &busy_again, 30.0, 0.7))
            .is_empty());
        assert!(scaler
            .decide(&observe(&catalog, &state, 40.0, 0.1))
            .is_empty());
        // ...so t=60 (20 s after the reset) still holds...
        assert!(scaler
            .decide(&observe(&catalog, &state, 60.0, 0.1))
            .is_empty());
        // ...and t=70 (30 s of sustained idle) finally drains 40% of warm.
        let actions = scaler.decide(&observe(&catalog, &state, 70.0, 0.1));
        assert_eq!(actions, vec![ElasticAction::Drain { class: 0, count: 4 }]);
        assert_eq!(scaler.scale_downs(), 1);
    }

    #[test]
    fn scale_down_respects_the_min_fleet_and_drains_expensive_first() {
        let catalog = catalog();
        let mut scaler = ReactiveAutoscaler::new(AutoscalerConfig {
            min_fleet: 3,
            idle_window_s: 0.0,
            down_step_fraction: 0.9,
            ..AutoscalerConfig::default()
        });
        // Mixed warm fleet: premium (effective 3.0) drains before budget.
        // Capacity is 3 + 2/1.5 = 4.33 reference-equivalents against a keep
        // of 3, so exactly one premium worker (1.0 equivalents) can come off
        // despite the 90% step asking for more.
        let state = Obs {
            warm: vec![3, 2],
            ..calm(0)
        };
        let first = scaler.decide(&observe(&catalog, &state, 10.0, 0.0));
        assert_eq!(first, vec![ElasticAction::Drain { class: 0, count: 1 }]);
        // 2 + 2/1.5 = 3.33 equivalents over a keep of 3 leaves no whole
        // drainable worker: nothing more comes off.
        let at_floor = Obs {
            warm: vec![2, 2],
            ..calm(0)
        };
        assert!(scaler
            .decide(&observe(&catalog, &at_floor, 30.0, 0.0))
            .is_empty());
    }

    #[test]
    fn fleet_at_the_demand_target_holds_steady() {
        let catalog = catalog();
        let mut scaler = ReactiveAutoscaler::default();
        // 600 QPS wants ceil(600 * 1.2 / 75) = 10 workers: exactly the warm
        // fleet. Neither direction moves, and no idle streak accrues.
        let state = Obs {
            demand: vec![600.0],
            ..calm(10)
        };
        assert!(scaler
            .decide(&observe(&catalog, &state, 10.0, 0.7))
            .is_empty());
        assert!(scaler
            .decide(&observe(&catalog, &state, 50.0, 0.7))
            .is_empty());
        assert_eq!(scaler.scale_ups() + scaler.scale_downs(), 0);
    }

    #[test]
    fn slot_constrained_fleet_upgrades_slow_workers_to_fast_ones() {
        let catalog = catalog();
        let mut scaler = ReactiveAutoscaler::new(AutoscalerConfig {
            max_fleet: 10,
            ..AutoscalerConfig::default()
        });
        // Fleet at the 10-slot cap, mostly budget workers: 4 + 6/1.5 = 8
        // reference-equivalents against a demand target of 1200*1.2/75 =
        // 19.2. No slot is free, so the scaler drains the slowest class to
        // make room...
        let state = Obs {
            warm: vec![4, 6],
            demand: vec![1200.0],
            ..calm(0)
        };
        let actions = scaler.decide(&observe(&catalog, &state, 10.0, 0.9));
        assert_eq!(actions, vec![ElasticAction::Drain { class: 1, count: 3 }]);
        // ...and once the slots free up, refills them with the fastest class
        // (slot-constrained provisioning: budget cannot cover the target).
        let after = Obs {
            warm: vec![4, 3],
            demand: vec![1200.0],
            ..calm(0)
        };
        let actions = scaler.decide(&observe(&catalog, &after, 20.0, 0.9));
        assert_eq!(
            actions,
            vec![ElasticAction::Provision { class: 0, count: 3 }]
        );
        // A single-class catalog can never trigger the upgrade path.
        let uniform = WorkerClassCatalog::single(WorkerClass {
            name: "gpu".to_string(),
            latency_scale: 1.0,
            memory_gb: 40.0,
            price_per_hour: 2.5,
            boot_delay_s: 20.0,
            spot: false,
        });
        let mut scaler = ReactiveAutoscaler::new(AutoscalerConfig {
            max_fleet: 10,
            ..AutoscalerConfig::default()
        });
        let full = Obs {
            warm: vec![10],
            provisioning: vec![0],
            draining: vec![0],
            queued: vec![0],
            attainment: vec![1.0],
            demand: vec![1200.0],
            active: 10,
        };
        assert!(scaler
            .decide(&observe(&uniform, &full, 10.0, 0.9))
            .is_empty());
    }

    #[test]
    fn pinned_class_overrides_the_price_ranking() {
        let catalog = catalog();
        let mut scaler = ReactiveAutoscaler::new(AutoscalerConfig {
            pin_class: Some(0),
            ..AutoscalerConfig::default()
        });
        let state = Obs {
            queued: vec![1000],
            ..calm(4)
        };
        let actions = scaler.decide(&observe(&catalog, &state, 10.0, 1.0));
        assert!(matches!(
            actions.as_slice(),
            [ElasticAction::Provision { class: 0, .. }]
        ));
    }
}
