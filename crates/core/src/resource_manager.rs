//! The cluster-level Resource Manager: partitions one shared worker fleet
//! across several serving pipelines.
//!
//! The paper's Resource Manager allocates variants *within* one pipeline's
//! cluster; this module adds the level above it for contended multi-pipeline
//! serving (Section 7's future work): a [`ResourceManager`] implements the
//! simulator's [`ResourceArbiter`] interface, weighing each pipeline by its
//! demand estimate (plus observed backlog pressure, which reacts a full epoch
//! before the demand estimator on bursty traffic) and SLO tightness, and
//! apportioning the fleet proportionally. Each pipeline's own Loki controller
//! then plans inside the partition it was granted, unchanged.
//!
//! Two mechanisms keep the partition from thrashing:
//!
//! * **Rebalance epochs** — the partition is only reconsidered every
//!   [`ResourceManagerConfig::rebalance_interval_s`] seconds (worker moves pay
//!   a model-unload cooldown, so reacting to every demand wiggle would burn
//!   capacity on migrations).
//! * **Hysteresis** — a proposed repartition is dropped unless it moves more
//!   than [`ResourceManagerConfig::hysteresis`] of the cluster, *except* when
//!   a pipeline with demand is starved (zero workers), which is always fixed
//!   immediately.

use loki_sim::{apportion, ArbiterObservation, ResourceArbiter};
use serde::{Deserialize, Serialize};

/// Configuration of the cluster-level [`ResourceManager`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceManagerConfig {
    /// Seconds between partition reconsiderations (the rebalance epoch).
    pub rebalance_interval_s: f64,
    /// Fraction of the cluster that must move for a repartition to be worth
    /// its migration cooldowns; proposals moving `<= floor(hysteresis *
    /// cluster_size)` workers are dropped (starvation is exempt).
    pub hysteresis: f64,
    /// Reference SLO (ms) for the tightness weighting: a pipeline's demand is
    /// weighted by `slo_reference_ms / slo_ms`, so a pipeline with half the
    /// SLO budget gets twice the per-QPS capacity share (tighter deadlines
    /// leave less room for queueing, which only headroom absorbs).
    pub slo_reference_ms: f64,
    /// Demand (QPS) below which a pipeline is treated as idle and granted no
    /// workers (its share returns to the pool for the others).
    pub idle_demand_qps: f64,
    /// Pressure-aware arbitration: observed backlog is converted into the
    /// extra QPS needed to drain it within one rebalance epoch
    /// (`pressure_gain * queued / rebalance_interval_s`) and added to the
    /// pipeline's demand weight. Backlog is measured *now*, so the arbiter
    /// reacts a full epoch before the demand estimator catches a burst; 0
    /// disables the signal.
    pub pressure_gain: f64,
    /// Reserve floor: every pipeline with demand is guaranteed
    /// `max(1, floor(floor_fraction * cluster_size))` workers before the rest
    /// of the fleet is split by weight. Pipelines differ in capacity-per-QPS,
    /// so a purely proportional split can hand a low-demand pipeline less
    /// than its minimum viable footprint; the floor bounds that error.
    pub floor_fraction: f64,
}

impl Default for ResourceManagerConfig {
    fn default() -> Self {
        Self {
            rebalance_interval_s: 10.0,
            hysteresis: 0.05,
            slo_reference_ms: 250.0,
            idle_demand_qps: 1e-6,
            pressure_gain: 1.0,
            floor_fraction: 0.1,
        }
    }
}

/// The cluster-level Resource Manager (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ResourceManager {
    config: ResourceManagerConfig,
    /// Rebalance epochs seen (observations, whether or not they repartition).
    epochs: u64,
    /// Proposals dropped by the hysteresis band.
    held_by_hysteresis: u64,
    /// Why the most recent accepted repartition went through; surfaced on the
    /// cluster journal's rebalance events.
    last_reason: Option<&'static str>,
}

impl ResourceManager {
    /// A manager with the default configuration.
    pub fn new(config: ResourceManagerConfig) -> Self {
        assert!(config.rebalance_interval_s > 0.0);
        assert!((0.0..1.0).contains(&config.hysteresis));
        assert!(config.slo_reference_ms > 0.0);
        assert!(config.pressure_gain >= 0.0);
        assert!((0.0..=1.0).contains(&config.floor_fraction));
        Self {
            config,
            epochs: 0,
            held_by_hysteresis: 0,
            last_reason: None,
        }
    }

    /// The manager's configuration.
    pub fn config(&self) -> &ResourceManagerConfig {
        &self.config
    }

    /// Rebalance epochs observed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Proposed repartitions suppressed by the hysteresis band.
    pub fn held_by_hysteresis(&self) -> u64 {
        self.held_by_hysteresis
    }

    /// The partition weight of one pipeline: demand plus backlog pressure,
    /// scaled by SLO tightness. Backlog converts to the QPS needed to drain
    /// it within one epoch, so a burst raises a pipeline's share as soon as
    /// its queues grow — one full epoch before the EWMA demand estimator
    /// would report the higher rate.
    fn weight(&self, demand_qps: f64, slo_ms: f64, queued: usize) -> f64 {
        let demand = if demand_qps.is_finite() {
            demand_qps.max(0.0)
        } else {
            0.0
        };
        let pressure_qps =
            self.config.pressure_gain * queued as f64 / self.config.rebalance_interval_s;
        let effective = demand + pressure_qps;
        if effective <= self.config.idle_demand_qps {
            return 0.0;
        }
        let tightness = if slo_ms.is_finite() && slo_ms > 0.0 {
            self.config.slo_reference_ms / slo_ms
        } else {
            1.0
        };
        effective * tightness
    }
}

impl ResourceArbiter for ResourceManager {
    fn name(&self) -> &str {
        "resource-manager"
    }

    fn rebalance_interval_s(&self) -> f64 {
        self.config.rebalance_interval_s
    }

    fn partition(&mut self, observation: &ArbiterObservation<'_>) -> Option<Vec<usize>> {
        self.epochs += 1;
        let weights: Vec<f64> = observation
            .demand_qps
            .iter()
            .zip(observation.slo_ms)
            .zip(observation.queued)
            .map(|((&demand, &slo), &queued)| self.weight(demand, slo, queued))
            .collect();
        // Reserve floors for every pipeline with demand, then split the rest
        // of the fleet by weight. A pipeline's floor is at least its task
        // count — a grant below one-worker-per-task serves nothing at all.
        // When nothing has demand yet (e.g. no hints at time zero) the floors
        // vanish and the split falls back to even.
        let cluster = observation.cluster_size;
        let fraction_floor = ((self.config.floor_fraction * cluster as f64) as usize).max(1);
        let floors: Vec<usize> = weights
            .iter()
            .zip(observation.num_tasks)
            .map(|(&w, &tasks)| {
                if w > 0.0 {
                    fraction_floor.max(tasks)
                } else {
                    0
                }
            })
            .collect();
        let floor_total: usize = floors.iter().sum();
        let target: Vec<usize> = if floor_total > 0 && floor_total <= cluster {
            apportion(&weights, cluster - floor_total)
                .iter()
                .zip(&floors)
                .map(|(&rest, &floor)| rest + floor)
                .collect()
        } else {
            apportion(&weights, cluster)
        };
        if target == observation.partition {
            return None;
        }
        let moved: usize = target
            .iter()
            .zip(observation.partition)
            .map(|(&t, &c)| t.saturating_sub(c))
            .sum();
        // A pipeline with demand but no workers is starved: fix regardless of
        // move size. Otherwise small reshuffles stay inside the hysteresis
        // band (their migration cooldowns cost more than the skew they fix).
        let starved = weights
            .iter()
            .zip(observation.partition)
            .any(|(&w, &owned)| w > 0.0 && owned == 0);
        let band = (self.config.hysteresis * observation.cluster_size as f64) as usize;
        if !starved && moved <= band {
            self.held_by_hysteresis += 1;
            return None;
        }
        self.last_reason = Some(if starved && moved <= band {
            "starvation-override"
        } else {
            "demand-weighted"
        });
        Some(target)
    }

    fn decision_reason(&self) -> Option<&'static str> {
        self.last_reason
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe<'a>(
        partition: &'a [usize],
        demand: &'a [f64],
        slo: &'a [f64],
        queued: &'a [usize],
        cluster: usize,
    ) -> ArbiterObservation<'a> {
        ArbiterObservation {
            now_s: 0.0,
            cluster_size: cluster,
            partition,
            demand_qps: demand,
            slo_ms: slo,
            num_tasks: &[2, 2],
            queued,
        }
    }

    #[test]
    fn partitions_proportionally_to_demand() {
        let mut manager = ResourceManager::default();
        let target = manager
            .partition(&observe(
                &[0, 0],
                &[900.0, 300.0],
                &[250.0, 250.0],
                &[0, 0],
                20,
            ))
            .expect("initial grant");
        // 10% floors (2 + 2), the remaining 16 split 3:1.
        assert_eq!(target, vec![14, 6]);
        assert_eq!(manager.epochs(), 1);
    }

    #[test]
    fn tighter_slo_earns_a_larger_share() {
        let mut manager = ResourceManager::default();
        // Equal demand, but pipeline 0 has half the latency budget: it gets
        // twice the per-QPS share of the fleet beyond the floors.
        let target = manager
            .partition(&observe(
                &[0, 0],
                &[300.0, 300.0],
                &[125.0, 250.0],
                &[0, 0],
                18,
            ))
            .expect("initial grant");
        assert_eq!(target, vec![11, 7]);
    }

    #[test]
    fn zero_demand_pipeline_gets_no_workers() {
        let mut manager = ResourceManager::default();
        let target = manager
            .partition(&observe(
                &[0, 0],
                &[300.0, 0.0],
                &[250.0, 250.0],
                &[0, 0],
                20,
            ))
            .expect("initial grant");
        assert_eq!(target, vec![20, 0]);
        // Settled at the target: nothing to do on later epochs.
        assert_eq!(
            manager.partition(&observe(
                &[20, 0],
                &[300.0, 0.0],
                &[250.0, 250.0],
                &[0, 0],
                20,
            )),
            None
        );
    }

    #[test]
    fn hysteresis_suppresses_single_worker_jitter() {
        let mut manager = ResourceManager::new(ResourceManagerConfig {
            hysteresis: 0.05,
            ..ResourceManagerConfig::default()
        });
        // Target (11, 9) vs current (10, 10): a one-worker move on a
        // 20-cluster sits inside the 5% band.
        assert_eq!(
            manager.partition(&observe(
                &[10, 10],
                &[550.0, 450.0],
                &[250.0, 250.0],
                &[0, 0],
                20,
            )),
            None
        );
        assert_eq!(manager.held_by_hysteresis(), 1);
        // A 3:1 skew moves 5 workers: well past the band.
        let target = manager
            .partition(&observe(
                &[10, 10],
                &[750.0, 250.0],
                &[250.0, 250.0],
                &[0, 0],
                20,
            ))
            .expect("large skew rebalances");
        assert_eq!(target, vec![14, 6]);
    }

    #[test]
    fn starvation_overrides_hysteresis() {
        let mut manager = ResourceManager::new(ResourceManagerConfig {
            hysteresis: 0.25,
            ..ResourceManagerConfig::default()
        });
        // Moving one worker to the starved pipeline is inside the 25% band,
        // but a demanded pipeline with zero workers must be fixed anyway.
        let target = manager
            .partition(&observe(
                &[20, 0],
                &[950.0, 50.0],
                &[250.0, 250.0],
                &[0, 0],
                20,
            ))
            .expect("starvation forces a rebalance");
        assert_eq!(target, vec![17, 3]);
    }

    #[test]
    fn backlog_pressure_rebalances_before_the_demand_estimator_catches_up() {
        // Both pipelines report the same *estimated* demand (the EWMA has not
        // caught the burst yet), but pipeline 1's queues hold 2000 queries.
        // With pressure_gain 1.0 and 10 s epochs that is +200 effective QPS:
        // the burst lane must gain workers on this epoch, not the next.
        let mut manager = ResourceManager::default();
        let target = manager
            .partition(&observe(
                &[10, 10],
                &[300.0, 300.0],
                &[250.0, 250.0],
                &[0, 2000],
                20,
            ))
            .expect("backlog pressure must trigger a rebalance");
        assert!(
            target[1] > target[0],
            "the backlogged pipeline must gain the larger share, got {target:?}"
        );
        assert!(target[1] > 10, "burst lane must gain workers: {target:?}");

        // The same observation with the pressure signal disabled stays put —
        // the demand estimates alone see a symmetric cluster.
        let mut blind = ResourceManager::new(ResourceManagerConfig {
            pressure_gain: 0.0,
            ..ResourceManagerConfig::default()
        });
        assert_eq!(
            blind.partition(&observe(
                &[10, 10],
                &[300.0, 300.0],
                &[250.0, 250.0],
                &[0, 2000],
                20,
            )),
            None
        );
    }

    #[test]
    fn backlog_alone_wakes_an_idle_pipeline() {
        // Zero demand estimate but queued work (e.g. a burst inside the very
        // first epoch): pressure alone must earn the pipeline a share.
        let mut manager = ResourceManager::default();
        let target = manager
            .partition(&observe(
                &[20, 0],
                &[300.0, 0.0],
                &[250.0, 250.0],
                &[0, 500],
                20,
            ))
            .expect("queued work must earn a share");
        assert!(target[1] > 0, "{target:?}");
    }

    #[test]
    fn no_demand_anywhere_splits_evenly() {
        let mut manager = ResourceManager::default();
        let target = manager
            .partition(&observe(&[0, 0], &[0.0, 0.0], &[250.0, 250.0], &[0, 0], 10))
            .expect("even fallback");
        assert_eq!(target, vec![5, 5]);
    }
}
