use loki_core::{LokiConfig, LokiController};
use loki_pipeline::zoo;
use loki_sim::{SimConfig, Simulation};
use loki_workload::{generate_arrivals, generators, ArrivalProcess};

#[test]
#[ignore]
fn debug_e2e() {
    let g = zoo::traffic_analysis_pipeline(250.0);
    let controller = LokiController::new(g.clone(), LokiConfig::with_greedy());
    let trace = generators::constant(40, 120.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 3);
    let config = SimConfig {
        cluster_size: 20,
        control_interval_s: 5.0,
        initial_demand_hint: Some(120.0),
        drain_s: 15.0,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&g, config, controller);
    let result = sim.run(&arrivals);
    for m in &result.intervals {
        println!(
            "t={:>5.0} arr={:>4} ok={:>4} late={:>4} drop={:>4} active={:>2} rerouted={:>4} acc={:.3}",
            m.start_s, m.arrivals, m.completed_on_time, m.completed_late, m.dropped,
            m.active_workers, m.rerouted, m.mean_accuracy()
        );
    }
    println!("summary: {:?}", result.summary);
    let ctl = sim.into_controller();
    println!(
        "last outcome: {:#?}",
        ctl.last_outcome()
            .map(|o| (&o.plan.instances, o.mode, o.servers_used))
    );
}
