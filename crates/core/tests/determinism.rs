//! Same-seed determinism and semantic-stability guards for the simulator.
//!
//! Two layers of protection:
//!
//! 1. `same_seed_runs_are_identical`: two runs of the full Loki controller with
//!    the same seed must produce bit-identical `RunSummary`s. This is the
//!    invariant every figure in the paper reproduction rests on.
//! 2. `golden_summary_is_stable`: a pinned snapshot of one run's summary. Any
//!    engine change that alters simulation behaviour (event ordering, RNG draw
//!    sequence, routing semantics) trips this test and must justify updating
//!    the constants. The slab-arena/alias-table rewrite of the event core was
//!    validated against the seed engine on these same scenarios (on-time /
//!    late / dropped within 0.1%, identical accuracy) before this snapshot was
//!    taken.

use loki_core::{LokiConfig, LokiController};
use loki_pipeline::zoo;
use loki_sim::{LinkDelayModel, RunSummary, SimConfig, Simulation};
use loki_workload::{generate_arrivals, generators, ArrivalProcess};

fn run_with_links(seed: u64, link_delays: LinkDelayModel) -> RunSummary {
    let graph = zoo::traffic_analysis_pipeline(250.0);
    let trace = generators::constant(30, 300.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 11);
    let mut loki_config = LokiConfig::with_greedy();
    loki_config.link_delays = link_delays.clone();
    let controller = LokiController::new(graph.clone(), loki_config);
    let config = SimConfig {
        cluster_size: 20,
        initial_demand_hint: Some(300.0),
        drain_s: 10.0,
        seed,
        link_delays,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&graph, config, controller);
    sim.run(&arrivals).summary
}

fn run_once(seed: u64) -> RunSummary {
    run_with_links(seed, LinkDelayModel::Uniform)
}

/// The two-tier interconnect of the `traffic_hetnet` scenario: PCIe-fast
/// intra-class hops, 5 ms cross-class hops, workers striped over two classes.
fn two_tier() -> LinkDelayModel {
    LinkDelayModel::PerWorkerClass {
        classes: 2,
        delay_ms: vec![0.2, 5.0, 5.0, 0.2],
        frontend_ms: vec![2.0, 2.0],
    }
}

#[test]
fn same_seed_runs_are_identical() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a, b, "same-seed runs must produce identical summaries");
}

#[test]
fn different_seeds_diverge() {
    let a = run_once(42);
    let b = run_once(43);
    // Stochastic routing/fan-out must actually depend on the seed.
    assert_ne!(
        (a.events_processed, a.total_on_time, a.total_late),
        (b.events_processed, b.total_on_time, b.total_late)
    );
}

#[test]
fn golden_summary_is_stable() {
    let s = run_once(42);
    println!("golden candidate: {s:?}");
    assert_eq!(s.total_arrivals, 8981);
    assert_eq!(s.total_on_time, GOLDEN_ON_TIME);
    assert_eq!(s.total_late, GOLDEN_LATE);
    assert_eq!(s.total_dropped, GOLDEN_DROPPED);
    assert_eq!(s.events_processed, GOLDEN_EVENTS);
    assert!((s.system_accuracy - GOLDEN_ACCURACY).abs() < 1e-12);
}

// Golden values pinned after the routing-cache change (PR 2): the Load Balancer now
// keeps its tables when the demand estimate moves less than the 2% deadband and
// worker assignments are unchanged, so table refreshes (and the RNG draws behind
// re-sampled routing) land on slightly different ticks than in PR 1. Validated
// against the PR-1 goldens on this scenario: on-time within 0.2% (8976 vs 8961),
// identical accuracy, late+dropped down from 20 to 5.
//
// The calendar-queue scheduler (PR 3) reproduced these constants bit-for-bit —
// under the uniform link-delay model its pop order is provably identical to the
// heap+FIFO merge it replaced, so no re-pin was needed.
const GOLDEN_ON_TIME: u64 = 8976;
const GOLDEN_LATE: u64 = 3;
const GOLDEN_DROPPED: u64 = 2;
const GOLDEN_EVENTS: u64 = 51628;
const GOLDEN_ACCURACY: f64 = 1.0;

#[test]
fn same_seed_hetnet_runs_are_identical() {
    let a = run_with_links(42, two_tier());
    let b = run_with_links(42, two_tier());
    assert_eq!(
        a, b,
        "same-seed hetnet runs must produce identical summaries"
    );
}

#[test]
fn heterogeneous_delays_change_the_schedule() {
    // Per-link delays must demonstrably reorder deliveries relative to the
    // single-constant model: the same seed and arrivals produce a different
    // event schedule (and thus different totals) under the two-tier model.
    let uniform = run_once(42);
    let hetnet = run_with_links(42, two_tier());
    assert_eq!(uniform.total_arrivals, hetnet.total_arrivals);
    assert_ne!(
        (
            uniform.total_on_time,
            uniform.total_late,
            uniform.events_processed
        ),
        (
            hetnet.total_on_time,
            hetnet.total_late,
            hetnet.events_processed
        ),
        "two-tier links must change the delivery schedule"
    );
}

#[test]
fn golden_hetnet_summary_is_stable() {
    let s = run_with_links(42, two_tier());
    println!("hetnet golden candidate: {s:?}");
    assert_eq!(s.total_arrivals, 8981);
    assert_eq!(s.total_on_time, GOLDEN_HETNET_ON_TIME);
    assert_eq!(s.total_late, GOLDEN_HETNET_LATE);
    assert_eq!(s.total_dropped, GOLDEN_HETNET_DROPPED);
    assert_eq!(s.events_processed, GOLDEN_HETNET_EVENTS);
    assert!((s.system_accuracy - GOLDEN_HETNET_ACCURACY).abs() < 1e-12);
}

// Golden values for the heterogeneous two-tier interconnect (pinned with the
// calendar-queue scheduler that makes per-link delays possible, PR 3). Same
// workload as the uniform golden above; the slower cross-class hops shift
// batch formation and routing draws, hence the different totals.
const GOLDEN_HETNET_ON_TIME: u64 = 8975;
const GOLDEN_HETNET_LATE: u64 = 4;
const GOLDEN_HETNET_DROPPED: u64 = 2;
const GOLDEN_HETNET_EVENTS: u64 = 51638;
const GOLDEN_HETNET_ACCURACY: f64 = 1.0;
