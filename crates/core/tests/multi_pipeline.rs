//! Cross-pipeline determinism and degeneracy guards for multi-pipeline serving.
//!
//! Three layers of protection for the shared-cluster engine:
//!
//! 1. `zero_demand_lane_is_bit_identical_to_single_pipeline_run`: a
//!    two-pipeline run where one pipeline offers no demand (and is granted no
//!    workers) must reproduce the single-pipeline run of the other pipeline
//!    *bit for bit* — same workload, same seed, same `RunSummary`, including
//!    the event count. This pins the property that the multi-lane engine is a
//!    strict generalization of the single-pipeline engine (the determinism
//!    goldens in `determinism.rs` pin the single-pipeline side).
//! 2. `multi_pipeline_same_seed_runs_are_identical`: contended two-pipeline
//!    runs are deterministic per seed, per lane.
//! 3. Migration semantics: a demand shift moves workers between pipelines
//!    through the Resource Manager (and a static split never does).

use loki_core::{LokiConfig, LokiController, ResourceManager, ResourceManagerConfig};
use loki_pipeline::zoo;
use loki_sim::{
    ElasticAction, ElasticObservation, ElasticPolicy, ElasticSimConfig, MultiPipeline,
    MultiSimResult, MultiSimulation, RunSummary, SimConfig, Simulation, StaticPartition,
    WorkerClass, WorkerClassCatalog,
};
use loki_workload::{generate_arrivals, generators, ArrivalProcess, Trace};

/// The single-pipeline workload of the determinism goldens: traffic pipeline,
/// 30 s at 300 QPS, arrival seed 11.
fn traffic_arrivals() -> Vec<f64> {
    let trace = generators::constant(30, 300.0);
    generate_arrivals(&trace, ArrivalProcess::Poisson, 11)
}

fn base_config(seed: u64) -> SimConfig {
    SimConfig {
        cluster_size: 20,
        drain_s: 10.0,
        seed,
        ..SimConfig::default()
    }
}

fn loki(graph: &loki_pipeline::PipelineGraph) -> LokiController {
    LokiController::new(graph.clone(), LokiConfig::with_greedy())
}

#[test]
fn zero_demand_lane_is_bit_identical_to_single_pipeline_run() {
    let traffic = zoo::traffic_analysis_pipeline(250.0);
    let social = zoo::social_media_pipeline(250.0);
    let arrivals = traffic_arrivals();

    // The single-pipeline reference run (exactly the goldens' configuration).
    let single: RunSummary = {
        let mut config = base_config(42);
        config.initial_demand_hint = Some(300.0);
        let mut sim = Simulation::new(&traffic, config, loki(&traffic));
        sim.run(&arrivals).summary
    };

    // The same run as lane 0 of a two-pipeline cluster whose second pipeline
    // offers zero demand: the Resource Manager grants it zero workers, its
    // ticks touch only its own (empty) state, and lane 0 must execute the
    // identical event schedule.
    let mut multi = MultiSimulation::new(base_config(42));
    multi.add_pipeline(MultiPipeline {
        name: "traffic".to_string(),
        graph: &traffic,
        controller: Box::new(loki(&traffic)),
        arrivals_s: arrivals.clone(),
        initial_demand_hint: Some(300.0),
    });
    multi.add_pipeline(MultiPipeline {
        name: "social".to_string(),
        graph: &social,
        controller: Box::new(loki(&social)),
        arrivals_s: Vec::new(),
        initial_demand_hint: None,
    });
    let mut manager = ResourceManager::default();
    let result = multi.run(&mut manager);

    assert_eq!(
        result.migrations, 0,
        "an idle lane must never claim workers"
    );
    let lane0 = &result.pipelines[0].result.summary;
    assert_eq!(
        lane0, &single,
        "zero-demand degenerate case must be bit-identical to the single-pipeline run"
    );
    let lane1 = &result.pipelines[1].result.summary;
    assert_eq!(lane1.total_arrivals, 0);
    assert_eq!(lane1.max_active_workers, 0);
}

/// A two-pipeline contended workload: traffic carries most of the demand,
/// social a fraction, both over the shared 20-worker cluster.
fn contended_run(seed: u64) -> MultiSimResult {
    let traffic = zoo::traffic_analysis_pipeline(250.0);
    let social = zoo::social_media_pipeline(300.0);
    let traffic_trace = generators::constant(40, 400.0);
    let social_trace = generators::constant(40, 120.0);
    let mut multi = MultiSimulation::new(base_config(seed));
    multi.add_pipeline(MultiPipeline {
        name: "traffic".to_string(),
        graph: &traffic,
        controller: Box::new(loki(&traffic)),
        arrivals_s: generate_arrivals(&traffic_trace, ArrivalProcess::Poisson, 11),
        initial_demand_hint: Some(400.0),
    });
    multi.add_pipeline(MultiPipeline {
        name: "social".to_string(),
        graph: &social,
        controller: Box::new(loki(&social)),
        arrivals_s: generate_arrivals(&social_trace, ArrivalProcess::Poisson, 12),
        initial_demand_hint: Some(120.0),
    });
    let mut manager = ResourceManager::default();
    multi.run(&mut manager)
}

#[test]
fn multi_pipeline_same_seed_runs_are_identical() {
    let a = contended_run(42);
    let b = contended_run(42);
    assert_eq!(a.pipelines.len(), 2);
    for (lane_a, lane_b) in a.pipelines.iter().zip(&b.pipelines) {
        assert_eq!(lane_a.name, lane_b.name);
        assert_eq!(
            lane_a.result.summary, lane_b.result.summary,
            "same-seed multi-pipeline runs must produce identical summaries"
        );
    }
    assert_eq!(a.total_events, b.total_events);
    assert_eq!(a.migrations, b.migrations);

    // Different seeds must actually diverge.
    let c = contended_run(43);
    assert_ne!(
        a.pipelines[0].result.summary.events_processed,
        c.pipelines[0].result.summary.events_processed
    );
}

#[test]
fn both_pipelines_serve_on_the_shared_cluster() {
    let result = contended_run(42);
    for lane in &result.pipelines {
        let s = &lane.result.summary;
        assert!(s.total_arrivals > 0, "{} saw no arrivals", lane.name);
        assert!(
            s.slo_violation_ratio < 0.1,
            "{} violations {} on an adequately-sized shared cluster",
            lane.name,
            s.slo_violation_ratio
        );
        assert!(s.max_active_workers > 0, "{} never ran a worker", lane.name);
    }
    // Partitions are disjoint: concurrently active workers never exceed the
    // cluster, and the demand skew shows in the partition sizes.
    let active: usize = result
        .pipelines
        .iter()
        .map(|p| p.result.summary.max_active_workers)
        .sum();
    assert!(active <= 20);
    let aggregate = result.aggregate(20).summary;
    assert_eq!(
        aggregate.total_arrivals,
        result
            .pipelines
            .iter()
            .map(|p| p.result.summary.total_arrivals)
            .sum::<u64>()
    );
    assert!(aggregate.events_processed >= result.pipelines[0].result.summary.events_processed);
}

#[test]
fn demand_shift_migrates_workers_between_pipelines() {
    // Pipeline A starts hot and goes idle; pipeline B starts idle and ramps
    // up. The Resource Manager must move workers from A to B mid-run.
    let tiny_a = zoo::tiny_pipeline(200.0);
    let tiny_b = zoo::tiny_pipeline(200.0);
    let mut series_a = vec![120.0; 30];
    series_a.extend(vec![1.0; 30]);
    let mut series_b = vec![1.0; 30];
    series_b.extend(vec![120.0; 30]);
    let trace_a = Trace::new("shift-a", series_a);
    let trace_b = Trace::new("shift-b", series_b);
    // Step-function demand: a fast control cadence keeps the per-pipeline
    // replan lag (backlog served late) from dominating the attainment.
    let mut config = base_config(7);
    config.control_interval_s = 2.0;
    let mut multi = MultiSimulation::new(config);
    multi.add_pipeline(MultiPipeline {
        name: "a".to_string(),
        graph: &tiny_a,
        controller: Box::new(loki(&tiny_a)),
        arrivals_s: generate_arrivals(&trace_a, ArrivalProcess::Poisson, 1),
        initial_demand_hint: Some(120.0),
    });
    multi.add_pipeline(MultiPipeline {
        name: "b".to_string(),
        graph: &tiny_b,
        controller: Box::new(loki(&tiny_b)),
        arrivals_s: generate_arrivals(&trace_b, ArrivalProcess::Poisson, 2),
        initial_demand_hint: Some(1.0),
    });
    let mut manager = ResourceManager::new(ResourceManagerConfig {
        hysteresis: 0.05,
        rebalance_interval_s: 5.0,
        ..ResourceManagerConfig::default()
    });
    let result = multi.run(&mut manager);
    assert!(
        result.migrations > 0,
        "a demand shift must migrate workers across pipelines"
    );
    assert!(result.rebalances > 0);
    assert!(manager.epochs() > 1);
    // Both pipelines must have been served through their hot phases. The
    // ramp-up lane pays for the estimate + rebalance-epoch lag (its demand
    // spikes from idle, so a window of arrivals drops before workers arrive),
    // hence the bound is "most of the run", not near-perfect.
    for lane in &result.pipelines {
        let s = &lane.result.summary;
        assert!(
            s.total_arrivals > 1000,
            "{}: {}",
            lane.name,
            s.total_arrivals
        );
        assert!(
            s.total_on_time as f64 / s.total_arrivals as f64 > 0.65,
            "{} attainment too low: {:?}",
            lane.name,
            s
        );
    }
}

/// A policy that provisions a fixed batch at a scheduled time (multi-lane
/// elastic plumbing needs no autoscaler intelligence to be exercised).
struct ProvisionOnce {
    at_s: f64,
    count: usize,
    done: bool,
}

impl ElasticPolicy for ProvisionOnce {
    fn name(&self) -> &str {
        "provision-once"
    }

    fn decide(&mut self, observation: &ElasticObservation<'_>) -> Vec<ElasticAction> {
        if self.done || observation.now_s < self.at_s {
            return Vec::new();
        }
        self.done = true;
        vec![ElasticAction::Provision {
            class: 0,
            count: self.count,
        }]
    }
}

#[test]
fn resource_manager_absorbs_a_fleet_that_grows_between_epochs() {
    // Two contended pipelines start on a deliberately undersized 6-worker
    // fleet; at t=12 s the provisioner boots 6 more. The Resource Manager
    // must re-apportion the grown fleet at a later epoch (its observation's
    // `cluster_size` changes between rebalances), and both pipelines must end
    // up served on partitions that together exceed the initial fleet.
    let traffic = zoo::traffic_analysis_pipeline(250.0);
    let social = zoo::social_media_pipeline(300.0);
    let traffic_trace = generators::constant(60, 300.0);
    let social_trace = generators::constant(60, 90.0);
    let run = || {
        let mut config = base_config(5);
        config.control_interval_s = 5.0;
        config.elastic = Some(ElasticSimConfig {
            catalog: WorkerClassCatalog::single(WorkerClass {
                name: "gpu".to_string(),
                latency_scale: 1.0,
                memory_gb: 40.0,
                price_per_hour: 2.5,
                boot_delay_s: 5.0,
                spot: false,
            }),
            initial: vec![(0, 6)],
            max_fleet: 12,
            decide_interval_s: 6.0,
            market: None,
        });
        let mut multi = MultiSimulation::new(config);
        multi.add_pipeline(MultiPipeline {
            name: "traffic".to_string(),
            graph: &traffic,
            controller: Box::new(loki(&traffic)),
            arrivals_s: generate_arrivals(&traffic_trace, ArrivalProcess::Poisson, 21),
            initial_demand_hint: Some(300.0),
        });
        multi.add_pipeline(MultiPipeline {
            name: "social".to_string(),
            graph: &social,
            controller: Box::new(loki(&social)),
            arrivals_s: generate_arrivals(&social_trace, ArrivalProcess::Poisson, 22),
            initial_demand_hint: Some(90.0),
        });
        let mut manager = ResourceManager::new(ResourceManagerConfig {
            rebalance_interval_s: 5.0,
            ..ResourceManagerConfig::default()
        });
        let mut policy = ProvisionOnce {
            at_s: 12.0,
            count: 6,
            done: false,
        };
        multi.run_elastic(&mut manager, &mut policy)
    };
    let result = run();
    let cost = result.cost.as_ref().expect("elastic multi runs bill");
    assert_eq!(cost.per_class[0].provisioned, 6);
    assert_eq!(cost.peak_fleet, 12);
    // The grown capacity was actually granted and used: the concurrent
    // active peak across both partitions exceeds the initial 6-worker fleet.
    let active: usize = result
        .pipelines
        .iter()
        .map(|p| p.result.summary.max_active_workers)
        .sum();
    assert!(active > 6, "grown fleet must be apportioned, got {active}");
    assert!(active <= 12, "partitions stay disjoint, got {active}");
    for lane in &result.pipelines {
        let s = &lane.result.summary;
        assert!(s.total_arrivals > 0);
        assert!(
            s.total_on_time as f64 / s.total_arrivals as f64 > 0.5,
            "{} must be served after the fleet grows: {s:?}",
            lane.name
        );
    }
    // The aggregate view carries the cluster-level cost.
    assert_eq!(result.aggregate(12).cost, result.cost);
    // Same-seed elastic multi runs stay deterministic.
    let again = run();
    for (a, b) in result.pipelines.iter().zip(&again.pipelines) {
        assert_eq!(a.result.summary, b.result.summary);
    }
    assert_eq!(result.cost, again.cost);
}

#[test]
fn static_even_split_never_migrates() {
    let tiny_a = zoo::tiny_pipeline(200.0);
    let tiny_b = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(20, 40.0);
    let mut multi = MultiSimulation::new(base_config(9));
    for (name, graph, seed) in [("a", &tiny_a, 1u64), ("b", &tiny_b, 2)] {
        multi.add_pipeline(MultiPipeline {
            name: name.to_string(),
            graph,
            controller: Box::new(loki(graph)),
            arrivals_s: generate_arrivals(&trace, ArrivalProcess::Poisson, seed),
            initial_demand_hint: Some(40.0),
        });
    }
    let mut arbiter = StaticPartition::even(2);
    let result = multi.run(&mut arbiter);
    assert_eq!(result.migrations, 0);
    assert_eq!(result.rebalances, 0);
    assert_eq!(result.arbiter, "static-even");
    for lane in &result.pipelines {
        // Each pipeline lives inside its static half of the cluster.
        assert!(lane.result.summary.max_active_workers <= 10);
        assert!(lane.result.summary.total_on_time > 0);
    }
}
