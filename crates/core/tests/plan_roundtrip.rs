//! Round-trip property test for the plan-emission API (the compile-once contract).
//!
//! The controller-built [`CompiledPlan`] (emitted in place through `PlanBuilder`) must
//! sample *identically* — same RNG stream, same worker sequence — to lowering the
//! legacy `HashMap`-keyed [`RoutingPlan`] built by `MostAccurateFirst::build_routing`
//! for the same inputs. This pins the dense emission path to the interpreted reference
//! across randomized worker assignments, batches, swap flags, demands, and fan-out
//! overrides, which is what lets the engine drop the per-install recompilation step
//! without re-pinning any determinism golden.

use loki_core::perf::FanoutOverrides;
use loki_core::MostAccurateFirst;
use loki_pipeline::{zoo, PipelineGraph, TaskId, VariantId};
use loki_sim::{CompiledPlan, WorkerId, WorkerView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_workers(g: &PipelineGraph, rng: &mut StdRng) -> Vec<WorkerView> {
    let cluster = rng.gen_range(0..24usize);
    let batches = [1u32, 2, 4, 8];
    (0..cluster)
        .map(|id| {
            let variant = if rng.gen_bool(0.15) {
                None
            } else {
                let t = rng.gen_range(0..g.num_tasks());
                let v = rng.gen_range(0..g.task(TaskId(t)).variants.len());
                Some(VariantId::new(t, v))
            };
            WorkerView {
                id: WorkerId(id),
                variant,
                max_batch: batches[rng.gen_range(0..batches.len())],
                queue_len: rng.gen_range(0..5),
                swapping: rng.gen_bool(0.1),
            }
        })
        .collect()
}

fn random_fanout(g: &PipelineGraph, rng: &mut StdRng) -> FanoutOverrides {
    let mut fanout = FanoutOverrides::new();
    for (task_id, task) in g.tasks() {
        for edge in &task.children {
            if rng.gen_bool(0.3) {
                let v = rng.gen_range(0..task.variants.len());
                fanout.insert(
                    (VariantId::new(task_id.index(), v), edge.child.index()),
                    rng.gen_range(0.2..3.0),
                );
            }
        }
    }
    fanout
}

/// Draw `n` samples from the frontend tables of both plans with identical RNG
/// streams and assert the worker sequences match.
fn assert_frontend_matches(a: &CompiledPlan, b: &CompiledPlan, seed: u64) {
    let mut ra = StdRng::seed_from_u64(seed);
    let mut rb = StdRng::seed_from_u64(seed);
    for i in 0..512 {
        assert_eq!(
            a.frontend().sample(&mut ra),
            b.frontend().sample(&mut rb),
            "frontend sample {i} diverged"
        );
    }
    assert_eq!(a.frontend_raw(), b.frontend_raw());
}

/// Compare the downstream table for one (upstream, child) slot: same presence,
/// same sample stream, same raw fallback rows.
fn assert_slot_matches(a: &CompiledPlan, b: &CompiledPlan, up: WorkerId, child: usize, seed: u64) {
    let ta = a.downstream_table(up, child);
    let tb = b.downstream_table(up, child);
    assert_eq!(
        ta.is_some(),
        tb.is_some(),
        "table presence diverged at ({up:?}, {child})"
    );
    if let (Some(ta), Some(tb)) = (ta, tb) {
        let mut ra = StdRng::seed_from_u64(seed);
        let mut rb = StdRng::seed_from_u64(seed);
        for i in 0..256 {
            assert_eq!(
                ta.sample(&mut ra),
                tb.sample(&mut rb),
                "sample {i} diverged at ({up:?}, {child})"
            );
        }
    }
    assert_eq!(
        a.raw_downstream(up, child),
        b.raw_downstream(up, child),
        "stale-path raw rows diverged at ({up:?}, {child})"
    );
}

fn check_roundtrip(g: &PipelineGraph, trial_seed: u64) {
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let workers = random_workers(g, &mut rng);
    let fanout = random_fanout(g, &mut rng);
    let demand = rng.gen_range(0.0..600.0);

    let legacy = MostAccurateFirst::build_routing(g, &workers, demand, &fanout);
    let lowered = CompiledPlan::from_routing_plan(&legacy, g.num_tasks());
    let mut lb = MostAccurateFirst::default();
    let emitted = lb.emit(g, &workers, demand, &fanout);

    assert_eq!(emitted.num_tasks(), lowered.num_tasks());
    assert_frontend_matches(&emitted, &lowered, trial_seed ^ 0xF00D);

    // Every slot the legacy plan populated, plus a fringe of absent upstreams
    // (exercising the per-task default fold and the beyond-rows extension) and
    // absent children.
    let max_up = workers.len() + 2;
    for up in 0..max_up {
        for child in 0..g.num_tasks() {
            assert_slot_matches(
                &emitted,
                &lowered,
                WorkerId(up),
                child,
                trial_seed ^ ((up as u64) << 20) ^ child as u64,
            );
        }
    }

    // Backup tables must agree exactly (same workers, same order) so the
    // opportunistic-rerouting scan behaves identically on both plans.
    for t in 0..g.num_tasks() {
        assert_eq!(
            emitted.backup(t),
            lowered.backup(t),
            "backup diverged at {t}"
        );
    }
}

#[test]
fn emitted_plan_samples_identically_to_lowered_legacy_plan() {
    let tiny = zoo::tiny_pipeline(100.0);
    let traffic = zoo::traffic_analysis_pipeline(250.0);
    for trial in 0..40u64 {
        check_roundtrip(&tiny, 0x51AB_0000 + trial);
        check_roundtrip(&traffic, 0x7EA1_0000 + trial);
    }
}

#[test]
fn roundtrip_holds_for_empty_and_degenerate_clusters() {
    let g = zoo::tiny_pipeline(100.0);
    // Empty cluster.
    check_roundtrip(&g, u64::MAX);
    let legacy = MostAccurateFirst::build_routing(&g, &[], 100.0, &FanoutOverrides::new());
    let lowered = CompiledPlan::from_routing_plan(&legacy, g.num_tasks());
    let mut lb = MostAccurateFirst::default();
    let emitted = lb.emit(&g, &[], 100.0, &FanoutOverrides::new());
    let mut rng = StdRng::seed_from_u64(7);
    assert_eq!(emitted.frontend().sample(&mut rng), None);
    assert_eq!(lowered.frontend().sample(&mut rng), None);
    // Zero demand on a populated cluster still produces matching (empty) tables.
    let mut rng = StdRng::seed_from_u64(8);
    let workers = random_workers(&g, &mut rng);
    let legacy = MostAccurateFirst::build_routing(&g, &workers, 0.0, &FanoutOverrides::new());
    let lowered = CompiledPlan::from_routing_plan(&legacy, g.num_tasks());
    let emitted = lb.emit(&g, &workers, 0.0, &FanoutOverrides::new());
    assert_frontend_matches(&emitted, &lowered, 9);
    for up in 0..workers.len() {
        for child in 0..g.num_tasks() {
            assert_slot_matches(&emitted, &lowered, WorkerId(up), child, 10 + up as u64);
        }
    }
}
