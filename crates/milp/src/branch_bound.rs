//! Best-first branch-and-bound over the LP relaxation.
//!
//! Each node is a set of additional variable bounds imposed by branching decisions.
//! Nodes are ordered by the LP bound of their parent, so the most promising part of the
//! tree is explored first; this combines well with a warm-start incumbent (Loki seeds
//! the search with its greedy allocation) because strong incumbents let most nodes be
//! pruned without ever solving their relaxation.

use crate::expr::Var;
use crate::model::{Model, ObjectiveSense, VarType};
use crate::simplex;
use crate::solution::{Solution, SolveError, SolveOptions, SolveStats, SolveStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// A branch-and-bound node: extra bounds layered on top of the model bounds.
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(Var, f64, f64)>,
    /// LP bound inherited from the parent (in minimization space).
    bound: f64,
    depth: usize,
}

/// Wrapper providing the heap ordering (best bound first, then shallower nodes).
struct OrderedNode(Node);

impl PartialEq for OrderedNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound && self.0.depth == other.0.depth
    }
}
impl Eq for OrderedNode {}
impl PartialOrd for OrderedNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest minimization bound on top.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.0.depth.cmp(&self.0.depth))
    }
}

/// Convert an objective value into minimization space so bounding logic is uniform.
fn to_min_space(sense: ObjectiveSense, obj: f64) -> f64 {
    match sense {
        ObjectiveSense::Minimize => obj,
        ObjectiveSense::Maximize => -obj,
    }
}

/// Pick the integer variable to branch on: honour the caller's priority list first,
/// then the most fractional variable.
fn pick_branch_var(
    model: &Model,
    values: &[f64],
    int_tol: f64,
    priority: &[Var],
) -> Option<(Var, f64)> {
    let fractional = |v: Var| {
        let x = values[v.index()];
        let frac = (x - x.round()).abs();
        if frac > int_tol {
            Some((v, x))
        } else {
            None
        }
    };
    for &v in priority {
        if model.vars[v.index()].vtype != VarType::Continuous {
            if let Some(hit) = fractional(v) {
                return Some(hit);
            }
        }
    }
    let mut best: Option<(Var, f64, f64)> = None;
    for (i, vd) in model.vars.iter().enumerate() {
        if vd.vtype == VarType::Continuous {
            continue;
        }
        let x = values[i];
        let frac = (x - x.floor()).min(x.ceil() - x);
        if frac > int_tol && best.is_none_or(|(_, _, f)| frac > f) {
            best = Some((Var(i), x, frac));
        }
    }
    best.map(|(v, x, _)| (v, x))
}

/// Rounding heuristic: round every integer variable to the nearest integer, fix it,
/// and re-solve the LP over the remaining continuous variables. Returns a feasible
/// assignment if one is found.
fn rounding_heuristic(
    model: &Model,
    relaxation_values: &[f64],
    node_bounds: &[(Var, f64, f64)],
    int_tol: f64,
    iterations: &mut usize,
) -> Option<Vec<f64>> {
    let mut fixed = node_bounds.to_vec();
    for (i, vd) in model.vars.iter().enumerate() {
        if vd.vtype == VarType::Continuous {
            continue;
        }
        let rounded = relaxation_values[i].round();
        let rounded = rounded.clamp(vd.lb, vd.ub);
        fixed.push((Var(i), rounded, rounded));
    }
    match simplex::solve_lp(model, &fixed) {
        Ok(sol) => {
            *iterations += sol.stats.simplex_iterations;
            if model.is_feasible(&sol.values, f64::max(1e-6, int_tol)) {
                Some(sol.values)
            } else {
                None
            }
        }
        Err(_) => None,
    }
}

/// Solve a mixed-integer model via branch-and-bound.
pub fn solve_milp(model: &Model, options: &SolveOptions) -> Result<Solution, SolveError> {
    let start = Instant::now();
    let sense = model.sense;
    let mut stats = SolveStats::default();

    // Incumbent: best feasible solution found so far (user-space objective).
    let mut incumbent: Option<(f64, Vec<f64>)> = None;

    // Warm start, if provided and feasible after rounding the integer variables.
    if let Some(ws) = &options.warm_start {
        if ws.len() == model.num_vars() {
            let mut rounded = ws.clone();
            for (i, vd) in model.vars.iter().enumerate() {
                if vd.vtype != VarType::Continuous {
                    rounded[i] = rounded[i].round().clamp(vd.lb, vd.ub);
                }
            }
            if model.is_feasible(&rounded, 1e-6) {
                let obj = model.objective_value(&rounded);
                incumbent = Some((obj, rounded));
            }
        }
    }

    // Root relaxation.
    let root = match simplex::solve_lp(model, &[]) {
        Ok(sol) => sol,
        Err(SolveError::Infeasible) => return Err(SolveError::Infeasible),
        Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
        Err(e) => return Err(e),
    };
    stats.simplex_iterations += root.stats.simplex_iterations;

    let mut heap = BinaryHeap::new();
    heap.push(OrderedNode(Node {
        bounds: Vec::new(),
        bound: to_min_space(sense, root.objective),
        depth: 0,
    }));

    let mut best_bound = to_min_space(sense, root.objective);
    let mut nodes_explored = 0usize;

    let incumbent_obj_min =
        |inc: &Option<(f64, Vec<f64>)>| inc.as_ref().map(|(o, _)| to_min_space(sense, *o));

    while let Some(OrderedNode(node)) = heap.pop() {
        // Global best bound is the smallest bound still on the heap or the current node.
        best_bound = node.bound;

        // Termination checks.
        if nodes_explored >= options.node_limit || start.elapsed() >= options.time_limit {
            break;
        }
        if let Some(inc_min) = incumbent_obj_min(&incumbent) {
            let gap = relative_gap(inc_min, best_bound);
            if gap <= options.mip_gap {
                break;
            }
            // Prune by bound.
            if node.bound >= inc_min - 1e-9 {
                continue;
            }
        }

        nodes_explored += 1;

        let relax = match simplex::solve_lp(model, &node.bounds) {
            Ok(sol) => sol,
            Err(SolveError::Infeasible) => continue,
            Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
            Err(e) => return Err(e),
        };
        stats.simplex_iterations += relax.stats.simplex_iterations;
        let relax_min = to_min_space(sense, relax.objective);

        // Prune against the incumbent.
        if let Some(inc_min) = incumbent_obj_min(&incumbent) {
            if relax_min >= inc_min - 1e-9 {
                continue;
            }
        }

        match pick_branch_var(
            model,
            &relax.values,
            options.int_tol,
            &options.branch_priority,
        ) {
            None => {
                // Integral solution: candidate incumbent.
                let mut vals = relax.values.clone();
                for (i, vd) in model.vars.iter().enumerate() {
                    if vd.vtype != VarType::Continuous {
                        vals[i] = vals[i].round();
                    }
                }
                if model.is_feasible(&vals, 1e-6) {
                    let obj = model.objective_value(&vals);
                    let better = match &incumbent {
                        None => true,
                        Some((best, _)) => to_min_space(sense, obj) < to_min_space(sense, *best),
                    };
                    if better {
                        incumbent = Some((obj, vals));
                    }
                }
            }
            Some((branch_var, value)) => {
                // Occasionally run the rounding heuristic to tighten the incumbent.
                if options.heuristic_frequency > 0
                    && (nodes_explored - 1).is_multiple_of(options.heuristic_frequency)
                {
                    if let Some(vals) = rounding_heuristic(
                        model,
                        &relax.values,
                        &node.bounds,
                        options.int_tol,
                        &mut stats.simplex_iterations,
                    ) {
                        let obj = model.objective_value(&vals);
                        let better = match &incumbent {
                            None => true,
                            Some((best, _)) => {
                                to_min_space(sense, obj) < to_min_space(sense, *best)
                            }
                        };
                        if better {
                            incumbent = Some((obj, vals));
                        }
                    }
                }

                let floor = value.floor();
                let ceil = value.ceil();
                let (vlb, vub) = model.var_bounds(branch_var);

                // Down branch: var <= floor(value).
                if floor >= vlb - 1e-9 {
                    let mut bounds = node.bounds.clone();
                    bounds.push((branch_var, vlb, floor));
                    heap.push(OrderedNode(Node {
                        bounds,
                        bound: relax_min,
                        depth: node.depth + 1,
                    }));
                }
                // Up branch: var >= ceil(value).
                if ceil <= vub + 1e-9 {
                    let mut bounds = node.bounds.clone();
                    bounds.push((branch_var, ceil, vub));
                    heap.push(OrderedNode(Node {
                        bounds,
                        bound: relax_min,
                        depth: node.depth + 1,
                    }));
                }
            }
        }
    }

    stats.nodes_explored = nodes_explored;
    stats.solve_time_secs = start.elapsed().as_secs_f64();

    match incumbent {
        Some((obj, values)) => {
            let inc_min = to_min_space(sense, obj);
            let gap = if heap.is_empty() {
                0.0
            } else {
                relative_gap(inc_min, best_bound)
            };
            stats.mip_gap = gap;
            let status = if heap.is_empty() || gap <= options.mip_gap {
                SolveStatus::Optimal
            } else {
                SolveStatus::Feasible
            };
            Ok(Solution {
                status,
                objective: obj,
                values,
                stats,
            })
        }
        None => {
            if heap.is_empty() {
                // Search space exhausted without a feasible integral point.
                Err(SolveError::Infeasible)
            } else {
                Err(SolveError::NoSolutionFound)
            }
        }
    }
}

/// Relative gap between incumbent and bound, both in minimization space.
fn relative_gap(incumbent: f64, bound: f64) -> f64 {
    let diff = (incumbent - bound).max(0.0);
    diff / incumbent.abs().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense, Sense};
    use crate::LinExpr;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn knapsack_small() {
        // Classic 0/1 knapsack: values [60,100,120], weights [10,20,30], cap 50 -> 220.
        let mut m = Model::new("knapsack");
        let items = [(60.0, 10.0), (100.0, 20.0), (120.0, 30.0)];
        let vars: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, _)| m.add_binary(format!("x{i}")))
            .collect();
        let weight: LinExpr = vars
            .iter()
            .zip(items.iter())
            .map(|(&v, &(_, w))| w * v)
            .sum();
        let value: LinExpr = vars
            .iter()
            .zip(items.iter())
            .map(|(&v, &(val, _))| val * v)
            .sum();
        m.add_constraint("cap", weight, Sense::Le, 50.0);
        m.set_objective(ObjectiveSense::Maximize, value);
        let s = m.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        approx(s.objective, 220.0);
        assert!(!s.is_set(vars[0]));
        assert!(s.is_set(vars[1]));
        assert!(s.is_set(vars[2]));
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integer -> LP gives 2.5, MILP gives 2.
        let mut m = Model::new("int");
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_constraint("c", 2.0 * x + 2.0 * y, Sense::Le, 5.0);
        m.set_objective(ObjectiveSense::Maximize, 1.0 * x + 1.0 * y);
        let s = m.solve().unwrap();
        approx(s.objective, 2.0);
        let relaxed = m.solve_relaxation(&[]).unwrap();
        approx(relaxed.objective, 2.5);
    }

    #[test]
    fn assignment_problem() {
        // 3x3 assignment, cost matrix with known optimal assignment cost 5 (1+3+1... )
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        // Optimal: worker0->job1 (1), worker1->job0 (2), worker2->job2 (2) = 5.
        let mut m = Model::new("assign");
        let mut x = vec![vec![]; 3];
        for (i, row) in x.iter_mut().enumerate() {
            for j in 0..3 {
                row.push(m.add_binary(format!("x{i}{j}")));
            }
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            let row: LinExpr = (0..3).map(|j| 1.0 * x[i][j]).sum();
            m.add_constraint(format!("r{i}"), row, Sense::Eq, 1.0);
            let col: LinExpr = (0..3).map(|j| 1.0 * x[j][i]).sum();
            m.add_constraint(format!("c{i}"), col, Sense::Eq, 1.0);
        }
        let obj: LinExpr = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| cost[i][j] * x[i][j])
            .sum();
        m.set_objective(ObjectiveSense::Minimize, obj);
        let s = m.solve().unwrap();
        approx(s.objective, 5.0);
    }

    #[test]
    fn infeasible_milp_detected() {
        let mut m = Model::new("infeas");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c1", 1.0 * x + 1.0 * y, Sense::Ge, 3.0);
        m.set_objective(ObjectiveSense::Minimize, 1.0 * x);
        assert!(matches!(m.solve(), Err(SolveError::Infeasible)));
    }

    #[test]
    fn warm_start_is_used_as_incumbent() {
        let mut m = Model::new("ws");
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_integer("y", 0.0, 100.0);
        m.add_constraint("c", 3.0 * x + 5.0 * y, Sense::Le, 15.0);
        m.set_objective(ObjectiveSense::Maximize, 4.0 * x + 7.0 * y);
        // Feasible warm start: x=0, y=3 (objective 21). Optimum: x=5,y=0 -> 20? No:
        // 4*5=20 < 21, so warm start is actually optimal here.
        let opts = SolveOptions {
            warm_start: Some(vec![0.0, 3.0]),
            ..Default::default()
        };
        let s = m.solve_with(&opts).unwrap();
        approx(s.objective, 21.0);
    }

    #[test]
    fn node_limit_returns_best_incumbent() {
        // A slightly larger knapsack; with a node limit of 1 we should still get a
        // feasible (possibly sub-optimal) answer thanks to the rounding heuristic or
        // integral relaxation, or a NoSolutionFound error; both are acceptable, but
        // the call must not loop forever.
        let mut m = Model::new("limit");
        let n = 12;
        let mut obj = LinExpr::new();
        let mut weight = LinExpr::new();
        for i in 0..n {
            let v = m.add_binary(format!("x{i}"));
            obj.add_term(v, (i % 5 + 1) as f64 * 7.0 + (i as f64) * 0.37);
            weight.add_term(v, (i % 7 + 3) as f64);
        }
        m.add_constraint("cap", weight, Sense::Le, 21.0);
        m.set_objective(ObjectiveSense::Maximize, obj);
        let opts = SolveOptions {
            node_limit: 1,
            heuristic_frequency: 1,
            ..Default::default()
        };
        match m.solve_with(&opts) {
            Ok(sol) => assert!(m.is_feasible(&sol.values, 1e-6)),
            Err(SolveError::NoSolutionFound) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 3x + 2y, x integer, y continuous, x + y <= 4.5, x <= 3 -> x=3, y=1.5
        let mut m = Model::new("mix");
        let x = m.add_integer("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c", 1.0 * x + 1.0 * y, Sense::Le, 4.5);
        m.set_objective(ObjectiveSense::Maximize, 3.0 * x + 2.0 * y);
        let s = m.solve().unwrap();
        approx(s.value(x), 3.0);
        approx(s.value(y), 1.5);
        approx(s.objective, 12.0);
    }

    #[test]
    fn branch_priority_does_not_change_answer() {
        let mut m = Model::new("prio");
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_constraint("c", 7.0 * x + 5.0 * y, Sense::Le, 36.0);
        m.set_objective(ObjectiveSense::Maximize, 12.0 * x + 9.0 * y);
        let base = m.solve().unwrap();
        let opts = SolveOptions {
            branch_priority: vec![y, x],
            ..Default::default()
        };
        let prio = m.solve_with(&opts).unwrap();
        approx(base.objective, prio.objective);
    }
}
