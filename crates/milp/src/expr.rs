//! Linear expressions over model variables.
//!
//! [`Var`] is a lightweight copyable handle into a [`crate::Model`]; [`LinExpr`] is a
//! sparse linear combination of variables plus a constant. Operator overloading makes
//! formulation code read close to the mathematical notation used in the paper:
//!
//! ```
//! use loki_milp::{Model, VarType};
//! let mut m = Model::new("ex");
//! let x = m.add_var("x", VarType::Continuous, 0.0, 1.0);
//! let y = m.add_var("y", VarType::Continuous, 0.0, 1.0);
//! let e = 2.0 * x + 3.0 * y - 1.0;
//! assert_eq!(e.coefficient(x), 2.0);
//! assert_eq!(e.constant(), -1.0);
//! ```

use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A handle to a decision variable inside a [`crate::Model`].
///
/// Handles are plain indices: using a `Var` created by one model inside a different
/// model is a logic error and will either panic (out of range) or silently refer to a
/// different variable, so keep models and their variables together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The index of this variable inside its model (stable across the model lifetime).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A sparse linear expression `Σ aᵢ·xᵢ + c`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<usize, f64>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression (zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression consisting only of a constant.
    pub fn constant_expr(c: f64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// Build an expression from `(variable, coefficient)` pairs.
    pub fn from_terms<I: IntoIterator<Item = (Var, f64)>>(iter: I) -> Self {
        let mut e = Self::new();
        for (v, c) in iter {
            e.add_term(v, c);
        }
        e
    }

    /// Add `coeff * var` to the expression, merging with any existing term.
    pub fn add_term(&mut self, var: Var, coeff: f64) -> &mut Self {
        if coeff != 0.0 {
            let slot = self.terms.entry(var.0).or_insert(0.0);
            *slot += coeff;
            if slot.abs() < f64::EPSILON {
                self.terms.remove(&var.0);
            }
        }
        self
    }

    /// Add a constant to the expression.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The coefficient of `var` (0 if absent).
    pub fn coefficient(&self, var: Var) -> f64 {
        self.terms.get(&var.0).copied().unwrap_or(0.0)
    }

    /// The constant offset of the expression.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Number of variables with a non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterate over `(variable index, coefficient)` pairs in ascending variable order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.terms.iter().map(|(&i, &c)| (i, c))
    }

    /// Evaluate the expression given a dense assignment of variable values.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        let mut total = self.constant;
        for (&i, &c) in &self.terms {
            total += c * values[i];
        }
        total
    }

    /// Scale the whole expression by a factor.
    pub fn scale(&mut self, factor: f64) -> &mut Self {
        if factor == 0.0 {
            self.terms.clear();
            self.constant = 0.0;
        } else {
            for c in self.terms.values_mut() {
                *c *= factor;
            }
            self.constant *= factor;
        }
        self
    }

    /// True if the expression has no variable terms and no constant.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant == 0.0
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        let mut e = LinExpr::new();
        e.add_term(v, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant_expr(c)
    }
}

// ---- operator overloading -------------------------------------------------------

impl Add<LinExpr> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (i, c) in rhs.terms {
            let slot = self.terms.entry(i).or_insert(0.0);
            *slot += c;
            if slot.abs() < f64::EPSILON {
                self.terms.remove(&i);
            }
        }
        self.constant += rhs.constant;
        self
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: Var) -> LinExpr {
        self.add_term(rhs, 1.0);
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Add<Var> for Var {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Add<f64> for Var {
    type Output = LinExpr;
    fn add(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Sub<LinExpr> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: Var) -> LinExpr {
        self.add_term(rhs, -1.0);
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Sub<Var> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Sub<LinExpr> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Sub<f64> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        self.scale(-1.0);
        self
    }
}

impl Neg for Var {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -LinExpr::from(self)
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        let mut e = LinExpr::new();
        e.add_term(self, rhs);
        e
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: Var) -> LinExpr {
        rhs * self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        self.scale(rhs);
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: LinExpr) -> LinExpr {
        rhs * self
    }
}

impl AddAssign<LinExpr> for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        let lhs = std::mem::take(self);
        *self = lhs + rhs;
    }
}

impl AddAssign<Var> for LinExpr {
    fn add_assign(&mut self, rhs: Var) {
        self.add_term(rhs, 1.0);
    }
}

impl SubAssign<LinExpr> for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        let lhs = std::mem::take(self);
        *self = lhs - rhs;
    }
}

impl SubAssign<Var> for LinExpr {
    fn sub_assign(&mut self, rhs: Var) {
        self.add_term(rhs, -1.0);
    }
}

impl std::iter::Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> Self {
        iter.fold(LinExpr::new(), |acc, e| acc + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var(i)
    }

    #[test]
    fn build_and_merge_terms() {
        let mut e = LinExpr::new();
        e.add_term(v(0), 2.0);
        e.add_term(v(1), 3.0);
        e.add_term(v(0), -1.0);
        assert_eq!(e.coefficient(v(0)), 1.0);
        assert_eq!(e.coefficient(v(1)), 3.0);
        assert_eq!(e.num_terms(), 2);
    }

    #[test]
    fn cancelling_terms_are_removed() {
        let mut e = LinExpr::new();
        e.add_term(v(0), 2.0);
        e.add_term(v(0), -2.0);
        assert_eq!(e.num_terms(), 0);
        assert!(e.is_zero());
    }

    #[test]
    fn operators_compose() {
        let e = 2.0 * v(0) + 3.0 * v(1) - v(2) + 5.0;
        assert_eq!(e.coefficient(v(0)), 2.0);
        assert_eq!(e.coefficient(v(1)), 3.0);
        assert_eq!(e.coefficient(v(2)), -1.0);
        assert_eq!(e.constant(), 5.0);
    }

    #[test]
    fn negation_and_scaling() {
        let e = -(2.0 * v(0) + 1.0);
        assert_eq!(e.coefficient(v(0)), -2.0);
        assert_eq!(e.constant(), -1.0);
        let scaled = e * 3.0;
        assert_eq!(scaled.coefficient(v(0)), -6.0);
        assert_eq!(scaled.constant(), -3.0);
    }

    #[test]
    fn evaluate_matches_manual_computation() {
        let e = 2.0 * v(0) + 3.0 * v(1) + 4.0;
        let vals = vec![1.5, 2.0];
        assert!((e.evaluate(&vals) - (3.0 + 6.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn sum_of_expressions() {
        let total: LinExpr = (0..4).map(|i| 1.0 * v(i)).sum();
        assert_eq!(total.num_terms(), 4);
        for i in 0..4 {
            assert_eq!(total.coefficient(v(i)), 1.0);
        }
    }

    #[test]
    fn var_minus_var() {
        let e = v(3) - v(4);
        assert_eq!(e.coefficient(v(3)), 1.0);
        assert_eq!(e.coefficient(v(4)), -1.0);
    }
}
