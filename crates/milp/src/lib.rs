//! # loki-milp
//!
//! A small, dependency-free mixed-integer linear programming (MILP) solver used by the
//! Loki resource manager (see the `loki-core` crate).
//!
//! The original Loki system (HPDC'24) formulates its hardware-scaling and
//! accuracy-scaling resource-allocation problems as MILPs and solves them with Gurobi.
//! Gurobi is proprietary and unavailable here, so this crate provides the substrate the
//! paper depends on: an exact solver built from
//!
//! * a dense, two-phase, **bounded-variable primal simplex** for the LP relaxation
//!   ([`simplex`]), and
//! * a best-first **branch-and-bound** search over fractional integer variables
//!   ([`branch_bound`]), with rounding heuristics, warm-start incumbents, and
//!   node/time/gap limits.
//!
//! The allocation MILPs produced by Loki are small (a few hundred variables and
//! constraints), which is exactly the regime where a dense simplex is simple, robust,
//! and fast enough. The solver is general-purpose, however, and is tested against
//! textbook LPs/MILPs (knapsack, assignment, covering) independent of Loki.
//!
//! ## Quick example
//!
//! ```
//! use loki_milp::{Model, VarType, Sense, ObjectiveSense, SolveOptions};
//!
//! // maximize 5x + 4y  s.t.  6x + 4y <= 24,  x + 2y <= 6,  x,y >= 0
//! let mut m = Model::new("example");
//! let x = m.add_var("x", VarType::Continuous, 0.0, f64::INFINITY);
//! let y = m.add_var("y", VarType::Continuous, 0.0, f64::INFINITY);
//! m.add_constraint("c1", 6.0 * x + 4.0 * y, Sense::Le, 24.0);
//! m.add_constraint("c2", 1.0 * x + 2.0 * y, Sense::Le, 6.0);
//! m.set_objective(ObjectiveSense::Maximize, 5.0 * x + 4.0 * y);
//! let sol = m.solve_with(&SolveOptions::default()).unwrap();
//! assert!((sol.objective - 21.0).abs() < 1e-6);
//! assert!((sol.value(x) - 3.0).abs() < 1e-6);
//! assert!((sol.value(y) - 1.5).abs() < 1e-6);
//! ```

pub mod branch_bound;
pub mod expr;
pub mod model;
pub mod simplex;
pub mod solution;

pub use expr::{LinExpr, Var};
pub use model::{Model, ObjectiveSense, Sense, VarType};
pub use solution::{Solution, SolveError, SolveOptions, SolveStatus};

/// Numerical tolerance used throughout the solver for feasibility checks.
pub const FEAS_TOL: f64 = 1e-7;
/// Tolerance below which a value is considered integral.
pub const INT_TOL: f64 = 1e-6;
