//! The model builder: variables, constraints, objective.

use crate::expr::{LinExpr, Var};
use crate::solution::{Solution, SolveError, SolveOptions};
use crate::{branch_bound, simplex};

/// The type of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// A real-valued variable.
    Continuous,
    /// An integer-valued variable.
    Integer,
    /// A 0/1 variable (integer with bounds clamped to `[0, 1]`).
    Binary,
}

/// Relational sense of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Direction of the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveSense {
    Minimize,
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub vtype: VarType,
    pub lb: f64,
    pub ub: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct ConstraintDef {
    pub name: String,
    pub expr: LinExpr,
    pub sense: Sense,
    pub rhs: f64,
}

/// An optimization model: a set of variables, linear constraints, and a linear
/// objective. Models are built incrementally and solved with [`Model::solve`] /
/// [`Model::solve_with`].
#[derive(Debug, Clone)]
pub struct Model {
    name: String,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<ConstraintDef>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: ObjectiveSense,
}

impl Model {
    /// Create an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
            sense: ObjectiveSense::Minimize,
        }
    }

    /// The model name (useful in logs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a decision variable with the given type and bounds, returning its handle.
    ///
    /// Binary variables have their bounds clamped to `[0, 1]`. Lower bounds must be
    /// finite; upper bounds may be `f64::INFINITY`.
    pub fn add_var(&mut self, name: impl Into<String>, vtype: VarType, lb: f64, ub: f64) -> Var {
        let (lb, ub) = match vtype {
            VarType::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        self.vars.push(VarDef {
            name: name.into(),
            vtype,
            lb,
            ub,
        });
        Var(self.vars.len() - 1)
    }

    /// Convenience: a continuous variable in `[lb, ub]`.
    pub fn add_continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Var {
        self.add_var(name, VarType::Continuous, lb, ub)
    }

    /// Convenience: an integer variable in `[lb, ub]`.
    pub fn add_integer(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Var {
        self.add_var(name, VarType::Integer, lb, ub)
    }

    /// Convenience: a 0/1 variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(name, VarType::Binary, 0.0, 1.0)
    }

    /// Add the linear constraint `expr (sense) rhs`.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: impl Into<LinExpr>,
        sense: Sense,
        rhs: f64,
    ) {
        let expr = expr.into();
        // Move the expression's constant onto the right-hand side so internal storage
        // keeps rhs as a plain number.
        let constant = expr.constant();
        let mut e = expr;
        e.add_constant(-constant);
        self.constraints.push(ConstraintDef {
            name: name.into(),
            expr: e,
            sense,
            rhs: rhs - constant,
        });
    }

    /// Set the objective direction and expression.
    pub fn set_objective(&mut self, sense: ObjectiveSense, expr: impl Into<LinExpr>) {
        self.sense = sense;
        self.objective = expr.into();
    }

    /// Number of variables in the model.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints in the model.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of integer (including binary) variables.
    pub fn num_integer_vars(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.vtype != VarType::Continuous)
            .count()
    }

    /// Indices of integer and binary variables.
    pub fn integer_vars(&self) -> Vec<Var> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.vtype != VarType::Continuous)
            .map(|(i, _)| Var(i))
            .collect()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, var: Var) -> &str {
        &self.vars[var.index()].name
    }

    /// Bounds of a variable.
    pub fn var_bounds(&self, var: Var) -> (f64, f64) {
        let d = &self.vars[var.index()];
        (d.lb, d.ub)
    }

    /// Validate structural properties of the model (bounds, finiteness of coefficients).
    pub fn validate(&self) -> Result<(), SolveError> {
        for (i, v) in self.vars.iter().enumerate() {
            if !v.lb.is_finite() {
                return Err(SolveError::InvalidModel(format!(
                    "variable {} (#{}) has a non-finite lower bound",
                    v.name, i
                )));
            }
            if v.ub.is_nan() {
                return Err(SolveError::InvalidModel(format!(
                    "variable {} (#{}) has a NaN upper bound",
                    v.name, i
                )));
            }
            if v.lb > v.ub + 1e-12 {
                return Err(SolveError::InvalidModel(format!(
                    "variable {} (#{}) has lb {} > ub {}",
                    v.name, i, v.lb, v.ub
                )));
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() {
                return Err(SolveError::InvalidModel(format!(
                    "constraint {} has a non-finite right-hand side",
                    c.name
                )));
            }
            for (idx, coeff) in c.expr.iter() {
                if idx >= self.vars.len() {
                    return Err(SolveError::InvalidModel(format!(
                        "constraint {} references unknown variable #{}",
                        c.name, idx
                    )));
                }
                if !coeff.is_finite() {
                    return Err(SolveError::InvalidModel(format!(
                        "constraint {} has a non-finite coefficient on variable #{}",
                        c.name, idx
                    )));
                }
            }
        }
        for (idx, coeff) in self.objective.iter() {
            if idx >= self.vars.len() || !coeff.is_finite() {
                return Err(SolveError::InvalidModel(
                    "objective references an unknown variable or non-finite coefficient".into(),
                ));
            }
        }
        Ok(())
    }

    /// Check whether a dense assignment satisfies all constraints and variable bounds
    /// (within `tol`), including integrality of integer variables.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, v) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < v.lb - tol || x > v.ub + tol {
                return false;
            }
            if v.vtype != VarType::Continuous && (x - x.round()).abs() > tol.max(crate::INT_TOL) {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.evaluate(values);
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Evaluate the objective for a dense assignment (in the user's sense: larger is
    /// better for maximization).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.evaluate(values)
    }

    /// Solve with default options.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Solve the model. Pure LPs (no integer variables) go straight to the simplex;
    /// otherwise branch-and-bound is used.
    pub fn solve_with(&self, options: &SolveOptions) -> Result<Solution, SolveError> {
        self.validate()?;
        if self.num_integer_vars() == 0 {
            simplex::solve_lp(self, &[])
        } else {
            branch_bound::solve_milp(self, options)
        }
    }

    /// Solve the LP relaxation (integrality dropped), optionally with extra bounds
    /// overriding the declared variable bounds. Used internally by branch-and-bound and
    /// exposed for diagnostics.
    pub fn solve_relaxation(
        &self,
        extra_bounds: &[(Var, f64, f64)],
    ) -> Result<Solution, SolveError> {
        self.validate()?;
        simplex::solve_lp(self, extra_bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_model() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 5.0);
        let z = m.add_binary("z");
        m.add_constraint("c", 1.0 * x + 2.0 * y + 3.0 * z, Sense::Le, 10.0);
        m.set_objective(ObjectiveSense::Maximize, 1.0 * x + 1.0 * y);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.num_integer_vars(), 2);
        assert_eq!(m.integer_vars(), vec![y, z]);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.var_bounds(z), (0.0, 1.0));
    }

    #[test]
    fn constraint_constant_moves_to_rhs() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 10.0);
        // x + 3 <= 5  should be stored as x <= 2
        m.add_constraint("c", 1.0 * x + 3.0, Sense::Le, 5.0);
        assert_eq!(m.constraints[0].rhs, 2.0);
        assert_eq!(m.constraints[0].expr.constant(), 0.0);
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut m = Model::new("t");
        m.add_continuous("x", 5.0, 1.0);
        assert!(matches!(m.validate(), Err(SolveError::InvalidModel(_))));

        let mut m2 = Model::new("t2");
        m2.add_continuous("x", f64::NEG_INFINITY, 1.0);
        assert!(m2.validate().is_err());
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 5.0);
        m.add_constraint("c", 1.0 * x + 1.0 * y, Sense::Le, 6.0);
        assert!(m.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[2.0, 5.0], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[2.0, 2.5], 1e-9)); // fractional integer
        assert!(!m.is_feasible(&[-1.0, 0.0], 1e-9)); // bound violation
        assert!(!m.is_feasible(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn binary_bounds_clamped() {
        let mut m = Model::new("t");
        let z = m.add_var("z", VarType::Binary, -3.0, 7.0);
        assert_eq!(m.var_bounds(z), (0.0, 1.0));
    }
}
