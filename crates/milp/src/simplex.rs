//! A dense, two-phase, bounded-variable primal simplex.
//!
//! The solver keeps the full tableau `B⁻¹A` in dense row-major form and maintains the
//! basic-variable values incrementally across pivots. Variables may be non-basic at
//! their lower *or* upper bound, which keeps variable bounds out of the constraint
//! matrix — important because the Loki allocation MILPs have bounds on every binary
//! and integer variable and would otherwise double their row count.
//!
//! Anti-cycling: Dantzig pricing by default, switching to Bland's rule after a run of
//! degenerate pivots.

use crate::expr::Var;
use crate::model::{Model, Sense};
use crate::solution::{Solution, SolveError, SolveStats, SolveStatus};
use crate::FEAS_TOL;

const PIVOT_TOL: f64 = 1e-9;
const DEGENERATE_RUN_FOR_BLAND: usize = 60;

/// Where a non-basic variable currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// Outcome of a single phase of the simplex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

struct Tableau {
    /// Row-major dense tableau, `m` rows × `ncols` columns.
    a: Vec<f64>,
    m: usize,
    ncols: usize,
    /// Values of the basic variables, one per row.
    xb: Vec<f64>,
    /// Basic variable index per row.
    basis: Vec<usize>,
    /// State per column.
    state: Vec<VarState>,
    /// Upper bound per column (lower bound is always 0 internally).
    upper: Vec<f64>,
    /// Columns that may never enter the basis (artificials during phase 2).
    banned: Vec<bool>,
    iterations: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.ncols + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.a[r * self.ncols + c]
    }

    /// Current value of column `j`.
    fn value(&self, j: usize) -> f64 {
        match self.state[j] {
            VarState::Basic(r) => self.xb[r],
            VarState::AtLower => 0.0,
            VarState::AtUpper => self.upper[j],
        }
    }

    /// Run the simplex to optimality for the given per-column cost vector
    /// (minimization).
    fn optimize(&mut self, cost: &[f64], max_iters: usize) -> PhaseOutcome {
        let mut degenerate_run = 0usize;
        for _ in 0..max_iters {
            self.iterations += 1;
            let use_bland = degenerate_run >= DEGENERATE_RUN_FOR_BLAND;

            // Reduced costs: d_j = c_j - Σ_i c_B[i] * a[i][j].
            // We fold the inner product row by row to keep memory traffic sequential.
            let mut reduced = cost.to_vec();
            for r in 0..self.m {
                let cb = cost[self.basis[r]];
                if cb != 0.0 {
                    let row = &self.a[r * self.ncols..(r + 1) * self.ncols];
                    for (d, &aij) in reduced.iter_mut().zip(row.iter()) {
                        *d -= cb * aij;
                    }
                }
            }

            // Entering variable selection.
            let mut enter: Option<(usize, f64, f64)> = None; // (col, |violation|, dir)
            #[allow(clippy::needless_range_loop)]
            for j in 0..self.ncols {
                if self.banned[j] {
                    continue;
                }
                match self.state[j] {
                    VarState::Basic(_) => continue,
                    VarState::AtLower => {
                        if self.upper[j] < FEAS_TOL {
                            continue; // fixed at zero, nothing to gain
                        }
                        let d = reduced[j];
                        if d < -FEAS_TOL {
                            let score = -d;
                            if use_bland {
                                enter = Some((j, score, 1.0));
                                break;
                            }
                            if enter.is_none_or(|(_, s, _)| score > s) {
                                enter = Some((j, score, 1.0));
                            }
                        }
                    }
                    VarState::AtUpper => {
                        let d = reduced[j];
                        if d > FEAS_TOL {
                            let score = d;
                            if use_bland {
                                enter = Some((j, score, -1.0));
                                break;
                            }
                            if enter.is_none_or(|(_, s, _)| score > s) {
                                enter = Some((j, score, -1.0));
                            }
                        }
                    }
                }
            }

            let (enter_col, _, dir) = match enter {
                Some(e) => e,
                None => return PhaseOutcome::Optimal,
            };

            // Ratio test. Moving the entering variable by `dir * t` (t >= 0) changes
            // basic variable i at rate `-a[i][enter] * dir`.
            let mut t_max = self.upper[enter_col]; // bound-flip limit (may be inf)
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            for r in 0..self.m {
                let rate = -self.at(r, enter_col) * dir;
                let bi = self.basis[r];
                if rate < -PIVOT_TOL {
                    // basic variable decreasing towards 0
                    let limit = self.xb[r] / (-rate);
                    if limit < t_max - PIVOT_TOL {
                        t_max = limit;
                        leave = Some((r, false));
                    } else if use_bland
                        && (limit - t_max).abs() <= PIVOT_TOL
                        && leave.is_some_and(|(lr, _)| self.basis[lr] > bi)
                    {
                        leave = Some((r, false));
                    }
                } else if rate > PIVOT_TOL && self.upper[bi].is_finite() {
                    // basic variable increasing towards its upper bound
                    let limit = (self.upper[bi] - self.xb[r]) / rate;
                    if limit < t_max - PIVOT_TOL {
                        t_max = limit;
                        leave = Some((r, true));
                    } else if use_bland
                        && (limit - t_max).abs() <= PIVOT_TOL
                        && leave.is_some_and(|(lr, _)| self.basis[lr] > bi)
                    {
                        leave = Some((r, true));
                    }
                }
            }

            if t_max.is_infinite() {
                return PhaseOutcome::Unbounded;
            }
            let t_star = t_max.max(0.0);
            if t_star <= PIVOT_TOL {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            match leave {
                None => {
                    // Bound flip: the entering variable moves to its opposite bound
                    // without any basis change.
                    for r in 0..self.m {
                        let rate = -self.at(r, enter_col) * dir;
                        self.xb[r] += rate * t_star;
                    }
                    self.state[enter_col] = if dir > 0.0 {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                }
                Some((leave_row, leaves_at_upper)) => {
                    // Update basic values.
                    for r in 0..self.m {
                        if r == leave_row {
                            continue;
                        }
                        let rate = -self.at(r, enter_col) * dir;
                        self.xb[r] += rate * t_star;
                    }
                    let entering_value = match self.state[enter_col] {
                        VarState::AtLower => t_star,
                        VarState::AtUpper => self.upper[enter_col] - t_star,
                        VarState::Basic(_) => unreachable!("entering variable is basic"),
                    };

                    // Pivot the tableau on (leave_row, enter_col).
                    let piv = self.at(leave_row, enter_col);
                    debug_assert!(piv.abs() > PIVOT_TOL, "pivot element too small");
                    let inv = 1.0 / piv;
                    for c in 0..self.ncols {
                        *self.at_mut(leave_row, c) *= inv;
                    }
                    for r in 0..self.m {
                        if r == leave_row {
                            continue;
                        }
                        let factor = self.at(r, enter_col);
                        if factor.abs() > 0.0 {
                            for c in 0..self.ncols {
                                let delta = factor * self.at(leave_row, c);
                                *self.at_mut(r, c) -= delta;
                            }
                        }
                    }

                    let leaving_var = self.basis[leave_row];
                    self.state[leaving_var] = if leaves_at_upper {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                    self.basis[leave_row] = enter_col;
                    self.state[enter_col] = VarState::Basic(leave_row);
                    self.xb[leave_row] = entering_value;
                }
            }
        }
        PhaseOutcome::IterationLimit
    }
}

/// Solve the LP relaxation of `model` (all variables treated as continuous), with
/// optional per-variable bound overrides (used by branch-and-bound to impose branching
/// decisions). Returns an error for infeasible or unbounded problems.
pub fn solve_lp(model: &Model, extra_bounds: &[(Var, f64, f64)]) -> Result<Solution, SolveError> {
    let n_user = model.num_vars();

    // Effective bounds: declared bounds intersected with branching overrides.
    let mut lb = vec![0.0f64; n_user];
    let mut ub = vec![f64::INFINITY; n_user];
    for (i, v) in model.vars.iter().enumerate() {
        lb[i] = v.lb;
        ub[i] = v.ub;
    }
    for &(var, l, u) in extra_bounds {
        let i = var.index();
        lb[i] = lb[i].max(l);
        ub[i] = ub[i].min(u);
    }
    for i in 0..n_user {
        if lb[i] > ub[i] + FEAS_TOL {
            return Err(SolveError::Infeasible);
        }
        // Guard against negative-width intervals caused by floating point noise.
        if ub[i] < lb[i] {
            ub[i] = lb[i];
        }
    }

    let m = model.num_constraints();

    // Column layout: [user variables | slacks/surpluses | artificials].
    let n_slack = model
        .constraints
        .iter()
        .filter(|c| c.sense != Sense::Eq)
        .count();
    // Worst case every row needs an artificial.
    let ncols_cap = n_user + n_slack + m;

    let mut a = vec![0.0f64; m * ncols_cap];
    let mut rhs = vec![0.0f64; m];
    let mut upper = vec![f64::INFINITY; ncols_cap];
    for i in 0..n_user {
        upper[i] = if ub[i].is_finite() {
            ub[i] - lb[i]
        } else {
            f64::INFINITY
        };
    }

    // Fill structural rows (shifted by the lower bounds).
    for (r, c) in model.constraints.iter().enumerate() {
        let mut shift = 0.0;
        for (idx, coeff) in c.expr.iter() {
            a[r * ncols_cap + idx] = coeff;
            shift += coeff * lb[idx];
        }
        rhs[r] = c.rhs - shift;
    }

    // Slack / surplus columns.
    let mut next_col = n_user;
    let mut slack_col = vec![usize::MAX; m];
    for (r, c) in model.constraints.iter().enumerate() {
        match c.sense {
            Sense::Le => {
                a[r * ncols_cap + next_col] = 1.0;
                slack_col[r] = next_col;
                next_col += 1;
            }
            Sense::Ge => {
                a[r * ncols_cap + next_col] = -1.0;
                slack_col[r] = next_col;
                next_col += 1;
            }
            Sense::Eq => {}
        }
    }

    // Normalize rows to non-negative rhs.
    for r in 0..m {
        if rhs[r] < 0.0 {
            rhs[r] = -rhs[r];
            for c in 0..next_col {
                a[r * ncols_cap + c] = -a[r * ncols_cap + c];
            }
        }
    }

    // Initial basis: slack if it has +1 coefficient, otherwise an artificial.
    let mut basis = vec![usize::MAX; m];
    let mut artificial_cols = Vec::new();
    for r in 0..m {
        let sc = slack_col[r];
        if sc != usize::MAX && (a[r * ncols_cap + sc] - 1.0).abs() < 1e-12 {
            basis[r] = sc;
        } else {
            let col = next_col;
            a[r * ncols_cap + col] = 1.0;
            basis[r] = col;
            artificial_cols.push(col);
            next_col += 1;
        }
    }
    let ncols = next_col;

    // Compact the matrix to the final column count for better cache behaviour.
    let mut compact = vec![0.0f64; m * ncols];
    for r in 0..m {
        compact[r * ncols..(r + 1) * ncols]
            .copy_from_slice(&a[r * ncols_cap..r * ncols_cap + ncols]);
    }
    upper.truncate(ncols);

    let mut state = vec![VarState::AtLower; ncols];
    for (r, &b) in basis.iter().enumerate() {
        state[b] = VarState::Basic(r);
    }

    let mut tab = Tableau {
        a: compact,
        m,
        ncols,
        xb: rhs.clone(),
        basis,
        state,
        upper,
        banned: vec![false; ncols],
        iterations: 0,
    };

    let max_iters = 2000 + 40 * (m + ncols);

    // ---- Phase 1: drive artificials to zero -------------------------------------
    if !artificial_cols.is_empty() {
        let mut cost1 = vec![0.0f64; ncols];
        for &c in &artificial_cols {
            cost1[c] = 1.0;
        }
        match tab.optimize(&cost1, max_iters) {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded => {
                return Err(SolveError::Numerical(
                    "phase-1 objective reported unbounded".into(),
                ))
            }
            PhaseOutcome::IterationLimit => {
                return Err(SolveError::Numerical("phase-1 iteration limit".into()))
            }
        }
        let infeas: f64 = artificial_cols.iter().map(|&c| tab.value(c)).sum();
        if infeas > 1e-6 {
            return Err(SolveError::Infeasible);
        }
        // Pin artificials to zero and forbid them from re-entering.
        for &c in &artificial_cols {
            tab.upper[c] = 0.0;
            tab.banned[c] = true;
        }
        // Try to pivot basic artificials (all at value ~0) out of the basis.
        for r in 0..tab.m {
            let b = tab.basis[r];
            if !artificial_cols.contains(&b) {
                continue;
            }
            let mut pivot_col = None;
            for j in 0..tab.ncols {
                if tab.banned[j] {
                    continue;
                }
                if matches!(tab.state[j], VarState::AtLower) && tab.at(r, j).abs() > 1e-7 {
                    pivot_col = Some(j);
                    break;
                }
            }
            if let Some(j) = pivot_col {
                let piv = tab.at(r, j);
                let inv = 1.0 / piv;
                for c in 0..tab.ncols {
                    *tab.at_mut(r, c) *= inv;
                }
                for rr in 0..tab.m {
                    if rr == r {
                        continue;
                    }
                    let factor = tab.at(rr, j);
                    if factor != 0.0 {
                        for c in 0..tab.ncols {
                            let delta = factor * tab.at(r, c);
                            *tab.at_mut(rr, c) -= delta;
                        }
                    }
                }
                tab.state[b] = VarState::AtLower;
                tab.basis[r] = j;
                tab.state[j] = VarState::Basic(r);
                tab.xb[r] = 0.0;
            }
            // If no pivot column exists the row is redundant; the artificial stays
            // basic, pinned at zero by its bounds.
        }
    }

    // ---- Phase 2: optimize the user objective ------------------------------------
    let mut cost2 = vec![0.0f64; ncols];
    let sign = match model.sense {
        crate::model::ObjectiveSense::Minimize => 1.0,
        crate::model::ObjectiveSense::Maximize => -1.0,
    };
    for (idx, coeff) in model.objective.iter() {
        cost2[idx] = sign * coeff;
    }
    match tab.optimize(&cost2, max_iters) {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded => return Err(SolveError::Unbounded),
        PhaseOutcome::IterationLimit => {
            return Err(SolveError::Numerical("phase-2 iteration limit".into()))
        }
    }

    // Recover user-space values.
    let mut values = vec![0.0f64; n_user];
    for (j, value) in values.iter_mut().enumerate() {
        *value = lb[j] + tab.value(j);
        // Clean tiny negative noise relative to bounds.
        if ub[j].is_finite() && *value > ub[j] {
            *value = ub[j];
        }
        if *value < lb[j] {
            *value = lb[j];
        }
    }
    let objective = model.objective_value(&values);

    Ok(Solution {
        status: SolveStatus::Optimal,
        objective,
        values,
        stats: SolveStats {
            nodes_explored: 0,
            simplex_iterations: tab.iterations,
            mip_gap: 0.0,
            solve_time_secs: 0.0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense, Sense};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21
        let mut m = Model::new("lp1");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", 6.0 * x + 4.0 * y, Sense::Le, 24.0);
        m.add_constraint("c2", 1.0 * x + 2.0 * y, Sense::Le, 6.0);
        m.set_objective(ObjectiveSense::Maximize, 5.0 * x + 4.0 * y);
        let s = solve_lp(&m, &[]).unwrap();
        approx(s.objective, 21.0);
        approx(s.value(x), 3.0);
        approx(s.value(y), 1.5);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7, y=3, obj=23
        let mut m = Model::new("lp2");
        let x = m.add_continuous("x", 2.0, f64::INFINITY);
        let y = m.add_continuous("y", 3.0, f64::INFINITY);
        m.add_constraint("cover", 1.0 * x + 1.0 * y, Sense::Ge, 10.0);
        m.set_objective(ObjectiveSense::Minimize, 2.0 * x + 3.0 * y);
        let s = solve_lp(&m, &[]).unwrap();
        approx(s.objective, 23.0);
        approx(s.value(x), 7.0);
        approx(s.value(y), 3.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, 3x + 2y = 8 -> x=2, y=1, obj=3
        let mut m = Model::new("lp3");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("e1", 1.0 * x + 2.0 * y, Sense::Eq, 4.0);
        m.add_constraint("e2", 3.0 * x + 2.0 * y, Sense::Eq, 8.0);
        m.set_objective(ObjectiveSense::Minimize, 1.0 * x + 1.0 * y);
        let s = solve_lp(&m, &[]).unwrap();
        approx(s.value(x), 2.0);
        approx(s.value(y), 1.0);
        approx(s.objective, 3.0);
    }

    #[test]
    fn upper_bounds_respected_without_explicit_rows() {
        // max x + y with x <= 2, y <= 3 as *bounds*, and x + y <= 4 as a constraint.
        let mut m = Model::new("lp4");
        let x = m.add_continuous("x", 0.0, 2.0);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.add_constraint("c", 1.0 * x + 1.0 * y, Sense::Le, 4.0);
        m.set_objective(ObjectiveSense::Maximize, 1.0 * x + 1.0 * y);
        let s = solve_lp(&m, &[]).unwrap();
        approx(s.objective, 4.0);
        assert!(s.value(x) <= 2.0 + 1e-9);
        assert!(s.value(y) <= 3.0 + 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new("lp5");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", 1.0 * x, Sense::Ge, 2.0);
        m.set_objective(ObjectiveSense::Minimize, 1.0 * x);
        assert!(matches!(solve_lp(&m, &[]), Err(SolveError::Infeasible)));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new("lp6");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(ObjectiveSense::Maximize, 1.0 * x);
        assert!(matches!(solve_lp(&m, &[]), Err(SolveError::Unbounded)));
    }

    #[test]
    fn negative_lower_bounds_are_shifted_correctly() {
        // min x s.t. x >= -5 (bound), x + y = 0, y <= 3 -> x = -3
        let mut m = Model::new("lp7");
        let x = m.add_continuous("x", -5.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.add_constraint("e", 1.0 * x + 1.0 * y, Sense::Eq, 0.0);
        m.set_objective(ObjectiveSense::Minimize, 1.0 * x);
        let s = solve_lp(&m, &[]).unwrap();
        approx(s.value(x), -3.0);
        approx(s.value(y), 3.0);
    }

    #[test]
    fn extra_bounds_tighten_the_problem() {
        let mut m = Model::new("lp8");
        let x = m.add_continuous("x", 0.0, 10.0);
        m.set_objective(ObjectiveSense::Maximize, 1.0 * x);
        let s = solve_lp(&m, &[(x, 0.0, 4.0)]).unwrap();
        approx(s.value(x), 4.0);
        // Conflicting extra bounds -> infeasible.
        assert!(matches!(
            solve_lp(&m, &[(x, 6.0, 4.0)]),
            Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant constraints through the same vertex.
        let mut m = Model::new("lp9");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        for i in 1..=8 {
            m.add_constraint(
                format!("c{i}"),
                (i as f64) * x + (i as f64) * y,
                Sense::Le,
                (i as f64) * 10.0,
            );
        }
        m.set_objective(ObjectiveSense::Maximize, 3.0 * x + 3.0 * y);
        let s = solve_lp(&m, &[]).unwrap();
        approx(s.objective, 30.0);
    }

    #[test]
    fn transportation_lp() {
        // Classic 2x3 transportation problem with known optimum.
        // supply: s0=20, s1=30 ; demand: d0=10, d1=25, d2=15
        // cost:  [ [2, 3, 1], [5, 4, 8] ]
        let mut m = Model::new("transport");
        let mut x = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                x.push(m.add_continuous(format!("x{i}{j}"), 0.0, f64::INFINITY));
            }
        }
        let cost = [2.0, 3.0, 1.0, 5.0, 4.0, 8.0];
        m.add_constraint("s0", 1.0 * x[0] + 1.0 * x[1] + 1.0 * x[2], Sense::Le, 20.0);
        m.add_constraint("s1", 1.0 * x[3] + 1.0 * x[4] + 1.0 * x[5], Sense::Le, 30.0);
        m.add_constraint("d0", 1.0 * x[0] + 1.0 * x[3], Sense::Ge, 10.0);
        m.add_constraint("d1", 1.0 * x[1] + 1.0 * x[4], Sense::Ge, 25.0);
        m.add_constraint("d2", 1.0 * x[2] + 1.0 * x[5], Sense::Ge, 15.0);
        let obj: crate::LinExpr = x.iter().zip(cost.iter()).map(|(&v, &c)| c * v).sum();
        m.set_objective(ObjectiveSense::Minimize, obj);
        let s = solve_lp(&m, &[]).unwrap();
        // Optimal: x02=15 (cost 15), x00=5? Let's verify by checking the solution is
        // feasible and the objective matches the known optimum 15+2*5+... Compute:
        // ship d2 from s0 (cost 1): 15, d0 from s0: 5 (cost 10) -> s0 full,
        // d0 remaining 5 from s1 (cost 25), d1 from s1: 25 (cost 100). total=150.
        // Alternative: d0 entirely from s0 (10, cost 20), d2 from s0 (10, cost 10),
        // d2 rest from s1 (5, cost 40)... worse. So optimum is 150.
        assert!(m.is_feasible(&s.values, 1e-6));
        approx(s.objective, 150.0);
    }
}
