//! Solver results, options, and error types.

use crate::expr::Var;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// Proven optimal (within the configured MIP gap for MILPs).
    Optimal,
    /// A feasible solution was found but optimality was not proven before a
    /// node/time limit was reached.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A node or time limit was reached without finding any feasible solution.
    LimitReached,
}

impl SolveStatus {
    /// True if the solution carries usable variable values.
    pub fn has_solution(&self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// Errors surfaced by the solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The model is structurally invalid (e.g. a variable bound with `lb > ub`).
    InvalidModel(String),
    /// The problem was proven infeasible.
    Infeasible,
    /// The problem was proven unbounded.
    Unbounded,
    /// A limit was reached before any feasible solution was found.
    NoSolutionFound,
    /// Internal numerical failure (should not happen on well-scaled models).
    Numerical(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "problem is unbounded"),
            SolveError::NoSolutionFound => write!(f, "no feasible solution found within limits"),
            SolveError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Maximum number of branch-and-bound nodes to explore.
    pub node_limit: usize,
    /// Wall-clock limit for the whole solve.
    pub time_limit: Duration,
    /// Relative MIP gap at which the search stops and declares optimality.
    pub mip_gap: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Optional warm-start assignment (dense, indexed by variable). Values for integer
    /// variables are rounded and checked for feasibility; if feasible the assignment
    /// seeds the incumbent so branch-and-bound can prune aggressively from the start.
    pub warm_start: Option<Vec<f64>>,
    /// Run the rounding heuristic at every `heuristic_frequency`-th node (0 disables).
    pub heuristic_frequency: usize,
    /// Variables to branch on first (higher priority earlier in the list).
    pub branch_priority: Vec<Var>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            node_limit: 20_000,
            time_limit: Duration::from_secs(30),
            mip_gap: 1e-6,
            int_tol: crate::INT_TOL,
            warm_start: None,
            heuristic_frequency: 20,
            branch_priority: Vec::new(),
        }
    }
}

impl SolveOptions {
    /// A configuration tuned for the Loki resource manager: bounded latency, accepts
    /// the best incumbent if proving optimality would take too long.
    pub fn realtime(budget: Duration) -> Self {
        Self {
            node_limit: 5_000,
            time_limit: budget,
            mip_gap: 5e-3,
            ..Self::default()
        }
    }
}

/// Statistics reported alongside a solution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SolveStats {
    /// Number of branch-and-bound nodes explored (0 for pure LPs).
    pub nodes_explored: usize,
    /// Total simplex iterations across all LP solves.
    pub simplex_iterations: usize,
    /// Final relative MIP gap (0 for proven-optimal solutions).
    pub mip_gap: f64,
    /// Wall-clock solve time in seconds.
    pub solve_time_secs: f64,
}

/// The result of solving a model.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Status of the solve.
    pub status: SolveStatus,
    /// Objective value in the user's optimization sense.
    pub objective: f64,
    /// Dense variable assignment (indexed by [`Var::index`]).
    pub values: Vec<f64>,
    /// Search statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// Value of a single variable.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// Value of a variable rounded to the nearest integer (useful for integer and
    /// binary variables which may carry tiny floating-point noise).
    pub fn int_value(&self, var: Var) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// True when a binary variable is set.
    pub fn is_set(&self, var: Var) -> bool {
        self.values[var.index()] > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unbounded.has_solution());
        assert!(!SolveStatus::LimitReached.has_solution());
    }

    #[test]
    fn default_options_are_sane() {
        let o = SolveOptions::default();
        assert!(o.node_limit > 0);
        assert!(o.mip_gap >= 0.0);
        assert!(o.int_tol > 0.0);
    }

    #[test]
    fn realtime_options_tighter_than_default() {
        let o = SolveOptions::realtime(Duration::from_millis(500));
        assert!(o.node_limit <= SolveOptions::default().node_limit);
        assert_eq!(o.time_limit, Duration::from_millis(500));
    }

    #[test]
    fn error_display() {
        let e = SolveError::InvalidModel("bad bound".into());
        assert!(e.to_string().contains("bad bound"));
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
    }
}
