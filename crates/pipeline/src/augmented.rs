//! The augmented graph: the per-variant expansion of a pipeline graph.
//!
//! Following Section 4.1 of the paper, every task vertex `i` of the pipeline graph is
//! expanded into one vertex per model variant `(i, k)`, and an edge `(i, k) -> (j, k')`
//! exists whenever `(i, j)` is an edge of the pipeline graph. A *path* is a root-to-sink
//! walk through the augmented graph, i.e. one concrete choice of model variant for each
//! task along one root-to-sink task path.
//!
//! The augmented graph is what the resource-allocation MILP reasons about: it provides
//!
//! * `P` — the set of all root-to-sink paths ([`AugmentedGraph::paths`]),
//! * `Â(p)` — per-path end-to-end accuracy ([`VariantPath::accuracy`]), computed as the
//!   product of the normalized accuracies along the path (a multiplicative composition:
//!   a downstream model can only be as good as what it is fed),
//! * `m(p, i, k)` — the number of requests reaching vertex `(i, k)` per request that
//!   enters path `p` (Equation 1), via [`AugmentedGraph::arrival_multiplier`].

use crate::graph::{PipelineGraph, TaskPath};
use crate::variant::VariantId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a path in [`AugmentedGraph::paths`].
pub type PathId = usize;

/// One root-to-sink path through the augmented graph: a choice of model variant for
/// each task along a root-to-sink task path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantPath {
    /// Index of the underlying task path in [`PipelineGraph::task_paths`].
    pub task_path: usize,
    /// The variant chosen at each task along the path (root first).
    pub vertices: Vec<VariantId>,
    /// End-to-end accuracy `Â(p)`: product of the variant accuracies along the path.
    pub accuracy: f64,
    /// Product of the branch ratios of the edges along the path.
    pub branch_ratio: f64,
    /// `m(p, i, k)` for every position on the path: `arrival_multipliers[j]` is the
    /// number of requests reaching the `j`-th vertex per request entering the path.
    pub arrival_multipliers: Vec<f64>,
}

impl VariantPath {
    /// Number of tasks on the path.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if the path is empty (never the case for a validated pipeline).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The position of a variant on this path, if present.
    pub fn position_of(&self, v: VariantId) -> Option<usize> {
        self.vertices.iter().position(|&x| x == v)
    }

    /// True if the path goes through the given variant.
    pub fn contains(&self, v: VariantId) -> bool {
        self.position_of(v).is_some()
    }
}

/// The augmented graph of a pipeline: all root-to-sink variant paths plus the lookup
/// structures the resource manager and load balancer need.
#[derive(Debug, Clone)]
pub struct AugmentedGraph {
    paths: Vec<VariantPath>,
    /// Paths grouped by the task path they materialize.
    paths_by_task_path: Vec<Vec<PathId>>,
    /// For every variant, the paths that contain it.
    paths_by_variant: HashMap<VariantId, Vec<PathId>>,
    num_task_paths: usize,
}

impl AugmentedGraph {
    /// Build the augmented graph for a pipeline. The pipeline must be a valid rooted
    /// tree (see [`PipelineGraph::validate`]).
    pub fn new(graph: &PipelineGraph) -> Self {
        let task_paths = graph.task_paths();
        let mut paths = Vec::new();
        let mut paths_by_task_path = vec![Vec::new(); task_paths.len()];
        let mut paths_by_variant: HashMap<VariantId, Vec<PathId>> = HashMap::new();

        for (tp_idx, tp) in task_paths.iter().enumerate() {
            let mut current: Vec<VariantId> = Vec::with_capacity(tp.tasks.len());
            Self::expand(
                graph,
                tp,
                tp_idx,
                0,
                &mut current,
                &mut paths,
                &mut paths_by_task_path,
                &mut paths_by_variant,
            );
        }

        Self {
            paths,
            paths_by_task_path,
            paths_by_variant,
            num_task_paths: task_paths.len(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        graph: &PipelineGraph,
        tp: &TaskPath,
        tp_idx: usize,
        depth: usize,
        current: &mut Vec<VariantId>,
        paths: &mut Vec<VariantPath>,
        paths_by_task_path: &mut [Vec<PathId>],
        paths_by_variant: &mut HashMap<VariantId, Vec<PathId>>,
    ) {
        if depth == tp.tasks.len() {
            let id = paths.len();
            // accuracy and arrival multipliers
            let mut accuracy = 1.0;
            let mut multipliers = Vec::with_capacity(current.len());
            let mut running = 1.0;
            for (j, &v) in current.iter().enumerate() {
                multipliers.push(running);
                let variant = graph.variant(v);
                accuracy *= variant.accuracy;
                if j + 1 < current.len() {
                    let ratio = graph
                        .branch_ratio(tp.tasks[j], tp.tasks[j + 1])
                        .expect("consecutive tasks on a task path are connected");
                    running *= variant.mult_factor * ratio;
                }
            }
            let path = VariantPath {
                task_path: tp_idx,
                vertices: current.clone(),
                accuracy,
                branch_ratio: tp.branch_ratio,
                arrival_multipliers: multipliers,
            };
            for &v in current.iter() {
                paths_by_variant.entry(v).or_default().push(id);
            }
            paths_by_task_path[tp_idx].push(id);
            paths.push(path);
            return;
        }
        let task_id = tp.tasks[depth];
        let task = graph.task(task_id);
        for k in 0..task.variants.len() {
            current.push(VariantId::new(task_id.index(), k));
            Self::expand(
                graph,
                tp,
                tp_idx,
                depth + 1,
                current,
                paths,
                paths_by_task_path,
                paths_by_variant,
            );
            current.pop();
        }
    }

    /// All root-to-sink variant paths (`P` in the paper).
    pub fn paths(&self) -> &[VariantPath] {
        &self.paths
    }

    /// Number of paths.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Number of root-to-sink paths in the underlying *task* tree.
    pub fn num_task_paths(&self) -> usize {
        self.num_task_paths
    }

    /// A specific path.
    pub fn path(&self, id: PathId) -> &VariantPath {
        &self.paths[id]
    }

    /// The paths that materialize a given task path.
    pub fn paths_for_task_path(&self, tp: usize) -> &[PathId] {
        &self.paths_by_task_path[tp]
    }

    /// The paths that contain a given variant (`P_{i,k}` in the paper).
    pub fn paths_through(&self, v: VariantId) -> &[PathId] {
        self.paths_by_variant
            .get(&v)
            .map(|p| p.as_slice())
            .unwrap_or(&[])
    }

    /// `m(p, i, k)`: the number of requests derived from a single request entering path
    /// `p` that reach variant `v` (Equation 1). Returns `None` if the path does not go
    /// through `v`.
    pub fn arrival_multiplier(&self, p: PathId, v: VariantId) -> Option<f64> {
        let path = &self.paths[p];
        path.position_of(v).map(|j| path.arrival_multipliers[j])
    }

    /// System accuracy for a per-path traffic split `c(p)`: the average over task paths
    /// of `Σ_p c(p) · Â(p)`, where within each task path the ratios are expected to sum
    /// to one. This is the objective of the accuracy-scaling MILP (Equation 12),
    /// averaged over task paths so that a multi-sink pipeline still reports a value in
    /// `(0, 1]`.
    pub fn system_accuracy(&self, ratios: &[f64]) -> f64 {
        assert_eq!(
            ratios.len(),
            self.paths.len(),
            "one ratio per path expected"
        );
        let mut total = 0.0;
        for (tp, ids) in self.paths_by_task_path.iter().enumerate() {
            let _ = tp;
            let mut acc = 0.0;
            for &p in ids {
                acc += ratios[p] * self.paths[p].accuracy;
            }
            total += acc;
        }
        total / self.num_task_paths as f64
    }

    /// End-to-end pipeline accuracy for a single variant choice per task (the
    /// `choices[i]` is the variant index used by task `i`). Used by the greedy
    /// allocator and for Figure 1.
    pub fn accuracy_for_choice(&self, graph: &PipelineGraph, choices: &[usize]) -> f64 {
        let task_paths = graph.task_paths();
        let mut total = 0.0;
        for tp in &task_paths {
            let mut acc = 1.0;
            for &t in &tp.tasks {
                acc *= graph.task(t).variants[choices[t.index()]].accuracy;
            }
            total += acc;
        }
        total / task_paths.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PipelineGraph;
    use crate::variant::{LatencyProfile, ModelVariant};

    fn mk_variant(name: &str, acc: f64, mult: f64) -> ModelVariant {
        ModelVariant::new(name, "fam", acc, LatencyProfile::new(2.0, 2.0), mult)
    }

    /// det (2 variants, mult 2.0/1.5) -> car (2 variants) [ratio 0.7]
    ///                                -> face (1 variant)  [ratio 0.3]
    fn graph() -> PipelineGraph {
        let mut g = PipelineGraph::new("traffic", 250.0);
        let det = g.add_task(
            "det",
            vec![mk_variant("d_lo", 0.8, 1.5), mk_variant("d_hi", 1.0, 2.0)],
        );
        let car = g.add_task(
            "car",
            vec![mk_variant("c_lo", 0.9, 1.0), mk_variant("c_hi", 1.0, 1.0)],
        );
        let face = g.add_task("face", vec![mk_variant("f", 0.95, 1.0)]);
        g.add_edge(det, car, 0.7);
        g.add_edge(det, face, 0.3);
        g
    }

    #[test]
    fn path_enumeration_counts() {
        let g = graph();
        let a = AugmentedGraph::new(&g);
        // task path det->car has 2*2 = 4 variant paths, det->face has 2*1 = 2.
        assert_eq!(a.num_paths(), 6);
        assert_eq!(a.num_task_paths(), 2);
        assert_eq!(a.paths_for_task_path(0).len(), 4);
        assert_eq!(a.paths_for_task_path(1).len(), 2);
    }

    #[test]
    fn path_accuracy_is_product() {
        let g = graph();
        let a = AugmentedGraph::new(&g);
        // find the path det=d_hi -> car=c_lo
        let p = a
            .paths()
            .iter()
            .find(|p| p.vertices == vec![VariantId::new(0, 1), VariantId::new(1, 0)])
            .unwrap();
        assert!((p.accuracy - 1.0 * 0.9).abs() < 1e-12);
    }

    #[test]
    fn arrival_multiplier_accounts_for_mult_factor_and_branch_ratio() {
        let g = graph();
        let a = AugmentedGraph::new(&g);
        // path det=d_hi (mult 2.0) -> car=c_hi via ratio 0.7: m at car = 2.0 * 0.7 = 1.4
        let det_hi = VariantId::new(0, 1);
        let car_hi = VariantId::new(1, 1);
        let pid = a
            .paths()
            .iter()
            .position(|p| p.vertices == vec![det_hi, car_hi])
            .unwrap();
        assert!((a.arrival_multiplier(pid, det_hi).unwrap() - 1.0).abs() < 1e-12);
        assert!((a.arrival_multiplier(pid, car_hi).unwrap() - 1.4).abs() < 1e-12);
        // variant not on path
        assert!(a.arrival_multiplier(pid, VariantId::new(2, 0)).is_none());
    }

    #[test]
    fn paths_through_variant() {
        let g = graph();
        let a = AugmentedGraph::new(&g);
        // det d_hi appears in 2 (car variants) + 1 (face) = 3 paths
        assert_eq!(a.paths_through(VariantId::new(0, 1)).len(), 3);
        // car c_lo appears only in the det-variant cross product: 2 paths
        assert_eq!(a.paths_through(VariantId::new(1, 0)).len(), 2);
        // face variant appears in 2 paths (one per det variant)
        assert_eq!(a.paths_through(VariantId::new(2, 0)).len(), 2);
        // unknown variant
        assert!(a.paths_through(VariantId::new(9, 9)).is_empty());
    }

    #[test]
    fn system_accuracy_averages_task_paths() {
        let g = graph();
        let a = AugmentedGraph::new(&g);
        // route everything through the most accurate variants
        let mut ratios = vec![0.0; a.num_paths()];
        let best_car_path = a
            .paths()
            .iter()
            .position(|p| p.vertices == vec![VariantId::new(0, 1), VariantId::new(1, 1)])
            .unwrap();
        let best_face_path = a
            .paths()
            .iter()
            .position(|p| p.vertices == vec![VariantId::new(0, 1), VariantId::new(2, 0)])
            .unwrap();
        ratios[best_car_path] = 1.0;
        ratios[best_face_path] = 1.0;
        // accuracy = avg(1.0*1.0, 1.0*0.95) = 0.975
        assert!((a.system_accuracy(&ratios) - 0.975).abs() < 1e-12);
    }

    #[test]
    fn accuracy_for_choice_matches_graph_bounds() {
        let g = graph();
        let a = AugmentedGraph::new(&g);
        let best = a.accuracy_for_choice(&g, &[1, 1, 0]);
        assert!((best - g.max_accuracy()).abs() < 1e-12);
        let worst = a.accuracy_for_choice(&g, &[0, 0, 0]);
        assert!((worst - g.min_accuracy()).abs() < 1e-12);
    }

    #[test]
    fn chain_pipeline_paths() {
        let mut g = PipelineGraph::new("chain", 100.0);
        let a_task = g.add_task(
            "a",
            vec![mk_variant("a1", 1.0, 1.2), mk_variant("a2", 0.9, 1.0)],
        );
        let b_task = g.add_task("b", vec![mk_variant("b1", 1.0, 1.0)]);
        g.add_edge(a_task, b_task, 1.0);
        let aug = AugmentedGraph::new(&g);
        assert_eq!(aug.num_paths(), 2);
        // multiplier at b for the a1 path is 1.2
        let p = aug
            .paths()
            .iter()
            .position(|p| p.vertices[0] == VariantId::new(0, 0))
            .unwrap();
        assert!((aug.arrival_multiplier(p, VariantId::new(1, 0)).unwrap() - 1.2).abs() < 1e-12);
    }
}
