//! The pipeline graph: a directed rooted tree of ML tasks.
//!
//! Each vertex is a *task* served by one of several model variants; each edge `(i, j)`
//! carries intermediate queries from task `i` to task `j` and has a *branch ratio*: the
//! fraction of task `i`'s outgoing intermediate queries that are routed to child `j`
//! (e.g. the traffic-analysis detector sends detected cars to car classification and
//! detected persons to facial recognition).
//!
//! The paper restricts pipelines to directed rooted trees — no task receives input from
//! more than one upstream task — and [`PipelineGraph::validate`] enforces exactly that.

use crate::variant::{BatchSize, ModelVariant, VariantId, DEFAULT_BATCH_SIZES};
use serde::{Deserialize, Serialize};

/// Identifier of a task within a [`PipelineGraph`] (the paper's `t_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An edge from a task to one of its children.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// The downstream task.
    pub child: TaskId,
    /// Fraction of the parent's outgoing intermediate queries routed to this child.
    pub branch_ratio: f64,
}

/// A single ML task in the pipeline, together with its available model variants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable task name, e.g. `"object_detection"`.
    pub name: String,
    /// The model variants available for this task (the paper's `V_i`), expected to be
    /// non-empty. Order is arbitrary; use [`Task::variants_by_accuracy_desc`] for the
    /// accuracy-sorted view used by the routing algorithm.
    pub variants: Vec<ModelVariant>,
    /// Outgoing edges to child tasks.
    pub children: Vec<Edge>,
}

impl Task {
    /// Index of the most accurate variant (`v_i^max` in the paper).
    pub fn most_accurate_variant(&self) -> usize {
        self.variants
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.accuracy.partial_cmp(&b.1.accuracy).unwrap())
            .map(|(i, _)| i)
            .expect("task has no variants")
    }

    /// Index of the least accurate variant.
    pub fn least_accurate_variant(&self) -> usize {
        self.variants
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.accuracy.partial_cmp(&b.1.accuracy).unwrap())
            .map(|(i, _)| i)
            .expect("task has no variants")
    }

    /// Variant indices sorted by accuracy, most accurate first.
    pub fn variants_by_accuracy_desc(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.variants.len()).collect();
        idx.sort_by(|&a, &b| {
            self.variants[b]
                .accuracy
                .partial_cmp(&self.variants[a].accuracy)
                .unwrap()
        });
        idx
    }

    /// True if this task has no children (it is a sink).
    pub fn is_sink(&self) -> bool {
        self.children.is_empty()
    }
}

/// Errors produced by [`PipelineGraph::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The graph contains no tasks.
    Empty,
    /// A task has no model variants.
    TaskWithoutVariants(TaskId),
    /// A task is referenced as a child of more than one parent, or the root has a
    /// parent — the graph is not a rooted tree.
    NotATree(TaskId),
    /// A branch ratio is non-positive or not finite.
    InvalidBranchRatio(TaskId, TaskId),
    /// An edge references a task that does not exist.
    DanglingEdge(TaskId, usize),
    /// The graph is disconnected: some task is unreachable from the root.
    Unreachable(TaskId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Empty => write!(f, "pipeline graph has no tasks"),
            GraphError::TaskWithoutVariants(t) => write!(f, "task {t} has no model variants"),
            GraphError::NotATree(t) => write!(f, "task {t} violates the rooted-tree property"),
            GraphError::InvalidBranchRatio(a, b) => {
                write!(f, "edge {a} -> {b} has an invalid branch ratio")
            }
            GraphError::DanglingEdge(t, i) => write!(f, "task {t} edge #{i} points nowhere"),
            GraphError::Unreachable(t) => write!(f, "task {t} is unreachable from the root"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed rooted tree of inference tasks (the paper's pipeline graph).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineGraph {
    name: String,
    tasks: Vec<Task>,
    /// End-to-end latency SLO of the pipeline in milliseconds.
    slo_ms: f64,
    /// Allowed batch sizes `B`.
    batch_sizes: Vec<BatchSize>,
}

impl PipelineGraph {
    /// Create an empty pipeline with the given name and latency SLO (milliseconds).
    pub fn new(name: impl Into<String>, slo_ms: f64) -> Self {
        Self {
            name: name.into(),
            tasks: Vec::new(),
            slo_ms,
            batch_sizes: DEFAULT_BATCH_SIZES.to_vec(),
        }
    }

    /// The pipeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The end-to-end latency SLO in milliseconds.
    pub fn slo_ms(&self) -> f64 {
        self.slo_ms
    }

    /// Change the latency SLO (used by the SLO-sensitivity sweep of Figure 8).
    pub fn set_slo_ms(&mut self, slo_ms: f64) {
        self.slo_ms = slo_ms;
    }

    /// The allowed batch sizes `B`.
    pub fn batch_sizes(&self) -> &[BatchSize] {
        &self.batch_sizes
    }

    /// Override the allowed batch sizes.
    pub fn set_batch_sizes(&mut self, sizes: Vec<BatchSize>) {
        assert!(!sizes.is_empty(), "at least one batch size is required");
        self.batch_sizes = sizes;
    }

    /// Add a task with its variants; returns the new task's id. The first task added
    /// is the root (source) of the pipeline.
    pub fn add_task(&mut self, name: impl Into<String>, variants: Vec<ModelVariant>) -> TaskId {
        self.tasks.push(Task {
            name: name.into(),
            variants,
            children: Vec::new(),
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Add a directed edge from `parent` to `child` carrying `branch_ratio` of the
    /// parent's outgoing intermediate queries.
    pub fn add_edge(&mut self, parent: TaskId, child: TaskId, branch_ratio: f64) {
        self.tasks[parent.0].children.push(Edge {
            child,
            branch_ratio,
        });
    }

    /// The root (source) task.
    pub fn root(&self) -> TaskId {
        TaskId(0)
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Total number of model variants across all tasks.
    pub fn num_variants(&self) -> usize {
        self.tasks.iter().map(|t| t.variants.len()).sum()
    }

    /// Access a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Access a variant by id.
    pub fn variant(&self, id: VariantId) -> &ModelVariant {
        &self.tasks[id.task].variants[id.variant]
    }

    /// Iterate over all tasks with their ids.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Iterate over all variant ids in the graph.
    pub fn variant_ids(&self) -> Vec<VariantId> {
        let mut out = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            for k in 0..t.variants.len() {
                out.push(VariantId::new(i, k));
            }
        }
        out
    }

    /// Ids of sink tasks (leaves of the tree).
    pub fn sinks(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_sink())
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Tasks in topological (parent-before-child) order starting from the root.
    pub fn topological_order(&self) -> Vec<TaskId> {
        let mut order = Vec::with_capacity(self.tasks.len());
        let mut stack = vec![self.root()];
        let mut seen = vec![false; self.tasks.len()];
        while let Some(t) = stack.pop() {
            if seen[t.0] {
                continue;
            }
            seen[t.0] = true;
            order.push(t);
            // push children in reverse so the first child is visited first
            for e in self.tasks[t.0].children.iter().rev() {
                stack.push(e.child);
            }
        }
        order
    }

    /// All root-to-sink *task* paths (each entry is a sequence of task ids together
    /// with the product of branch ratios along the way).
    pub fn task_paths(&self) -> Vec<TaskPath> {
        let mut out = Vec::new();
        let mut current = Vec::new();
        self.dfs_paths(self.root(), 1.0, &mut current, &mut out);
        out
    }

    fn dfs_paths(
        &self,
        node: TaskId,
        ratio: f64,
        current: &mut Vec<TaskId>,
        out: &mut Vec<TaskPath>,
    ) {
        current.push(node);
        let task = &self.tasks[node.0];
        if task.is_sink() {
            out.push(TaskPath {
                tasks: current.clone(),
                branch_ratio: ratio,
            });
        } else {
            for e in &task.children {
                self.dfs_paths(e.child, ratio * e.branch_ratio, current, out);
            }
        }
        current.pop();
    }

    /// The branch ratio of the edge `parent -> child`, if that edge exists.
    pub fn branch_ratio(&self, parent: TaskId, child: TaskId) -> Option<f64> {
        self.tasks[parent.0]
            .children
            .iter()
            .find(|e| e.child == child)
            .map(|e| e.branch_ratio)
    }

    /// End-to-end pipeline accuracy when every task uses its most accurate variant:
    /// the average over task paths of the product of per-task accuracies.
    pub fn max_accuracy(&self) -> f64 {
        let paths = self.task_paths();
        let total: f64 = paths
            .iter()
            .map(|p| {
                p.tasks
                    .iter()
                    .map(|&t| {
                        let task = self.task(t);
                        task.variants[task.most_accurate_variant()].accuracy
                    })
                    .product::<f64>()
            })
            .sum();
        total / paths.len() as f64
    }

    /// End-to-end pipeline accuracy when every task uses its *least* accurate variant.
    pub fn min_accuracy(&self) -> f64 {
        let paths = self.task_paths();
        let total: f64 = paths
            .iter()
            .map(|p| {
                p.tasks
                    .iter()
                    .map(|&t| {
                        let task = self.task(t);
                        task.variants[task.least_accurate_variant()].accuracy
                    })
                    .product::<f64>()
            })
            .sum();
        total / paths.len() as f64
    }

    /// Validate the rooted-tree structure and the per-task data.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        for (i, t) in self.tasks.iter().enumerate() {
            if t.variants.is_empty() {
                return Err(GraphError::TaskWithoutVariants(TaskId(i)));
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            for (ei, e) in t.children.iter().enumerate() {
                if e.child.0 >= n {
                    return Err(GraphError::DanglingEdge(TaskId(i), ei));
                }
                if e.branch_ratio <= 0.0 || !e.branch_ratio.is_finite() {
                    return Err(GraphError::InvalidBranchRatio(TaskId(i), e.child));
                }
                indegree[e.child.0] += 1;
            }
        }
        // Rooted tree: root has indegree 0, every other vertex exactly 1.
        if indegree[0] != 0 {
            return Err(GraphError::NotATree(TaskId(0)));
        }
        for (i, &d) in indegree.iter().enumerate().skip(1) {
            if d != 1 {
                return Err(GraphError::NotATree(TaskId(i)));
            }
        }
        // Connectivity.
        let reach = self.topological_order();
        if reach.len() != n {
            let missing = (0..n).find(|i| !reach.iter().any(|t| t.0 == *i)).unwrap();
            return Err(GraphError::Unreachable(TaskId(missing)));
        }
        Ok(())
    }
}

/// A root-to-sink path through the *task* tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskPath {
    /// Task ids from root to sink, inclusive.
    pub tasks: Vec<TaskId>,
    /// Product of the branch ratios along the path (fraction of the root's fan-out
    /// that flows down this path, before multiplicative factors).
    pub branch_ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::LatencyProfile;

    fn mk_variant(name: &str, acc: f64) -> ModelVariant {
        ModelVariant::new(name, "fam", acc, LatencyProfile::new(2.0, 2.0), 1.0)
    }

    fn two_branch_graph() -> PipelineGraph {
        let mut g = PipelineGraph::new("traffic", 250.0);
        let det = g.add_task("det", vec![mk_variant("d1", 0.8), mk_variant("d2", 1.0)]);
        let car = g.add_task("car", vec![mk_variant("c1", 0.9), mk_variant("c2", 1.0)]);
        let face = g.add_task("face", vec![mk_variant("f1", 1.0)]);
        g.add_edge(det, car, 0.7);
        g.add_edge(det, face, 0.3);
        g
    }

    #[test]
    fn structure_queries() {
        let g = two_branch_graph();
        assert_eq!(g.num_tasks(), 3);
        assert_eq!(g.num_variants(), 5);
        assert_eq!(g.root(), TaskId(0));
        assert_eq!(g.sinks(), vec![TaskId(1), TaskId(2)]);
        assert_eq!(g.branch_ratio(TaskId(0), TaskId(1)), Some(0.7));
        assert_eq!(g.branch_ratio(TaskId(1), TaskId(2)), None);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn topological_order_starts_at_root() {
        let g = two_branch_graph();
        let order = g.topological_order();
        assert_eq!(order[0], TaskId(0));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn task_paths_enumerated_with_ratios() {
        let g = two_branch_graph();
        let paths = g.task_paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].tasks, vec![TaskId(0), TaskId(1)]);
        assert!((paths[0].branch_ratio - 0.7).abs() < 1e-12);
        assert_eq!(paths[1].tasks, vec![TaskId(0), TaskId(2)]);
        assert!((paths[1].branch_ratio - 0.3).abs() < 1e-12);
    }

    #[test]
    fn accuracy_bounds() {
        let g = two_branch_graph();
        // max accuracy: path det(1.0)->car(1.0) = 1.0, det(1.0)->face(1.0) = 1.0, avg 1.0
        assert!((g.max_accuracy() - 1.0).abs() < 1e-12);
        // min accuracy: det 0.8, car 0.9, face 1.0 -> avg of 0.72 and 0.8 = 0.76
        assert!((g.min_accuracy() - 0.76).abs() < 1e-12);
        assert!(g.min_accuracy() <= g.max_accuracy());
    }

    #[test]
    fn most_and_least_accurate_variant() {
        let g = two_branch_graph();
        let det = g.task(TaskId(0));
        assert_eq!(det.most_accurate_variant(), 1);
        assert_eq!(det.least_accurate_variant(), 0);
        assert_eq!(det.variants_by_accuracy_desc(), vec![1, 0]);
    }

    #[test]
    fn validation_catches_non_tree() {
        let mut g = two_branch_graph();
        // second parent for "car"
        g.add_edge(TaskId(2), TaskId(1), 1.0);
        assert_eq!(g.validate(), Err(GraphError::NotATree(TaskId(1))));
    }

    #[test]
    fn validation_catches_bad_ratio_and_missing_variants() {
        let mut g = PipelineGraph::new("bad", 100.0);
        let a = g.add_task("a", vec![mk_variant("x", 1.0)]);
        let b = g.add_task("b", vec![]);
        g.add_edge(a, b, 0.0);
        // The first error encountered is the missing variants of task b.
        assert_eq!(
            g.validate(),
            Err(GraphError::TaskWithoutVariants(TaskId(1)))
        );

        let mut g2 = PipelineGraph::new("bad2", 100.0);
        let a = g2.add_task("a", vec![mk_variant("x", 1.0)]);
        let b = g2.add_task("b", vec![mk_variant("y", 1.0)]);
        g2.add_edge(a, b, -1.0);
        assert_eq!(
            g2.validate(),
            Err(GraphError::InvalidBranchRatio(TaskId(0), TaskId(1)))
        );
    }

    #[test]
    fn validation_catches_empty_and_unreachable() {
        let g = PipelineGraph::new("empty", 100.0);
        assert_eq!(g.validate(), Err(GraphError::Empty));

        let mut g2 = PipelineGraph::new("disc", 100.0);
        g2.add_task("a", vec![mk_variant("x", 1.0)]);
        g2.add_task("b", vec![mk_variant("y", 1.0)]);
        // no edge a->b: b has indegree 0, so the tree property fails for it.
        assert_eq!(g2.validate(), Err(GraphError::NotATree(TaskId(1))));
    }

    #[test]
    fn single_task_pipeline_is_valid() {
        let mut g = PipelineGraph::new("single", 50.0);
        g.add_task("only", vec![mk_variant("m", 1.0)]);
        assert!(g.validate().is_ok());
        assert_eq!(g.task_paths().len(), 1);
        assert_eq!(g.sinks(), vec![TaskId(0)]);
    }
}
