//! # loki-pipeline
//!
//! Inference-pipeline graphs, model-variant profiles, and the synthetic model zoo used
//! throughout the Loki reproduction.
//!
//! The paper (Loki, HPDC'24) represents an ML application as a *pipeline graph*: a
//! directed rooted tree whose vertices are ML *tasks* and whose edges carry
//! intermediate queries from one task to the next. Each task can be served by several
//! *model variants* that trade accuracy for throughput (e.g. the EfficientNet family).
//!
//! This crate provides:
//!
//! * [`variant::ModelVariant`] — a single variant's accuracy, latency-vs-batch-size
//!   profile, throughput, and multiplicative factor (how many downstream queries one
//!   incoming query spawns);
//! * [`graph::PipelineGraph`] — the rooted-tree task graph with branch ratios;
//! * [`augmented::AugmentedGraph`] — the per-variant expansion of the pipeline graph
//!   used by the resource-allocation MILP: root-to-sink paths, per-path end-to-end
//!   accuracy `Â(p)`, and per-path request multiplication `m(p, i, k)`;
//! * [`zoo`] — synthetic profiles shaped like the model families the paper evaluates
//!   (YOLOv5, EfficientNet, VGG, ResNet, CLIP-ViT) plus ready-made builders for the
//!   paper's two pipelines (traffic analysis and social media).
//!
//! The profiles are synthetic because the controller only ever consumes profiled
//! numbers (accuracy, `q(i,k,b)`, `r(i,k)`), never model weights; see DESIGN.md for the
//! calibration rationale.

pub mod augmented;
pub mod graph;
pub mod variant;
pub mod zoo;

pub use augmented::{AugmentedGraph, PathId, VariantPath};
pub use graph::{PipelineGraph, Task, TaskId};
pub use variant::{BatchSize, LatencyProfile, ModelVariant, VariantId, DEFAULT_BATCH_SIZES};
