//! Model variants and their profiled performance characteristics.
//!
//! A *model variant* is one member of a model family (e.g. `yolov5s` within the YOLOv5
//! family) serving a given pipeline task. Loki never executes the model itself; every
//! decision is driven by three profiled quantities, mirroring Table 1 of the paper:
//!
//! * `A(v_{i,k})` — the (normalized) accuracy of the variant,
//! * `q(i, k, b)` — throughput in queries/second when running with batch size `b`,
//! * `r(i, k)` — the multiplicative factor: how many downstream (intermediate) queries
//!   a single incoming query generates on average.

use serde::{Deserialize, Serialize};

/// A batch size. Batch sizes are small powers of two in practice.
pub type BatchSize = u32;

/// The default set of allowed batch sizes `B` used across the evaluation.
pub const DEFAULT_BATCH_SIZES: [BatchSize; 6] = [1, 2, 4, 8, 16, 32];

/// Identifier of a model variant: the `k`-th variant of task `i`.
///
/// The indices follow the paper's `v_{i,k}` notation; `task` is an index into the
/// owning [`crate::PipelineGraph`]'s task list and `variant` an index into that task's
/// variant list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VariantId {
    /// Index of the task (`i`).
    pub task: usize,
    /// Index of the variant within the task (`k`).
    pub variant: usize,
}

impl VariantId {
    /// Construct a variant id from task and variant indices.
    pub fn new(task: usize, variant: usize) -> Self {
        Self { task, variant }
    }
}

impl std::fmt::Display for VariantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v({},{})", self.task, self.variant)
    }
}

/// An affine batch-latency model: processing a batch of `b` queries takes
/// `alpha_ms + beta_ms * b` milliseconds on one worker.
///
/// This is the standard shape observed when profiling DNN inference: a fixed kernel
/// launch / memory-movement overhead plus a per-item cost, with throughput saturating
/// at `1000 / beta_ms` queries per second for large batches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Fixed per-batch overhead in milliseconds.
    pub alpha_ms: f64,
    /// Marginal per-query cost in milliseconds.
    pub beta_ms: f64,
}

impl LatencyProfile {
    /// Create a latency profile from the fixed and marginal costs (milliseconds).
    pub fn new(alpha_ms: f64, beta_ms: f64) -> Self {
        assert!(
            alpha_ms >= 0.0 && beta_ms > 0.0,
            "latency profile must be positive"
        );
        Self { alpha_ms, beta_ms }
    }

    /// Latency in milliseconds to process one batch of `b` queries.
    pub fn batch_latency_ms(&self, b: BatchSize) -> f64 {
        assert!(b >= 1, "batch size must be at least 1");
        self.alpha_ms + self.beta_ms * b as f64
    }

    /// Throughput in queries per second when running back-to-back batches of size `b`
    /// (the paper's `q(i, k, b)`).
    pub fn throughput_qps(&self, b: BatchSize) -> f64 {
        1000.0 * b as f64 / self.batch_latency_ms(b)
    }

    /// The asymptotic throughput limit as the batch size grows.
    pub fn peak_throughput_qps(&self) -> f64 {
        1000.0 / self.beta_ms
    }
}

/// A model variant: one accuracy/throughput point for a task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelVariant {
    /// Human-readable name, e.g. `"yolov5s"`.
    pub name: String,
    /// Model family the variant belongs to, e.g. `"yolov5"`.
    pub family: String,
    /// Accuracy normalized by the most accurate variant of the family, in `(0, 1]`.
    pub accuracy: f64,
    /// Profiled batch-latency model.
    pub latency: LatencyProfile,
    /// Multiplicative factor `r(i, k)`: average number of downstream queries generated
    /// per incoming query (before edge branch ratios are applied).
    pub mult_factor: f64,
}

impl ModelVariant {
    /// Create a variant.
    pub fn new(
        name: impl Into<String>,
        family: impl Into<String>,
        accuracy: f64,
        latency: LatencyProfile,
        mult_factor: f64,
    ) -> Self {
        assert!(
            accuracy > 0.0 && accuracy <= 1.0 + 1e-9,
            "accuracy must be normalized to (0, 1]"
        );
        assert!(
            mult_factor >= 0.0,
            "multiplicative factor must be non-negative"
        );
        Self {
            name: name.into(),
            family: family.into(),
            accuracy,
            latency,
            mult_factor,
        }
    }

    /// Throughput at a given batch size (`q(i, k, b)`).
    pub fn throughput_qps(&self, b: BatchSize) -> f64 {
        self.latency.throughput_qps(b)
    }

    /// Latency of processing one batch of size `b` in milliseconds.
    pub fn batch_latency_ms(&self, b: BatchSize) -> f64 {
        self.latency.batch_latency_ms(b)
    }

    /// The largest batch size from `allowed` whose batch latency fits inside
    /// `budget_ms`, if any. Larger batches always yield higher throughput under the
    /// affine latency model, so this is the throughput-maximizing feasible choice.
    pub fn largest_batch_within(&self, allowed: &[BatchSize], budget_ms: f64) -> Option<BatchSize> {
        allowed
            .iter()
            .copied()
            .filter(|&b| self.batch_latency_ms(b) <= budget_ms + 1e-9)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_throughput_are_consistent() {
        let p = LatencyProfile::new(5.0, 6.0);
        assert!((p.batch_latency_ms(1) - 11.0).abs() < 1e-12);
        assert!((p.batch_latency_ms(8) - 53.0).abs() < 1e-12);
        // throughput = batch / latency
        assert!((p.throughput_qps(8) - 8000.0 / 53.0).abs() < 1e-9);
        // throughput is monotone in batch size for affine latency
        let mut last = 0.0;
        for b in [1u32, 2, 4, 8, 16, 32, 64] {
            let q = p.throughput_qps(b);
            assert!(q > last);
            last = q;
        }
        assert!(last < p.peak_throughput_qps());
    }

    #[test]
    fn largest_batch_within_budget() {
        let v = ModelVariant::new("m", "fam", 1.0, LatencyProfile::new(5.0, 6.0), 1.0);
        // latencies: b=1 -> 11, 2 -> 17, 4 -> 29, 8 -> 53, 16 -> 101, 32 -> 197
        assert_eq!(v.largest_batch_within(&DEFAULT_BATCH_SIZES, 60.0), Some(8));
        assert_eq!(v.largest_batch_within(&DEFAULT_BATCH_SIZES, 11.0), Some(1));
        assert_eq!(v.largest_batch_within(&DEFAULT_BATCH_SIZES, 10.0), None);
        assert_eq!(v.largest_batch_within(&DEFAULT_BATCH_SIZES, 1e9), Some(32));
    }

    #[test]
    #[should_panic(expected = "accuracy must be normalized")]
    fn rejects_unnormalized_accuracy() {
        ModelVariant::new("m", "fam", 87.0, LatencyProfile::new(1.0, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn rejects_zero_batch() {
        LatencyProfile::new(1.0, 1.0).batch_latency_ms(0);
    }

    #[test]
    fn variant_id_display() {
        let id = VariantId::new(2, 3);
        assert_eq!(id.to_string(), "v(2,3)");
    }
}
