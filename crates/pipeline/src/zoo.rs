//! The synthetic model zoo: profiles shaped like the model families the paper uses,
//! plus builders for the paper's two evaluation pipelines.
//!
//! The paper profiles 32 real model variants (YOLOv5, EfficientNet, VGG, ResNet,
//! CLIP-ViT) on NVIDIA GTX 1080 Ti GPUs. We cannot run those models here, but the Loki
//! controller only consumes *profiles*: a normalized accuracy `A(v)`, a throughput
//! table `q(i,k,b)`, and a multiplicative factor `r(i,k)`. This module provides
//! synthetic profiles with the same relative structure:
//!
//! * accuracies are the published accuracies of each family, normalized by the most
//!   accurate member (exactly as the paper does);
//! * latency follows the affine `α + β·b` batch model, with constants chosen so that a
//!   20-worker cluster saturates at a few hundred QPS with max-accuracy variants and at
//!   roughly 2.5–3× that with min-accuracy variants, matching the paper's Figure 1
//!   phase boundaries in shape;
//! * multiplicative factors grow with detector accuracy (a better detector finds more
//!   objects), reproducing the workload-multiplication effect of Section 2.2.1.

use crate::graph::PipelineGraph;
use crate::variant::{LatencyProfile, ModelVariant};

/// Default end-to-end latency SLO used in the paper's end-to-end experiments (ms).
pub const DEFAULT_SLO_MS: f64 = 250.0;

/// Fraction of detected objects that are cars (routed to car classification) in the
/// traffic-analysis pipeline.
pub const TRAFFIC_CAR_BRANCH_RATIO: f64 = 0.7;
/// Fraction of detected objects that are persons (routed to facial recognition).
pub const TRAFFIC_FACE_BRANCH_RATIO: f64 = 0.3;

/// YOLOv5 object-detection family (n, s, m, l, x), most accurate last.
///
/// Accuracies are COCO mAP values normalized by YOLOv5x; multiplicative factors model
/// the average number of objects a variant detects per video frame (less accurate
/// variants miss objects, the workload-multiplication effect).
pub fn yolov5_family() -> Vec<ModelVariant> {
    vec![
        ModelVariant::new(
            "yolov5n",
            "yolov5",
            0.552,
            LatencyProfile::new(2.5, 2.8),
            1.5,
        ),
        ModelVariant::new(
            "yolov5s",
            "yolov5",
            0.738,
            LatencyProfile::new(3.0, 3.4),
            1.7,
        ),
        ModelVariant::new(
            "yolov5m",
            "yolov5",
            0.891,
            LatencyProfile::new(3.5, 4.0),
            1.8,
        ),
        ModelVariant::new(
            "yolov5l",
            "yolov5",
            0.966,
            LatencyProfile::new(4.5, 5.0),
            1.9,
        ),
        ModelVariant::new("yolov5x", "yolov5", 1.0, LatencyProfile::new(5.0, 6.0), 2.0),
    ]
}

/// EfficientNet image-classification family (B0–B7), used for car classification.
pub fn efficientnet_family() -> Vec<ModelVariant> {
    let specs: [(&str, f64, f64, f64); 8] = [
        ("efficientnet-b0", 0.915, 2.0, 2.4),
        ("efficientnet-b1", 0.938, 2.4, 2.5),
        ("efficientnet-b2", 0.950, 2.6, 2.6),
        ("efficientnet-b3", 0.968, 3.0, 3.2),
        ("efficientnet-b4", 0.983, 3.6, 4.2),
        ("efficientnet-b5", 0.992, 4.4, 5.5),
        ("efficientnet-b6", 0.996, 5.2, 7.0),
        ("efficientnet-b7", 1.0, 6.0, 9.0),
    ];
    specs
        .iter()
        .map(|&(name, acc, a, b)| {
            ModelVariant::new(name, "efficientnet", acc, LatencyProfile::new(a, b), 1.0)
        })
        .collect()
}

/// VGG family (11/13/16/19), used for facial recognition.
pub fn vgg_family() -> Vec<ModelVariant> {
    vec![
        ModelVariant::new("vgg11", "vgg", 0.90, LatencyProfile::new(2.5, 3.2), 1.0),
        ModelVariant::new("vgg13", "vgg", 0.94, LatencyProfile::new(3.0, 3.5), 1.0),
        ModelVariant::new("vgg16", "vgg", 0.97, LatencyProfile::new(4.0, 5.0), 1.0),
        ModelVariant::new("vgg19", "vgg", 1.0, LatencyProfile::new(5.0, 7.0), 1.0),
    ]
}

/// ResNet family (18/34/50/101/152), used for image classification in the social-media
/// pipeline. The multiplicative factor models how many caption-worthy regions the
/// classifier surfaces for the downstream captioning task.
pub fn resnet_family() -> Vec<ModelVariant> {
    vec![
        ModelVariant::new(
            "resnet18",
            "resnet",
            0.891,
            LatencyProfile::new(1.8, 2.2),
            1.0,
        ),
        ModelVariant::new(
            "resnet34",
            "resnet",
            0.936,
            LatencyProfile::new(2.2, 2.2),
            1.05,
        ),
        ModelVariant::new(
            "resnet50",
            "resnet",
            0.972,
            LatencyProfile::new(2.8, 3.0),
            1.1,
        ),
        ModelVariant::new(
            "resnet101",
            "resnet",
            0.988,
            LatencyProfile::new(3.8, 4.8),
            1.15,
        ),
        ModelVariant::new(
            "resnet152",
            "resnet",
            1.0,
            LatencyProfile::new(4.8, 6.5),
            1.2,
        ),
    ]
}

/// CLIP-ViT family, used for image captioning in the social-media pipeline.
pub fn clip_vit_family() -> Vec<ModelVariant> {
    vec![
        ModelVariant::new(
            "clip-vit-b32",
            "clip-vit",
            0.88,
            LatencyProfile::new(3.0, 3.8),
            1.0,
        ),
        ModelVariant::new(
            "clip-vit-b16",
            "clip-vit",
            0.94,
            LatencyProfile::new(4.5, 5.5),
            1.0,
        ),
        ModelVariant::new(
            "clip-vit-l14",
            "clip-vit",
            0.99,
            LatencyProfile::new(7.0, 10.0),
            1.0,
        ),
        ModelVariant::new(
            "clip-vit-l14-336",
            "clip-vit",
            1.0,
            LatencyProfile::new(10.0, 14.0),
            1.0,
        ),
    ]
}

/// The traffic-analysis pipeline of Figure 2a: object detection (YOLOv5) fans out to
/// car classification (EfficientNet) and facial recognition (VGG).
pub fn traffic_analysis_pipeline(slo_ms: f64) -> PipelineGraph {
    let mut g = PipelineGraph::new("traffic_analysis", slo_ms);
    let det = g.add_task("object_detection", yolov5_family());
    let car = g.add_task("car_classification", efficientnet_family());
    let face = g.add_task("facial_recognition", vgg_family());
    g.add_edge(det, car, TRAFFIC_CAR_BRANCH_RATIO);
    g.add_edge(det, face, TRAFFIC_FACE_BRANCH_RATIO);
    debug_assert!(g.validate().is_ok());
    g
}

/// The social-media pipeline of Figure 2b: image classification (ResNet) feeding image
/// captioning (CLIP-ViT).
pub fn social_media_pipeline(slo_ms: f64) -> PipelineGraph {
    let mut g = PipelineGraph::new("social_media", slo_ms);
    let cls = g.add_task("image_classification", resnet_family());
    let cap = g.add_task("image_captioning", clip_vit_family());
    g.add_edge(cls, cap, 1.0);
    debug_assert!(g.validate().is_ok());
    g
}

/// A deliberately small two-task chain pipeline used by unit tests and the quickstart
/// example: two variants per task, fast enough that even the MILP-based allocator
/// solves it in microseconds.
pub fn tiny_pipeline(slo_ms: f64) -> PipelineGraph {
    let mut g = PipelineGraph::new("tiny", slo_ms);
    let a = g.add_task(
        "stage_a",
        vec![
            ModelVariant::new("a-small", "a", 0.8, LatencyProfile::new(2.0, 1.0), 1.0),
            ModelVariant::new("a-large", "a", 1.0, LatencyProfile::new(4.0, 3.0), 1.2),
        ],
    );
    let b = g.add_task(
        "stage_b",
        vec![
            ModelVariant::new("b-small", "b", 0.85, LatencyProfile::new(2.0, 1.5), 1.0),
            ModelVariant::new("b-large", "b", 1.0, LatencyProfile::new(5.0, 4.0), 1.0),
        ],
    );
    g.add_edge(a, b, 1.0);
    debug_assert!(g.validate().is_ok());
    g
}

/// All model families bundled together (used by Figure 3 and documentation examples).
pub fn all_families() -> Vec<(&'static str, Vec<ModelVariant>)> {
    vec![
        ("yolov5", yolov5_family()),
        ("efficientnet", efficientnet_family()),
        ("vgg", vgg_family()),
        ("resnet", resnet_family()),
        ("clip-vit", clip_vit_family()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augmented::AugmentedGraph;
    use crate::variant::DEFAULT_BATCH_SIZES;

    #[test]
    fn families_are_normalized_and_ordered() {
        for (name, family) in all_families() {
            assert!(!family.is_empty(), "family {name} is empty");
            let max_acc = family.iter().map(|v| v.accuracy).fold(f64::MIN, f64::max);
            assert!(
                (max_acc - 1.0).abs() < 1e-9,
                "family {name} is not normalized (max accuracy {max_acc})"
            );
            for v in &family {
                assert!(v.accuracy > 0.0 && v.accuracy <= 1.0 + 1e-9);
                assert_eq!(v.family, name);
            }
        }
    }

    #[test]
    fn accuracy_throughput_tradeoff_holds_within_each_family() {
        // Less accurate variants must be faster (higher throughput at every batch size)
        // — this is the premise of accuracy scaling (Figure 3).
        for (name, family) in all_families() {
            let mut sorted = family.clone();
            sorted.sort_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap());
            for pair in sorted.windows(2) {
                for &b in &DEFAULT_BATCH_SIZES {
                    assert!(
                        pair[0].throughput_qps(b) > pair[1].throughput_qps(b),
                        "family {name}: {} should be faster than {} at batch {b}",
                        pair[0].name,
                        pair[1].name
                    );
                }
            }
        }
    }

    #[test]
    fn detector_mult_factor_grows_with_accuracy() {
        let family = yolov5_family();
        for pair in family.windows(2) {
            assert!(pair[0].accuracy < pair[1].accuracy);
            assert!(pair[0].mult_factor <= pair[1].mult_factor);
        }
    }

    #[test]
    fn traffic_pipeline_structure() {
        let g = traffic_analysis_pipeline(DEFAULT_SLO_MS);
        assert!(g.validate().is_ok());
        assert_eq!(g.num_tasks(), 3);
        assert_eq!(g.num_variants(), 5 + 8 + 4);
        let aug = AugmentedGraph::new(&g);
        // 5*8 + 5*4 = 60 root-to-sink variant paths
        assert_eq!(aug.num_paths(), 60);
        assert_eq!(aug.num_task_paths(), 2);
        // branch ratios sum to 1
        let root = g.root();
        let total: f64 = g.task(root).children.iter().map(|e| e.branch_ratio).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn social_pipeline_structure() {
        let g = social_media_pipeline(DEFAULT_SLO_MS);
        assert!(g.validate().is_ok());
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.num_variants(), 5 + 4);
        let aug = AugmentedGraph::new(&g);
        assert_eq!(aug.num_paths(), 20);
    }

    #[test]
    fn tiny_pipeline_is_fast_to_expand() {
        let g = tiny_pipeline(100.0);
        let aug = AugmentedGraph::new(&g);
        assert_eq!(aug.num_paths(), 4);
    }

    #[test]
    fn pipelines_have_meaningful_accuracy_range() {
        for g in [
            traffic_analysis_pipeline(DEFAULT_SLO_MS),
            social_media_pipeline(DEFAULT_SLO_MS),
        ] {
            let hi = g.max_accuracy();
            let lo = g.min_accuracy();
            assert!(hi <= 1.0 + 1e-9);
            // there must be real accuracy-scaling headroom (paper reports ~13% drops)
            assert!(
                hi - lo > 0.1,
                "pipeline {} has too little headroom",
                g.name()
            );
            assert!(
                lo > 0.3,
                "pipeline {} minimum accuracy is implausibly low",
                g.name()
            );
        }
    }
}
