//! The SLO error-budget monitor: multi-window burn-rate evaluation over the
//! per-interval metrics series, with causal attribution against the cluster
//! event journal.
//!
//! The formulation is the standard SRE one. A run's *error budget* is the
//! fraction of finished queries allowed to violate the SLO, `1 - slo_target`.
//! The *burn rate* over a trailing window is the window's bad fraction
//! (late + dropped over finished) divided by the budget: burn rate 1.0 spends
//! the budget exactly at the sustainable pace, rate 10 exhausts it ten times
//! too fast. Alerting on a single window is noisy (short spikes) or sluggish
//! (long windows); the multi-window rule opens a *burn episode* only when both
//! a fast window (default 5 s — catches the onset quickly) and a slow window
//! (default 60 s — proves it is sustained) exceed the threshold, and closes
//! it when the fast window recovers.
//!
//! Each closed episode is then attributed to a cause by correlating it with
//! the [`crate::journal::Journal`] (when the run recorded one) and the
//! drop-cause counters: a revocation storm, a migration drain, boot lag,
//! stockout starvation, a plan-install gap, or — when no control-plane
//! incident explains it — pure queueing overload.
//!
//! Everything here is pure post-processing over deterministic inputs (the
//! interval series and the journal), so the analysis itself is deterministic
//! and runs identically with or without lane parallelism.

use crate::journal::{Journal, JournalKind};
use crate::metrics::IntervalMetrics;

/// Configuration of the burn-rate monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnConfig {
    /// The SLO attainment target; the error budget is `1 - slo_target`.
    pub slo_target: f64,
    /// Fast alerting window, seconds (episode onset detection).
    pub fast_window_s: f64,
    /// Slow alerting window, seconds (sustained-burn confirmation).
    pub slow_window_s: f64,
    /// Burn-rate threshold both windows must exceed to open an episode.
    pub threshold: f64,
    /// How far before an episode's start the attributor scans the journal for
    /// a triggering incident (control-plane damage precedes the visible burn).
    pub lookback_s: f64,
}

impl Default for BurnConfig {
    fn default() -> Self {
        Self {
            slo_target: 0.99,
            fast_window_s: 5.0,
            slow_window_s: 60.0,
            threshold: 2.0,
            lookback_s: 15.0,
        }
    }
}

/// The attributed root cause of one burn episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurnCause {
    /// Spot-market revocations destroyed serving capacity.
    RevocationStorm,
    /// Rebalance migrations reclaimed workers mid-flight.
    MigrationDrain,
    /// Demand outran capacity that was still booting.
    BootLag,
    /// Provisioning was denied by capacity stockouts.
    Stockout,
    /// The burn started before the pipeline had any installed plan.
    PlanInstallGap,
    /// No control-plane incident correlates: plain queueing overload.
    Queueing,
}

impl BurnCause {
    /// Stable lowercase name used in reports and exports.
    pub fn name(self) -> &'static str {
        match self {
            BurnCause::RevocationStorm => "revocation_storm",
            BurnCause::MigrationDrain => "migration_drain",
            BurnCause::BootLag => "boot_lag",
            BurnCause::Stockout => "stockout",
            BurnCause::PlanInstallGap => "plan_install_gap",
            BurnCause::Queueing => "queueing",
        }
    }
}

/// One contiguous period of above-threshold budget burn.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnEpisode {
    /// Start of the first burning interval, seconds.
    pub start_s: f64,
    /// End of the last burning interval, seconds.
    pub end_s: f64,
    /// Highest fast-window burn rate observed during the episode.
    pub peak_burn_rate: f64,
    /// SLO-violating queries (late + dropped) finished during the episode.
    pub bad_queries: u64,
    /// Share of the whole run's error budget this episode consumed, percent
    /// (can exceed 100 when one episode alone blows the budget).
    pub budget_consumed_pct: f64,
    /// Attributed root cause.
    pub cause: BurnCause,
    /// Human-readable correlation evidence ("2 revocations, 31 revoked
    /// drops"), empty when nothing beyond the drop counters was available.
    pub evidence: String,
}

/// The budget verdict of a whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnReport {
    /// The SLO attainment target the budget derives from.
    pub slo_target: f64,
    /// Total error budget in queries: `(1 - slo_target) * finished`.
    pub budget_queries: f64,
    /// Fraction of the budget consumed over the run (> 1 means the run blew
    /// its SLO budget).
    pub budget_consumed: f64,
    /// Highest fast-window burn rate anywhere in the run, episodes or not.
    pub worst_burn_rate: f64,
    /// Detected burn episodes, in time order.
    pub episodes: Vec<BurnEpisode>,
}

impl BurnReport {
    /// An empty report (no intervals, nothing burned).
    pub fn empty(slo_target: f64) -> Self {
        Self {
            slo_target,
            budget_queries: 0.0,
            budget_consumed: 0.0,
            worst_burn_rate: 0.0,
            episodes: Vec::new(),
        }
    }
}

fn window_burn(intervals: &[IntervalMetrics], end: usize, len: usize, budget: f64) -> f64 {
    let start = (end + 1).saturating_sub(len);
    let mut bad = 0u64;
    let mut finished = 0u64;
    for m in &intervals[start..=end] {
        bad += m.completed_late + m.dropped;
        finished += m.finished();
    }
    if finished == 0 {
        0.0
    } else {
        (bad as f64 / finished as f64) / budget
    }
}

/// Evaluate the burn-rate monitor over a run's interval series. `interval_s`
/// is the series' collection cadence; `journal` enables causal attribution
/// (without it the attributor falls back to the drop-cause counters alone).
pub fn analyze(
    intervals: &[IntervalMetrics],
    interval_s: f64,
    journal: Option<&Journal>,
    config: &BurnConfig,
) -> BurnReport {
    let budget = (1.0 - config.slo_target).max(f64::EPSILON);
    let mut report = BurnReport::empty(config.slo_target);
    if intervals.is_empty() || interval_s <= 0.0 {
        return report;
    }
    let fast_n = ((config.fast_window_s / interval_s).ceil() as usize).max(1);
    let slow_n = ((config.slow_window_s / interval_s).ceil() as usize).max(fast_n);

    let total_finished: u64 = intervals.iter().map(|m| m.finished()).sum();
    let total_bad: u64 = intervals.iter().map(|m| m.completed_late + m.dropped).sum();
    report.budget_queries = budget * total_finished as f64;
    report.budget_consumed = if report.budget_queries > 0.0 {
        total_bad as f64 / report.budget_queries
    } else {
        0.0
    };

    // Scan the series once, tracking an open episode as a state machine.
    struct Open {
        start_idx: usize,
        peak: f64,
        bad: u64,
    }
    let mut open: Option<Open> = None;
    let mut closed: Vec<(usize, usize, f64, u64)> = Vec::new();
    for i in 0..intervals.len() {
        let fast = window_burn(intervals, i, fast_n, budget);
        let slow = window_burn(intervals, i, slow_n, budget);
        report.worst_burn_rate = report.worst_burn_rate.max(fast);
        let interval_bad = intervals[i].completed_late + intervals[i].dropped;
        match open.as_mut() {
            Some(ep) if fast < config.threshold => {
                closed.push((ep.start_idx, i - 1, ep.peak, ep.bad));
                open = None;
            }
            Some(ep) => {
                ep.peak = ep.peak.max(fast);
                ep.bad += interval_bad;
            }
            None if fast >= config.threshold && slow >= config.threshold => {
                open = Some(Open {
                    start_idx: i,
                    peak: fast,
                    bad: interval_bad,
                });
            }
            None => {}
        }
    }
    if let Some(ep) = open {
        closed.push((ep.start_idx, intervals.len() - 1, ep.peak, ep.bad));
    }

    for (start_idx, end_idx, peak, bad) in closed {
        let start_s = intervals[start_idx].start_s;
        let end_s = intervals[end_idx].start_s + interval_s;
        let (cause, evidence) = attribute(
            &intervals[start_idx..=end_idx],
            start_s,
            end_s,
            journal,
            config,
        );
        report.episodes.push(BurnEpisode {
            start_s,
            end_s,
            peak_burn_rate: peak,
            bad_queries: bad,
            budget_consumed_pct: if report.budget_queries > 0.0 {
                bad as f64 / report.budget_queries * 100.0
            } else {
                0.0
            },
            cause,
            evidence,
        });
    }
    report
}

/// Correlate one episode against the journal and the drop-cause counters.
/// Rules apply in priority order — a revocation storm explains reclaimed
/// drops too (forced drains reclaim workers), so the more specific cause wins.
fn attribute(
    episode: &[IntervalMetrics],
    start_s: f64,
    end_s: f64,
    journal: Option<&Journal>,
    config: &BurnConfig,
) -> (BurnCause, String) {
    let revoked_drops: u64 = episode.iter().map(|m| m.dropped_revoked).sum();
    let reclaimed_drops: u64 = episode.iter().map(|m| m.dropped_reclaimed).sum();

    let mut revocations = 0usize;
    let mut migrations = 0usize;
    let mut boots = 0usize;
    let mut stockouts = 0usize;
    let mut provisions = 0usize;
    let mut installed_before = false;
    let mut any_install = false;
    if let Some(j) = journal {
        let from_s = start_s - config.lookback_s;
        for e in &j.events {
            match &e.kind {
                JournalKind::PlanInstall { .. } => {
                    any_install = true;
                    if e.time_s() <= start_s {
                        installed_before = true;
                    }
                }
                _ => {
                    let t = e.time_s();
                    if t < from_s || t >= end_s {
                        continue;
                    }
                    match &e.kind {
                        JournalKind::Revocation { .. } => revocations += 1,
                        JournalKind::Migration { .. } => migrations += 1,
                        JournalKind::Boot { .. } => boots += 1,
                        JournalKind::Stockout { denied, .. } => stockouts += *denied as usize,
                        JournalKind::AutoscaleDecision {
                            provision: true, ..
                        } => provisions += 1,
                        _ => {}
                    }
                }
            }
        }
    }

    if revocations > 0 || revoked_drops > 0 {
        let evidence = format!("{revocations} revocations, {revoked_drops} revoked drops");
        return (BurnCause::RevocationStorm, evidence);
    }
    if migrations > 0 || reclaimed_drops > 0 {
        let evidence = format!("{migrations} migrations, {reclaimed_drops} reclaimed drops");
        return (BurnCause::MigrationDrain, evidence);
    }
    if journal.is_some() && any_install && !installed_before {
        return (
            BurnCause::PlanInstallGap,
            "no plan installed before the burn started".to_string(),
        );
    }
    if stockouts > 0 {
        return (
            BurnCause::Stockout,
            format!("{stockouts} provision requests denied"),
        );
    }
    if boots > 0 || provisions > 0 {
        return (
            BurnCause::BootLag,
            format!("{provisions} scale-up decisions, {boots} boots landing"),
        );
    }
    (BurnCause::Queueing, String::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::CLUSTER_LANE;
    use crate::types::secs_to_us;

    fn quiet(start_s: f64) -> IntervalMetrics {
        IntervalMetrics {
            start_s,
            arrivals: 100,
            completed_on_time: 100,
            ..Default::default()
        }
    }

    fn burning(start_s: f64, dropped: u64, revoked: u64) -> IntervalMetrics {
        IntervalMetrics {
            start_s,
            arrivals: 100,
            completed_on_time: 100 - dropped,
            dropped,
            dropped_deadline: dropped - revoked,
            dropped_revoked: revoked,
            ..Default::default()
        }
    }

    fn series(burn_from: usize, burn_len: usize, revoked: bool) -> Vec<IntervalMetrics> {
        (0..120)
            .map(|i| {
                if i >= burn_from && i < burn_from + burn_len {
                    burning(i as f64, 20, if revoked { 20 } else { 0 })
                } else {
                    quiet(i as f64)
                }
            })
            .collect()
    }

    #[test]
    fn quiet_run_burns_nothing() {
        let intervals: Vec<_> = (0..60).map(|i| quiet(i as f64)).collect();
        let report = analyze(&intervals, 1.0, None, &BurnConfig::default());
        assert!(report.episodes.is_empty());
        assert_eq!(report.budget_consumed, 0.0);
        assert_eq!(report.worst_burn_rate, 0.0);
        assert!((report.budget_queries - 60.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_burn_opens_and_closes_one_episode() {
        // 20% bad for 30 s in a 1% budget: burn rate 20 — far over threshold.
        let intervals = series(40, 30, false);
        let report = analyze(&intervals, 1.0, None, &BurnConfig::default());
        assert_eq!(report.episodes.len(), 1, "{:?}", report.episodes);
        let ep = &report.episodes[0];
        assert!(ep.start_s >= 40.0 && ep.start_s < 46.0, "{}", ep.start_s);
        assert!(ep.end_s > 69.0, "{}", ep.end_s);
        assert!(ep.peak_burn_rate > 10.0);
        assert_eq!(ep.cause, BurnCause::Queueing);
        assert!(report.worst_burn_rate >= ep.peak_burn_rate);
        // 600 bad queries of a 120-interval × 100-query × 1% = 120 budget.
        assert!(report.budget_consumed > 1.0);
        assert!(ep.budget_consumed_pct > 100.0);
    }

    #[test]
    fn short_spike_below_the_slow_window_does_not_alert() {
        // 3 bad seconds: the fast window fires but the 60 s window stays
        // under threshold, so no episode opens.
        let intervals = series(40, 3, false);
        let report = analyze(&intervals, 1.0, None, &BurnConfig::default());
        assert!(report.episodes.is_empty(), "{:?}", report.episodes);
        assert!(report.worst_burn_rate > 2.0);
    }

    #[test]
    fn drop_causes_attribute_without_a_journal() {
        let intervals = series(40, 30, true);
        let report = analyze(&intervals, 1.0, None, &BurnConfig::default());
        assert_eq!(report.episodes.len(), 1);
        assert_eq!(report.episodes[0].cause, BurnCause::RevocationStorm);
        assert!(report.episodes[0].evidence.contains("revoked drops"));
    }

    #[test]
    fn journal_attributes_revocations_within_the_lookback() {
        let intervals = series(40, 30, false);
        let mut journal = Journal::new();
        journal.record(0, 0, JournalKind::PlanInstall { epoch: 1 });
        journal.record(
            secs_to_us(38.0),
            CLUSTER_LANE,
            JournalKind::Revocation {
                worker: 7,
                class: 1,
                lane: 0,
            },
        );
        let report = analyze(&intervals, 1.0, Some(&journal), &BurnConfig::default());
        assert_eq!(report.episodes.len(), 1);
        assert_eq!(report.episodes[0].cause, BurnCause::RevocationStorm);
        assert!(report.episodes[0].evidence.starts_with("1 revocations"));
    }

    #[test]
    fn cold_start_attributes_to_the_plan_install_gap() {
        // Burn at the very start, first plan lands only at t = 50 s.
        let intervals = series(0, 30, false);
        let mut journal = Journal::new();
        journal.record(secs_to_us(50.0), 0, JournalKind::PlanInstall { epoch: 2 });
        let report = analyze(&intervals, 1.0, Some(&journal), &BurnConfig::default());
        assert_eq!(report.episodes.len(), 1);
        assert_eq!(report.episodes[0].cause, BurnCause::PlanInstallGap);
    }

    #[test]
    fn boot_lag_attribution_needs_scaling_activity() {
        let intervals = series(40, 30, false);
        let mut journal = Journal::new();
        journal.record(0, 0, JournalKind::PlanInstall { epoch: 1 });
        journal.record(
            secs_to_us(41.0),
            CLUSTER_LANE,
            JournalKind::AutoscaleDecision {
                provision: true,
                class: 0,
                count: 4,
                reason: crate::elastic::DecisionReason::PressureKick,
            },
        );
        journal.record(
            secs_to_us(55.0),
            CLUSTER_LANE,
            JournalKind::Boot {
                worker: 30,
                class: 0,
            },
        );
        let report = analyze(&intervals, 1.0, Some(&journal), &BurnConfig::default());
        assert_eq!(report.episodes.len(), 1);
        assert_eq!(report.episodes[0].cause, BurnCause::BootLag);
    }

    #[test]
    fn empty_series_is_safe() {
        let report = analyze(&[], 1.0, None, &BurnConfig::default());
        assert!(report.episodes.is_empty());
        assert_eq!(report.budget_queries, 0.0);
    }
}
