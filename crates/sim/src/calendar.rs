//! A hierarchical calendar queue (timer wheel) for simulation events.
//!
//! The engine schedules three classes of future work: network deliveries (now +
//! a per-link delay, microseconds-to-milliseconds ahead), model-swap completions
//! (hundreds of milliseconds ahead), and periodic control/routing/metrics ticks
//! (seconds ahead). A binary heap handles all of them in O(log n) per operation;
//! this queue exploits the fact that event horizons are short and times only move
//! forward to get O(1) amortized insert and pop:
//!
//! * The near future is a circular array of `num_buckets` buckets, each covering
//!   `2^shift` microseconds of simulated time. An event at time `t` lands in
//!   bucket `(t >> shift) & (num_buckets - 1)`; inserting is an array index and a
//!   `Vec::push`.
//! * The wheel position (`cur_slot`) only moves on [`CalendarQueue::pop`], and
//!   only to the slot of the event being consumed — so it can never run ahead of
//!   the caller's clock, and pushes at `now + delay` land on the wheel's fast
//!   path. [`CalendarQueue::peek`] answers from a cached head key, refreshed
//!   with a read-only scan when unknown; it never moves the wheel. (An earlier
//!   design advanced the wheel on peek; because the engine merges this queue
//!   with external event sources that keep scheduling at earlier times, most
//!   pushes then landed *behind* the wheel position and paid an ordered middle
//!   insert — the lazy head removes that entire class of slow-path traffic.)
//! * The slot being drained lives in `ready`, sorted by `(time, seq)` descending
//!   and popped from the back, so same-slot events come out in exactly the order
//!   a global heap would produce them. Buckets are tiny (the engine defaults put
//!   a few events in each), so the per-slot sort is effectively free and
//!   amortizes to O(1) per event. Events scheduled *into the slot currently
//!   being drained* are spliced into `ready` at their ordered position.
//! * Events beyond the wheel's horizon (`num_buckets << shift` microseconds) go
//!   to an unsorted `overflow` list — in practice only the sparse periodic ticks
//!   and swap completions — and are redistributed onto the wheel each time it
//!   completes a rotation. A cached `overflow_min` keeps peeks O(1) while far
//!   events are pending.
//!
//! # Ordering contract
//!
//! [`CalendarQueue::pop`] yields events in strictly ascending `(time, seq)`
//! order, bit-identical to `BinaryHeap<Reverse<(time, seq)>>`, **provided** no
//! event is scheduled in the past (`time` must be at or after the time of the
//! last popped event). The engine satisfies this by construction — every event
//! is scheduled at `now + delay` with `delay >= 0` — and the queue
//! `debug_assert`s it. `tests/calendar_order.rs` checks the equivalence against
//! a real heap on randomized workloads, including same-time `seq` tie-breaks.

use crate::types::SimTime;
use serde::{Deserialize, Serialize};

/// One scheduled event: its due time, its global tie-break sequence number, and
/// the caller's payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

/// A calendar queue over payloads of type `T`. See the module docs.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// The wheel: bucket `i` holds events whose slot (`time >> shift`) is
    /// congruent to `i` modulo the bucket count, restricted to the current
    /// window of `num_buckets` slots.
    buckets: Vec<Vec<Entry<T>>>,
    /// `num_buckets - 1` (bucket count is a power of two).
    mask: u64,
    /// log2 of the bucket width in microseconds.
    shift: u32,
    /// The slot (`time >> shift`) currently being drained: the slot of the most
    /// recently popped event. Only `pop` moves it.
    cur_slot: u64,
    /// Events of the current slot, sorted by `(time, seq)` descending; the next
    /// event to pop is `ready.last()`.
    ready: Vec<Entry<T>>,
    /// Events beyond the wheel horizon, unsorted; redistributed on rotation.
    overflow: Vec<Entry<T>>,
    /// Cached `(time, seq)` of the queue minimum; `None` means "unknown, compute
    /// on demand" (only ever the case while `ready` is empty).
    head: Option<(SimTime, u64)>,
    /// Cached minimum key of `overflow` (`None` when empty).
    overflow_min: Option<(SimTime, u64)>,
    /// Scan accelerator: no occupied wheel slot lies in `[cur_slot, scan_hint)`.
    /// Raised as head scans verify slots empty, lowered by pushes and
    /// redistribution — so each empty slot is scanned at most once overall.
    scan_hint: u64,
    /// Events currently stored in `buckets` (excludes `ready` and `overflow`).
    wheel_len: usize,
    /// Total events in the queue.
    len: usize,
    /// Time of the last popped event — the floor below which scheduling would
    /// break the ordering contract (checked in debug builds).
    floor: SimTime,
}

/// Default bucket width: `2^10` ≈ 1 ms. Wide enough that a whole burst of
/// same-batch fan-out deliveries shares one bucket (one sort), narrow enough
/// that sub-millisecond PCIe-class hops still usually cross into the next slot
/// instead of splicing into the live drain buffer. Tuned on the
/// `traffic_1m_arrivals` and `traffic_hetnet` workloads (see `BENCH_sim.json`).
pub const DEFAULT_SHIFT: u32 = 10;
/// Default bucket count: 128 buckets × 1 ms ≈ 131 ms of horizon — ample for
/// every network hop. The wheel's live footprint (headers + bucket buffers)
/// stays small enough to be cache-resident, which dominates throughput; far
/// events (model swaps, periodic ticks) live in `overflow` behind the cached
/// `overflow_min` and cost nothing until they come due.
pub const DEFAULT_BUCKETS: usize = 128;

/// Largest bucket count [`CalendarGeometry::Auto`] will pick: past this the
/// wheel headers stop being cache-resident and widening the buckets is the
/// better trade.
pub const MAX_AUTO_BUCKETS: usize = 8192;

/// The wheel geometry of a [`CalendarQueue`]: bucket width (`2^shift` µs) ×
/// bucket count. Exposed through `SimConfig::calendar` so scenarios whose hop
/// delays fall outside the tuned default range (sub-µs NVLink, 100 ms WAN) can
/// size the wheel, and `Auto` derives a geometry from the link-delay model's
/// hop range so they usually don't have to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CalendarGeometry {
    /// Size the wheel from the link-delay model's hop range (see
    /// [`CalendarGeometry::resolve_for_range`]): the bucket width tracks the
    /// shortest hop, the horizon covers the longest. For the paper's uniform
    /// 2 ms testbed this resolves to exactly the tuned
    /// ([`DEFAULT_SHIFT`], [`DEFAULT_BUCKETS`]) defaults.
    #[default]
    Auto,
    /// An explicit geometry: `num_buckets` (a power of two) buckets of
    /// `2^shift` microseconds each.
    Fixed {
        /// log2 of the bucket width in microseconds.
        shift: u32,
        /// Number of buckets (must be a power of two).
        num_buckets: usize,
    },
}

impl CalendarGeometry {
    /// Resolve to a concrete `(shift, num_buckets)` for hop delays spanning
    /// `[min_hop_us, max_hop_us]`.
    ///
    /// `Auto` picks the bucket width near the *shortest* hop (so short-hop
    /// deliveries cross into a later slot instead of splicing into the live
    /// drain buffer) and then grows the bucket count — and, past
    /// [`MAX_AUTO_BUCKETS`], the width — until the horizon covers the
    /// *longest* hop, keeping every `now + hop` push on the O(1) bucket path.
    pub fn resolve_for_range(self, min_hop_us: SimTime, max_hop_us: SimTime) -> (u32, usize) {
        match self {
            CalendarGeometry::Fixed { shift, num_buckets } => (shift, num_buckets),
            CalendarGeometry::Auto => {
                let min_hop = min_hop_us.max(1);
                let max_hop = max_hop_us.max(min_hop);
                // Bucket width: the largest power of two at or below the
                // shortest hop, capped so the width stays well inside u64.
                let mut shift = (63 - min_hop.leading_zeros()).min(20);
                // Bucket count: enough slots (plus slack for rounding) that
                // the longest hop lands inside the window.
                let buckets_for =
                    |shift: u32| ((max_hop >> shift) + 2).next_power_of_two() as usize;
                while buckets_for(shift) > MAX_AUTO_BUCKETS {
                    shift += 1;
                }
                let num_buckets = buckets_for(shift).clamp(DEFAULT_BUCKETS, MAX_AUTO_BUCKETS);
                (shift, num_buckets)
            }
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new(DEFAULT_SHIFT, DEFAULT_BUCKETS)
    }
}

impl<T> CalendarQueue<T> {
    /// Create a queue with `num_buckets` (a power of two) buckets of `2^shift`
    /// microseconds each.
    pub fn new(shift: u32, num_buckets: usize) -> Self {
        assert!(num_buckets.is_power_of_two(), "bucket count must be 2^k");
        assert!(shift < 40, "bucket width must stay well below u64 range");
        Self {
            buckets: (0..num_buckets).map(|_| Vec::new()).collect(),
            mask: num_buckets as u64 - 1,
            shift,
            cur_slot: 0,
            ready: Vec::new(),
            overflow: Vec::new(),
            head: None,
            overflow_min: None,
            scan_hint: 0,
            wheel_len: 0,
            len: 0,
            floor: 0,
        }
    }

    /// Number of events currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// log2 of the bucket width in microseconds.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Number of wheel buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Events currently parked past the wheel horizon. A well-sized geometry
    /// keeps hop-delayed deliveries off this list entirely (only sparse far
    /// events — periodic ticks, model swaps — should ever land here).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule an event. `seq` must be unique and callers must never schedule
    /// in the past (before the last popped event's time).
    #[inline]
    pub fn push(&mut self, time: SimTime, seq: u64, item: T) {
        debug_assert!(
            time >= self.floor,
            "event scheduled in the past: {time} < last popped {}",
            self.floor
        );
        let slot = time >> self.shift;
        let entry = Entry { time, seq, item };
        self.len += 1;
        // Hot path: a future slot inside the window (virtually every delivery,
        // since the wheel position trails the caller's clock).
        let ahead = slot.wrapping_sub(self.cur_slot);
        if ahead.wrapping_sub(1) < self.mask {
            // 1 <= ahead <= num_buckets - 1
            self.buckets[(slot & self.mask) as usize].push(entry);
            self.wheel_len += 1;
            if slot < self.scan_hint {
                self.scan_hint = slot;
            }
        } else {
            self.push_slow(slot, entry);
        }
        // A new event can only lower a *known* head. An unknown head (None with
        // len > 1) stays unknown: the hidden minimum may be smaller.
        match self.head {
            Some(h) if (time, seq) < h => self.head = Some((time, seq)),
            None if self.len == 1 => self.head = Some((time, seq)),
            _ => {}
        }
    }

    /// The rare push targets: the slot currently being drained, and slots past
    /// the horizon.
    fn push_slow(&mut self, slot: u64, entry: Entry<T>) {
        if slot <= self.cur_slot {
            debug_assert!(slot == self.cur_slot, "past slots are unreachable");
            // The slot being drained: splice into the sorted ready list at the
            // position the global order requires.
            let key = (entry.time, entry.seq);
            let idx = self.ready.partition_point(|e| (e.time, e.seq) > key);
            self.ready.insert(idx, entry);
        } else {
            // Past the horizon (`slot >= cur_slot + num_buckets`; the fast path
            // took everything in between).
            let key = (entry.time, entry.seq);
            if self.overflow_min.is_none_or(|m| key < m) {
                self.overflow_min = Some(key);
            }
            self.overflow.push(entry);
        }
    }

    /// The `(time, seq)` of the next event. Never moves the wheel position;
    /// recomputes the cached head with a read-only scan when it is unknown.
    #[inline]
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        if self.head.is_some() || self.len == 0 {
            return self.head;
        }
        self.refresh_head();
        self.head
    }

    /// Recompute `head` without draining anything. `ready` (current-slot
    /// events, e.g. pushed there after the head went lazy) precedes everything
    /// else; otherwise the head is the minimum over the first non-empty bucket
    /// ahead (whose entries all share the smallest occupied slot, hence contain
    /// the wheel minimum) and the cached overflow minimum. Overflow events may
    /// be due *before* deeper wheel events — their slots only have to be past
    /// the horizon as of push time — which is why those two are compared by key
    /// rather than by position.
    fn refresh_head(&mut self) {
        if let Some(e) = self.ready.last() {
            self.head = Some((e.time, e.seq));
            return;
        }
        let mut best = self.overflow_min;
        if self.wheel_len > 0 {
            // Slots below `scan_hint` are already known to be empty, and the
            // hint only ever rises over verified-empty slots — so across the
            // queue's lifetime each empty slot is scanned once, keeping the
            // amortized head cost O(1).
            let mut slot = self.scan_hint.max(self.cur_slot);
            loop {
                let bucket = &self.buckets[(slot & self.mask) as usize];
                if !bucket.is_empty() {
                    let m = bucket
                        .iter()
                        .map(|e| (e.time, e.seq))
                        .min()
                        .expect("bucket is non-empty");
                    if best.is_none_or(|b| m < b) {
                        best = Some(m);
                    }
                    break;
                }
                slot += 1;
                debug_assert!(
                    slot <= self.cur_slot + self.mask + 1,
                    "wheel_len > 0 implies an occupied slot inside the window"
                );
            }
            self.scan_hint = slot;
        }
        self.head = best;
    }

    /// Remove and return the next event in ascending `(time, seq)` order.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.ready.is_empty() && !self.advance() {
            return None;
        }
        let e = self.ready.pop().expect("ready is non-empty");
        self.len -= 1;
        self.floor = e.time;
        // `ready` holds only current-slot events, which precede everything on
        // the wheel and in overflow; when it drains, the head goes lazy.
        self.head = self.ready.last().map(|n| (n.time, n.seq));
        Some((e.time, e.seq, e.item))
    }

    /// Jump the wheel to the head's slot and drain that bucket into `ready`.
    /// Returns false when the queue is empty. Only called with an empty
    /// `ready`, from `pop` — so the wheel position never outruns consumption.
    ///
    /// No slot-by-slot stepping happens here: the head is the queue minimum,
    /// and an event in any slot strictly between the current position and the
    /// head's slot would have a smaller time than the head — a contradiction —
    /// so every slot in between is provably empty.
    fn advance(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        if self.head.is_none() {
            self.refresh_head();
        }
        let (time, _) = self.head.expect("a non-empty queue has a head");
        let target = time >> self.shift;
        debug_assert!(target >= self.cur_slot);
        self.cur_slot = target;
        // When the next event (or anything due inside the new window's reach)
        // still sits in overflow, pull it onto the wheel before draining.
        if self
            .overflow_min
            .is_some_and(|(t, _)| t >> self.shift <= target)
        {
            self.redistribute();
        }
        let bucket = &mut self.buckets[(target & self.mask) as usize];
        debug_assert!(!bucket.is_empty(), "the head's slot must be occupied");
        debug_assert!(bucket.iter().all(|e| e.time >> self.shift == target));
        // Recycle allocations: the drained bucket takes ready's (empty)
        // buffer, ready takes the bucket's.
        std::mem::swap(bucket, &mut self.ready);
        self.wheel_len -= self.ready.len();
        // Buckets hold one or two events at the engine's rates, so the tiny
        // cases skip the sort-call overhead entirely.
        match self.ready.len() {
            1 => {}
            2 => {
                if (self.ready[0].time, self.ready[0].seq) < (self.ready[1].time, self.ready[1].seq)
                {
                    self.ready.swap(0, 1);
                }
            }
            _ => self
                .ready
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq))),
        }
        true
    }

    /// Move every overflow event that now falls inside the window
    /// `[cur_slot, cur_slot + num_buckets)` onto the wheel, and refresh the
    /// cached overflow minimum.
    fn redistribute(&mut self) {
        let horizon = self.cur_slot + self.buckets.len() as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let slot = self.overflow[i].time >> self.shift;
            if slot < horizon {
                let entry = self.overflow.swap_remove(i);
                self.buckets[(slot & self.mask) as usize].push(entry);
                self.wheel_len += 1;
                if slot < self.scan_hint {
                    self.scan_hint = slot;
                }
            } else {
                i += 1;
            }
        }
        self.overflow_min = self
            .overflow
            .iter()
            .map(|e| (e.time, e.seq))
            .fold(None, |acc: Option<(SimTime, u64)>, k| {
                Some(acc.map_or(k, |a| a.min(k)))
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(SimTime, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new(4, 8);
        q.push(50, 1, 10);
        q.push(20, 2, 20);
        q.push(20, 3, 30);
        q.push(0, 4, 40);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek(), Some((0, 4)));
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, s, _)| s).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn later_push_with_shorter_delay_overtakes() {
        // The delivery-FIFO invariant this queue removes: an event pushed later
        // but due earlier (a short link) must pop before an earlier push with a
        // longer delay. A FIFO cannot express this ordering.
        let mut q = CalendarQueue::<&str>::default();
        q.push(5_000, 1, "slow-link");
        q.push(200, 2, "fast-link");
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("fast-link"));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("slow-link"));
    }

    #[test]
    fn overflow_events_come_back_in_order() {
        // Tiny wheel (4 buckets x 16 us = 64 us horizon) to force overflow.
        let mut q = CalendarQueue::new(4, 4);
        q.push(1_000_000, 1, 1u32); // far overflow (control tick)
        q.push(10, 2, 2);
        q.push(500, 3, 3); // overflow at push time
        q.push(70_000, 4, 4); // overflow
        assert_eq!(q.peek(), Some((10, 2)));
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, i)| i).collect();
        assert_eq!(order, vec![2, 3, 4, 1]);
    }

    #[test]
    fn overflow_due_before_deep_wheel_events_wins_the_peek() {
        // An overflow event can become due before wheel events once the window
        // slides: peek must compare by key, not by storage location.
        let mut q = CalendarQueue::new(4, 4); // horizon 64 us
        q.push(0, 1, 1u32);
        q.push(100, 2, 2); // overflow at push time (slot 6 >= 0 + 4)
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(1));
        // Now cur_slot = 0, wheel empty; push a wheel event *after* 100 us.
        q.push(40, 3, 3); // slot 2, on the wheel
        assert_eq!(q.peek(), Some((40, 3)));
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, i)| i).collect();
        assert_eq!(order, vec![3, 2]);
    }

    #[test]
    fn push_into_current_slot_during_drain_keeps_order() {
        let mut q = CalendarQueue::new(4, 8);
        q.push(16, 1, 1u32); // slot 1
        q.push(30, 2, 2); // slot 1
        assert_eq!(q.pop().map(|(t, _, i)| (t, i)), Some((16, 1)));
        // Now draining slot 1; schedule into the same slot ahead of seq 2...
        q.push(20, 3, 3);
        // ...and at the same (time) as an existing entry but a later seq.
        q.push(30, 4, 4);
        assert_eq!(q.peek(), Some((20, 3)));
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, i)| i).collect();
        assert_eq!(order, vec![3, 2, 4]);
    }

    #[test]
    fn peek_does_not_move_the_wheel() {
        let mut q = CalendarQueue::new(4, 8);
        q.push(100, 1, 1u32); // slot 6
        assert_eq!(q.peek(), Some((100, 1)));
        // After the peek, a push to an earlier slot must still take the fast
        // bucket path and pop first.
        q.push(20, 2, 2); // slot 1
        assert_eq!(q.peek(), Some((20, 2)));
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, i)| i).collect();
        assert_eq!(order, vec![2, 1]);
    }

    /// Push one delivery per hop delay from a moving `now` and assert every
    /// push lands inside the wheel window (never in overflow): the O(1) bucket
    /// path the auto-sizer must preserve across hop ranges.
    fn assert_hops_stay_on_wheel(geometry: CalendarGeometry, hops_us: &[SimTime]) {
        let min = *hops_us.iter().min().unwrap();
        let max = *hops_us.iter().max().unwrap();
        let (shift, buckets) = geometry.resolve_for_range(min, max);
        let mut q = CalendarQueue::<u32>::new(shift, buckets);
        let mut seq = 0u64;
        let mut now = 0;
        for round in 0..200u64 {
            for &hop in hops_us {
                seq += 1;
                q.push(now + hop, seq, round as u32);
                assert_eq!(
                    q.overflow_len(),
                    0,
                    "hop {hop} µs overflowed a 2^{shift} µs x {buckets} wheel"
                );
            }
            while q.len() > hops_us.len() / 2 {
                let (t, _, _) = q.pop().expect("queue non-empty");
                now = t;
            }
        }
    }

    #[test]
    fn auto_geometry_reproduces_the_tuned_default_for_the_uniform_testbed() {
        // The paper's homogeneous 2 ms interconnect must resolve to exactly
        // the constants the wheel was tuned with, so default-config runs keep
        // their measured throughput profile.
        let (shift, buckets) = CalendarGeometry::Auto.resolve_for_range(2_000, 2_000);
        assert_eq!((shift, buckets), (DEFAULT_SHIFT, DEFAULT_BUCKETS));
        // Fixed passes through untouched.
        let fixed = CalendarGeometry::Fixed {
            shift: 4,
            num_buckets: 32,
        };
        assert_eq!(fixed.resolve_for_range(2_000, 2_000), (4, 32));
    }

    #[test]
    fn auto_geometry_keeps_sub_ms_hops_on_the_bucket_path() {
        // NVLink-class 5 µs hops: the default 1 ms buckets would pile every
        // delivery into the live slot; auto-sizing narrows the buckets.
        let (shift, _) = CalendarGeometry::Auto.resolve_for_range(5, 5);
        assert!(shift <= 2, "5 µs hops need sub-8 µs buckets, got 2^{shift}");
        assert_hops_stay_on_wheel(CalendarGeometry::Auto, &[5, 8, 20]);
    }

    #[test]
    fn auto_geometry_keeps_100ms_hops_on_the_bucket_path() {
        // WAN-class 100 ms hops: the default 131 ms horizon barely covers one
        // hop; auto-sizing widens the buckets so the horizon clears it.
        let (shift, buckets) = CalendarGeometry::Auto.resolve_for_range(100_000, 100_000);
        assert!(
            (buckets as u64) << shift > 100_000,
            "horizon must cover a 100 ms hop"
        );
        assert_hops_stay_on_wheel(CalendarGeometry::Auto, &[100_000, 80_000, 120_000]);
    }

    #[test]
    fn auto_geometry_covers_mixed_microsecond_to_wan_ranges() {
        // 5 µs NVLink mixed with 100 ms WAN: the bucket-count cap forces a
        // wider bucket, but the horizon must still cover the longest hop and
        // the bucket count must stay bounded.
        let (shift, buckets) = CalendarGeometry::Auto.resolve_for_range(5, 100_000);
        assert!(buckets <= MAX_AUTO_BUCKETS);
        assert!((buckets as u64) << shift > 100_000);
        assert_hops_stay_on_wheel(CalendarGeometry::Auto, &[5, 500, 100_000]);
    }

    #[test]
    fn interleaved_push_pop_across_rotations() {
        let mut q = CalendarQueue::new(2, 4); // 4 buckets x 4 us = 16 us horizon
        let mut seq = 0u64;
        let mut now = 0;
        let mut popped = Vec::new();
        for round in 0..200u64 {
            seq += 1;
            q.push(now + (round * 7) % 23, seq, seq);
            if round % 3 == 0 {
                if let Some((t, _, item)) = q.pop() {
                    assert!(t >= now, "time went backwards");
                    now = t;
                    popped.push(item);
                }
            }
        }
        while let Some((t, _, item)) = q.pop() {
            assert!(t >= now);
            now = t;
            popped.push(item);
        }
        assert_eq!(popped.len(), 200);
    }
}
