//! The elastic cluster subsystem: heterogeneous GPU classes, a cloud-style
//! provisioning lifecycle, and cost accounting.
//!
//! The paper's "hardware scaling" (Section 4) reassigns a *fixed* fleet —
//! `SimConfig::cluster_size` is pinned for the whole run. Real serving systems
//! scale the hardware itself: INFaaS provisions heterogeneous instance types
//! under cost/SLO constraints, and cost-efficiency is the third axis next to
//! accuracy and latency. This module makes the worker fleet a dynamic,
//! heterogeneous, *billed* resource:
//!
//! * a [`WorkerClass`] catalog describes the GPU classes a deployment can rent
//!   (per-class latency-profile scaling factor, memory capacity, $/hour price,
//!   and boot delay);
//! * [`ElasticSimConfig`] (attached as [`crate::SimConfig::elastic`]) declares
//!   the initial fleet and the fleet bound — when present, every warm
//!   GPU-second is billed at its class price, whether or not a scaling policy
//!   runs;
//! * an [`ElasticPolicy`] decides, at a fixed cadence, whether to *provision*
//!   new workers (they boot asynchronously: `Provisioning → Warm`, and are
//!   never billed before boot completes) or *drain* warm ones (`Draining →
//!   Retired`: a draining worker finishes its in-flight batch but accepts no
//!   new dispatches, and billing stops at retirement);
//! * [`StaticFleet`] is the no-op baseline policy — the fleet stays at its
//!   initial size, which models today's statically-provisioned deployments
//!   (size for peak and pay for it all night).
//!
//! The reactive autoscaler that implements the interesting policy lives above
//! this crate (`loki_core::provisioner::ReactiveAutoscaler`), exactly like the
//! cluster-level `ResourceManager` implements [`crate::ResourceArbiter`].

use serde::{Deserialize, Serialize};

/// One rentable GPU class (instance type) in the deployment's catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerClass {
    /// Stable name used in reports ("a100", "budget", …).
    pub name: String,
    /// Multiplier applied to every variant's latency profile on workers of
    /// this class (1.0 = the profiled reference GPU; 1.5 = 50% slower).
    pub latency_scale: f64,
    /// Device memory capacity in GB. Recorded in the catalog (and validated
    /// positive) so policies can reason about it. It deliberately does **not**
    /// gate placement: the model zoo's variant specs carry no memory-footprint
    /// field at all, so every variant fits every class by construction and a
    /// memory gate would be vacuously true. `memory_capacity_is_vacuous` in
    /// the elastic integration tests asserts this (two catalogs differing only
    /// in `memory_gb` run bit-identically); if variants ever grow a footprint,
    /// that test is the tripwire for adding a real placement gate.
    pub memory_gb: f64,
    /// Rental price in dollars per hour of *warm* time.
    pub price_per_hour: f64,
    /// Seconds between a provisioning request and the worker turning warm.
    pub boot_delay_s: f64,
    /// True for spot (preemptible) classes: discounted price, but subject to
    /// the market's revocation process and stockouts when a
    /// [`crate::MarketConfig`] is attached. On-demand classes (`false`) are
    /// never revoked and never stock out.
    pub spot: bool,
}

impl WorkerClass {
    /// The effective price of one unit of reference-GPU work on this class:
    /// a class that is twice as slow must run twice as long for the same
    /// work, so its effective price is `price_per_hour * latency_scale`.
    pub fn effective_price(&self) -> f64 {
        self.price_per_hour * self.latency_scale
    }
}

/// The catalog of worker classes available to a run. Class indices are stable
/// for the whole run and are what [`ElasticAction`]s and per-class cost rows
/// refer to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkerClassCatalog {
    /// The classes, indexed by position.
    pub classes: Vec<WorkerClass>,
}

impl WorkerClassCatalog {
    /// A single-class catalog (the homogeneous testbed, now with a price tag).
    pub fn single(class: WorkerClass) -> Self {
        Self {
            classes: vec![class],
        }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the catalog has no classes (invalid for elastic runs).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Check internal consistency (non-empty, finite positive scales/prices,
    /// non-negative boot delays, unique names).
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err("worker-class catalog must list at least one class".into());
        }
        for c in &self.classes {
            if !(c.latency_scale.is_finite() && c.latency_scale > 0.0) {
                return Err(format!("class {:?}: latency_scale must be > 0", c.name));
            }
            if !(c.memory_gb.is_finite() && c.memory_gb > 0.0) {
                return Err(format!("class {:?}: memory_gb must be > 0", c.name));
            }
            if !(c.price_per_hour.is_finite() && c.price_per_hour >= 0.0) {
                return Err(format!("class {:?}: price_per_hour must be >= 0", c.name));
            }
            if !(c.boot_delay_s.is_finite() && c.boot_delay_s >= 0.0) {
                return Err(format!("class {:?}: boot_delay_s must be >= 0", c.name));
            }
        }
        let mut names: Vec<&str> = self.classes.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.classes.len() {
            return Err("worker-class names must be unique".into());
        }
        Ok(())
    }

    /// The class with the lowest [`WorkerClass::effective_price`] (ties to the
    /// lower index) — the default class a cost-aware policy provisions.
    pub fn cheapest_effective(&self) -> usize {
        cheapest_effective(&self.classes)
    }
}

/// The index of the class with the lowest [`WorkerClass::effective_price`]
/// (ties to the lower index) in a class slice — shared by the catalog and by
/// policies ranking classes from an [`ElasticObservation`], so the two can
/// never diverge.
pub fn cheapest_effective(classes: &[WorkerClass]) -> usize {
    let mut best = 0;
    for (i, c) in classes.iter().enumerate() {
        if c.effective_price() < classes[best].effective_price() {
            best = i;
        }
    }
    best
}

/// The elastic-fleet half of a [`crate::SimConfig`]. When present, the engine
/// builds the initial fleet from `initial` (ignoring
/// [`crate::SimConfig::cluster_size`]), bills every warm GPU-second at the
/// catalog price, and accepts provisioning/drain actions from an
/// [`ElasticPolicy`] at `decide_interval_s` cadence. When absent, the fleet is
/// the historical fixed `cluster_size` and runs are bit-identical to the
/// pre-elastic engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticSimConfig {
    /// The rentable GPU classes.
    pub catalog: WorkerClassCatalog,
    /// Initial fleet as `(class index, count)` pairs. These workers start warm
    /// at time zero (pre-warmed bootstrap, matching the fixed-fleet engine's
    /// assumption) and are billed from time zero.
    pub initial: Vec<(usize, usize)>,
    /// Upper bound on live (provisioning + warm + draining) workers; the
    /// engine clamps provisioning requests to it.
    pub max_fleet: usize,
    /// Seconds between [`ElasticPolicy::decide`] invocations.
    pub decide_interval_s: f64,
    /// The cloud market this fleet rents from: spot revocations, price
    /// schedules, stockouts. `None` models the friendly cloud (no supply-side
    /// events), and is bit-identical to a market whose rates are all zero.
    pub market: Option<crate::MarketConfig>,
}

impl ElasticSimConfig {
    /// Total initial worker count.
    pub fn initial_fleet(&self) -> usize {
        self.initial.iter().map(|(_, n)| n).sum()
    }

    /// Check internal consistency (valid catalog, in-range class indices,
    /// non-empty initial fleet within the fleet bound, positive cadence).
    pub fn validate(&self) -> Result<(), String> {
        self.catalog.validate()?;
        for &(class, _) in &self.initial {
            if class >= self.catalog.len() {
                return Err(format!(
                    "initial fleet references class {class} outside the {}-class catalog",
                    self.catalog.len()
                ));
            }
        }
        let total = self.initial_fleet();
        if total == 0 {
            return Err("initial fleet must have at least one worker".into());
        }
        if total > self.max_fleet {
            return Err(format!(
                "initial fleet ({total}) exceeds max_fleet ({})",
                self.max_fleet
            ));
        }
        if !(self.decide_interval_s.is_finite() && self.decide_interval_s > 0.0) {
            return Err("decide_interval_s must be > 0".into());
        }
        if let Some(market) = &self.market {
            market.validate()?;
        }
        Ok(())
    }
}

/// What an [`ElasticPolicy`] observes at each decide tick. Per-class slices
/// are indexed by catalog class; per-pipeline slices by registration order.
#[derive(Debug, Clone)]
pub struct ElasticObservation<'a> {
    /// Current simulated time in seconds.
    pub now_s: f64,
    /// The run's worker-class catalog.
    pub classes: &'a [WorkerClass],
    /// Warm (dispatchable) workers per class.
    pub warm: &'a [usize],
    /// Warm workers currently hosting a model across all classes — the
    /// capacity the controllers are actually using. Warm minus active is
    /// powered-down headroom a policy can harvest without disrupting anyone.
    pub active: usize,
    /// Workers still booting per class.
    pub provisioning: &'a [usize],
    /// Workers draining (finishing in-flight work) per class.
    pub draining: &'a [usize],
    /// Per-pipeline demand estimates (QPS) — the same provisioning estimates
    /// the pipelines' own controllers compute.
    pub demand_qps: &'a [f64],
    /// Per-pipeline total queued queries (backlog pressure).
    pub queued: &'a [usize],
    /// Per-pipeline SLO attainment (on-time / finished) over the window since
    /// the previous decide tick; 1.0 when nothing finished.
    pub window_attainment: &'a [f64],
    /// Fraction of warm capacity that was busy over the window (clamped to
    /// [0, 1]; batch time is credited at batch start, so a saturated window
    /// can momentarily read slightly high before clamping).
    pub busy_fraction: f64,
    /// The run's live-fleet bound.
    pub max_fleet: usize,
    /// Cumulative spot revocations since the start of the run (all classes).
    /// Policies diff successive observations to estimate the revocation rate.
    pub revocations: u64,
    /// Cumulative spot provision requests denied by capacity stockouts.
    pub stockouts: u64,
    /// The spot-price multiplier currently in effect (1.0 without a market or
    /// price schedule).
    pub spot_price_multiplier: f64,
}

impl ElasticObservation<'_> {
    /// Total warm workers across classes.
    pub fn total_warm(&self) -> usize {
        self.warm.iter().sum()
    }

    /// Total live (warm + provisioning + draining) workers across classes.
    pub fn total_live(&self) -> usize {
        self.total_warm()
            + self.provisioning.iter().sum::<usize>()
            + self.draining.iter().sum::<usize>()
    }

    /// Total queued queries across pipelines.
    pub fn total_queued(&self) -> usize {
        self.queued.iter().sum()
    }
}

/// One fleet-scaling action. Counts are clamped by the engine (to the fleet
/// bound for provisioning, to the class's warm workers for draining), so
/// policies may over-ask without tracking the exact fleet state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticAction {
    /// Start `count` new workers of `class`; each turns warm (and starts
    /// billing) after the class's boot delay.
    Provision {
        /// Catalog class index.
        class: usize,
        /// Workers to start.
        count: usize,
    },
    /// Drain `count` warm workers of `class`: the engine picks the idlest
    /// (unassigned first, then shortest queue), re-homes their queued queries,
    /// lets in-flight batches finish, and retires them.
    Drain {
        /// Catalog class index.
        class: usize,
        /// Workers to drain.
        count: usize,
    },
}

/// Why a fleet-scaling policy acted: the reason enum journaled next to each
/// [`ElasticAction`] (see [`crate::journal::JournalKind::AutoscaleDecision`]),
/// so burn-episode attribution can tell a demand-tracking scale-up from a
/// revocation hedge without re-deriving the policy's logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// Provisioning to track the demand estimate (steady-state sizing).
    DemandTrack,
    /// Scale-up kicked by backlog/attainment pressure.
    PressureKick,
    /// Emergency scale-up on severe overload (attainment collapse).
    SevereOverload,
    /// Draining a slower class to replace it with a better one.
    ClassUpgrade,
    /// Draining sustained-idle headroom.
    SustainedIdle,
    /// Forecast-driven pre-provisioning ahead of predicted demand.
    Forecast,
    /// Extra spot capacity provisioned to hedge observed revocations.
    RevocationHedge,
    /// The policy reported no reason for this action.
    Unspecified,
}

impl DecisionReason {
    /// Stable lowercase name used in reports and exports.
    pub fn name(self) -> &'static str {
        match self {
            DecisionReason::DemandTrack => "demand_track",
            DecisionReason::PressureKick => "pressure_kick",
            DecisionReason::SevereOverload => "severe_overload",
            DecisionReason::ClassUpgrade => "class_upgrade",
            DecisionReason::SustainedIdle => "sustained_idle",
            DecisionReason::Forecast => "forecast",
            DecisionReason::RevocationHedge => "revocation_hedge",
            DecisionReason::Unspecified => "unspecified",
        }
    }
}

/// A fleet-scaling policy: the cloud-provisioner control loop plugged into the
/// simulator. Invoked every [`ElasticSimConfig::decide_interval_s`] seconds.
pub trait ElasticPolicy {
    /// Name used in reports.
    fn name(&self) -> &str;

    /// Decide fleet actions from the current observation. Returning an empty
    /// vector keeps the fleet as is.
    fn decide(&mut self, observation: &ElasticObservation<'_>) -> Vec<ElasticAction>;

    /// The reasons behind the actions the latest [`ElasticPolicy::decide`]
    /// returned, index-aligned with that action vector (missing entries read
    /// as [`DecisionReason::Unspecified`]). Purely observational: the engine
    /// only calls this when the event journal is on, and a policy that never
    /// overrides it still works — its decisions are just journaled without a
    /// stated cause.
    fn last_reasons(&mut self) -> Vec<DecisionReason> {
        Vec::new()
    }
}

/// The static baseline: never scales. With an [`ElasticSimConfig`] attached,
/// a run under `StaticFleet` keeps its initial fleet for the whole run and
/// pays for every second of it — the "provision for peak" deployment the
/// autoscaler is measured against. (Running with no policy at all is
/// equivalent; this type exists so baselines are explicit in reports.)
#[derive(Debug, Clone, Default)]
pub struct StaticFleet;

impl ElasticPolicy for StaticFleet {
    fn name(&self) -> &str {
        "static-fleet"
    }

    fn decide(&mut self, _observation: &ElasticObservation<'_>) -> Vec<ElasticAction> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(name: &str, scale: f64, price: f64) -> WorkerClass {
        WorkerClass {
            name: name.to_string(),
            latency_scale: scale,
            memory_gb: 40.0,
            price_per_hour: price,
            boot_delay_s: 20.0,
            spot: false,
        }
    }

    #[test]
    fn catalog_validates_and_ranks_effective_price() {
        let catalog = WorkerClassCatalog {
            classes: vec![class("premium", 1.0, 3.0), class("budget", 1.5, 1.5)],
        };
        assert!(catalog.validate().is_ok());
        // budget: 1.5 * 1.5 = 2.25 effective < premium 3.0.
        assert_eq!(catalog.cheapest_effective(), 1);
        assert!((catalog.classes[1].effective_price() - 2.25).abs() < 1e-12);

        assert!(WorkerClassCatalog::default().validate().is_err());
        let dup = WorkerClassCatalog {
            classes: vec![class("a", 1.0, 1.0), class("a", 2.0, 2.0)],
        };
        assert!(dup.validate().is_err());
        let bad = WorkerClassCatalog::single(class("x", 0.0, 1.0));
        assert!(bad.validate().is_err());
        let bad_mem = WorkerClassCatalog::single(WorkerClass {
            memory_gb: 0.0,
            ..class("x", 1.0, 1.0)
        });
        assert!(bad_mem.validate().is_err());
    }

    #[test]
    fn elastic_config_validates_fleet_shape() {
        let catalog = WorkerClassCatalog::single(class("gpu", 1.0, 2.5));
        let ok = ElasticSimConfig {
            catalog: catalog.clone(),
            initial: vec![(0, 4)],
            max_fleet: 10,
            decide_interval_s: 10.0,
            market: None,
        };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.initial_fleet(), 4);

        let out_of_range = ElasticSimConfig {
            initial: vec![(3, 2)],
            ..ok.clone()
        };
        assert!(out_of_range.validate().is_err());
        let empty = ElasticSimConfig {
            initial: vec![],
            ..ok.clone()
        };
        assert!(empty.validate().is_err());
        let over = ElasticSimConfig {
            initial: vec![(0, 11)],
            ..ok.clone()
        };
        assert!(over.validate().is_err());
        let bad_market = ElasticSimConfig {
            market: Some(crate::MarketConfig {
                check_interval_s: 0.0,
                ..crate::MarketConfig::default()
            }),
            ..ok.clone()
        };
        assert!(bad_market.validate().is_err());
        let bad_interval = ElasticSimConfig {
            decide_interval_s: 0.0,
            ..ok
        };
        assert!(bad_interval.validate().is_err());
    }

    #[test]
    fn static_fleet_never_acts() {
        let catalog = WorkerClassCatalog::single(class("gpu", 1.0, 2.5));
        let warm = [4usize];
        let provisioning = [0usize];
        let draining = [0usize];
        let observation = ElasticObservation {
            now_s: 100.0,
            classes: &catalog.classes,
            warm: &warm,
            active: 3,
            provisioning: &provisioning,
            draining: &draining,
            demand_qps: &[900.0],
            queued: &[1000],
            window_attainment: &[0.1],
            busy_fraction: 1.0,
            max_fleet: 32,
            revocations: 0,
            stockouts: 0,
            spot_price_multiplier: 1.0,
        };
        let mut policy = StaticFleet;
        assert_eq!(policy.name(), "static-fleet");
        assert!(policy.decide(&observation).is_empty());
        assert_eq!(observation.total_warm(), 4);
        assert_eq!(observation.total_live(), 4);
        assert_eq!(observation.total_queued(), 1000);
    }
}
