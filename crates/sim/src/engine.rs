//! The discrete-event simulation engine.
//!
//! The engine owns the cluster state (workers, queues, in-flight requests), executes
//! the data plane (routing, batching, fan-out, drop policies), and periodically hands
//! control to a pluggable [`Controller`] for resource allocation and routing decisions,
//! exactly mirroring the Controller / Frontend / Workers split of Figure 4.

use crate::metrics::{IntervalMetrics, RunSummary};
use crate::types::{
    ms_to_us, secs_to_us, us_to_ms, AllocationPlan, Controller, DropPolicy, ObservedState, Query,
    RoutingPlan, SimConfig, SimTime, WorkerId, WorkerView,
};
use crate::worker::Worker;
use loki_pipeline::{PipelineGraph, VariantId};
use loki_workload::{DemandHistory, EwmaEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-interval metrics (one entry per metrics interval).
    pub intervals: Vec<IntervalMetrics>,
    /// Whole-run summary.
    pub summary: RunSummary,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    ControlTick,
    RoutingTick,
    MetricsTick,
    Arrival(usize),
    Delivered(u64, WorkerId),
    BatchDone(WorkerId),
    SwapDone(WorkerId),
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

/// Tracking state of a root (client) request while any of its sub-queries are in
/// flight.
#[derive(Debug, Clone)]
struct RootState {
    deadline_us: SimTime,
    outstanding: usize,
    accuracy_sum: f64,
    accuracy_count: usize,
    any_dropped: bool,
}

/// A simulation of one pipeline served by one controller on one cluster.
pub struct Simulation<'a, C: Controller> {
    graph: &'a PipelineGraph,
    config: SimConfig,
    controller: C,
}

impl<'a, C: Controller> Simulation<'a, C> {
    /// Create a simulation for a pipeline, cluster configuration, and controller.
    pub fn new(graph: &'a PipelineGraph, config: SimConfig, controller: C) -> Self {
        graph.validate().expect("pipeline graph must be valid");
        Self {
            graph,
            config,
            controller,
        }
    }

    /// Run the simulation over a list of root-query arrival times (seconds, ascending).
    pub fn run(&mut self, arrivals_s: &[f64]) -> SimResult {
        let mut engine = Engine::new(self.graph, &self.config, arrivals_s);
        engine.run(&mut self.controller)
    }

    /// Consume the simulation and return the controller (useful to inspect controller
    /// internals after a run).
    pub fn into_controller(self) -> C {
        self.controller
    }
}

struct Engine<'a> {
    graph: &'a PipelineGraph,
    config: &'a SimConfig,
    arrivals_us: Vec<SimTime>,
    end_time_us: SimTime,

    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: SimTime,

    workers: Vec<Worker>,
    routing: RoutingPlan,
    latency_budgets_ms: HashMap<VariantId, f64>,
    drop_policy: DropPolicy,

    roots: HashMap<u64, RootState>,
    /// Queries currently traversing the network between a routing decision and their
    /// delivery at the destination worker, keyed by query id.
    in_transit: HashMap<u64, Query>,
    next_query_id: u64,

    // Observability for controllers.
    demand: DemandHistory,
    arrivals_this_interval: u64,
    fanout_sums: HashMap<(VariantId, usize), (f64, u64)>,
    fanout_avg: HashMap<(VariantId, usize), f64>,
    per_task_counts: HashMap<usize, u64>,
    per_task_ewma: HashMap<usize, EwmaEstimator>,
    per_task_qps: HashMap<usize, f64>,
    first_control_tick: bool,

    // Metrics.
    current: IntervalMetrics,
    intervals: Vec<IntervalMetrics>,

    rng: StdRng,
}

impl<'a> Engine<'a> {
    fn new(graph: &'a PipelineGraph, config: &'a SimConfig, arrivals_s: &[f64]) -> Self {
        let arrivals_us: Vec<SimTime> = arrivals_s.iter().map(|&s| secs_to_us(s)).collect();
        let last_arrival = arrivals_us.last().copied().unwrap_or(0);
        let end_time_us = last_arrival + secs_to_us(config.drain_s);
        let workers = (0..config.cluster_size).map(|i| Worker::new(WorkerId(i))).collect();
        let mut engine = Self {
            graph,
            config,
            arrivals_us,
            end_time_us,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            workers,
            routing: RoutingPlan::default(),
            latency_budgets_ms: HashMap::new(),
            drop_policy: DropPolicy::default(),
            roots: HashMap::new(),
            in_transit: HashMap::new(),
            next_query_id: 0,
            demand: DemandHistory::new(60, 0.3, 1.1),
            arrivals_this_interval: 0,
            fanout_sums: HashMap::new(),
            fanout_avg: HashMap::new(),
            per_task_counts: HashMap::new(),
            per_task_ewma: HashMap::new(),
            per_task_qps: HashMap::new(),
            first_control_tick: true,
            current: IntervalMetrics {
                cluster_size: config.cluster_size,
                ..Default::default()
            },
            intervals: Vec::new(),
            rng: StdRng::seed_from_u64(config.seed),
        };
        // Seed the periodic events and the first arrival.
        engine.push(0, EventKind::ControlTick);
        engine.push(0, EventKind::RoutingTick);
        engine.push(secs_to_us(config.metrics_interval_s), EventKind::MetricsTick);
        if !engine.arrivals_us.is_empty() {
            engine.push(engine.arrivals_us[0], EventKind::Arrival(0));
        }
        engine
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn run(&mut self, controller: &mut dyn Controller) -> SimResult {
        while let Some(Reverse(event)) = self.heap.pop() {
            if event.time > self.end_time_us {
                break;
            }
            self.now = event.time;
            match event.kind {
                EventKind::Arrival(idx) => self.on_arrival(idx),
                EventKind::Delivered(query_id, worker) => self.on_delivered(query_id, worker),
                EventKind::BatchDone(worker) => self.on_batch_done(worker),
                EventKind::SwapDone(worker) => self.kick(worker),
                EventKind::ControlTick => self.on_control_tick(controller),
                EventKind::RoutingTick => self.on_routing_tick(controller),
                EventKind::MetricsTick => self.on_metrics_tick(),
            }
        }

        // Anything still outstanding when the run ends counts as dropped.
        let leftover: Vec<u64> = self.roots.keys().copied().collect();
        for root in leftover {
            if let Some(state) = self.roots.remove(&root) {
                let _ = state;
                self.current.dropped += 1;
            }
        }
        self.flush_interval();

        let name = controller.name().to_string();
        let summary = RunSummary::from_intervals(&name, &self.intervals);
        SimResult {
            intervals: std::mem::take(&mut self.intervals),
            summary,
        }
    }

    // ---- in-flight query bookkeeping -------------------------------------------

    /// Park a query in the in-transit map while its delivery event is in the heap, so
    /// events only carry plain ids.
    fn stash_query(&mut self, q: Query) -> u64 {
        let id = q.id;
        self.in_transit.insert(id, q);
        id
    }

    // ---- event handlers ----------------------------------------------------------

    fn on_arrival(&mut self, idx: usize) {
        let arrival_time = self.arrivals_us[idx];
        // Schedule the next arrival first.
        if idx + 1 < self.arrivals_us.len() {
            self.push(self.arrivals_us[idx + 1], EventKind::Arrival(idx + 1));
        }
        self.current.arrivals += 1;
        self.arrivals_this_interval += 1;

        let root_id = self.next_query_id;
        self.next_query_id += 1;
        let deadline = arrival_time + ms_to_us(self.graph.slo_ms());
        self.roots.insert(
            root_id,
            RootState {
                deadline_us: deadline,
                outstanding: 1,
                accuracy_sum: 0.0,
                accuracy_count: 0,
                any_dropped: false,
            },
        );
        let query = Query {
            id: root_id,
            root: root_id,
            task: self.graph.root().index(),
            path_accuracy: 1.0,
            deadline_us: deadline,
            released_us: arrival_time,
            enqueued_us: arrival_time,
            overrun_ms: 0.0,
        };
        match self.pick_frontend_worker() {
            Some(worker) => {
                let deliver_at = self.now + ms_to_us(self.config.network_delay_ms);
                let qid = self.stash_query(query);
                self.push(deliver_at, EventKind::Delivered(qid, worker));
            }
            None => self.drop_query(&query),
        }
    }

    fn on_delivered(&mut self, query_id: u64, worker_id: WorkerId) {
        let Some(mut q) = self.in_transit.remove(&query_id) else {
            return;
        };
        *self.per_task_counts.entry(q.task).or_insert(0) += 1;

        // The designated worker may have been re-assigned since routing; fall back to
        // any worker currently serving this task.
        let target = {
            let ok = self.workers[worker_id.index()]
                .assignment
                .map(|a| a.variant.task == q.task)
                .unwrap_or(false);
            if ok {
                Some(worker_id)
            } else {
                self.fallback_worker_for_task(q.task)
            }
        };
        let Some(target) = target else {
            self.drop_query(&q);
            return;
        };

        // Last-task dropping: when the query reaches the final task and its leftover
        // budget cannot cover even the expected processing time, drop it.
        if self.drop_policy == DropPolicy::LastTask && self.graph.task(loki_pipeline::TaskId(q.task)).is_sink() {
            let expected_ms = self.workers[target.index()]
                .profiled_exec_ms(self.graph)
                .unwrap_or(0.0);
            let remaining_ms = if q.deadline_us > self.now {
                us_to_ms(q.deadline_us - self.now)
            } else {
                0.0
            };
            if remaining_ms < expected_ms {
                self.drop_query(&q);
                return;
            }
        }

        q.enqueued_us = self.now;
        self.workers[target.index()].enqueue(q);
        self.kick(target);
    }

    fn on_batch_done(&mut self, worker_id: WorkerId) {
        let (batch, variant) = self.workers[worker_id.index()].finish_batch();
        let Some(variant_id) = variant else {
            // Shouldn't happen, but don't lose the queries if it does.
            for q in batch {
                self.drop_query(&q);
            }
            return;
        };
        let variant = self.graph.variant(variant_id).clone();
        let task_id = loki_pipeline::TaskId(variant_id.task);
        let children = self.graph.task(task_id).children.clone();
        let budget_ms = self
            .latency_budgets_ms
            .get(&variant_id)
            .copied()
            .unwrap_or_else(|| variant.batch_latency_ms(8));

        for q in batch {
            let time_at_task_ms = us_to_ms(self.now - q.enqueued_us);
            let overrun_ms = time_at_task_ms - budget_ms;
            let path_accuracy = q.path_accuracy * variant.accuracy;

            if children.is_empty() {
                self.complete_leaf(q.root, path_accuracy);
                continue;
            }

            // Per-task dropping: the query exceeded this task's budget, drop it now.
            if self.drop_policy == DropPolicy::PerTask && overrun_ms > 0.0 {
                self.drop_query(&q);
                continue;
            }

            // Fan out into intermediate queries for each child edge.
            let mut spawned = 0usize;
            let mut child_queries: Vec<(Query, WorkerId)> = Vec::new();
            let mut any_child_dropped = false;
            for edge in &children {
                let mean = variant.mult_factor * edge.branch_ratio;
                let count = self.stochastic_round(mean);
                let entry = self
                    .fanout_sums
                    .entry((variant_id, edge.child.index()))
                    .or_insert((0.0, 0));
                entry.0 += count as f64;
                entry.1 += 1;
                for _ in 0..count {
                    let child_task = edge.child.index();
                    match self.route_downstream(worker_id, child_task, overrun_ms) {
                        RouteOutcome::To(target) => {
                            let id = self.next_query_id;
                            self.next_query_id += 1;
                            child_queries.push((
                                Query {
                                    id,
                                    root: q.root,
                                    task: child_task,
                                    path_accuracy,
                                    deadline_us: q.deadline_us,
                                    released_us: q.released_us,
                                    enqueued_us: self.now,
                                    overrun_ms: 0.0,
                                },
                                target,
                            ));
                            spawned += 1;
                        }
                        RouteOutcome::Rerouted(target) => {
                            self.current.rerouted += 1;
                            let id = self.next_query_id;
                            self.next_query_id += 1;
                            child_queries.push((
                                Query {
                                    id,
                                    root: q.root,
                                    task: child_task,
                                    path_accuracy,
                                    deadline_us: q.deadline_us,
                                    released_us: q.released_us,
                                    enqueued_us: self.now,
                                    overrun_ms: 0.0,
                                },
                                target,
                            ));
                            spawned += 1;
                        }
                        RouteOutcome::Drop => {
                            any_child_dropped = true;
                        }
                    }
                }
            }

            if spawned == 0 {
                if any_child_dropped {
                    // All children were dropped: the request cannot be fully served.
                    self.drop_query(&q);
                } else {
                    // The model legitimately produced no downstream work (e.g. no
                    // objects detected): the query completes here.
                    self.complete_leaf(q.root, path_accuracy);
                }
                continue;
            }

            // Replace this query's contribution to `outstanding` with its children.
            if let Some(root) = self.roots.get_mut(&q.root) {
                root.outstanding += spawned - 1;
                if any_child_dropped {
                    root.any_dropped = true;
                }
            }
            let delay = ms_to_us(self.config.network_delay_ms);
            for (child, target) in child_queries {
                let qid = self.stash_query(child);
                self.push(self.now + delay, EventKind::Delivered(qid, target));
            }
        }

        self.kick(worker_id);
    }

    fn on_control_tick(&mut self, controller: &mut dyn Controller) {
        let hint = if self.first_control_tick {
            self.config.initial_demand_hint
        } else {
            None
        };
        self.first_control_tick = false;

        let observed = ObservedState {
            now_s: crate::types::us_to_secs(self.now),
            cluster_size: self.config.cluster_size,
            workers: self.worker_views(),
            demand: &self.demand,
            initial_demand_hint: hint,
            observed_fanout: &self.fanout_avg,
            per_task_arrival_qps: &self.per_task_qps,
        };
        if let Some(plan) = controller.plan(&observed) {
            self.apply_allocation(&plan);
        }
        // Refresh routing right after a (possible) re-allocation so it reflects the new
        // worker assignments.
        let observed = ObservedState {
            now_s: crate::types::us_to_secs(self.now),
            cluster_size: self.config.cluster_size,
            workers: self.worker_views(),
            demand: &self.demand,
            initial_demand_hint: hint,
            observed_fanout: &self.fanout_avg,
            per_task_arrival_qps: &self.per_task_qps,
        };
        if let Some(routing) = controller.routing(&observed) {
            self.routing = routing;
        }

        let next = self.now + secs_to_us(self.config.control_interval_s);
        if next <= self.end_time_us {
            self.push(next, EventKind::ControlTick);
        }
    }

    fn on_routing_tick(&mut self, controller: &mut dyn Controller) {
        let observed = ObservedState {
            now_s: crate::types::us_to_secs(self.now),
            cluster_size: self.config.cluster_size,
            workers: self.worker_views(),
            demand: &self.demand,
            initial_demand_hint: None,
            observed_fanout: &self.fanout_avg,
            per_task_arrival_qps: &self.per_task_qps,
        };
        if let Some(routing) = controller.routing(&observed) {
            self.routing = routing;
        }
        let next = self.now + secs_to_us(self.config.routing_interval_s);
        if next <= self.end_time_us {
            self.push(next, EventKind::RoutingTick);
        }
    }

    fn on_metrics_tick(&mut self) {
        let interval = self.config.metrics_interval_s;
        // Demand observation for the controller.
        self.demand
            .observe(self.arrivals_this_interval as f64 / interval);
        self.arrivals_this_interval = 0;
        // Per-task arrival rates (EWMA-smoothed).
        for (&task, &count) in &self.per_task_counts {
            let qps = count as f64 / interval;
            let est = self
                .per_task_ewma
                .entry(task)
                .or_insert_with(|| EwmaEstimator::new(0.3));
            est.observe(qps);
            self.per_task_qps.insert(task, est.estimate());
        }
        for count in self.per_task_counts.values_mut() {
            *count = 0;
        }
        // Fan-out averages for the controller (heartbeat aggregation).
        for (&key, &(sum, count)) in &self.fanout_sums {
            if count > 0 {
                self.fanout_avg.insert(key, sum / count as f64);
            }
        }

        self.flush_interval();

        let next = self.now + secs_to_us(interval);
        if next <= self.end_time_us {
            self.push(next, EventKind::MetricsTick);
        }
    }

    fn flush_interval(&mut self) {
        let mut finished = std::mem::take(&mut self.current);
        finished.start_s = crate::types::us_to_secs(self.now) - self.config.metrics_interval_s;
        if finished.start_s < 0.0 {
            finished.start_s = 0.0;
        }
        finished.active_workers = self.workers.iter().filter(|w| w.is_active()).count();
        finished.cluster_size = self.config.cluster_size;
        self.intervals.push(finished);
        self.current.cluster_size = self.config.cluster_size;
    }

    // ---- routing and dropping -----------------------------------------------------

    fn pick_frontend_worker(&mut self) -> Option<WorkerId> {
        let root_task = self.graph.root().index();
        let choice = self.sample_table_owned(&self.routing.frontend.clone(), root_task);
        choice.or_else(|| self.fallback_worker_for_task(root_task))
    }

    /// Sample a worker from a weighted table, skipping entries that no longer serve
    /// the expected task.
    fn sample_table_owned(&mut self, table: &[(WorkerId, f64)], task: usize) -> Option<WorkerId> {
        let valid: Vec<(WorkerId, f64)> = table
            .iter()
            .copied()
            .filter(|(w, weight)| {
                *weight > 0.0
                    && self.workers[w.index()]
                        .assignment
                        .map(|a| a.variant.task == task)
                        .unwrap_or(false)
            })
            .collect();
        let total: f64 = valid.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut draw = self.rng.gen_range(0.0..total);
        for (worker, weight) in &valid {
            draw -= weight;
            if draw <= 0.0 {
                return Some(*worker);
            }
        }
        valid.last().map(|(w, _)| *w)
    }

    /// Any active worker serving `task`, preferring the shortest queue.
    fn fallback_worker_for_task(&self, task: usize) -> Option<WorkerId> {
        self.workers
            .iter()
            .filter(|w| {
                w.assignment
                    .map(|a| a.variant.task == task)
                    .unwrap_or(false)
            })
            .min_by_key(|w| w.queue_len())
            .map(|w| w.id)
    }

    fn route_downstream(
        &mut self,
        upstream: WorkerId,
        child_task: usize,
        overrun_ms: f64,
    ) -> RouteOutcome {
        // Default choice: the upstream worker's own routing table, then the per-task
        // default table, then any worker serving the task.
        let table = self
            .routing
            .downstream
            .get(&(upstream, child_task))
            .or_else(|| self.routing.downstream_default.get(&child_task))
            .cloned()
            .unwrap_or_default();
        let default_choice = self
            .sample_table_owned(&table, child_task)
            .or_else(|| self.fallback_worker_for_task(child_task));

        let Some(default_choice) = default_choice else {
            return RouteOutcome::Drop;
        };

        // Opportunistic rerouting: if the query is running late, look for a strictly
        // faster backup worker that can make up the deficit.
        if self.drop_policy == DropPolicy::OpportunisticRerouting && overrun_ms > 0.0 {
            let default_exec_ms = self.workers[default_choice.index()]
                .profiled_exec_ms(self.graph)
                .unwrap_or(f64::INFINITY);
            let needed_ms = default_exec_ms - overrun_ms;
            let backup = self.routing.backup.get(&child_task).cloned().unwrap_or_default();
            let mut candidates: Vec<_> = backup
                .iter()
                .filter(|b| {
                    b.exec_time_ms <= needed_ms
                        && self.workers[b.worker.index()]
                            .assignment
                            .map(|a| a.variant.task == child_task)
                            .unwrap_or(false)
                })
                .collect();
            if candidates.is_empty() {
                return RouteOutcome::Drop;
            }
            candidates.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).unwrap());
            let best_acc = candidates[0].accuracy;
            let ties: Vec<_> = candidates
                .iter()
                .filter(|c| (c.accuracy - best_acc).abs() < 1e-9)
                .collect();
            let pick = ties[self.rng.gen_range(0..ties.len())];
            return RouteOutcome::Rerouted(pick.worker);
        }

        RouteOutcome::To(default_choice)
    }

    fn drop_query(&mut self, q: &Query) {
        if let Some(root) = self.roots.get_mut(&q.root) {
            root.any_dropped = true;
            root.outstanding = root.outstanding.saturating_sub(1);
            if root.outstanding == 0 {
                let state = self.roots.remove(&q.root).unwrap();
                self.finalize_root(state);
            }
        }
    }

    fn complete_leaf(&mut self, root_id: u64, accuracy: f64) {
        if let Some(root) = self.roots.get_mut(&root_id) {
            root.accuracy_sum += accuracy;
            root.accuracy_count += 1;
            root.outstanding = root.outstanding.saturating_sub(1);
            if root.outstanding == 0 {
                let state = self.roots.remove(&root_id).unwrap();
                self.finalize_root(state);
            }
        }
    }

    fn finalize_root(&mut self, state: RootState) {
        if state.any_dropped || state.accuracy_count == 0 {
            self.current.dropped += 1;
            return;
        }
        let accuracy = state.accuracy_sum / state.accuracy_count as f64;
        if self.now <= state.deadline_us {
            self.current.completed_on_time += 1;
        } else {
            self.current.completed_late += 1;
        }
        self.current.accuracy_sum += accuracy;
        self.current.accuracy_count += 1;
    }

    // ---- allocation --------------------------------------------------------------

    fn apply_allocation(&mut self, plan: &AllocationPlan) {
        self.latency_budgets_ms = plan.latency_budgets_ms.clone();
        self.drop_policy = plan.drop_policy;

        // Desired replica counts per (variant, batch).
        let mut desired: Vec<(VariantId, u32, usize)> = plan
            .instances
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| (s.variant, s.max_batch, s.count))
            .collect();
        // Never exceed the physical cluster.
        let mut total: usize = desired.iter().map(|d| d.2).sum();
        while total > self.config.cluster_size {
            // Trim the largest group first (the plan should never do this, but the
            // engine enforces the physical limit regardless).
            if let Some(max) = desired.iter_mut().max_by_key(|d| d.2) {
                max.2 -= 1;
                total -= 1;
            } else {
                break;
            }
        }

        // Step 1: keep workers that already host a desired variant.
        let mut remaining: Vec<(VariantId, u32, usize)> = desired.clone();
        let mut keep: Vec<Option<(VariantId, u32)>> = vec![None; self.workers.len()];
        for (wi, w) in self.workers.iter().enumerate() {
            if let Some(a) = w.assignment {
                if let Some(slot) = remaining
                    .iter_mut()
                    .find(|(v, _, c)| *v == a.variant && *c > 0)
                {
                    keep[wi] = Some((slot.0, slot.1));
                    slot.2 -= 1;
                }
            }
        }

        // Step 2: place still-needed instances on unassigned workers first, then on
        // workers whose current variant is no longer needed.
        let mut to_place: Vec<(VariantId, u32)> = Vec::new();
        for (v, b, c) in &remaining {
            for _ in 0..*c {
                to_place.push((*v, *b));
            }
        }
        let mut swaps: Vec<(usize, VariantId, u32)> = Vec::new();
        if !to_place.is_empty() {
            // unassigned workers
            for (wi, w) in self.workers.iter().enumerate() {
                if to_place.is_empty() {
                    break;
                }
                if w.assignment.is_none() && keep[wi].is_none() {
                    let (v, b) = to_place.remove(0);
                    swaps.push((wi, v, b));
                    keep[wi] = Some((v, b));
                }
            }
            // repurposed workers
            for (wi, w) in self.workers.iter().enumerate() {
                if to_place.is_empty() {
                    break;
                }
                if w.assignment.is_some() && keep[wi].is_none() {
                    let (v, b) = to_place.remove(0);
                    swaps.push((wi, v, b));
                    keep[wi] = Some((v, b));
                }
            }
        }

        // Step 3: apply the assignment to every worker.
        let mut orphaned: Vec<Query> = Vec::new();
        for wi in 0..self.workers.len() {
            match keep[wi] {
                Some((variant, batch)) => {
                    let previous_task = self.workers[wi].assignment.map(|a| a.variant.task);
                    let changed = self.workers[wi].assign(variant, batch);
                    if changed {
                        // Queries queued for a different task must be re-routed.
                        if previous_task.is_some() && previous_task != Some(variant.task) {
                            orphaned.extend(self.workers[wi].drain_queue());
                        }
                        // Loading a *different* model onto a previously active worker
                        // stalls it for the swap duration. Powered-down workers are
                        // assumed to be pre-warmed by the cluster bootstrap.
                        if self.config.model_swap_ms > 0.0 && previous_task.is_some() {
                            let until = self.now + ms_to_us(self.config.model_swap_ms);
                            self.workers[wi].begin_swap(until);
                            self.push(until, EventKind::SwapDone(WorkerId(wi)));
                        }
                    }
                }
                None => {
                    if self.workers[wi].is_active() {
                        orphaned.extend(self.workers[wi].drain_queue());
                        self.workers[wi].unassign();
                    }
                }
            }
        }

        // Step 4: re-home queries that were queued on reconfigured workers.
        for q in orphaned {
            match self.fallback_worker_for_task(q.task) {
                Some(target) => {
                    let mut q = q;
                    q.enqueued_us = self.now;
                    self.workers[target.index()].enqueue(q);
                    self.kick(target);
                }
                None => self.drop_query(&q),
            }
        }
    }

    fn kick(&mut self, worker: WorkerId) {
        if let Some((finish, _)) = self.workers[worker.index()].try_start_batch(self.now, self.graph)
        {
            self.push(finish, EventKind::BatchDone(worker));
        }
    }

    fn worker_views(&self) -> Vec<WorkerView> {
        self.workers
            .iter()
            .map(|w| WorkerView {
                id: w.id,
                variant: w.assignment.map(|a| a.variant),
                max_batch: w.assignment.map(|a| a.max_batch).unwrap_or(1),
                queue_len: w.queue_len(),
                swapping: w.is_swapping(self.now),
            })
            .collect()
    }

    fn stochastic_round(&mut self, mean: f64) -> usize {
        let base = mean.floor();
        let frac = mean - base;
        let extra = if frac > 0.0 && self.rng.gen::<f64>() < frac {
            1
        } else {
            0
        };
        base as usize + extra
    }
}

enum RouteOutcome {
    To(WorkerId),
    Rerouted(WorkerId),
    Drop,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{InstanceSpec, SimConfig};
    use loki_pipeline::zoo;
    use loki_workload::{generate_arrivals, generators, ArrivalProcess};

    /// A fixed controller: a static allocation and uniform routing over all workers of
    /// each task; used to exercise the engine without any control-plane intelligence.
    struct StaticController {
        plan: AllocationPlan,
        planned: bool,
    }

    impl StaticController {
        fn new(plan: AllocationPlan) -> Self {
            Self {
                plan,
                planned: false,
            }
        }
    }

    impl Controller for StaticController {
        fn name(&self) -> &str {
            "static"
        }

        fn plan(&mut self, _observed: &ObservedState<'_>) -> Option<AllocationPlan> {
            if self.planned {
                None
            } else {
                self.planned = true;
                Some(self.plan.clone())
            }
        }

        fn routing(&mut self, observed: &ObservedState<'_>) -> Option<RoutingPlan> {
            let mut plan = RoutingPlan::default();
            for w in &observed.workers {
                if let Some(v) = w.variant {
                    if v.task == 0 {
                        plan.frontend.push((w.id, 1.0));
                    }
                    plan.downstream_default
                        .entry(v.task)
                        .or_default()
                        .push((w.id, 1.0));
                }
            }
            Some(plan)
        }
    }

    fn tiny_plan(replicas_a: usize, replicas_b: usize, batch: u32) -> AllocationPlan {
        AllocationPlan {
            instances: vec![
                InstanceSpec {
                    variant: VariantId::new(0, 1),
                    max_batch: batch,
                    count: replicas_a,
                },
                InstanceSpec {
                    variant: VariantId::new(1, 1),
                    max_batch: batch,
                    count: replicas_b,
                },
            ],
            latency_budgets_ms: HashMap::new(),
            drop_policy: DropPolicy::NoEarlyDropping,
        }
    }

    fn small_config(cluster: usize) -> SimConfig {
        SimConfig {
            cluster_size: cluster,
            network_delay_ms: 1.0,
            model_swap_ms: 0.0,
            control_interval_s: 5.0,
            routing_interval_s: 1.0,
            metrics_interval_s: 1.0,
            seed: 7,
            initial_demand_hint: Some(20.0),
            drain_s: 10.0,
        }
    }

    #[test]
    fn underloaded_cluster_serves_everything_on_time() {
        let graph = zoo::tiny_pipeline(200.0);
        let trace = generators::constant(20, 20.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 1);
        let mut sim = Simulation::new(
            &graph,
            small_config(8),
            StaticController::new(tiny_plan(2, 2, 4)),
        );
        let result = sim.run(&arrivals);
        assert_eq!(result.summary.total_arrivals, 400);
        assert_eq!(
            result.summary.total_on_time + result.summary.total_late + result.summary.total_dropped,
            400
        );
        assert!(
            result.summary.slo_violation_ratio < 0.02,
            "violations: {}",
            result.summary.slo_violation_ratio
        );
        // tiny pipeline max accuracy is 1.0 and the static plan uses the best variants
        assert!(result.summary.system_accuracy > 0.99);
    }

    #[test]
    fn overloaded_cluster_without_dropping_violates_slos() {
        let graph = zoo::tiny_pipeline(100.0);
        // one worker per task, demand far above capacity
        let trace = generators::constant(20, 400.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 2);
        let mut sim = Simulation::new(
            &graph,
            small_config(2),
            StaticController::new(tiny_plan(1, 1, 4)),
        );
        let result = sim.run(&arrivals);
        assert!(
            result.summary.slo_violation_ratio > 0.5,
            "expected heavy violations, got {}",
            result.summary.slo_violation_ratio
        );
    }

    #[test]
    fn no_allocation_means_everything_is_dropped() {
        let graph = zoo::tiny_pipeline(100.0);
        let trace = generators::constant(5, 10.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 3);
        let empty_plan = AllocationPlan::default();
        let mut sim = Simulation::new(&graph, small_config(4), StaticController::new(empty_plan));
        let result = sim.run(&arrivals);
        assert_eq!(result.summary.total_arrivals, 50);
        assert_eq!(result.summary.total_dropped, 50);
        assert_eq!(result.summary.total_on_time, 0);
        assert!((result.summary.slo_violation_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let graph = zoo::tiny_pipeline(150.0);
        let trace = generators::ramp(30, 10.0, 60.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 5);
        let run = |seed: u64| {
            let mut cfg = small_config(6);
            cfg.seed = seed;
            let mut sim =
                Simulation::new(&graph, cfg, StaticController::new(tiny_plan(3, 3, 8)));
            sim.run(&arrivals).summary
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.total_on_time, b.total_on_time);
        assert_eq!(a.total_late, b.total_late);
        assert_eq!(a.total_dropped, b.total_dropped);
        assert!((a.system_accuracy - b.system_accuracy).abs() < 1e-12);
    }

    #[test]
    fn utilization_reflects_active_workers() {
        let graph = zoo::tiny_pipeline(200.0);
        let trace = generators::constant(10, 10.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 4);
        let mut sim = Simulation::new(
            &graph,
            small_config(10),
            StaticController::new(tiny_plan(1, 1, 4)),
        );
        let result = sim.run(&arrivals);
        // only 2 of 10 workers are ever active
        assert_eq!(result.summary.max_active_workers, 2);
        assert!(result.summary.mean_utilization <= 0.2 + 1e-9);
    }

    #[test]
    fn accuracy_reflects_variant_choice() {
        let graph = zoo::tiny_pipeline(200.0);
        let trace = generators::constant(10, 10.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 6);
        // use the *least* accurate variants
        let plan = AllocationPlan {
            instances: vec![
                InstanceSpec {
                    variant: VariantId::new(0, 0),
                    max_batch: 4,
                    count: 1,
                },
                InstanceSpec {
                    variant: VariantId::new(1, 0),
                    max_batch: 4,
                    count: 1,
                },
            ],
            latency_budgets_ms: HashMap::new(),
            drop_policy: DropPolicy::NoEarlyDropping,
        };
        let mut sim = Simulation::new(&graph, small_config(4), StaticController::new(plan));
        let result = sim.run(&arrivals);
        let expected = graph.min_accuracy();
        assert!(
            (result.summary.system_accuracy - expected).abs() < 1e-9,
            "accuracy {} vs expected {}",
            result.summary.system_accuracy,
            expected
        );
    }

    #[test]
    fn fanout_creates_downstream_load_in_branching_pipeline() {
        let graph = zoo::traffic_analysis_pipeline(400.0);
        let trace = generators::constant(15, 20.0);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 9);
        // most accurate variants with plenty of replicas
        let plan = AllocationPlan {
            instances: vec![
                InstanceSpec {
                    variant: VariantId::new(0, 4),
                    max_batch: 4,
                    count: 3,
                },
                InstanceSpec {
                    variant: VariantId::new(1, 7),
                    max_batch: 4,
                    count: 4,
                },
                InstanceSpec {
                    variant: VariantId::new(2, 3),
                    max_batch: 4,
                    count: 3,
                },
            ],
            latency_budgets_ms: HashMap::new(),
            drop_policy: DropPolicy::NoEarlyDropping,
        };
        let mut sim = Simulation::new(&graph, small_config(10), StaticController::new(plan));
        let result = sim.run(&arrivals);
        assert!(result.summary.total_on_time > 0);
        // yolov5x multiplies by 2.0, so downstream work exists and completes; system
        // accuracy should be near the pipeline max (all best variants).
        assert!(
            result.summary.system_accuracy > 0.95 * graph.max_accuracy(),
            "accuracy {}",
            result.summary.system_accuracy
        );
        assert!(result.summary.slo_violation_ratio < 0.1);
    }
}
