//! The structured cluster event journal: a first-class, deterministic log of
//! every control-plane incident of a run — rebalances and the worker
//! migrations they cause, fleet lifecycle transitions (boot, drain, retire),
//! spot-market revocations and their grace outcomes, price steps, stockouts,
//! per-lane plan installs, and autoscaler decisions with their reason enums.
//!
//! Recording is *observation-only* (gated by
//! [`crate::ObserveConfig::timeline`]): every hook sits at a decision the
//! engine already makes, consumes no RNG draws, and schedules no events, so a
//! journaled run is bit-identical to an unjournaled one. Determinism across
//! `jobs` values comes from where events are recorded: cluster-level events
//! are recorded serially on the driver thread (epoch barriers process in the
//! same order for every `jobs` value), and the only lane-recorded event kind
//! — [`JournalKind::PlanInstall`] — is merged at the end of the run by the
//! total order of [`JournalEvent::sort_key`], which is independent of lane
//! parallelism.

use crate::elastic::DecisionReason;
use crate::types::SimTime;

/// Lane index marking a cluster-level event (no owning pipeline).
pub const CLUSTER_LANE: u32 = u32::MAX;

/// What one [`JournalEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalKind {
    /// An arbiter rebalance tick that moved at least one worker.
    Rebalance {
        /// Rebalance epochs so far (1-based: the first moving tick is 1).
        epoch: u64,
        /// Workers that changed lanes at this tick.
        moved: u64,
        /// The arbiter's stated rationale, when it reports one.
        reason: Option<&'static str>,
    },
    /// One worker changed hands during a rebalance. `from_lane` is
    /// [`CLUSTER_LANE`] when the worker came from the free pool.
    Migration {
        /// Fleet slot of the moved worker.
        worker: u32,
        /// Previous owning lane.
        from_lane: u32,
        /// New owning lane ([`CLUSTER_LANE`] when released to the free pool).
        to_lane: u32,
    },
    /// A lane's controller installed a new allocation plan (lane-scoped:
    /// [`JournalEvent::lane`] is the installing lane).
    PlanInstall {
        /// The lane's assignment epoch right after the install.
        epoch: u64,
    },
    /// An elastic-policy action, with the policy's stated reason.
    AutoscaleDecision {
        /// True for a provision request, false for a drain.
        provision: bool,
        /// Catalog class index the action targets.
        class: u32,
        /// Requested worker count (before engine clamping).
        count: u32,
        /// Why the policy acted.
        reason: DecisionReason,
    },
    /// Spot provision requests denied by a capacity stockout.
    Stockout {
        /// Catalog class index.
        class: u32,
        /// Workers denied out of the request.
        denied: u32,
    },
    /// A provisioned worker finished booting and turned warm (billing starts).
    Boot {
        /// Fleet slot of the worker.
        worker: u32,
        /// Catalog class index.
        class: u32,
    },
    /// A warm worker began draining (voluntary scale-down, not a revocation).
    DrainStart {
        /// Fleet slot of the worker.
        worker: u32,
        /// Catalog class index.
        class: u32,
    },
    /// A draining worker finished its in-flight work and retired
    /// (billing stops).
    Retire {
        /// Fleet slot of the worker.
        worker: u32,
        /// Catalog class index.
        class: u32,
    },
    /// The market revoked a warm spot worker (forced drain on a deadline).
    Revocation {
        /// Fleet slot of the worker.
        worker: u32,
        /// Catalog class index.
        class: u32,
        /// Owning lane at revocation time ([`CLUSTER_LANE`] if free).
        lane: u32,
    },
    /// A revocation deadline resolved: either the worker had already drained
    /// cleanly, or its in-flight batch was aborted.
    RevokeGrace {
        /// Fleet slot of the worker.
        worker: u32,
        /// True when the worker retired before the deadline (nothing lost).
        clean: bool,
        /// Queries re-queued (or lost) from the aborted batch.
        lost: u64,
    },
    /// The spot-price multiplier changed (stepwise schedule). The first
    /// market tick records the initial multiplier.
    PriceStep {
        /// The multiplier now in effect.
        multiplier: f64,
    },
    /// Periodic fleet/cost sample at elastic-decide cadence.
    CostSample {
        /// Warm workers across all classes.
        warm: u32,
        /// Cumulative billed dollars since the start of the run.
        dollars: f64,
    },
}

impl JournalKind {
    /// Stable lowercase name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            JournalKind::Rebalance { .. } => "rebalance",
            JournalKind::Migration { .. } => "migration",
            JournalKind::PlanInstall { .. } => "plan_install",
            JournalKind::AutoscaleDecision { .. } => "autoscale_decision",
            JournalKind::Stockout { .. } => "stockout",
            JournalKind::Boot { .. } => "boot",
            JournalKind::DrainStart { .. } => "drain_start",
            JournalKind::Retire { .. } => "retire",
            JournalKind::Revocation { .. } => "revocation",
            JournalKind::RevokeGrace { .. } => "revoke_grace",
            JournalKind::PriceStep { .. } => "price_step",
            JournalKind::CostSample { .. } => "cost_sample",
        }
    }
}

/// One journaled incident.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// Simulated time of the incident, µs.
    pub time_us: SimTime,
    /// Lane the event belongs to ([`CLUSTER_LANE`] for cluster-level events).
    pub lane: u32,
    /// Recording sequence within the event's journal (driver-side for cluster
    /// events, lane-local for lane events) — the deterministic tiebreaker.
    pub seq: u64,
    /// What happened.
    pub kind: JournalKind,
}

impl JournalEvent {
    /// The total order journal merges sort by: time, then cluster events
    /// before lane events, then lane index, then recording sequence. Every
    /// component is derived from simulated state, so the merged order is
    /// identical for every `jobs` value.
    pub fn sort_key(&self) -> (SimTime, u8, u32, u64) {
        let rank = if self.lane == CLUSTER_LANE { 0 } else { 1 };
        (self.time_us, rank, self.lane, self.seq)
    }

    /// Event time in seconds.
    pub fn time_s(&self) -> f64 {
        crate::types::us_to_secs(self.time_us)
    }
}

/// An append-only event journal. The engine keeps one on the driver for
/// cluster events; each lane keeps one for its plan installs; they merge at
/// the end of the run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Journal {
    /// Recorded events. In recording order until [`Journal::merge_from`] +
    /// [`Journal::finish`] impose the global sort order.
    pub events: Vec<JournalEvent>,
    seq: u64,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event at `time_us`, attributed to `lane`
    /// ([`CLUSTER_LANE`] for cluster-level incidents).
    pub fn record(&mut self, time_us: SimTime, lane: u32, kind: JournalKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(JournalEvent {
            time_us,
            lane,
            seq,
            kind,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Absorb another journal's events (e.g. a lane journal into the cluster
    /// journal). Call [`Journal::finish`] after the last merge.
    pub fn merge_from(&mut self, other: Journal) {
        self.events.extend(other.events);
    }

    /// Impose the global deterministic order (see [`JournalEvent::sort_key`]).
    pub fn finish(&mut self) {
        self.events.sort_by_key(|e| e.sort_key());
    }

    /// Count events matching a predicate.
    pub fn count_matching(&self, mut pred: impl FnMut(&JournalKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Events whose time falls in `[from_s, to_s)`.
    pub fn in_window(&self, from_s: f64, to_s: f64) -> impl Iterator<Item = &JournalEvent> {
        self.events
            .iter()
            .filter(move |e| e.time_s() >= from_s && e.time_s() < to_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_time_then_cluster_then_lane_then_seq() {
        let mut cluster = Journal::new();
        cluster.record(
            2_000_000,
            CLUSTER_LANE,
            JournalKind::PriceStep { multiplier: 1.3 },
        );
        cluster.record(
            2_000_000,
            CLUSTER_LANE,
            JournalKind::Boot {
                worker: 4,
                class: 0,
            },
        );
        let mut lane1 = Journal::new();
        lane1.record(1_000_000, 1, JournalKind::PlanInstall { epoch: 2 });
        lane1.record(2_000_000, 1, JournalKind::PlanInstall { epoch: 3 });
        let mut lane0 = Journal::new();
        lane0.record(2_000_000, 0, JournalKind::PlanInstall { epoch: 5 });

        cluster.merge_from(lane1);
        cluster.merge_from(lane0);
        cluster.finish();

        let order: Vec<(SimTime, u32, u64)> = cluster
            .events
            .iter()
            .map(|e| (e.time_us, e.lane, e.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (1_000_000, 1, 0),
                (2_000_000, CLUSTER_LANE, 0),
                (2_000_000, CLUSTER_LANE, 1),
                (2_000_000, 0, 0),
                (2_000_000, 1, 1),
            ]
        );
    }

    #[test]
    fn window_filter_and_counts() {
        let mut j = Journal::new();
        j.record(
            500_000,
            CLUSTER_LANE,
            JournalKind::PriceStep { multiplier: 0.9 },
        );
        j.record(
            1_500_000,
            CLUSTER_LANE,
            JournalKind::Revocation {
                worker: 3,
                class: 1,
                lane: 0,
            },
        );
        j.record(
            2_500_000,
            CLUSTER_LANE,
            JournalKind::Revocation {
                worker: 5,
                class: 1,
                lane: 2,
            },
        );
        assert_eq!(j.len(), 3);
        assert_eq!(
            j.count_matching(|k| matches!(k, JournalKind::Revocation { .. })),
            2
        );
        assert_eq!(j.in_window(1.0, 2.0).count(), 1);
        assert_eq!(j.events[1].kind.name(), "revocation");
    }
}
