//! # loki-sim
//!
//! A deterministic discrete-event simulator of a GPU inference-serving cluster.
//!
//! The Loki paper runs a core set of experiments on a 20-GPU testbed, validates a
//! discrete-event simulator against it (observing ≤ 2% difference, thanks to the
//! determinism of DNN inference), and then uses the simulator for every parameter
//! sweep. This crate reproduces that simulator:
//!
//! * a cluster of identical *workers* (GPUs), each hosting at most one model-variant
//!   instance with a configured maximum batch size;
//! * a *frontend* where client queries arrive (driven by a [`loki_workload::Trace`]),
//!   are routed to first-task workers, fan out into intermediate queries along the
//!   pipeline, and are finally aggregated back;
//! * per-worker FIFO queues with greedy batch formation (a worker that becomes idle
//!   immediately takes up to its maximum batch size from its queue);
//! * a per-link network-delay model ([`LinkDelayModel`]): homogeneous by default,
//!   with per-pipeline-edge and per-worker-class variants for heterogeneous
//!   interconnects (PCIe vs. network hops), scheduled by a calendar-queue event
//!   scheduler ([`calendar::CalendarQueue`]);
//! * runtime drop policies (none / last-task / per-task / opportunistic rerouting,
//!   Section 5.2 of the paper) executed by the data plane using the latency budgets and
//!   backup tables supplied by the control plane;
//! * periodic invocation of a pluggable [`Controller`] (Loki, InferLine-style,
//!   Proteus-style, or anything else) that produces allocation and routing plans;
//! * per-interval metrics (demand, SLO violations, system accuracy, active workers)
//!   matching the evaluation metrics of Section 6.1.
//!
//! The simulator is fully deterministic for a given seed, which is what makes the
//! figure-regeneration harness in `loki-bench` reproducible.

pub mod burn;
pub mod calendar;
pub mod elastic;
pub mod engine;
pub mod journal;
pub mod market;
pub mod metrics;
pub mod multi;
pub mod par;
pub mod routing;
mod shard;
pub mod slab;
pub mod trace;
pub mod types;
pub mod worker;

pub use burn::{analyze as analyze_burn, BurnCause, BurnConfig, BurnEpisode, BurnReport};
pub use calendar::{CalendarGeometry, CalendarQueue};
pub use elastic::{
    cheapest_effective, DecisionReason, ElasticAction, ElasticObservation, ElasticPolicy,
    ElasticSimConfig, StaticFleet, WorkerClass, WorkerClassCatalog,
};
pub use engine::{EngineError, SimResult, Simulation};
pub use journal::{Journal, JournalEvent, JournalKind, CLUSTER_LANE};
pub use market::MarketConfig;
pub use metrics::{ClassCost, CostSummary, IntervalMetrics, RunSummary};
pub use multi::{
    apportion, ArbiterObservation, MultiPipeline, MultiSimConfig, MultiSimResult, MultiSimulation,
    PipelineResult, ResourceArbiter, StaticPartition,
};
pub use par::par_map;
pub use routing::{AliasTable, CompiledPlan, PlanBuilder};
pub use slab::{Slab, SlotRef};
pub use trace::{
    CriticalPath, Histogram, LatencyStats, ObserveConfig, PhaseProfile, RootTrace, Span, SpanKind,
    TraceLog,
};
pub use types::{
    AllocationPlan, BackupWorker, CompiledLinkDelays, Controller, DropPolicy, HopBudgets,
    InstanceSpec, LinkDelayModel, ObservedState, Query, RouteMode, RoutingPlan, SimConfig,
    WorkerId, WorkerView,
};
