//! The adversarial cloud market: spot revocations, price dynamics, stockouts.
//!
//! The elastic fleet of [`crate::elastic`] models a friendly cloud — static
//! prices, boots as the only supply-side event. This module supplies the
//! adversity real cost-efficient serving must survive:
//!
//! * **revocations** — spot-class workers ([`crate::WorkerClass::spot`]) are
//!   reclaimed by the provider: a deterministic per-seed Bernoulli process
//!   (its RNG stream is decorrelated from every lane stream) picks warm spot
//!   workers at market ticks and force-drains them on a short deadline;
//! * **price schedules** — a stepwise multiplier over the run applied to spot
//!   billing (on-demand classes keep their list price);
//! * **stockouts** — spot provision requests that the provider denies.
//!
//! All of it is configuration ([`MarketConfig`] on
//! [`crate::ElasticSimConfig::market`]) plus pure functions of simulated time;
//! the event machinery lives in the engine, which routes every market event
//! through the serial cluster queue at epoch barriers so `jobs > 1` runs stay
//! bit-identical. A config with a zero revocation rate and zero stockout
//! probability schedules no events and draws no randomness: such a run is
//! bit-identical to one without a market.

use crate::types::{secs_to_us, SimTime};

/// Salt for the market's dedicated RNG stream. Distinct from the lane-RNG
/// salt (`0x9E37_79B9_7F4A_7C15`-multiplied lane indices), so market draws
/// never correlate with in-lane stochastic choices.
pub const MARKET_RNG_SALT: u64 = 0x6d61_726b_6574_5250;

/// Configuration of the cloud market a run is exposed to. Attached to
/// [`crate::ElasticSimConfig::market`]; `None` there means the friendly cloud
/// of PR 5 (no revocations, flat prices, infinite spot capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct MarketConfig {
    /// Expected revocations per warm spot worker per hour. At every market
    /// tick each warm spot-class worker is revoked independently with
    /// probability `rate * check_interval / 3600` (capped at 1). `0.0`
    /// disables the revocation process entirely (no events, no RNG draws).
    pub revocation_rate_per_hour: f64,
    /// Grace period between a revocation and forced retirement, in seconds.
    /// An in-flight batch that completes within the deadline retires the
    /// worker cleanly; at the deadline any remaining batch is aborted and its
    /// queries are re-queued at the head of a surviving worker's queue.
    pub revocation_deadline_s: f64,
    /// Seconds between market ticks (revocation draws).
    pub check_interval_s: f64,
    /// Stepwise spot-price multiplier: `(start_s, multiplier)` entries sorted
    /// ascending by start time. Before the first entry the multiplier is 1.0.
    /// Applies to the billing of spot classes only; policies observe the
    /// current multiplier through
    /// [`crate::ElasticObservation::spot_price_multiplier`].
    pub price_schedule: Vec<(f64, f64)>,
    /// Probability that one requested spot worker fails to provision
    /// (capacity stockout). Drawn per worker per provision request; denied
    /// workers are counted and the request silently shrinks (policies retry
    /// at their next tick). `0.0` draws no randomness.
    pub stockout_probability: f64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            revocation_rate_per_hour: 0.0,
            revocation_deadline_s: 2.0,
            check_interval_s: 5.0,
            price_schedule: Vec::new(),
            stockout_probability: 0.0,
        }
    }
}

impl MarketConfig {
    /// Validate the configuration; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !self.revocation_rate_per_hour.is_finite() || self.revocation_rate_per_hour < 0.0 {
            return Err(format!(
                "revocation_rate_per_hour must be finite and >= 0, got {}",
                self.revocation_rate_per_hour
            ));
        }
        if !self.revocation_deadline_s.is_finite() || self.revocation_deadline_s < 0.0 {
            return Err(format!(
                "revocation_deadline_s must be finite and >= 0, got {}",
                self.revocation_deadline_s
            ));
        }
        if !self.check_interval_s.is_finite() || self.check_interval_s <= 0.0 {
            return Err(format!(
                "check_interval_s must be finite and > 0, got {}",
                self.check_interval_s
            ));
        }
        if !(0.0..=1.0).contains(&self.stockout_probability) {
            return Err(format!(
                "stockout_probability must be in [0, 1], got {}",
                self.stockout_probability
            ));
        }
        let mut prev = f64::NEG_INFINITY;
        for &(start_s, multiplier) in &self.price_schedule {
            if !start_s.is_finite() || start_s < 0.0 || start_s < prev {
                return Err(format!(
                    "price_schedule starts must be finite, >= 0, and ascending; got {start_s}"
                ));
            }
            if !multiplier.is_finite() || multiplier <= 0.0 {
                return Err(format!(
                    "price_schedule multipliers must be finite and > 0, got {multiplier}"
                ));
            }
            prev = start_s;
        }
        Ok(())
    }

    /// True when the revocation process is active (market ticks are scheduled).
    pub fn revokes(&self) -> bool {
        self.revocation_rate_per_hour > 0.0
    }

    /// Per-tick revocation probability of one warm spot worker.
    pub fn revocation_probability(&self) -> f64 {
        (self.revocation_rate_per_hour * self.check_interval_s / 3600.0).min(1.0)
    }

    /// The spot-price multiplier in effect at `t_s`.
    pub fn multiplier_at(&self, t_s: f64) -> f64 {
        let mut multiplier = 1.0;
        for &(start_s, m) in &self.price_schedule {
            if start_s <= t_s {
                multiplier = m;
            } else {
                break;
            }
        }
        multiplier
    }

    /// Multiplier-weighted billable microseconds over `[from_us, to_us)`:
    /// the integral of the stepwise multiplier over the interval. With an
    /// empty schedule this is exactly `(to - from) as f64`, so flat-price
    /// billing stays bit-identical to the unweighted accounting.
    pub fn weighted_us(&self, from_us: SimTime, to_us: SimTime) -> f64 {
        if to_us <= from_us {
            return 0.0;
        }
        if self.price_schedule.is_empty() {
            return (to_us - from_us) as f64;
        }
        let mut total = 0.0;
        let mut cursor = from_us;
        let mut multiplier = self.multiplier_at(crate::types::us_to_secs(from_us));
        for &(start_s, m) in &self.price_schedule {
            let start_us = secs_to_us(start_s);
            if start_us <= cursor {
                multiplier = m;
                continue;
            }
            if start_us >= to_us {
                break;
            }
            total += (start_us - cursor) as f64 * multiplier;
            cursor = start_us;
            multiplier = m;
        }
        total += (to_us - cursor) as f64 * multiplier;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(entries: &[(f64, f64)]) -> MarketConfig {
        MarketConfig {
            price_schedule: entries.to_vec(),
            ..MarketConfig::default()
        }
    }

    #[test]
    fn default_config_is_inert_and_valid() {
        let m = MarketConfig::default();
        m.validate().expect("default validates");
        assert!(!m.revokes());
        assert_eq!(m.revocation_probability(), 0.0);
        assert_eq!(m.multiplier_at(123.0), 1.0);
        assert_eq!(m.weighted_us(1_000_000, 4_000_000), 3_000_000.0);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let bad_rate = MarketConfig {
            revocation_rate_per_hour: -1.0,
            ..MarketConfig::default()
        };
        assert!(bad_rate.validate().is_err());
        let bad_interval = MarketConfig {
            check_interval_s: 0.0,
            ..MarketConfig::default()
        };
        assert!(bad_interval.validate().is_err());
        let bad_stockout = MarketConfig {
            stockout_probability: 1.5,
            ..MarketConfig::default()
        };
        assert!(bad_stockout.validate().is_err());
        assert!(schedule(&[(10.0, 1.2), (5.0, 0.9)]).validate().is_err());
        assert!(schedule(&[(0.0, 0.0)]).validate().is_err());
        assert!(schedule(&[(0.0, 1.2), (60.0, 0.8)]).validate().is_ok());
    }

    #[test]
    fn revocation_probability_scales_with_interval_and_caps() {
        let m = MarketConfig {
            revocation_rate_per_hour: 6.0,
            check_interval_s: 60.0,
            ..MarketConfig::default()
        };
        assert!(m.revokes());
        assert!((m.revocation_probability() - 0.1).abs() < 1e-12);
        let extreme = MarketConfig {
            revocation_rate_per_hour: 1e6,
            ..MarketConfig::default()
        };
        assert_eq!(extreme.revocation_probability(), 1.0);
    }

    #[test]
    fn stepwise_multiplier_lookup() {
        let m = schedule(&[(10.0, 1.5), (20.0, 0.5)]);
        assert_eq!(m.multiplier_at(0.0), 1.0);
        assert_eq!(m.multiplier_at(10.0), 1.5);
        assert_eq!(m.multiplier_at(19.9), 1.5);
        assert_eq!(m.multiplier_at(25.0), 0.5);
    }

    #[test]
    fn weighted_integral_walks_segments() {
        let m = schedule(&[(10.0, 2.0), (20.0, 0.5)]);
        // [5 s, 25 s): 5 s at 1.0, 10 s at 2.0, 5 s at 0.5 = 27.5 weighted
        // seconds.
        let weighted = m.weighted_us(secs_to_us(5.0), secs_to_us(25.0));
        assert!((weighted - 27.5e6).abs() < 1e-3, "{weighted}");
        // Entirely inside one segment.
        let inside = m.weighted_us(secs_to_us(12.0), secs_to_us(14.0));
        assert!((inside - 4.0e6).abs() < 1e-3, "{inside}");
        // Empty and inverted intervals bill nothing (billed_from = MAX after
        // a revocation relies on this).
        assert_eq!(m.weighted_us(100, 100), 0.0);
        assert_eq!(m.weighted_us(SimTime::MAX, 100), 0.0);
    }
}
