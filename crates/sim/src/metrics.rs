//! Evaluation metrics matching Section 6.1 of the paper: system accuracy, SLO
//! violation ratio, and cluster utilization, collected per reporting interval and
//! summarized over a whole run.

use serde::{Deserialize, Serialize};

/// Metrics aggregated over one reporting interval (one second by default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct IntervalMetrics {
    /// Start of the interval in seconds.
    pub start_s: f64,
    /// Root (client) queries that arrived during the interval.
    pub arrivals: u64,
    /// Root queries that completed within their SLO during the interval.
    pub completed_on_time: u64,
    /// Root queries that completed but missed their SLO.
    pub completed_late: u64,
    /// Root queries dropped (preemptively or because their workers were reclaimed).
    /// Always `dropped_deadline + dropped_reclaimed + dropped_revoked`.
    pub dropped: u64,
    /// Of `dropped`: deadline-expired drops — drop policies firing, failed
    /// reroutes, unroutable queries, and roots still in flight at run end.
    pub dropped_deadline: u64,
    /// Of `dropped`: queries lost because their worker was reclaimed by a
    /// rebalance/repartition (orphan re-home failed).
    pub dropped_reclaimed: u64,
    /// Of `dropped`: queries lost to spot-market revocations (forced drains
    /// and revocation-deadline batch kills whose re-queue failed).
    pub dropped_revoked: u64,
    /// Sum of the end-to-end accuracy experienced by queries served in this interval
    /// (averaged over the paths each query actually took).
    pub accuracy_sum: f64,
    /// Number of served queries contributing to `accuracy_sum`.
    pub accuracy_count: u64,
    /// Number of workers holding an active model assignment at the end of the interval.
    pub active_workers: usize,
    /// Total workers in the cluster.
    pub cluster_size: usize,
    /// Queries rerouted by opportunistic rerouting during the interval.
    pub rerouted: u64,
}

impl IntervalMetrics {
    /// Queries finished during this interval (on time, late, or dropped).
    pub fn finished(&self) -> u64 {
        self.completed_on_time + self.completed_late + self.dropped
    }

    /// Fraction of finished queries that violated their SLO (finished late or were
    /// dropped). Returns 0 when nothing finished.
    pub fn slo_violation_ratio(&self) -> f64 {
        let finished = self.finished();
        if finished == 0 {
            0.0
        } else {
            (self.completed_late + self.dropped) as f64 / finished as f64
        }
    }

    /// Average accuracy of queries served during the interval (0 when none).
    pub fn mean_accuracy(&self) -> f64 {
        if self.accuracy_count == 0 {
            0.0
        } else {
            self.accuracy_sum / self.accuracy_count as f64
        }
    }

    /// Fraction of the cluster's workers that hold an active assignment.
    pub fn cluster_utilization(&self) -> f64 {
        if self.cluster_size == 0 {
            0.0
        } else {
            self.active_workers as f64 / self.cluster_size as f64
        }
    }

    /// Goodput: queries completed within SLO during the interval.
    pub fn goodput(&self) -> u64 {
        self.completed_on_time
    }
}

/// Whole-run summary derived from the interval metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunSummary {
    /// Controller that produced the run.
    pub controller: String,
    /// Total root queries that arrived.
    pub total_arrivals: u64,
    /// Total completed within SLO.
    pub total_on_time: u64,
    /// Total completed late.
    pub total_late: u64,
    /// Total dropped.
    pub total_dropped: u64,
    /// Of `total_dropped`: deadline-expired drops.
    pub total_dropped_deadline: u64,
    /// Of `total_dropped`: drops caused by rebalance worker reclaims.
    pub total_dropped_reclaimed: u64,
    /// Of `total_dropped`: drops caused by spot-market revocations.
    pub total_dropped_revoked: u64,
    /// System accuracy: average accuracy over all *served* queries.
    pub system_accuracy: f64,
    /// Overall SLO violation ratio: (late + dropped) / finished.
    pub slo_violation_ratio: f64,
    /// Mean cluster utilization across intervals.
    pub mean_utilization: f64,
    /// Minimum number of active workers observed over the run.
    pub min_active_workers: usize,
    /// Maximum number of active workers observed over the run.
    pub max_active_workers: usize,
    /// Peak goodput observed in any interval (queries per interval).
    pub peak_goodput: u64,
    /// Total rerouted queries.
    pub total_rerouted: u64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Total discrete events the engine processed (set by the engine, not
    /// derived from intervals); the denominator for simulator-throughput
    /// benchmarks.
    pub events_processed: u64,
    /// Median end-to-end latency of served roots, milliseconds (0 when the
    /// latency histograms were disabled or nothing was served). Set by the
    /// engine from the run's [`crate::trace::LatencyStats`], not derived from
    /// intervals.
    pub p50_ms: f64,
    /// 90th-percentile end-to-end latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile end-to-end latency, milliseconds.
    pub p999_ms: f64,
}

impl RunSummary {
    /// Build a summary from the per-interval series. `interval_s` is the
    /// configured metrics-interval length ([`crate::SimConfig`]'s
    /// `metrics_interval_s`): the run duration is the last interval's start
    /// plus one interval, so it must match the cadence the series was
    /// collected at.
    pub fn from_intervals(
        controller: &str,
        intervals: &[IntervalMetrics],
        interval_s: f64,
    ) -> Self {
        let mut s = RunSummary {
            controller: controller.to_string(),
            min_active_workers: usize::MAX,
            ..Default::default()
        };
        let mut accuracy_sum = 0.0;
        let mut accuracy_count = 0u64;
        let mut util_sum = 0.0;
        for m in intervals {
            s.total_arrivals += m.arrivals;
            s.total_on_time += m.completed_on_time;
            s.total_late += m.completed_late;
            s.total_dropped += m.dropped;
            s.total_dropped_deadline += m.dropped_deadline;
            s.total_dropped_reclaimed += m.dropped_reclaimed;
            s.total_dropped_revoked += m.dropped_revoked;
            s.total_rerouted += m.rerouted;
            accuracy_sum += m.accuracy_sum;
            accuracy_count += m.accuracy_count;
            util_sum += m.cluster_utilization();
            s.min_active_workers = s.min_active_workers.min(m.active_workers);
            s.max_active_workers = s.max_active_workers.max(m.active_workers);
            s.peak_goodput = s.peak_goodput.max(m.goodput());
        }
        if intervals.is_empty() {
            s.min_active_workers = 0;
        }
        let finished = s.total_on_time + s.total_late + s.total_dropped;
        s.slo_violation_ratio = if finished == 0 {
            0.0
        } else {
            (s.total_late + s.total_dropped) as f64 / finished as f64
        };
        s.system_accuracy = if accuracy_count == 0 {
            0.0
        } else {
            accuracy_sum / accuracy_count as f64
        };
        s.mean_utilization = if intervals.is_empty() {
            0.0
        } else {
            util_sum / intervals.len() as f64
        };
        s.duration_s = intervals
            .last()
            .map(|m| m.start_s + interval_s)
            .unwrap_or(0.0);
        s
    }
}

/// Cost accounting of one GPU class over a run (elastic fleets only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClassCost {
    /// Class name from the run's [`crate::elastic::WorkerClassCatalog`].
    pub class: String,
    /// Billed warm GPU-seconds (boot completion → retirement or run end).
    pub gpu_seconds: f64,
    /// Dollar cost: `gpu_seconds / 3600 * price_per_hour`.
    pub dollars: f64,
    /// Peak concurrent warm workers of this class.
    pub peak_warm: usize,
    /// Workers provisioned over the run (initial fleet excluded).
    pub provisioned: u64,
    /// Workers drained and retired over the run.
    pub retired: u64,
    /// True for spot (preemptible) classes.
    pub spot: bool,
    /// Workers of this class revoked by the market over the run. Revoked
    /// workers are also counted in `retired` once their forced drain lands.
    pub revocations: u64,
    /// Provision requests for this class denied by capacity stockouts.
    pub stockouts: u64,
}

/// Whole-run cost summary of an elastic fleet. Cluster-level: one per engine
/// run, shared by every pipeline lane served on the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CostSummary {
    /// Per-class breakdown, in catalog order.
    pub per_class: Vec<ClassCost>,
    /// Total billed GPU-seconds across classes.
    pub total_gpu_seconds: f64,
    /// Total dollar cost across classes.
    pub total_dollars: f64,
    /// Root queries served (completed on time or late) across all pipelines —
    /// the denominator of `cost_per_1k_queries`.
    pub served_queries: u64,
    /// Dollars per thousand served queries (0 when nothing was served).
    pub cost_per_1k_queries: f64,
    /// Peak concurrent warm workers across the whole fleet.
    pub peak_fleet: usize,
    /// Total spot revocations delivered by the market over the run.
    pub revocations: u64,
    /// Total spot provision requests denied by capacity stockouts.
    pub stockouts: u64,
    /// Dollars billed to spot classes (price schedule applied).
    pub spot_dollars: f64,
    /// Dollars billed to on-demand classes.
    pub ondemand_dollars: f64,
}

impl CostSummary {
    /// Total billed GPU-hours.
    pub fn gpu_hours(&self) -> f64 {
        self.total_gpu_seconds / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(on_time: u64, late: u64, dropped: u64, acc: f64, active: usize) -> IntervalMetrics {
        IntervalMetrics {
            start_s: 0.0,
            arrivals: on_time + late + dropped,
            completed_on_time: on_time,
            completed_late: late,
            dropped,
            dropped_deadline: dropped,
            dropped_reclaimed: 0,
            dropped_revoked: 0,
            accuracy_sum: acc * (on_time + late) as f64,
            accuracy_count: on_time + late,
            active_workers: active,
            cluster_size: 20,
            rerouted: 0,
        }
    }

    #[test]
    fn interval_ratios() {
        let m = interval(80, 10, 10, 0.95, 10);
        assert!((m.slo_violation_ratio() - 0.2).abs() < 1e-12);
        assert!((m.mean_accuracy() - 0.95).abs() < 1e-12);
        assert!((m.cluster_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(m.goodput(), 80);
        assert_eq!(m.finished(), 100);
    }

    #[test]
    fn empty_interval_is_safe() {
        let m = IntervalMetrics::default();
        assert_eq!(m.slo_violation_ratio(), 0.0);
        assert_eq!(m.mean_accuracy(), 0.0);
        assert_eq!(m.cluster_utilization(), 0.0);
    }

    #[test]
    fn summary_aggregates_intervals() {
        let intervals = vec![interval(90, 5, 5, 1.0, 5), interval(50, 25, 25, 0.9, 20)];
        let s = RunSummary::from_intervals("test", &intervals, 1.0);
        assert_eq!(s.total_arrivals, 200);
        assert_eq!(s.total_on_time, 140);
        assert_eq!(s.total_late, 30);
        assert_eq!(s.total_dropped, 30);
        assert_eq!(s.total_dropped_deadline, 30);
        assert_eq!(s.total_dropped_reclaimed, 0);
        assert!((s.slo_violation_ratio - 0.3).abs() < 1e-12);
        // accuracy: (95*1.0 + 75*0.9) / 170
        let expected_acc = (95.0 + 67.5) / 170.0;
        assert!((s.system_accuracy - expected_acc).abs() < 1e-12);
        assert_eq!(s.min_active_workers, 5);
        assert_eq!(s.max_active_workers, 20);
        assert_eq!(s.peak_goodput, 90);
        // utilization: mean of 0.25 and 1.0
        assert!((s.mean_utilization - 0.625).abs() < 1e-12);
    }

    #[test]
    fn summary_duration_respects_the_configured_interval() {
        // Two 60-second intervals starting at 0 and 60 cover 120 simulated
        // seconds — the old hardcoded `start_s + 1.0` reported 61.
        let mut first = interval(90, 5, 5, 1.0, 5);
        first.start_s = 0.0;
        let mut second = interval(50, 25, 25, 0.9, 20);
        second.start_s = 60.0;
        let s = RunSummary::from_intervals("test", &[first, second], 60.0);
        assert!((s.duration_s - 120.0).abs() < 1e-12, "{}", s.duration_s);
        // The 1-second cadence keeps its historical durations.
        let one = RunSummary::from_intervals("test", &[interval(1, 0, 0, 1.0, 1)], 1.0);
        assert!((one.duration_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_run() {
        let s = RunSummary::from_intervals("empty", &[], 1.0);
        assert_eq!(s.total_arrivals, 0);
        assert_eq!(s.system_accuracy, 0.0);
        assert_eq!(s.min_active_workers, 0);
        assert_eq!(s.duration_s, 0.0);
    }
}
