//! Multi-pipeline serving on one shared cluster.
//!
//! The paper's evaluation serves one pipeline per cluster and names contended
//! multi-pipeline serving as future work (Section 7). This module supplies the
//! missing cluster level: a [`MultiSimulation`] drives several pipelines — each
//! with its own frontend (arrival stream), controller, routing tables, metrics,
//! and latency budgets — through one engine run over one shared worker fleet
//! and one event scheduler, and a [`ResourceArbiter`] decides how the fleet is
//! *partitioned* across the pipelines. Each pipeline's controller only ever
//! sees its partition (a capacity-scoped [`crate::ObservedState`] whose
//! `cluster_size` is the partition size), so the per-pipeline Loki planner
//! runs unchanged underneath the arbiter.
//!
//! The arbiter policy lives above this crate (the demand/SLO-weighted
//! `ResourceManager` in `loki-core` implements [`ResourceArbiter`]);
//! [`StaticPartition`] provides the fixed-share baselines (even split, oracle
//! split) the contended manager is evaluated against.

use crate::elastic::ElasticPolicy;
use crate::engine::{Engine, EngineError, LaneInput, SimResult};
use crate::metrics::{CostSummary, IntervalMetrics, RunSummary};
use crate::types::{Controller, SimConfig};
use loki_pipeline::PipelineGraph;

/// What a [`ResourceArbiter`] observes at each rebalance tick. All slices are
/// indexed by pipeline, in registration order.
#[derive(Debug, Clone)]
pub struct ArbiterObservation<'a> {
    /// Current simulated time in seconds.
    pub now_s: f64,
    /// Total workers in the shared cluster.
    pub cluster_size: usize,
    /// Current partition: workers owned per pipeline (may sum to less than
    /// `cluster_size` when workers sit in the free pool).
    pub partition: &'a [usize],
    /// Per-pipeline demand estimates (QPS) — the same provisioning estimates
    /// the pipelines' own controllers compute, or the initial demand hints at
    /// time zero.
    pub demand_qps: &'a [f64],
    /// Per-pipeline end-to-end latency SLOs (ms).
    pub slo_ms: &'a [f64],
    /// Per-pipeline task counts — the minimum viable footprint of a pipeline
    /// (one worker per task), below which a grant serves nothing.
    pub num_tasks: &'a [usize],
    /// Per-pipeline total queued queries across the partition (a pressure
    /// signal demand estimates lag behind).
    pub queued: &'a [usize],
}

/// A cluster-level resource arbiter: owns the worker fleet and decides how
/// many workers each registered pipeline holds. The engine invokes it once
/// before the first event (with demand hints) and then at every rebalance
/// tick; worker moves it requests become scheduled events (queue drain,
/// model-unload cooldown) rather than instantaneous teleports.
pub trait ResourceArbiter {
    /// Name used in reports.
    fn name(&self) -> &str;

    /// Seconds between rebalance ticks (the arbiter's epoch length).
    fn rebalance_interval_s(&self) -> f64 {
        10.0
    }

    /// Desired worker counts per pipeline, or `None` to keep the current
    /// partition. Entries must match the pipeline count; the engine trims
    /// over-subscribed targets to the physical cluster.
    fn partition(&mut self, observation: &ArbiterObservation<'_>) -> Option<Vec<usize>>;

    /// A short label for *why* the last [`ResourceArbiter::partition`] call
    /// returned the target it did, journaled with the rebalance event when
    /// `observe.timeline` is on. Purely observational — defaulted to `None`
    /// so existing arbiters need no change.
    fn decision_reason(&self) -> Option<&'static str> {
        None
    }
}

/// Largest-remainder apportionment of `total` workers over non-negative
/// `weights`. Zero-weight entries get zero workers; an all-zero weight vector
/// falls back to an even split. Deterministic: remainder ties go to the lower
/// index.
pub fn apportion(weights: &[f64], total: usize) -> Vec<usize> {
    if weights.is_empty() {
        return Vec::new();
    }
    let sum: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if sum <= 0.0 {
        let even = vec![1.0; weights.len()];
        return apportion(&even, total);
    }
    let mut counts = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let quota = total as f64 * w / sum;
        let floor = quota as usize;
        counts.push(floor);
        assigned += floor;
        // Zero-weight pipelines never receive remainder workers.
        remainders.push((i, if w > 0.0 { quota - floor as f64 } else { -1.0 }));
    }
    // Hand the leftover workers to the largest fractional remainders.
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut leftover = total.saturating_sub(assigned);
    for (i, remainder) in remainders {
        if leftover == 0 {
            break;
        }
        if remainder < 0.0 {
            continue;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    counts
}

/// A fixed-share arbiter: partitions the cluster proportionally to static
/// shares once and never moves a worker again. `even` is the naive 50/50
/// baseline; `with_shares` with the true offered loads is the oracle split.
#[derive(Debug, Clone)]
pub struct StaticPartition {
    label: String,
    shares: Vec<f64>,
}

impl StaticPartition {
    /// An even split across `pipelines`.
    pub fn even(pipelines: usize) -> Self {
        Self {
            label: "static-even".to_string(),
            shares: vec![1.0; pipelines],
        }
    }

    /// A split proportional to `shares` (e.g. the known offered load per
    /// pipeline — the oracle the contended manager is compared against).
    pub fn with_shares(label: impl Into<String>, shares: Vec<f64>) -> Self {
        Self {
            label: label.into(),
            shares,
        }
    }
}

impl ResourceArbiter for StaticPartition {
    fn name(&self) -> &str {
        &self.label
    }

    fn partition(&mut self, observation: &ArbiterObservation<'_>) -> Option<Vec<usize>> {
        let target = apportion(&self.shares, observation.cluster_size);
        // Static: after the initial grant the target always matches the
        // current partition, and the engine treats a no-op target as "keep".
        (target != observation.partition).then_some(target)
    }
}

/// One pipeline registered with a [`MultiSimulation`]: its graph, controller,
/// arrival trace, and initial demand hint (the multi-pipeline analogue of
/// [`SimConfig::initial_demand_hint`]).
///
/// Generic over the controller type so callers that need the controller back
/// after the run (e.g. to read its runtime statistics through
/// [`MultiSimulation::into_pipelines`]) can register a concrete type; the
/// default `Box<dyn Controller>` keeps heterogeneous registrations working.
pub struct MultiPipeline<'a, C: Controller + 'a = Box<dyn Controller + 'a>> {
    /// Label used in per-pipeline results and reports.
    pub name: String,
    /// The pipeline to serve.
    pub graph: &'a PipelineGraph,
    /// The pipeline's serving controller (it only ever sees the pipeline's
    /// partition of the cluster).
    pub controller: C,
    /// Root-query arrival times in seconds, ascending.
    pub arrivals_s: Vec<f64>,
    /// Demand hint handed to the controller at its first control tick and to
    /// the arbiter for the initial partition.
    pub initial_demand_hint: Option<f64>,
}

/// One pipeline's outcome within a multi-pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The pipeline's registration label.
    pub name: String,
    /// The pipeline's per-interval metrics and whole-run summary. Interval
    /// `cluster_size` is the pipeline's partition size at the interval end, so
    /// utilization is measured against granted capacity.
    pub result: SimResult,
    /// Wall-clock seconds this pipeline's execution shard spent processing
    /// events (host time, not simulated time — excluded from determinism
    /// comparisons).
    pub lane_wall_s: f64,
    /// Estimated wall-clock seconds this shard spent waiting on slower shards
    /// at epoch barriers (zero when the shard was the epoch's slowest; a load
    /// imbalance signal for the sharded parallel engine).
    pub barrier_wait_s: f64,
}

/// The outcome of a multi-pipeline run.
#[derive(Debug, Clone)]
pub struct MultiSimResult {
    /// Per-pipeline results, in registration order.
    pub pipelines: Vec<PipelineResult>,
    /// The arbiter that partitioned the cluster.
    pub arbiter: String,
    /// Total events processed, including cluster-level rebalance ticks (the
    /// per-pipeline summaries count only their own events).
    pub total_events: u64,
    /// Rebalance ticks that moved at least one worker.
    pub rebalances: u64,
    /// Workers moved across pipelines over the whole run.
    pub migrations: u64,
    /// Cluster-level fleet cost (elastic runs only; the fleet is shared, so
    /// cost lives here and on the [`MultiSimResult::aggregate`] result, not
    /// on the per-pipeline ones).
    pub cost: Option<CostSummary>,
    /// Cluster-driver self-profile (rebalance/elastic/market/swap phases) —
    /// `Some` only when `observe.profile` was on. Per-lane dispatch phases
    /// live on the individual [`PipelineResult`]s; [`MultiSimResult::aggregate`]
    /// merges both into one profile.
    pub profile: Option<crate::trace::PhaseProfile>,
    /// The merged cluster event journal — `Some` only when `observe.timeline`
    /// was on. Cluster-level (one journal for the shared fleet);
    /// [`MultiSimResult::aggregate`] clones it onto the aggregate result.
    pub journal: Option<crate::journal::Journal>,
    /// The run's metrics-interval length in seconds, carried so aggregation
    /// can reconstruct durations from interval counts.
    pub metrics_interval_s: f64,
}

impl MultiSimResult {
    /// Cluster-level aggregate of the per-pipeline results: totals summed,
    /// accuracy weighted by served queries, intervals summed element-wise.
    /// Each aggregate interval's `cluster_size` is the sum of the lanes'
    /// granted warm capacity at that interval — for a fixed fleet that equals
    /// the physical cluster, and for an elastic fleet it tracks the billed
    /// fleet over time, so utilization stays measured against what was
    /// actually rented. `cluster_size` is only the fallback for intervals no
    /// lane reported. The aggregate's `events_processed` includes
    /// cluster-level events.
    pub fn aggregate(&self, cluster_size: usize) -> SimResult {
        let rows = self
            .pipelines
            .iter()
            .map(|p| p.result.intervals.len())
            .max()
            .unwrap_or(0);
        let mut intervals: Vec<IntervalMetrics> = Vec::with_capacity(rows);
        for row in 0..rows {
            let mut agg = IntervalMetrics::default();
            let mut granted = 0usize;
            for p in &self.pipelines {
                let Some(m) = p.result.intervals.get(row) else {
                    continue;
                };
                agg.start_s = m.start_s;
                agg.arrivals += m.arrivals;
                agg.completed_on_time += m.completed_on_time;
                agg.completed_late += m.completed_late;
                agg.dropped += m.dropped;
                agg.dropped_deadline += m.dropped_deadline;
                agg.dropped_reclaimed += m.dropped_reclaimed;
                agg.dropped_revoked += m.dropped_revoked;
                agg.accuracy_sum += m.accuracy_sum;
                agg.accuracy_count += m.accuracy_count;
                agg.rerouted += m.rerouted;
                agg.active_workers += m.active_workers;
                granted += m.cluster_size;
            }
            agg.cluster_size = if granted > 0 { granted } else { cluster_size };
            intervals.push(agg);
        }
        let name = format!("multi({})", self.arbiter);
        let mut summary = RunSummary::from_intervals(&name, &intervals, self.metrics_interval_s);
        summary.events_processed = self.total_events;
        // Latency histograms merge exactly (fixed bucket layout), so the
        // aggregate percentiles are the true cluster-level percentiles, not an
        // average of per-pipeline ones.
        let mut latency: Option<crate::trace::LatencyStats> = None;
        for p in &self.pipelines {
            if let Some(l) = &p.result.latency {
                match &mut latency {
                    Some(agg) => agg.merge(l),
                    None => latency = Some(l.clone()),
                }
            }
        }
        if let Some(l) = &latency {
            [
                summary.p50_ms,
                summary.p90_ms,
                summary.p99_ms,
                summary.p999_ms,
            ] = l.e2e.percentiles_ms();
        }
        // Sampled traces concatenate in registration order (each root records
        // its lane, so provenance survives the merge).
        let mut roots = Vec::new();
        for p in &self.pipelines {
            if let Some(t) = &p.result.trace {
                roots.extend(t.roots.iter().cloned());
            }
        }
        let trace = (!roots.is_empty()).then_some(crate::trace::TraceLog { roots });
        // Lane dispatch phases plus the cluster driver's phases, merged.
        let mut profile = self.profile;
        for p in &self.pipelines {
            if let Some(lane) = &p.result.profile {
                profile.get_or_insert_with(Default::default).merge(lane);
            }
        }
        // Windowed histograms merge element-wise across lanes (same fixed
        // bucket layout), row-aligned with the aggregate intervals.
        let mut window: Option<Vec<crate::trace::Histogram>> = None;
        for p in &self.pipelines {
            if let Some(rows) = &p.result.window {
                let agg = window.get_or_insert_with(Vec::new);
                if agg.len() < rows.len() {
                    agg.resize_with(rows.len(), crate::trace::Histogram::default);
                }
                for (into, row) in agg.iter_mut().zip(rows) {
                    into.merge(row);
                }
            }
        }
        SimResult {
            intervals,
            summary,
            cost: self.cost.clone(),
            latency,
            trace,
            profile,
            window,
            journal: self.journal.clone(),
        }
    }
}

/// Configuration of a multi-pipeline run: the shared-cluster [`SimConfig`]
/// plus the execution-parallelism knob. `From<SimConfig>` gives the serial
/// default (`jobs = 1`), so existing `MultiSimulation::new(sim_config)` call
/// sites keep working unchanged.
#[derive(Debug, Clone)]
pub struct MultiSimConfig {
    /// The shared-cluster simulation configuration.
    pub sim: SimConfig,
    /// Worker threads for lane execution between rebalance epochs. `1` runs
    /// every lane inline on the calling thread; `> 1` runs lanes on a bounded
    /// scoped pool ([`crate::par::par_map`]). The simulated results are
    /// bit-identical for every value (pinned by the parallel-identity tests);
    /// only wall-clock time changes.
    pub jobs: usize,
}

impl From<SimConfig> for MultiSimConfig {
    fn from(sim: SimConfig) -> Self {
        Self { sim, jobs: 1 }
    }
}

/// A simulation of several pipelines sharing one cluster under a
/// [`ResourceArbiter`]. The engine's scheduling core is the same one the
/// single-pipeline [`crate::Simulation`] uses; a two-pipeline run where one
/// pipeline has zero demand (and thus a zero-worker partition) is bit-identical
/// to the single-pipeline run of the other.
pub struct MultiSimulation<'a, C: Controller + 'a = Box<dyn Controller + 'a>> {
    config: MultiSimConfig,
    pipelines: Vec<MultiPipeline<'a, C>>,
}

impl<'a, C: Controller + 'a> MultiSimulation<'a, C> {
    /// Create an empty multi-pipeline simulation from a [`MultiSimConfig`] (or
    /// a bare [`SimConfig`], which runs serial). `initial_demand_hint` is
    /// ignored — each registered pipeline carries its own hint.
    pub fn new(config: impl Into<MultiSimConfig>) -> Self {
        Self {
            config: config.into(),
            pipelines: Vec::new(),
        }
    }

    /// Register a pipeline. Registration order is the index order every
    /// arbiter observation and result vector uses.
    pub fn add_pipeline(&mut self, pipeline: MultiPipeline<'a, C>) -> &mut Self {
        pipeline
            .graph
            .validate()
            .expect("pipeline graph must be valid");
        self.pipelines.push(pipeline);
        self
    }

    /// Number of registered pipelines.
    pub fn num_pipelines(&self) -> usize {
        self.pipelines.len()
    }

    /// Run to completion under `arbiter`. Panics (with the rendered
    /// [`EngineError`]) on an engine invariant violation; use
    /// [`MultiSimulation::try_run`] to handle that as a value.
    pub fn run(&mut self, arbiter: &mut dyn ResourceArbiter) -> MultiSimResult {
        self.try_run(arbiter)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Like [`MultiSimulation::run`], but surfaces engine invariant violations
    /// as a structured [`EngineError`].
    pub fn try_run(
        &mut self,
        arbiter: &mut dyn ResourceArbiter,
    ) -> Result<MultiSimResult, EngineError> {
        self.try_run_inner(arbiter, None)
    }

    /// Run with an [`ElasticPolicy`] scaling the shared fleet under the
    /// arbiter (requires [`SimConfig::elastic`]): boots land in the free pool
    /// and the next rebalance apportions them, so the partition size changes
    /// between arbiter epochs. Panics on an engine invariant violation.
    pub fn run_elastic(
        &mut self,
        arbiter: &mut dyn ResourceArbiter,
        policy: &mut dyn ElasticPolicy,
    ) -> MultiSimResult {
        self.try_run_elastic(arbiter, policy)
            .unwrap_or_else(|error| panic!("{error}"))
    }

    /// Like [`MultiSimulation::run_elastic`], but surfaces engine invariant
    /// violations as a structured [`EngineError`].
    pub fn try_run_elastic(
        &mut self,
        arbiter: &mut dyn ResourceArbiter,
        policy: &mut dyn ElasticPolicy,
    ) -> Result<MultiSimResult, EngineError> {
        assert!(
            self.config.sim.elastic.is_some(),
            "an elastic policy needs SimConfig::elastic"
        );
        self.try_run_inner(arbiter, Some(policy))
    }

    fn try_run_inner(
        &mut self,
        arbiter: &mut dyn ResourceArbiter,
        policy: Option<&mut dyn ElasticPolicy>,
    ) -> Result<MultiSimResult, EngineError> {
        assert!(
            !self.pipelines.is_empty(),
            "register at least one pipeline before running"
        );
        let mut inputs: Vec<LaneInput<'_>> = Vec::with_capacity(self.pipelines.len());
        let mut controllers: Vec<&mut dyn Controller> = Vec::with_capacity(self.pipelines.len());
        let mut names: Vec<String> = Vec::with_capacity(self.pipelines.len());
        for pipeline in &mut self.pipelines {
            inputs.push(LaneInput {
                graph: pipeline.graph,
                arrivals_s: &pipeline.arrivals_s,
                initial_demand_hint: pipeline.initial_demand_hint,
            });
            controllers.push(&mut pipeline.controller);
            names.push(pipeline.name.clone());
        }
        let mut engine = Engine::new(&self.config.sim, inputs);
        let results = engine.run(&mut controllers, Some(arbiter), policy, self.config.jobs)?;
        let timings = engine.lane_timings();
        Ok(MultiSimResult {
            pipelines: names
                .into_iter()
                .zip(results)
                .zip(timings)
                .map(
                    |((name, result), (lane_wall_s, barrier_wait_s))| PipelineResult {
                        name,
                        result,
                        lane_wall_s,
                        barrier_wait_s,
                    },
                )
                .collect(),
            arbiter: arbiter.name().to_string(),
            total_events: engine.global_events(),
            rebalances: engine.rebalances(),
            migrations: engine.migrations(),
            cost: engine.take_cost(),
            profile: engine.take_cluster_profile(),
            journal: engine.take_journal(),
            metrics_interval_s: self.config.sim.metrics_interval_s,
        })
    }

    /// Consume the simulation and return the registered pipelines (useful to
    /// inspect controller internals — e.g. per-lane `ControllerStats` — after
    /// a run).
    pub fn into_pipelines(self) -> Vec<MultiPipeline<'a, C>> {
        self.pipelines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_is_proportional_and_exact() {
        assert_eq!(apportion(&[1.0, 1.0], 20), vec![10, 10]);
        assert_eq!(apportion(&[3.0, 1.0], 20), vec![15, 5]);
        assert_eq!(apportion(&[1100.0, 183.0], 20), vec![17, 3]);
        // Zero weight gets zero workers; the rest absorbs everything.
        assert_eq!(apportion(&[300.0, 0.0], 20), vec![20, 0]);
        // All-zero weights fall back to an even split.
        assert_eq!(apportion(&[0.0, 0.0, 0.0], 9), vec![3, 3, 3]);
        // Remainders distribute by largest fraction, ties to the lower index.
        assert_eq!(apportion(&[1.0, 1.0, 1.0], 10), vec![4, 3, 3]);
        let counts = apportion(&[0.7, 0.2, 0.1], 7);
        assert_eq!(counts.iter().sum::<usize>(), 7);
        // NaN/negative weights are treated as zero, not propagated.
        assert_eq!(apportion(&[f64::NAN, 2.0], 4), vec![0, 4]);
        assert_eq!(apportion(&[-3.0, 2.0], 4), vec![0, 4]);
        assert_eq!(apportion(&[], 4), Vec::<usize>::new());
    }

    #[test]
    fn static_partition_grants_once_then_keeps() {
        let mut arbiter = StaticPartition::even(2);
        assert_eq!(arbiter.name(), "static-even");
        let observation = ArbiterObservation {
            now_s: 0.0,
            cluster_size: 10,
            partition: &[0, 0],
            demand_qps: &[100.0, 100.0],
            slo_ms: &[250.0, 250.0],
            num_tasks: &[2, 2],
            queued: &[0, 0],
        };
        assert_eq!(arbiter.partition(&observation), Some(vec![5, 5]));
        let settled = ArbiterObservation {
            partition: &[5, 5],
            ..observation
        };
        assert_eq!(arbiter.partition(&settled), None);

        let mut oracle = StaticPartition::with_shares("oracle", vec![3.0, 1.0]);
        assert_eq!(oracle.partition(&settled), Some(vec![8, 2]));
    }
}
