//! A bounded scoped-thread map for independent work items.
//!
//! crates.io (and thus rayon) is unavailable in the build container, so this is a
//! hand-rolled bounded pool on `std::thread::scope`: a shared work queue drained by
//! `jobs` scoped workers, with results written back by index so the output order is
//! the input order regardless of scheduling. It runs both the bench harness's
//! independent simulation points (`loki_bench::runner`) and the engine's per-lane
//! shards between rebalance epochs (`crate::engine`), which carry the same proof
//! obligation: parallel output bit-identical to the serial path.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Map `f` over `items` using up to `jobs` scoped worker threads, preserving input
/// order in the output. `jobs <= 1` runs inline on the calling thread (the exact
/// serial path, with no pool involved).
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                // Pop under the lock, compute outside it.
                let next = queue.lock().expect("queue lock").pop_front();
                let Some((index, item)) = next else { break };
                let out = f(item);
                results.lock().expect("results lock")[index] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("every queued item completes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order_and_runs_everything() {
        let items: Vec<usize> = (0..37).collect();
        let calls = AtomicUsize::new(0);
        let out = par_map(items.clone(), 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i * 3
        });
        assert_eq!(calls.load(Ordering::Relaxed), 37);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_maps_agree() {
        let items: Vec<u64> = (0..16).collect();
        let serial = par_map(items.clone(), 1, |i| i.wrapping_mul(0x9e3779b9) >> 7);
        let parallel = par_map(items, 5, |i| i.wrapping_mul(0x9e3779b9) >> 7);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn oversized_pools_do_not_deadlock_or_drop_work() {
        let out = par_map(vec![1, 2], 16, |i| i + 1);
        assert_eq!(out, vec![2, 3]);
        let empty: Vec<i32> = par_map(Vec::<i32>::new(), 4, |i| i);
        assert!(empty.is_empty());
    }
}
