//! The shared compiled-plan representation: dense task-indexed Vose alias
//! tables emitted by controllers and consumed natively by the engine.
//!
//! # The compile-once contract
//!
//! Historically controllers handed the engine a
//! [`RoutingPlan`](crate::types::RoutingPlan) — human-readable weighted tables
//! keyed by `HashMap` — and the engine re-lowered it into alias tables on every
//! routing refresh. That interpreted seam is gone: controllers now emit a
//! [`CompiledPlan`] directly through [`PlanBuilder`], and the engine installs
//! it as-is. The low-frequency planner produces *exactly* the artifact the
//! high-frequency data path samples from:
//!
//! * a frontend [`AliasTable`] over root-task workers;
//! * a dense `(upstream worker × child task) → table` index into a pool of
//!   alias tables, with the "no upstream-specific entry → per-task default"
//!   rule folded in at build time so a routed query costs one load and one
//!   uniform draw;
//! * per-task backup lists sorted by accuracy descending (stable, so
//!   equal-accuracy workers keep the emission order) for opportunistic
//!   rerouting.
//!
//! Plans are emitted from a worker-view snapshot taken in the same control
//! event that installs them, so entries need no per-draw validity checks while
//! that snapshot holds.
//!
//! # The staleness window
//!
//! A plan is valid as long as worker assignments do not change. The engine
//! tracks assignment changes with a monotonically increasing epoch; installing
//! a plan stamps it with the current epoch (the *plan-epoch validity handle*,
//! see [`CompiledPlan::epoch`]). In the window between an assignment change
//! (allocation applied, worker retired or migrated) and the next routing
//! refresh, the plan is *stale*: the engine falls back to scanning the plan's
//! retained raw weight vectors with full per-candidate runtime validity checks
//! (ownership, dispatchability, task match). That slow path is the only
//! surviving remnant of the interpreted seam.
//!
//! [`CompiledPlan::from_routing_plan`] lowers a legacy `HashMap` plan into the
//! compiled form for controllers (mostly test fixtures) that still build one.

use crate::types::{BackupWorker, RoutingPlan, WorkerId};
use rand::Rng;

/// A Vose alias table: samples an index from a discrete weighted distribution
/// with a single uniform draw and two array reads, independent of table size.
/// Entries are packed (probability, alias, worker per slot) so a sample touches
/// at most two adjacent cache lines.
#[derive(Debug, Clone, Default)]
pub struct AliasTable {
    entries: Vec<AliasEntry>,
}

#[derive(Debug, Clone, Copy)]
struct AliasEntry {
    /// Acceptance probability of this column.
    prob: f64,
    /// Worker returned when the draw accepts the column.
    worker: WorkerId,
    /// Index of the worker returned when the draw rejects the column.
    alias: u32,
}

impl AliasTable {
    /// Build a table from `(worker, weight)` pairs. Non-positive weights are
    /// skipped; weights need not be normalized. An empty result (no positive
    /// weights) is a valid table that always samples `None`.
    pub fn from_weights<I: IntoIterator<Item = (WorkerId, f64)>>(entries: I) -> AliasTable {
        let mut out = AliasTable::default();
        AliasTableBuilder::default().build_into(entries, &mut out);
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries (always samples `None`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sample a worker. Consumes exactly one uniform draw when the table is
    /// non-empty and none when it is empty.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<WorkerId> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        let x = rng.gen::<f64>() * n as f64;
        let i = (x as usize).min(n - 1);
        let frac = x - i as f64;
        let e = &self.entries[i];
        Some(if frac < e.prob {
            e.worker
        } else {
            self.entries[e.alias as usize].worker
        })
    }
}

/// Scratch space for Vose table construction, reusable across builds so
/// plan emission does not allocate for table construction.
#[derive(Debug, Default)]
pub struct AliasTableBuilder {
    filtered: Vec<(WorkerId, f64)>,
    prob: Vec<f64>,
    alias: Vec<u32>,
    small: Vec<u32>,
    large: Vec<u32>,
}

impl AliasTableBuilder {
    /// Build the alias table for `entries` into `out` (cleared first), using
    /// Vose's algorithm: split the scaled weights into under- and over-full
    /// columns, then repeatedly top up an under-full column from an over-full
    /// one. Non-positive weights are skipped.
    pub fn build_into<I: IntoIterator<Item = (WorkerId, f64)>>(
        &mut self,
        entries: I,
        out: &mut AliasTable,
    ) {
        out.entries.clear();
        self.filtered.clear();
        self.filtered.extend(
            entries
                .into_iter()
                .filter(|(_, w)| *w > 0.0 && w.is_finite()),
        );
        let n = self.filtered.len();
        let total: f64 = self.filtered.iter().map(|(_, w)| *w).sum();
        if n == 0 || total <= 0.0 {
            return;
        }
        self.prob.clear();
        self.prob
            .extend(self.filtered.iter().map(|(_, w)| *w * n as f64 / total));
        self.alias.clear();
        self.alias.extend(0..n as u32);
        self.small.clear();
        self.large.clear();
        for (i, &p) in self.prob.iter().enumerate() {
            if p < 1.0 {
                self.small.push(i as u32);
            } else {
                self.large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (self.small.last(), self.large.last()) {
            self.small.pop();
            self.alias[s as usize] = l;
            // Move the deficit of column `s` out of column `l`.
            self.prob[l as usize] -= 1.0 - self.prob[s as usize];
            if self.prob[l as usize] < 1.0 {
                self.large.pop();
                self.small.push(l);
            }
        }
        // Numerical leftovers are exactly-full columns.
        for &i in self.small.iter().chain(self.large.iter()) {
            self.prob[i as usize] = 1.0;
        }
        out.entries
            .extend(self.filtered.iter().zip(&self.prob).zip(&self.alias).map(
                |(((worker, _), &prob), &alias)| AliasEntry {
                    prob,
                    worker: *worker,
                    alias,
                },
            ));
    }
}

const NO_TABLE: u32 = u32::MAX;

/// Sort key that pushes NaN accuracies to the end of a descending sort.
#[inline]
fn nan_last(v: f64) -> f64 {
    if v.is_nan() {
        f64::NEG_INFINITY
    } else {
        v
    }
}

/// One downstream table: the alias form sampled on the fresh fast path plus
/// the raw weights it was built from, retained for the staleness-window scan.
#[derive(Debug, Clone, Default)]
struct PlanTable {
    alias: AliasTable,
    raw: Vec<(WorkerId, f64)>,
}

/// A routing plan in the engine's native dense compiled form.
///
/// Built by controllers through [`PlanBuilder`] (or lowered from a legacy
/// [`RoutingPlan`] via [`CompiledPlan::from_routing_plan`]) and installed by
/// the engine verbatim. See the module docs for the compile-once contract and
/// the staleness window.
#[derive(Debug, Clone, Default)]
pub struct CompiledPlan {
    /// The assignment epoch this plan is valid for (stamped at install time).
    epoch: u64,
    num_tasks: usize,
    /// Number of upstream-worker rows in `downstream`.
    rows: usize,
    /// Alias table over root-task workers used by the frontend.
    frontend: AliasTable,
    /// Raw frontend weights, retained for the staleness-window scan.
    frontend_raw: Vec<(WorkerId, f64)>,
    /// Dense `(upstream worker × child task) -> tables` index (`NO_TABLE` =
    /// no table → queue-length fallback); the "missing entry → per-task
    /// default" rule is folded in by [`PlanBuilder::finish`].
    downstream: Vec<u32>,
    /// Per child task: the default table index (`NO_TABLE` = none). Kept
    /// after folding for workers beyond `rows` (an elastic fleet can grow
    /// between emissions).
    task_default: Vec<u32>,
    tables: Vec<PlanTable>,
    /// Per task: backup workers, sorted by accuracy descending (stable, so
    /// equal-accuracy workers keep the emission order — exec-time ascending
    /// for every in-tree controller).
    backup: Vec<Vec<BackupWorker>>,
}

impl CompiledPlan {
    /// Lower a legacy `HashMap`-keyed plan into the compiled form. Entries
    /// are taken at face value (no fleet filtering): a controller is expected
    /// to emit plans from the worker views it was handed, and the engine's
    /// delivery-time validity recheck catches anything that drifts.
    pub fn from_routing_plan(plan: &RoutingPlan, num_tasks: usize) -> CompiledPlan {
        let mut b = PlanBuilder::default();
        b.begin(num_tasks);
        for &(w, weight) in &plan.frontend {
            b.push_frontend(w, weight);
        }
        for (&(up, child), table) in &plan.downstream {
            if child >= num_tasks {
                continue;
            }
            b.set_downstream(up, child, table);
        }
        for (&child, table) in &plan.downstream_default {
            if child >= num_tasks {
                continue;
            }
            b.set_default(child, table);
        }
        for (&task, list) in &plan.backup {
            if task >= num_tasks {
                continue;
            }
            for &bw in list {
                b.push_backup(task, bw);
            }
        }
        b.finish()
    }

    /// The assignment epoch this plan was installed under; the engine compares
    /// it against the live epoch to decide fresh fast path vs. stale scan.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of child tasks this plan was emitted for.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Stamp the plan with the installing lane's assignment epoch and make
    /// sure every fleet slot has a dense row (a plan emitted from views never
    /// mentions workers it has not seen; those rows fold to the per-task
    /// default, exactly like the legacy `HashMap` default lookup).
    pub(crate) fn finalize(&mut self, fleet_len: usize, epoch: u64) {
        while self.rows < fleet_len {
            self.downstream.extend_from_slice(&self.task_default);
            self.rows += 1;
        }
        self.epoch = epoch;
    }

    /// Alias table over root-task workers sampled by the frontend.
    #[inline]
    pub fn frontend(&self) -> &AliasTable {
        &self.frontend
    }

    /// Raw frontend weights, for the staleness-window scan.
    #[inline]
    pub fn frontend_raw(&self) -> &[(WorkerId, f64)] {
        &self.frontend_raw
    }

    /// The table to sample for traffic from `upstream` toward `child_task`:
    /// the upstream-specific table if the plan had one (even if it is empty —
    /// an empty table means "drop to the queue-length fallback", not "use the
    /// default"), otherwise the per-task default. The fallback rule is folded
    /// in at build time, so this is one load.
    #[inline]
    pub fn downstream_table(&self, upstream: WorkerId, child_task: usize) -> Option<&AliasTable> {
        // Bounds first: a plan emitted for fewer tasks than the caller's graph
        // must miss cleanly, not alias another row's slot.
        if child_task >= self.num_tasks {
            return None;
        }
        // `get`, not indexing: an elastic fleet can grow between emissions,
        // and a worker provisioned after install has no row yet (it also has
        // no plan entries, so "no table → queue-length fallback" is right).
        let idx = *self
            .downstream
            .get(upstream.index() * self.num_tasks + child_task)?;
        if idx == NO_TABLE {
            None
        } else {
            Some(&self.tables[idx as usize].alias)
        }
    }

    /// Raw weights behind [`Self::downstream_table`], for the staleness-window
    /// scan. Workers beyond the dense rows resolve to the per-task default.
    #[inline]
    pub fn raw_downstream(
        &self,
        upstream: WorkerId,
        child_task: usize,
    ) -> Option<&[(WorkerId, f64)]> {
        if child_task >= self.num_tasks {
            return None;
        }
        let idx = if upstream.index() < self.rows {
            *self
                .downstream
                .get(upstream.index() * self.num_tasks + child_task)?
        } else {
            *self.task_default.get(child_task)?
        };
        if idx == NO_TABLE {
            None
        } else {
            Some(&self.tables[idx as usize].raw)
        }
    }

    /// Backup workers for `task`, accuracy-descending. Served to both the
    /// fresh rerouting scan and the staleness-window tie-break.
    #[inline]
    pub fn backup(&self, task: usize) -> &[BackupWorker] {
        self.backup.get(task).map_or(&[], Vec::as_slice)
    }
}

/// Incremental builder for [`CompiledPlan`]s.
///
/// A controller keeps one builder alive across refreshes so the Vose scratch
/// is reused; each `begin` → (`push_frontend` | `set_downstream` |
/// `set_default` | `push_backup`)* → `finish` cycle emits one plan. `finish`
/// builds the frontend alias table, sorts the backup lists, and folds the
/// per-task defaults into the dense downstream index.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    alias: AliasTableBuilder,
    plan: CompiledPlan,
}

impl PlanBuilder {
    /// Start a new plan for a pipeline of `num_tasks` tasks. Rows for
    /// upstream workers are grown on demand by [`Self::set_downstream`].
    pub fn begin(&mut self, num_tasks: usize) {
        let p = &mut self.plan;
        p.epoch = 0;
        p.num_tasks = num_tasks;
        p.rows = 0;
        p.frontend = AliasTable::default();
        p.frontend_raw.clear();
        p.downstream.clear();
        p.task_default.clear();
        p.task_default.resize(num_tasks, NO_TABLE);
        p.tables.clear();
        p.backup.resize_with(num_tasks, Vec::new);
        p.backup.truncate(num_tasks);
        for list in p.backup.iter_mut() {
            list.clear();
        }
    }

    /// Add a weighted root-task worker to the frontend table.
    pub fn push_frontend(&mut self, worker: WorkerId, weight: f64) {
        self.plan.frontend_raw.push((worker, weight));
    }

    /// Install the weighted table for traffic from `upstream` toward
    /// `child_task`. An explicitly installed empty table means "queue-length
    /// fallback", shadowing any per-task default.
    pub fn set_downstream(
        &mut self,
        upstream: WorkerId,
        child_task: usize,
        entries: &[(WorkerId, f64)],
    ) {
        debug_assert!(child_task < self.plan.num_tasks);
        let nt = self.plan.num_tasks;
        while self.plan.rows <= upstream.index() {
            let start = self.plan.downstream.len();
            self.plan.downstream.resize(start + nt, NO_TABLE);
            self.plan.rows += 1;
        }
        let idx = self.alloc_table(entries);
        self.plan.downstream[upstream.index() * nt + child_task] = idx;
    }

    /// Install the per-task default table used for upstream workers with no
    /// specific entry.
    pub fn set_default(&mut self, child_task: usize, entries: &[(WorkerId, f64)]) {
        debug_assert!(child_task < self.plan.num_tasks);
        let idx = self.alloc_table(entries);
        self.plan.task_default[child_task] = idx;
    }

    /// Append a backup worker for `task`. Push in exec-time-ascending order;
    /// `finish` stable-sorts by accuracy descending, so equal-accuracy
    /// workers keep that order.
    pub fn push_backup(&mut self, task: usize, backup: BackupWorker) {
        debug_assert!(task < self.plan.num_tasks);
        self.plan.backup[task].push(backup);
    }

    fn alloc_table(&mut self, entries: &[(WorkerId, f64)]) -> u32 {
        let mut t = PlanTable {
            alias: AliasTable::default(),
            raw: entries.to_vec(),
        };
        self.alias.build_into(entries.iter().copied(), &mut t.alias);
        let idx = self.plan.tables.len() as u32;
        self.plan.tables.push(t);
        idx
    }

    /// Finish the plan: build the frontend alias table, stable-sort backup
    /// lists by accuracy descending, and fold the per-task defaults into the
    /// dense downstream index so the per-query lookup is a single load.
    pub fn finish(&mut self) -> CompiledPlan {
        let p = &mut self.plan;
        let mut frontend = std::mem::take(&mut p.frontend);
        self.alias
            .build_into(p.frontend_raw.iter().copied(), &mut frontend);
        p.frontend = frontend;
        for list in p.backup.iter_mut() {
            list.sort_by(|a, b| nan_last(b.accuracy).total_cmp(&nan_last(a.accuracy)));
        }
        for row in p.downstream.chunks_mut(p.num_tasks.max(1)) {
            for (slot, &default) in row.iter_mut().zip(&p.task_default) {
                if *slot == NO_TABLE {
                    *slot = default;
                }
            }
        }
        std::mem::take(&mut self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w(i: usize) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn empty_table_samples_none() {
        let t = AliasTable::from_weights(Vec::<(WorkerId, f64)>::new());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(t.is_empty());
        assert_eq!(t.sample(&mut rng), None);
        let t = AliasTable::from_weights(vec![(w(0), 0.0), (w(1), -2.0)]);
        assert!(t.is_empty());
    }

    #[test]
    fn single_entry_always_wins() {
        let t = AliasTable::from_weights(vec![(w(3), 0.25)]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), Some(w(3)));
        }
    }

    #[test]
    fn sampling_matches_weights() {
        // Weights 1:2:7 over three workers.
        let t = AliasTable::from_weights(vec![(w(0), 1.0), (w(1), 2.0), (w(2), 7.0)]);
        assert_eq!(t.len(), 3);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[t.sample(&mut rng).unwrap().index()] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / n as f64;
        assert!((frac(0) - 0.1).abs() < 0.01, "{}", frac(0));
        assert!((frac(1) - 0.2).abs() < 0.01, "{}", frac(1));
        assert!((frac(2) - 0.7).abs() < 0.01, "{}", frac(2));
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let t = AliasTable::from_weights((0..8).map(|i| (w(i), 1.0)));
        let mut rng = StdRng::seed_from_u64(4);
        let n = 80_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[t.sample(&mut rng).unwrap().index()] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.01, "{frac}");
        }
    }

    #[test]
    fn skewed_weights_do_not_lose_rare_entries() {
        let t = AliasTable::from_weights(vec![(w(0), 1e-6), (w(1), 1.0)]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen_rare = false;
        for _ in 0..5_000_000 {
            if t.sample(&mut rng) == Some(w(0)) {
                seen_rare = true;
                break;
            }
        }
        assert!(seen_rare, "rare entry should still be sampled");
    }

    #[test]
    fn default_tables_fold_into_unset_slots_only() {
        let mut b = PlanBuilder::default();
        b.begin(2);
        // Worker 0 gets an explicit (empty) table for task 1; worker 1 gets
        // nothing and should inherit the default.
        b.set_downstream(w(0), 1, &[]);
        b.set_downstream(w(1), 0, &[(w(0), 1.0)]);
        b.set_default(1, &[(w(5), 1.0)]);
        let mut plan = b.finish();
        plan.finalize(4, 7);
        assert_eq!(plan.epoch(), 7);

        // Explicit-but-empty shadows the default: sampling yields None.
        let mut rng = StdRng::seed_from_u64(9);
        let t = plan.downstream_table(w(0), 1).expect("explicit table");
        assert!(t.is_empty());
        assert_eq!(t.sample(&mut rng), None);
        assert_eq!(plan.raw_downstream(w(0), 1), Some(&[][..]));

        // No explicit entry → the default table.
        let t = plan.downstream_table(w(1), 1).expect("default table");
        assert_eq!(t.sample(&mut rng), Some(w(5)));
        // Rows grown by finalize (worker 2, 3) fold to the default too.
        let t = plan.downstream_table(w(3), 1).expect("grown default row");
        assert_eq!(t.sample(&mut rng), Some(w(5)));
        // ...and so do workers beyond the dense rows on the stale path.
        assert_eq!(plan.raw_downstream(w(9), 1), Some(&[(w(5), 1.0)][..]));
        // No default for task 0 → queue fallback.
        assert!(plan.downstream_table(w(1), 0).is_some());
        assert!(plan.downstream_table(w(3), 0).is_none());
        assert!(plan.raw_downstream(w(9), 0).is_none());
    }

    #[test]
    fn backups_sort_accuracy_descending_stable() {
        let bw = |i: usize, exec: f64, acc: f64| BackupWorker {
            worker: w(i),
            exec_time_ms: exec,
            accuracy: acc,
        };
        let mut b = PlanBuilder::default();
        b.begin(1);
        // Pushed exec-ascending; ties on accuracy must keep that order.
        b.push_backup(0, bw(1, 1.0, 0.8));
        b.push_backup(0, bw(2, 2.0, 0.9));
        b.push_backup(0, bw(3, 3.0, 0.8));
        b.push_backup(0, bw(4, 4.0, f64::NAN));
        let plan = b.finish();
        let ids: Vec<usize> = plan.backup(0).iter().map(|b| b.worker.index()).collect();
        assert_eq!(ids, vec![2, 1, 3, 4]);
        assert!(plan.backup(1).is_empty());
    }

    #[test]
    fn lowering_matches_builder_emission() {
        use std::collections::HashMap;
        let mut plan = RoutingPlan {
            frontend: vec![(w(0), 2.0), (w(1), 1.0)],
            ..RoutingPlan::default()
        };
        plan.downstream
            .insert((w(0), 1), vec![(w(2), 1.0), (w(3), 3.0)]);
        plan.downstream_default.insert(1, vec![(w(2), 1.0)]);
        plan.backup = HashMap::new();
        let mut compiled = CompiledPlan::from_routing_plan(&plan, 2);
        compiled.finalize(4, 1);

        let mut b = PlanBuilder::default();
        b.begin(2);
        b.push_frontend(w(0), 2.0);
        b.push_frontend(w(1), 1.0);
        b.set_downstream(w(0), 1, &[(w(2), 1.0), (w(3), 3.0)]);
        b.set_default(1, &[(w(2), 1.0)]);
        let mut emitted = b.finish();
        emitted.finalize(4, 1);

        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert_eq!(
                compiled.frontend().sample(&mut rng_a),
                emitted.frontend().sample(&mut rng_b)
            );
            let ta = compiled.downstream_table(w(0), 1).unwrap();
            let tb = emitted.downstream_table(w(0), 1).unwrap();
            assert_eq!(ta.sample(&mut rng_a), tb.sample(&mut rng_b));
            let ta = compiled.downstream_table(w(3), 1).unwrap();
            let tb = emitted.downstream_table(w(3), 1).unwrap();
            assert_eq!(ta.sample(&mut rng_a), tb.sample(&mut rng_b));
        }
    }
}
