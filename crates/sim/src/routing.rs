//! Compiled routing state: Vose alias tables for O(1) weighted worker sampling.
//!
//! Controllers hand the engine a [`RoutingPlan`](crate::types::RoutingPlan) —
//! human-readable weighted tables keyed by `HashMap`. Sampling those directly
//! costs a hash probe, a filtered copy of the table, and an O(n) CDF walk *per
//! routed query*. The engine instead compiles each plan once (at routing-tick
//! cadence) into a [`CompiledRouting`]: per-(worker, task) dense indices into a
//! pool of [`AliasTable`]s, entries pre-filtered against the worker assignments
//! current at compile time, plus accuracy-sorted backup lists for opportunistic
//! rerouting. The compiled form is valid as long as worker assignments do not
//! change; the engine tracks that with an assignment epoch and falls back to
//! scanning the raw plan in the (rare) window where the compiled form is stale.

use crate::shard::Fleet;
use crate::types::{BackupWorker, RoutingPlan, WorkerId};
use rand::Rng;
use std::sync::atomic::{AtomicU32, Ordering};

/// A Vose alias table: samples an index from a discrete weighted distribution
/// with a single uniform draw and two array reads, independent of table size.
/// Entries are packed (probability, alias, worker per slot) so a sample touches
/// at most two adjacent cache lines.
#[derive(Debug, Clone, Default)]
pub struct AliasTable {
    entries: Vec<AliasEntry>,
}

#[derive(Debug, Clone, Copy)]
struct AliasEntry {
    /// Acceptance probability of this column.
    prob: f64,
    /// Worker returned when the draw accepts the column.
    worker: WorkerId,
    /// Index of the worker returned when the draw rejects the column.
    alias: u32,
}

impl AliasTable {
    /// Build a table from `(worker, weight)` pairs. Non-positive weights are
    /// skipped; weights need not be normalized. An empty result (no positive
    /// weights) is a valid table that always samples `None`.
    pub fn from_weights<I: IntoIterator<Item = (WorkerId, f64)>>(entries: I) -> AliasTable {
        let mut out = AliasTable::default();
        AliasTableBuilder::default().build_into(entries, &mut out);
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries (always samples `None`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sample a worker. Consumes exactly one uniform draw when the table is
    /// non-empty and none when it is empty.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<WorkerId> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        let x = rng.gen::<f64>() * n as f64;
        let i = (x as usize).min(n - 1);
        let frac = x - i as f64;
        let e = &self.entries[i];
        Some(if frac < e.prob {
            e.worker
        } else {
            self.entries[e.alias as usize].worker
        })
    }
}

/// Scratch space for Vose table construction, reusable across builds so
/// routing-tick recompilation does not allocate.
#[derive(Debug, Default)]
pub struct AliasTableBuilder {
    filtered: Vec<(WorkerId, f64)>,
    prob: Vec<f64>,
    alias: Vec<u32>,
    small: Vec<u32>,
    large: Vec<u32>,
}

impl AliasTableBuilder {
    /// Build the alias table for `entries` into `out` (cleared first), using
    /// Vose's algorithm: split the scaled weights into under- and over-full
    /// columns, then repeatedly top up an under-full column from an over-full
    /// one. Non-positive weights are skipped.
    pub fn build_into<I: IntoIterator<Item = (WorkerId, f64)>>(
        &mut self,
        entries: I,
        out: &mut AliasTable,
    ) {
        out.entries.clear();
        self.filtered.clear();
        self.filtered.extend(
            entries
                .into_iter()
                .filter(|(_, w)| *w > 0.0 && w.is_finite()),
        );
        let n = self.filtered.len();
        let total: f64 = self.filtered.iter().map(|(_, w)| *w).sum();
        if n == 0 || total <= 0.0 {
            return;
        }
        self.prob.clear();
        self.prob
            .extend(self.filtered.iter().map(|(_, w)| *w * n as f64 / total));
        self.alias.clear();
        self.alias.extend(0..n as u32);
        self.small.clear();
        self.large.clear();
        for (i, &p) in self.prob.iter().enumerate() {
            if p < 1.0 {
                self.small.push(i as u32);
            } else {
                self.large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (self.small.last(), self.large.last()) {
            self.small.pop();
            self.alias[s as usize] = l;
            // Move the deficit of column `s` out of column `l`.
            self.prob[l as usize] -= 1.0 - self.prob[s as usize];
            if self.prob[l as usize] < 1.0 {
                self.large.pop();
                self.small.push(l);
            }
        }
        // Numerical leftovers are exactly-full columns.
        for &i in self.small.iter().chain(self.large.iter()) {
            self.prob[i as usize] = 1.0;
        }
        out.entries
            .extend(self.filtered.iter().zip(&self.prob).zip(&self.alias).map(
                |(((worker, _), &prob), &alias)| AliasEntry {
                    prob,
                    worker: *worker,
                    alias,
                },
            ));
    }
}

const NO_TABLE: u32 = u32::MAX;

/// A routing plan compiled against a snapshot of worker assignments.
///
/// Recompiled in place at routing-tick cadence: every buffer (dense index,
/// alias-table pool, backup lists) is reused across compilations, so a steady
/// tick performs no allocations once the pools have warmed up.
#[derive(Debug, Default)]
pub(crate) struct CompiledRouting {
    /// The assignment epoch this compilation is valid for.
    pub epoch: u64,
    /// Alias table over root-task workers used by the frontend.
    pub frontend: AliasTable,
    /// Dense `(upstream worker × child task) -> tables` index (`NO_TABLE` =
    /// no table → queue-length fallback); the "missing entry → per-task
    /// default" rule is resolved at compile time.
    downstream: Vec<u32>,
    /// Pool of alias tables; only the first `used_tables` are live.
    tables: Vec<AliasTable>,
    used_tables: usize,
    /// Per task: backup workers that currently serve it, sorted by accuracy
    /// descending (stable, so equal-accuracy workers keep the plan's
    /// exec-time order).
    pub backup: Vec<Vec<BackupWorker>>,
    num_tasks: usize,
    builder: AliasTableBuilder,
    /// Scratch: per-task default-table indices, folded into `downstream`.
    default_scratch: Vec<u32>,
}

impl CompiledRouting {
    /// Compile `plan` against the current `workers` assignments, reusing this
    /// value's buffers. Entries whose worker does not serve the expected task
    /// *for the owning lane* are dropped now so sampling needs no per-draw
    /// validity checks while the epoch matches. The ownership filter matters
    /// in multi-pipeline runs: task indices are per-pipeline, so a worker
    /// migrated to another pipeline may host that pipeline's task with the
    /// same index and must not absorb this lane's traffic.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recompile(
        &mut self,
        plan: &RoutingPlan,
        fleet: &Fleet,
        owner: &[AtomicU32],
        lane: u32,
        num_tasks: usize,
        root_task: usize,
        epoch: u64,
    ) {
        // Owner check first (short-circuit): a worker owned by another lane is
        // rejected before its data is read, which keeps compiling against the
        // shared fleet sound while other shards run (see `crate::shard`).
        let serves = |w: WorkerId, task: usize| {
            owner
                .get(w.index())
                .is_some_and(|o| o.load(Ordering::Relaxed) == lane)
                && fleet
                    .try_get(w.index())
                    .is_some_and(|worker| worker.accepts_dispatches())
                && matches!(
                    fleet.try_get(w.index()).and_then(|w| w.assignment.as_ref()),
                    Some(a) if a.variant.task == task
                )
        };
        let nw = fleet.len();
        self.epoch = epoch;
        self.num_tasks = num_tasks;
        self.used_tables = 0;

        let mut frontend = std::mem::take(&mut self.frontend);
        self.builder.build_into(
            plan.frontend
                .iter()
                .filter(|(w, _)| serves(*w, root_task))
                .copied(),
            &mut frontend,
        );
        self.frontend = frontend;

        self.downstream.clear();
        self.downstream.resize(nw * num_tasks, NO_TABLE);
        for (&(up, child), table) in &plan.downstream {
            if up.index() >= nw || child >= num_tasks {
                continue;
            }
            let idx = self.alloc_table();
            let mut t = std::mem::take(&mut self.tables[idx as usize]);
            self.builder.build_into(
                table.iter().filter(|(w, _)| serves(*w, child)).copied(),
                &mut t,
            );
            self.tables[idx as usize] = t;
            self.downstream[up.index() * num_tasks + child] = idx;
        }

        let mut downstream_default = std::mem::take(&mut self.default_scratch);
        downstream_default.clear();
        downstream_default.resize(num_tasks, NO_TABLE);
        for (&child, table) in &plan.downstream_default {
            if child >= num_tasks {
                continue;
            }
            let idx = self.alloc_table();
            let mut t = std::mem::take(&mut self.tables[idx as usize]);
            self.builder.build_into(
                table.iter().filter(|(w, _)| serves(*w, child)).copied(),
                &mut t,
            );
            self.tables[idx as usize] = t;
            downstream_default[child] = idx;
        }
        // Bake the "no upstream-specific entry → use the per-task default" rule
        // into the dense index now, so the per-query lookup is a single load.
        for row in self.downstream.chunks_mut(num_tasks.max(1)) {
            for (slot, &default) in row.iter_mut().zip(&downstream_default) {
                if *slot == NO_TABLE {
                    *slot = default;
                }
            }
        }
        self.default_scratch = downstream_default;

        self.backup.resize_with(num_tasks, Vec::new);
        for list in self.backup.iter_mut() {
            list.clear();
        }
        for (&task, list) in &plan.backup {
            if task >= num_tasks {
                continue;
            }
            let filtered = &mut self.backup[task];
            filtered.extend(list.iter().filter(|b| serves(b.worker, task)));
            // Stable sort: filtering commutes with it, so this matches sorting
            // the runtime-filtered candidate set of the uncompiled path.
            filtered.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).unwrap());
        }
    }

    /// Reserve the next table slot from the pool, reusing a previous
    /// compilation's allocation when available.
    fn alloc_table(&mut self) -> u32 {
        if self.used_tables == self.tables.len() {
            self.tables.push(AliasTable::default());
        }
        self.used_tables += 1;
        (self.used_tables - 1) as u32
    }

    /// The table to sample for traffic from `upstream` toward `child_task`:
    /// the upstream-specific table if the plan had one (even if it compiled
    /// empty — an empty table means "drop to the queue-length fallback", not
    /// "use the default"), otherwise the per-task default. The fallback rule
    /// is resolved at compile time, so this is one load.
    #[inline]
    pub fn downstream_table(&self, upstream: WorkerId, child_task: usize) -> Option<&AliasTable> {
        // `get`, not indexing: an elastic fleet can grow between compilations,
        // and a worker provisioned after this compile has no row yet (it also
        // has no plan entries, so "no table → queue-length fallback" is right).
        let idx = *self
            .downstream
            .get(upstream.index() * self.num_tasks + child_task)?;
        if idx == NO_TABLE {
            None
        } else {
            Some(&self.tables[idx as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w(i: usize) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn empty_table_samples_none() {
        let t = AliasTable::from_weights(Vec::<(WorkerId, f64)>::new());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(t.is_empty());
        assert_eq!(t.sample(&mut rng), None);
        let t = AliasTable::from_weights(vec![(w(0), 0.0), (w(1), -2.0)]);
        assert!(t.is_empty());
    }

    #[test]
    fn single_entry_always_wins() {
        let t = AliasTable::from_weights(vec![(w(3), 0.25)]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), Some(w(3)));
        }
    }

    #[test]
    fn sampling_matches_weights() {
        // Weights 1:2:7 over three workers.
        let t = AliasTable::from_weights(vec![(w(0), 1.0), (w(1), 2.0), (w(2), 7.0)]);
        assert_eq!(t.len(), 3);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[t.sample(&mut rng).unwrap().index()] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / n as f64;
        assert!((frac(0) - 0.1).abs() < 0.01, "{}", frac(0));
        assert!((frac(1) - 0.2).abs() < 0.01, "{}", frac(1));
        assert!((frac(2) - 0.7).abs() < 0.01, "{}", frac(2));
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let t = AliasTable::from_weights((0..8).map(|i| (w(i), 1.0)));
        let mut rng = StdRng::seed_from_u64(4);
        let n = 80_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[t.sample(&mut rng).unwrap().index()] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.01, "{frac}");
        }
    }

    #[test]
    fn skewed_weights_do_not_lose_rare_entries() {
        let t = AliasTable::from_weights(vec![(w(0), 1e-6), (w(1), 1.0)]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen_rare = false;
        for _ in 0..5_000_000 {
            if t.sample(&mut rng) == Some(w(0)) {
                seen_rare = true;
                break;
            }
        }
        assert!(seen_rare, "rare entry should still be sampled");
    }
}
