//! Per-lane execution shards: the engine's data plane, one shard per pipeline.
//!
//! A [`Shard`] owns everything one lane needs to advance independently between
//! two rebalance epochs: the lane's state ([`LaneState`]), its own calendar
//! queue of timed lane events, its own batch-completion heap, and its own event
//! sequence counter. Because a warm worker is owned by exactly one lane at a
//! time and ownership only changes at epoch boundaries (where the driver runs
//! single-threaded), per-epoch shard execution is data-independent: shards may
//! run on separate threads, and the merged run is bit-identical to the serial
//! one (per-lane seq streams preserve each lane's internal event order, and
//! cross-lane interleavings never touch shared mutable state mid-epoch).
//!
//! # The fleet aliasing contract
//!
//! Workers live in a shared [`Fleet`] (a `Vec<UnsafeCell<Worker>>`), with the
//! owning lane of each worker in a shared `AtomicU32` owner map. The safety
//! contract, relied on by every `Fleet::get`/`Fleet::get_mut` call:
//!
//! * **Between barriers** a worker is touched only by the thread running its
//!   owner lane's shard. Every routing path checks `owner[w] == lane` *before*
//!   dereferencing the worker (short-circuit `&&`), so a stale table entry for
//!   a worker owned elsewhere is skipped without ever reading its data.
//! * **At barriers** only the driver thread runs (the scoped pool has joined),
//!   so migrations, drains, boots, and re-homes may touch any worker.
//! * Owner reads/writes are `Relaxed`: the only mid-epoch owner write is a
//!   lane freeing its *own* worker at retirement, and a concurrent reader from
//!   another lane rejects both the old value (a foreign lane id) and the new
//!   one (`FREE`) identically, so the race is benign *and* deterministic.

use crate::calendar::CalendarQueue;
use crate::engine::EngineError;
use crate::routing::CompiledPlan;
use crate::slab::{Slab, SlotRef};
use crate::types::{
    ms_to_us, secs_to_us, us_to_ms, AllocationPlan, BackupWorker, CompiledLinkDelays, Controller,
    DropPolicy, ObservedState, Query, SimConfig, SimTime, WorkerId, WorkerView,
};
use crate::worker::{Lifecycle, Worker};
use loki_pipeline::{PipelineGraph, TaskId, VariantId};
use loki_workload::{DemandHistory, EwmaEstimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

/// Owner tag of a worker no lane currently holds (released by a rebalance and
/// not yet re-granted).
pub(crate) const FREE: u32 = u32::MAX;

// Phase tags of the dispatch loop's self-profiler (indices into
// [`crate::trace::PhaseProfile`]'s lane-side fields).
const PHASE_ARRIVAL: u8 = 0;
const PHASE_DELIVERY: u8 = 1;
const PHASE_BATCH: u8 = 2;
const PHASE_CONTROL: u8 = 3;
const PHASE_ROUTING: u8 = 4;
const PHASE_METRICS: u8 = 5;
const PHASE_SWAP: u8 = 6;

/// The shared worker fleet. Interior mutability with *external* synchronization:
/// see the module docs for the aliasing contract that makes the unsafe `Sync`
/// impl and the `&self` mutators sound.
pub(crate) struct Fleet {
    workers: Vec<UnsafeCell<Worker>>,
}

// SAFETY: `Worker` is plain owned data (no interior references); cross-thread
// access is serialized by the ownership discipline in the module docs.
unsafe impl Sync for Fleet {}

impl Fleet {
    pub(crate) fn new(workers: Vec<Worker>) -> Self {
        Self {
            workers: workers.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.workers.len()
    }

    pub(crate) fn push(&mut self, worker: Worker) {
        self.workers.push(UnsafeCell::new(worker));
    }

    /// Shared view of a worker. See the module docs for when this is sound.
    #[inline]
    pub(crate) fn get(&self, index: usize) -> &Worker {
        // SAFETY: ownership discipline (module docs) — no thread holds a
        // conflicting `&mut` to this worker while the reference is live.
        unsafe { &*self.workers[index].get() }
    }

    /// Exclusive view of a worker. See the module docs for when this is sound;
    /// callers keep the borrow short (one statement / one scope) and never
    /// overlap two `get_mut` calls for the same index.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub(crate) fn get_mut(&self, index: usize) -> &mut Worker {
        // SAFETY: ownership discipline (module docs) — only the owner lane's
        // thread (or the barrier-time driver) touches this worker.
        unsafe { &mut *self.workers[index].get() }
    }

    /// Iterate the fleet (driver thread only — barriers and run setup/teardown).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Worker> + '_ {
        // SAFETY: as `Fleet::get`.
        self.workers.iter().map(|c| unsafe { &*c.get() })
    }
}

/// The shared, read-only context a shard executes against between barriers.
pub(crate) struct LaneCtx<'e> {
    pub(crate) config: &'e SimConfig,
    pub(crate) fleet: &'e Fleet,
    pub(crate) owner: &'e [AtomicU32],
    pub(crate) end_time_us: SimTime,
}

/// A scheduled lane event's payload. Deliveries carry the in-flight query
/// inline — its lifetime is exactly the queue entry's, so the delivery path
/// needs no lookup structure at all. (Cluster-level events — rebalance and
/// elastic ticks, boot completions — live on the driver's queue instead.)
#[derive(Debug, Clone)]
pub(crate) enum LaneEvent {
    ControlTick,
    RoutingTick,
    MetricsTick,
    SwapDone(WorkerId),
    Delivery { worker: WorkerId, query: Query },
}

/// Why a root (or one of its branches) was dropped. The *first* cause sticks:
/// a root that loses a branch to a revocation and later expires is a
/// revocation loss, not a deadline miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum DropCause {
    /// Deadline-expired: drop policies firing, failed reroutes, unroutable
    /// queries, and roots still in flight when the run ends.
    Deadline = 1,
    /// The query's worker was reclaimed by a rebalance/repartition and no
    /// fallback worker could take it.
    Reclaimed = 2,
    /// Lost to a spot-market revocation (forced drain or revocation-deadline
    /// batch kill) with no surviving worker to re-queue on.
    Revoked = 3,
}

/// Tracking state of a root (client) request while any of its sub-queries are in
/// flight.
#[derive(Debug, Clone)]
pub(crate) struct RootState {
    pub(crate) deadline_us: SimTime,
    outstanding: usize,
    accuracy_sum: f64,
    pub(crate) accuracy_count: usize,
    /// First [`DropCause`] that hit any branch of this root (0 = none).
    pub(crate) drop_cause: u8,
    /// Slot in the lane's [`crate::trace::LaneTracer`] when this root is
    /// sampled for tracing; `u32::MAX` otherwise.
    pub(crate) trace_slot: u32,
}

/// One pipeline to serve: its graph, arrival trace, and initial demand hint.
pub(crate) struct LaneInput<'a> {
    pub graph: &'a PipelineGraph,
    pub arrivals_s: &'a [f64],
    pub initial_demand_hint: Option<f64>,
}

/// Per-pipeline engine state: everything that was per-run in the single-pipeline
/// engine and is per-lane now that one run serves several pipelines.
pub(crate) struct LaneState<'a> {
    pub(crate) graph: &'a PipelineGraph,
    pub(crate) arrivals_us: Vec<SimTime>,
    /// The next trace arrival of this lane: `(time, seq, index)`.
    pub(crate) next_arrival: Option<(SimTime, u64, usize)>,

    /// The controller-emitted compiled plan, installed verbatim. Its retained
    /// raw weight vectors feed the stale-epoch slow path.
    compiled: CompiledPlan,
    /// Bumped whenever this lane's worker set or assignments change.
    pub(crate) assignments_epoch: u64,
    drop_policy: DropPolicy,

    // Dense graph lookups and pre-converted constants.
    pub(crate) num_tasks: usize,
    root_task: usize,
    /// Compiled per-hop link delays (µs), one array index per dispatch.
    link: CompiledLinkDelays,
    slo_us: SimTime,
    variant_offset: Vec<usize>,
    variant_ids: Vec<VariantId>,
    task_is_sink: Vec<bool>,
    /// Per dense variant: latency budget from the active plan (NaN = unset).
    latency_budgets_ms: Vec<f64>,
    /// Per task: owned workers currently assigned to it, ascending by index.
    pub(crate) workers_by_task: Vec<Vec<WorkerId>>,
    /// The lane's partition: owned workers, ascending by index.
    pub(crate) owned: Vec<WorkerId>,

    pub(crate) roots: Slab<RootState>,

    // Observability for the lane's controller.
    demand: DemandHistory,
    pub(crate) initial_demand_hint: Option<f64>,
    arrivals_this_interval: u64,
    fanout_sums: Vec<(f64, u64)>,
    fanout_avg: HashMap<(VariantId, usize), f64>,
    per_task_counts: Vec<u64>,
    per_task_seen: Vec<bool>,
    per_task_ewma: Vec<EwmaEstimator>,
    per_task_qps: HashMap<usize, f64>,
    first_control_tick: bool,

    // SLO attainment over the window since the last elastic tick (pressure
    // signal for fleet-scaling policies; unused when elastic is off).
    pub(crate) window_on_time: u64,
    pub(crate) window_finished: u64,

    // Observability (see `crate::trace`): all observation-only — none of these
    // consume RNG draws or change event ordering.
    /// Latency histograms (`observe.histograms`, on by default).
    pub(crate) hists: Option<Box<crate::trace::LatencyStats>>,
    /// Sampled query tracer (`observe.trace_sample > 0`).
    pub(crate) tracer: Option<Box<crate::trace::LaneTracer>>,
    /// The current interval's end-to-end latency histogram
    /// (`observe.timeline`): records in parallel with `hists.e2e` and is
    /// swapped out at each metrics flush, so per-interval deltas are exact.
    pub(crate) window_hist: Option<Box<crate::trace::Histogram>>,
    /// Closed per-interval histogram deltas, index-aligned with `intervals`.
    pub(crate) window_hists: Vec<crate::trace::Histogram>,
    /// This lane's journal (`observe.timeline`): plan installs only — every
    /// other journaled incident is cluster-level and recorded by the driver.
    pub(crate) journal: Option<Box<crate::journal::Journal>>,

    // Metrics.
    pub(crate) current: crate::metrics::IntervalMetrics,
    pub(crate) intervals: Vec<crate::metrics::IntervalMetrics>,
    /// Events attributed to this lane (its ticks, arrivals, deliveries, batch
    /// completions, swap completions of its workers). Cluster-level rebalance
    /// ticks belong to no lane.
    pub(crate) events_processed: u64,

    rng: StdRng,
}

impl<'a> LaneState<'a> {
    pub(crate) fn new(
        input: &LaneInput<'a>,
        config: &SimConfig,
        lane_idx: usize,
        fleet_cap: usize,
    ) -> Self {
        let graph = input.graph;
        graph.validate().expect("pipeline graph must be valid");
        let arrivals_us: Vec<SimTime> = input.arrivals_s.iter().map(|&s| secs_to_us(s)).collect();
        let num_tasks = graph.num_tasks();
        let mut variant_offset = Vec::with_capacity(num_tasks);
        let mut variant_ids = Vec::new();
        let mut task_is_sink = Vec::with_capacity(num_tasks);
        for (id, task) in graph.tasks() {
            variant_offset.push(variant_ids.len());
            for k in 0..task.variants.len() {
                variant_ids.push(VariantId::new(id.index(), k));
            }
            task_is_sink.push(task.is_sink());
        }
        let total_variants = variant_ids.len();
        Self {
            graph,
            arrivals_us,
            next_arrival: None,
            // The default plan has epoch 0 and every table empty; with
            // `assignments_epoch` starting at 1 it reads as stale, so the
            // pre-first-plan window routes through the queue-length fallback
            // exactly as before.
            compiled: CompiledPlan::default(),
            assignments_epoch: 1,
            drop_policy: DropPolicy::default(),
            num_tasks,
            root_task: graph.root().index(),
            link: config
                .link_delays
                .compile(config.network_delay_ms, fleet_cap, num_tasks),
            slo_us: ms_to_us(graph.slo_ms()),
            variant_offset,
            variant_ids,
            task_is_sink,
            latency_budgets_ms: vec![f64::NAN; total_variants],
            workers_by_task: vec![Vec::new(); num_tasks],
            owned: Vec::new(),
            roots: Slab::with_capacity(1024),
            demand: DemandHistory::new(60, 0.3, 1.1),
            initial_demand_hint: input.initial_demand_hint,
            arrivals_this_interval: 0,
            fanout_sums: vec![(0.0, 0); total_variants * num_tasks],
            fanout_avg: HashMap::new(),
            per_task_counts: vec![0; num_tasks],
            per_task_seen: vec![false; num_tasks],
            per_task_ewma: vec![EwmaEstimator::new(0.3); num_tasks],
            per_task_qps: HashMap::new(),
            first_control_tick: true,
            window_on_time: 0,
            window_finished: 0,
            hists: config.observe.histograms.then(|| {
                let num_classes = config
                    .elastic
                    .as_ref()
                    .map(|e| e.catalog.len())
                    .unwrap_or(1);
                Box::new(crate::trace::LatencyStats::new(num_tasks, num_classes))
            }),
            tracer: (config.observe.trace_sample > 0)
                .then(|| Box::new(crate::trace::LaneTracer::new(config.observe.trace_sample))),
            window_hist: config
                .observe
                .timeline
                .then(|| Box::new(crate::trace::Histogram::default())),
            window_hists: Vec::new(),
            journal: config
                .observe
                .timeline
                .then(|| Box::new(crate::journal::Journal::new())),
            current: crate::metrics::IntervalMetrics::default(),
            intervals: Vec::new(),
            events_processed: 0,
            // Lane 0 draws from `SimConfig::seed` exactly (single-pipeline
            // parity); later lanes get decorrelated streams.
            rng: StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add((lane_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        }
    }

    /// The demand estimate the arbiter provisions this lane for — the same
    /// number the lane's Loki controller would compute from its observations.
    /// The initial hint only stands in while nothing has been observed
    /// (mirroring the controller, which consumes the hint at its first
    /// control tick only); flooring at the hint forever would pin a lane's
    /// share at its time-zero demand even after it decays.
    pub(crate) fn demand_estimate(&self) -> f64 {
        if self.demand.is_empty() {
            self.initial_demand_hint.unwrap_or(0.0)
        } else {
            self.demand.provisioning_estimate()
        }
    }

    /// The lane's SLO, in ms (arbiter observation input).
    pub(crate) fn slo_ms(&self) -> f64 {
        self.graph.slo_ms()
    }
}

/// One lane's execution shard: the lane state plus the lane-local event
/// sources (calendar queue, arrival cursor, batch-completion heap) and seq
/// counter that let it advance independently between rebalance epochs.
pub(crate) struct Shard<'a> {
    pub(crate) li: u32,
    pub(crate) lane: LaneState<'a>,

    /// Calendar-queue scheduler for this lane's ticks, swap completions, and
    /// network deliveries.
    events: CalendarQueue<LaneEvent>,
    /// Pending batch completions of this lane's workers: each worker has at
    /// most one batch in flight, so this min-heap never exceeds the partition
    /// size and stays cache-resident.
    batch_completions: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, WorkerId)>>,
    /// Lane-local event sequence counter: ties at equal timestamps resolve in
    /// schedule order *within* the lane, exactly as the former global counter
    /// did (cross-lane ties are immaterial — lanes share no mid-epoch state).
    seq: u64,
    pub(crate) now: SimTime,
    /// Swap completions that fired while the worker was no longer owned by
    /// this lane (counted globally, attributed to no lane — mirrors the
    /// former engine's handling of free workers' swap completions).
    pub(crate) unowned_events: u64,

    /// Mid-epoch retirements to merge into the cluster's elastic accounting at
    /// the next barrier: `(worker, class, billed_from_us, retired_at_us)` per
    /// retired worker. A `billed_from_us` of `SimTime::MAX` marks a worker the
    /// market revoked (billing already stopped; lifecycle counts move out of
    /// the revoked pool, not the voluntary draining pool).
    pub(crate) retirements: Vec<(u32, u32, SimTime, SimTime)>,

    // Scratch buffers, reused across events/ticks.
    views_scratch: Vec<WorkerView>,
    batch_scratch: Vec<Query>,
    reroute_scratch: Vec<WorkerId>,

    /// Wall-clock seconds this shard spent executing events (across all epochs).
    pub(crate) wall_s: f64,
    /// Wall-clock seconds of the most recent `run_until` segment.
    pub(crate) epoch_wall_s: f64,
    /// Wall-clock seconds spent waiting on slower shards at barriers
    /// (estimated as the gap to the slowest shard of each epoch; with fewer
    /// worker threads than lanes this overstates waiting, since queued shards
    /// also accrue the gap).
    pub(crate) barrier_wait_s: f64,
    /// Per-phase wall-clock attribution of this shard's dispatch loop
    /// (`observe.profile`; `None` means no timer calls at all).
    pub(crate) profile: Option<Box<crate::trace::PhaseProfile>>,
}

impl<'a> Shard<'a> {
    /// Build a shard and seed its periodic events and first arrival. The
    /// per-lane relative order (control tick, routing tick, metrics tick,
    /// first arrival) matches the former global seeding exactly.
    pub(crate) fn new(
        lane: LaneState<'a>,
        li: u32,
        config: &SimConfig,
        shift: u32,
        num_buckets: usize,
    ) -> Self {
        let mut shard = Self {
            li,
            lane,
            events: CalendarQueue::new(shift, num_buckets),
            batch_completions: std::collections::BinaryHeap::new(),
            seq: 0,
            now: 0,
            unowned_events: 0,
            retirements: Vec::new(),
            views_scratch: Vec::new(),
            batch_scratch: Vec::new(),
            reroute_scratch: Vec::new(),
            wall_s: 0.0,
            epoch_wall_s: 0.0,
            barrier_wait_s: 0.0,
            profile: config
                .observe
                .profile
                .then(|| Box::new(crate::trace::PhaseProfile::default())),
        };
        shard.push(0, LaneEvent::ControlTick);
        shard.push(0, LaneEvent::RoutingTick);
        shard.push(
            secs_to_us(config.metrics_interval_s),
            LaneEvent::MetricsTick,
        );
        if !shard.lane.arrivals_us.is_empty() {
            shard.seq += 1;
            shard.lane.next_arrival = Some((shard.lane.arrivals_us[0], shard.seq, 0));
        }
        shard
    }

    pub(crate) fn push(&mut self, time: SimTime, payload: LaneEvent) {
        self.seq += 1;
        self.events.push(time, self.seq, payload);
    }

    /// Record that `worker`'s current batch finishes at `time`.
    #[inline]
    pub(crate) fn schedule_batch_completion(&mut self, time: SimTime, worker: WorkerId) {
        self.seq += 1;
        self.batch_completions
            .push(std::cmp::Reverse((time, self.seq, worker)));
    }

    fn push_delivery(&mut self, time: SimTime, query: Query, worker: WorkerId) {
        self.push(time, LaneEvent::Delivery { worker, query });
    }

    /// Advance this lane until its next event would be at `bound` or later
    /// (events exactly at `bound` wait for the barrier: cluster events at a
    /// boundary run before same-time lane events, matching the former global
    /// schedule order). Dispatches across the three lane-local sources —
    /// calendar queue, arrival cursor, batch completions — lowest `(time,
    /// seq)` first, exactly the order a single heap would produce.
    pub(crate) fn run_until(
        &mut self,
        bound: SimTime,
        ctx: &LaneCtx<'_>,
        controller: &mut dyn Controller,
    ) -> Result<(), EngineError> {
        let started = std::time::Instant::now();
        #[derive(Clone, Copy, PartialEq, Eq)]
        enum Source {
            Scheduler,
            Arrival,
            Batch,
        }
        loop {
            let mut best: Option<(SimTime, u64, Source)> =
                self.events.peek().map(|(t, s)| (t, s, Source::Scheduler));
            if let Some((t, s, _)) = self.lane.next_arrival {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, Source::Arrival));
                }
            }
            if let Some(&std::cmp::Reverse((t, s, _))) = self.batch_completions.peek() {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, Source::Batch));
                }
            }
            let Some((time, _, source)) = best else {
                break;
            };
            if time >= bound || time > ctx.end_time_us {
                break;
            }
            self.now = time;
            // Self-profiling: two `Instant::now` calls per event, only when
            // `observe.profile` is on (`phase_start` is `None` otherwise and
            // the hot loop pays a single branch).
            let phase_start = self.profile.as_ref().map(|_| std::time::Instant::now());
            let mut phase = PHASE_ARRIVAL;
            match source {
                Source::Arrival => {
                    self.lane.events_processed += 1;
                    let (_, _, idx) =
                        self.lane
                            .next_arrival
                            .take()
                            .ok_or(EngineError::EmptyEventSource {
                                source: "arrival",
                                now_us: time,
                                events_processed: self.lane.events_processed,
                            })?;
                    self.on_arrival(ctx, idx)?;
                }
                Source::Batch => {
                    phase = PHASE_BATCH;
                    let worker = match self.batch_completions.pop() {
                        Some(std::cmp::Reverse((_, _, worker))) => worker,
                        None => {
                            return Err(EngineError::EmptyEventSource {
                                source: "batch",
                                now_us: time,
                                events_processed: self.lane.events_processed,
                            })
                        }
                    };
                    self.lane.events_processed += 1;
                    self.on_batch_done(ctx, worker)?;
                }
                Source::Scheduler => {
                    let (_, _, payload) =
                        self.events.pop().ok_or(EngineError::EmptyEventSource {
                            source: "scheduler",
                            now_us: time,
                            events_processed: self.lane.events_processed,
                        })?;
                    match payload {
                        LaneEvent::SwapDone(worker) => {
                            phase = PHASE_SWAP;
                            // The worker may have left the lane since the swap
                            // was scheduled (migrated or retired): only the
                            // current owner may batch on it.
                            let owner = ctx.owner[worker.index()].load(Ordering::Relaxed);
                            if owner == FREE {
                                self.unowned_events += 1;
                            } else {
                                self.lane.events_processed += 1;
                                if owner == self.li {
                                    self.kick(ctx, worker);
                                }
                            }
                        }
                        LaneEvent::ControlTick => {
                            phase = PHASE_CONTROL;
                            self.lane.events_processed += 1;
                            self.on_control_tick(ctx, controller)?;
                        }
                        LaneEvent::RoutingTick => {
                            phase = PHASE_ROUTING;
                            self.lane.events_processed += 1;
                            self.on_routing_tick(ctx, controller);
                        }
                        LaneEvent::MetricsTick => {
                            phase = PHASE_METRICS;
                            self.lane.events_processed += 1;
                            self.on_metrics_tick(ctx);
                        }
                        LaneEvent::Delivery { worker, query } => {
                            phase = PHASE_DELIVERY;
                            self.lane.events_processed += 1;
                            self.on_delivered(ctx, query, worker)?;
                        }
                    }
                }
            }
            if let Some(start) = phase_start {
                let dt = start.elapsed().as_secs_f64();
                let p = self.profile.as_mut().expect("profile on when timing");
                *match phase {
                    PHASE_ARRIVAL => &mut p.arrival_s,
                    PHASE_DELIVERY => &mut p.delivery_s,
                    PHASE_BATCH => &mut p.batch_s,
                    PHASE_CONTROL => &mut p.control_s,
                    PHASE_ROUTING => &mut p.routing_s,
                    PHASE_METRICS => &mut p.metrics_s,
                    _ => &mut p.swap_s,
                } += dt;
            }
        }
        self.epoch_wall_s = started.elapsed().as_secs_f64();
        self.wall_s += self.epoch_wall_s;
        Ok(())
    }

    // ---- event handlers ----------------------------------------------------------

    fn on_arrival(&mut self, ctx: &LaneCtx<'_>, idx: usize) -> Result<(), EngineError> {
        let lane = &mut self.lane;
        let arrival_time = lane.arrivals_us[idx];
        // Schedule the lane's next arrival first.
        if idx + 1 < lane.arrivals_us.len() {
            self.seq += 1;
            lane.next_arrival = Some((lane.arrivals_us[idx + 1], self.seq, idx + 1));
        }
        lane.current.arrivals += 1;
        lane.arrivals_this_interval += 1;

        // Deterministic trace sampling on the lane-local arrival index: no RNG
        // draw, and the index stream is identical for every `jobs` value, so
        // serial and parallel runs sample (and trace) the same roots.
        let trace_slot = match lane.tracer.as_deref_mut() {
            Some(t) if t.samples(idx as u64) => t.begin_root(self.li, idx as u64, arrival_time),
            _ => u32::MAX,
        };

        let deadline = arrival_time + lane.slo_us;
        let root_ref = lane.roots.insert(RootState {
            deadline_us: deadline,
            outstanding: 1,
            accuracy_sum: 0.0,
            accuracy_count: 0,
            drop_cause: 0,
            trace_slot,
        });
        let query = Query {
            root: root_ref.pack(),
            task: lane.root_task,
            path_accuracy: 1.0,
            deadline_us: deadline,
            enqueued_us: arrival_time,
        };
        match self.pick_frontend_worker(ctx) {
            Some(worker) => {
                let deliver_at = self.now + self.lane.link.frontend_us(worker);
                if trace_slot != u32::MAX {
                    let task = self.lane.root_task as u32;
                    if let Some(t) = self.lane.tracer.as_deref_mut() {
                        t.span(
                            trace_slot,
                            crate::trace::Span {
                                kind: crate::trace::SpanKind::Frontend,
                                start_us: self.now,
                                end_us: deliver_at,
                                task,
                                worker: worker.index() as u32,
                            },
                        );
                    }
                }
                self.push_delivery(deliver_at, query, worker);
                Ok(())
            }
            None => self.drop_query(&query, DropCause::Deadline),
        }
    }

    fn on_delivered(
        &mut self,
        ctx: &LaneCtx<'_>,
        mut q: Query,
        worker_id: WorkerId,
    ) -> Result<(), EngineError> {
        let lane = &mut self.lane;
        lane.per_task_counts[q.task] += 1;
        lane.per_task_seen[q.task] = true;

        // The designated worker may have been re-assigned (or migrated to a
        // different lane) since routing; fall back to any worker of this lane
        // currently serving the task.
        let target = {
            let ok = ctx.owner[worker_id.index()].load(Ordering::Relaxed) == self.li
                && ctx.fleet.get(worker_id.index()).accepts_dispatches()
                && matches!(
                    &ctx.fleet.get(worker_id.index()).assignment,
                    Some(a) if a.variant.task == q.task
                );
            if ok {
                Some(worker_id)
            } else {
                fallback_worker_for_task(lane, ctx.fleet, q.task)
            }
        };
        let Some(target) = target else {
            return self.drop_query(&q, DropCause::Deadline);
        };

        // Last-task dropping: when the query reaches the final task and its leftover
        // budget cannot cover even the expected processing time, drop it.
        if lane.drop_policy == DropPolicy::LastTask && lane.task_is_sink[q.task] {
            let expected_ms = ctx
                .fleet
                .get(target.index())
                .profiled_exec_ms()
                .unwrap_or(0.0);
            let remaining_ms = if q.deadline_us > self.now {
                us_to_ms(q.deadline_us - self.now)
            } else {
                0.0
            };
            if remaining_ms < expected_ms {
                return self.drop_query(&q, DropCause::Deadline);
            }
        }

        q.enqueued_us = self.now;
        if let Some((finish, _)) = ctx
            .fleet
            .get_mut(target.index())
            .deliver_and_try_start(q, self.now)
        {
            self.schedule_batch_completion(finish, target);
        }
        Ok(())
    }

    fn on_batch_done(&mut self, ctx: &LaneCtx<'_>, worker_id: WorkerId) -> Result<(), EngineError> {
        let mut batch = std::mem::take(&mut self.batch_scratch);
        let variant_id = ctx
            .fleet
            .get_mut(worker_id.index())
            .finish_batch_into(&mut batch);
        let Some(variant_id) = variant_id else {
            // A completion with no in-flight variant: either a stale event
            // for a batch the market's revocation deadline aborted (the
            // worker is Retired; the batch is empty and nothing happens), or
            // an unexpected scheduler state — in which case don't lose the
            // queries.
            for q in batch.drain(..) {
                self.drop_query(&q, DropCause::Deadline)?;
            }
            self.batch_scratch = batch;
            if ctx.fleet.get(worker_id.index()).lifecycle == Lifecycle::Draining {
                self.retire_worker(ctx, worker_id);
            }
            return Ok(());
        };
        // Borrow model data straight from the graph (lifetime 'a, independent of
        // `self`), so the loop below can call `&mut self` methods without clones.
        let graph = self.lane.graph;
        let variant = graph.variant(variant_id);
        let children = &graph.task(TaskId(variant_id.task)).children;
        let vdense = self.lane.variant_offset[variant_id.task] + variant_id.variant;
        let budget_ms = {
            let b = self.lane.latency_budgets_ms[vdense];
            if b.is_nan() {
                variant.batch_latency_ms(8)
            } else {
                b
            }
        };
        let num_tasks = self.lane.num_tasks;
        let drop_policy = self.lane.drop_policy;
        // Observability inputs shared by every query of the batch: when it
        // started executing (splits queue wait from execution) and the
        // worker's catalog class (per-class histogram bucket).
        let (batch_started_us, worker_class) = {
            let w = ctx.fleet.get(worker_id.index());
            (w.batch_started_us, w.class as usize)
        };

        for q in batch.drain(..) {
            let path_accuracy = q.path_accuracy * variant.accuracy;

            // Per-task / per-class latency histograms: the query's whole stay
            // at this worker (queue wait + execution).
            if let Some(h) = self.lane.hists.as_deref_mut() {
                let at_task_us = self.now - q.enqueued_us;
                h.per_task[variant_id.task].record(at_task_us);
                h.per_class[worker_class].record(at_task_us);
            }
            // Queue-wait and execution spans of sampled roots.
            let trace_slot = self.trace_slot_of(q.root);
            if trace_slot != u32::MAX {
                let t = self
                    .lane
                    .tracer
                    .as_deref_mut()
                    .expect("slot implies tracer");
                if batch_started_us > q.enqueued_us {
                    t.span(
                        trace_slot,
                        crate::trace::Span {
                            kind: crate::trace::SpanKind::Queue,
                            start_us: q.enqueued_us,
                            end_us: batch_started_us,
                            task: variant_id.task as u32,
                            worker: worker_id.index() as u32,
                        },
                    );
                }
                t.span(
                    trace_slot,
                    crate::trace::Span {
                        kind: crate::trace::SpanKind::Exec,
                        start_us: batch_started_us.max(q.enqueued_us),
                        end_us: self.now,
                        task: variant_id.task as u32,
                        worker: worker_id.index() as u32,
                    },
                );
            }

            // Sink queries need no budget bookkeeping — they complete here.
            if children.is_empty() {
                self.complete_leaf(q.root, path_accuracy)?;
                continue;
            }

            let time_at_task_ms = us_to_ms(self.now - q.enqueued_us);
            let overrun_ms = time_at_task_ms - budget_ms;

            // Per-task dropping: the query exceeded this task's budget, drop it now.
            if drop_policy == DropPolicy::PerTask && overrun_ms > 0.0 {
                self.drop_query(&q, DropCause::Deadline)?;
                continue;
            }

            // Fan out into intermediate queries for each child edge. Children go
            // onto the scheduler as they are routed, each with the delay of its
            // own link — nothing reads the root's bookkeeping until this handler
            // returns, so `outstanding` can be settled after the loop from the
            // spawn count.
            let mut spawned = 0usize;
            let mut any_child_dropped = false;
            for edge in children {
                let mean = variant.mult_factor * edge.branch_ratio;
                let count = stochastic_round(&mut self.lane.rng, mean);
                let child_task = edge.child.index();
                let cell = &mut self.lane.fanout_sums[vdense * num_tasks + child_task];
                cell.0 += count as f64;
                cell.1 += 1;
                for _ in 0..count {
                    let outcome = self.route_downstream(ctx, worker_id, child_task, overrun_ms);
                    match outcome {
                        RouteOutcome::To(target) | RouteOutcome::Rerouted(target) => {
                            if matches!(outcome, RouteOutcome::Rerouted(_)) {
                                self.lane.current.rerouted += 1;
                            }
                            let deliver_at = self.now
                                + self.lane.link.hop_us(
                                    worker_id,
                                    variant_id.task,
                                    target,
                                    child_task,
                                );
                            if trace_slot != u32::MAX {
                                let t = self
                                    .lane
                                    .tracer
                                    .as_deref_mut()
                                    .expect("slot implies tracer");
                                if matches!(outcome, RouteOutcome::Rerouted(_)) {
                                    t.span(
                                        trace_slot,
                                        crate::trace::Span {
                                            kind: crate::trace::SpanKind::Reroute,
                                            start_us: self.now,
                                            end_us: self.now,
                                            task: child_task as u32,
                                            worker: target.index() as u32,
                                        },
                                    );
                                }
                                t.span(
                                    trace_slot,
                                    crate::trace::Span {
                                        kind: crate::trace::SpanKind::Hop,
                                        start_us: self.now,
                                        end_us: deliver_at,
                                        task: child_task as u32,
                                        worker: target.index() as u32,
                                    },
                                );
                            }
                            self.push_delivery(
                                deliver_at,
                                Query {
                                    root: q.root,
                                    task: child_task,
                                    path_accuracy,
                                    deadline_us: q.deadline_us,
                                    enqueued_us: self.now,
                                },
                                target,
                            );
                            spawned += 1;
                        }
                        RouteOutcome::Drop => {
                            any_child_dropped = true;
                        }
                    }
                }
            }

            if spawned == 0 {
                if any_child_dropped {
                    // All children were dropped: the request cannot be fully served.
                    self.drop_query(&q, DropCause::Deadline)?;
                } else {
                    // The model legitimately produced no downstream work (e.g. no
                    // objects detected): the query completes here.
                    self.complete_leaf(q.root, path_accuracy)?;
                }
                continue;
            }

            // Replace this query's contribution to `outstanding` with its children.
            if let Some(root) = self.lane.roots.get_mut(SlotRef::unpack(q.root)) {
                root.outstanding += spawned - 1;
                if any_child_dropped && root.drop_cause == 0 {
                    root.drop_cause = DropCause::Deadline as u8;
                }
            }
        }
        self.batch_scratch = batch;
        // A draining worker retires the moment its last batch completes; warm
        // workers pull the next batch from their queue as before.
        if ctx.fleet.get(worker_id.index()).lifecycle == Lifecycle::Draining {
            self.retire_worker(ctx, worker_id);
        } else {
            self.kick(ctx, worker_id);
        }
        Ok(())
    }

    fn on_control_tick(
        &mut self,
        ctx: &LaneCtx<'_>,
        controller: &mut dyn Controller,
    ) -> Result<(), EngineError> {
        let hint = if self.lane.first_control_tick {
            self.lane.initial_demand_hint
        } else {
            None
        };
        self.lane.first_control_tick = false;

        self.refresh_views(ctx.fleet);
        let plan = {
            let observed = self.observed_state(hint);
            controller.plan(&observed)
        };
        if let Some(plan) = plan {
            self.apply_allocation(ctx, &plan)?;
            // Journal the install lane-side (the one lane-recorded kind): the
            // end-of-run merge sorts it into the global order.
            let (now, li, epoch) = (self.now, self.li, self.lane.assignments_epoch);
            if let Some(j) = self.lane.journal.as_deref_mut() {
                j.record(now, li, crate::journal::JournalKind::PlanInstall { epoch });
            }
        }
        // Refresh routing right after a (possible) re-allocation so it reflects the new
        // worker assignments.
        self.refresh_views(ctx.fleet);
        let routing = {
            let observed = self.observed_state(hint);
            controller.routing(&observed)
        };
        if let Some(routing) = routing {
            self.set_routing(ctx, routing);
        }

        let next = self.now + secs_to_us(ctx.config.control_interval_s);
        if next <= ctx.end_time_us {
            self.push(next, LaneEvent::ControlTick);
        }
        Ok(())
    }

    fn on_routing_tick(&mut self, ctx: &LaneCtx<'_>, controller: &mut dyn Controller) {
        self.refresh_views(ctx.fleet);
        let routing = {
            let observed = self.observed_state(None);
            controller.routing(&observed)
        };
        if let Some(routing) = routing {
            self.set_routing(ctx, routing);
        }
        let next = self.now + secs_to_us(ctx.config.routing_interval_s);
        if next <= ctx.end_time_us {
            self.push(next, LaneEvent::RoutingTick);
        }
    }

    fn on_metrics_tick(&mut self, ctx: &LaneCtx<'_>) {
        let interval = ctx.config.metrics_interval_s;
        let lane = &mut self.lane;
        // Demand observation for the lane's controller.
        lane.demand
            .observe(lane.arrivals_this_interval as f64 / interval);
        lane.arrivals_this_interval = 0;
        // Per-task arrival rates (EWMA-smoothed). Dense state; the HashMap view
        // controllers consume is refreshed here, at tick cadence.
        for task in 0..lane.num_tasks {
            if !lane.per_task_seen[task] {
                continue;
            }
            let qps = lane.per_task_counts[task] as f64 / interval;
            lane.per_task_ewma[task].observe(qps);
            lane.per_task_qps
                .insert(task, lane.per_task_ewma[task].estimate());
            lane.per_task_counts[task] = 0;
        }
        // Fan-out averages for the controller (heartbeat aggregation).
        for (vdense, &variant_id) in lane.variant_ids.iter().enumerate() {
            for child in 0..lane.num_tasks {
                let (sum, count) = lane.fanout_sums[vdense * lane.num_tasks + child];
                if count > 0 {
                    lane.fanout_avg
                        .insert((variant_id, child), sum / count as f64);
                }
            }
        }

        self.flush_interval(ctx.fleet, interval, self.now);

        let next = self.now + secs_to_us(interval);
        if next <= ctx.end_time_us {
            self.push(next, LaneEvent::MetricsTick);
        }
    }

    /// Close the current metrics interval at `now`. Called at metrics-tick
    /// cadence mid-run and once more by the driver at the end of the run
    /// (with the run-global last event time, as the serial engine did).
    pub(crate) fn flush_interval(&mut self, fleet: &Fleet, metrics_interval_s: f64, now: SimTime) {
        let lane = &mut self.lane;
        let mut finished = std::mem::take(&mut lane.current);
        finished.start_s = crate::types::us_to_secs(now) - metrics_interval_s;
        if finished.start_s < 0.0 {
            finished.start_s = 0.0;
        }
        finished.active_workers = lane
            .owned
            .iter()
            .filter(|w| {
                let worker = fleet.get(w.index());
                worker.is_active() && worker.accepts_dispatches()
            })
            .count();
        // The lane's capacity is its partition's warm workers, so per-pipeline
        // utilization is active-vs-granted, not active-vs-whole-cluster (and
        // draining workers count toward neither side).
        let warm = lane
            .owned
            .iter()
            .filter(|w| fleet.get(w.index()).accepts_dispatches())
            .count();
        finished.cluster_size = warm;
        lane.intervals.push(finished);
        lane.current.cluster_size = warm;
        // Close the interval's latency-histogram delta: swap the recorder for
        // a fresh one, so re-merging the deltas reproduces the whole-run
        // histogram exactly (reset-based, not snapshot subtraction).
        if let Some(h) = lane.window_hist.as_deref_mut() {
            lane.window_hists.push(std::mem::take(h));
        }
    }

    // ---- controller observation ---------------------------------------------------

    fn refresh_views(&mut self, fleet: &Fleet) {
        let now = self.now;
        let views = &mut self.views_scratch;
        views.clear();
        // Draining workers are excluded: they are finishing borrowed time, not
        // capacity the controller may plan instances onto.
        views.extend(
            self.lane
                .owned
                .iter()
                .filter(|id| fleet.get(id.index()).accepts_dispatches())
                .map(|id| {
                    let w = fleet.get(id.index());
                    WorkerView {
                        id: w.id,
                        variant: w.assignment.map(|a| a.variant),
                        max_batch: w.assignment.map(|a| a.max_batch).unwrap_or(1),
                        queue_len: w.queue_len(),
                        swapping: w.is_swapping(now),
                    }
                }),
        );
    }

    /// The capacity-scoped view the lane's controller observes: only the
    /// lane's partition (its warm workers), with `cluster_size` equal to the
    /// partition size. Callers must [`Shard::refresh_views`] first.
    fn observed_state(&self, hint: Option<f64>) -> ObservedState<'_> {
        let lane = &self.lane;
        ObservedState {
            now_s: crate::types::us_to_secs(self.now),
            cluster_size: self.views_scratch.len(),
            workers: &self.views_scratch,
            demand: &lane.demand,
            initial_demand_hint: hint,
            observed_fanout: &lane.fanout_avg,
            per_task_arrival_qps: &lane.per_task_qps,
        }
    }

    // ---- routing and dropping -----------------------------------------------------

    /// Install a controller-emitted compiled plan verbatim. The plan was
    /// built from the worker views snapshotted in this very control event
    /// (nothing mutates assignments between the snapshot and this store), so
    /// its tables need no re-filtering: stamping it with the current
    /// assignment epoch is the whole hand-off. Any later assignment change
    /// bumps the epoch and diverts sampling to the validity-checked stale
    /// scan until the next refresh.
    fn set_routing(&mut self, ctx: &LaneCtx<'_>, mut plan: CompiledPlan) {
        let lane = &mut self.lane;
        plan.finalize(ctx.fleet.len(), lane.assignments_epoch);
        lane.compiled = plan;
    }

    fn pick_frontend_worker(&mut self, ctx: &LaneCtx<'_>) -> Option<WorkerId> {
        let lane = &mut self.lane;
        let choice = if lane.compiled.epoch() == lane.assignments_epoch {
            lane.compiled.frontend().sample(&mut lane.rng)
        } else {
            sample_table_scan(
                lane.compiled.frontend_raw(),
                ctx.fleet,
                ctx.owner,
                self.li,
                lane.root_task,
                &mut lane.rng,
            )
        };
        choice.or_else(|| fallback_worker_for_task(lane, ctx.fleet, lane.root_task))
    }

    fn route_downstream(
        &mut self,
        ctx: &LaneCtx<'_>,
        upstream: WorkerId,
        child_task: usize,
        overrun_ms: f64,
    ) -> RouteOutcome {
        let mut ties = std::mem::take(&mut self.reroute_scratch);
        let lane = &mut self.lane;
        let fresh = lane.compiled.epoch() == lane.assignments_epoch;
        // Default choice: the upstream worker's own routing table, then the per-task
        // default table, then any owned worker serving the task.
        let sampled = if fresh {
            lane.compiled
                .downstream_table(upstream, child_task)
                .and_then(|t| t.sample(&mut lane.rng))
        } else {
            lane.compiled
                .raw_downstream(upstream, child_task)
                .and_then(|t| {
                    sample_table_scan(t, ctx.fleet, ctx.owner, self.li, child_task, &mut lane.rng)
                })
        };
        let default_choice =
            sampled.or_else(|| fallback_worker_for_task(lane, ctx.fleet, child_task));

        let Some(default_choice) = default_choice else {
            self.reroute_scratch = ties;
            return RouteOutcome::Drop;
        };

        // Opportunistic rerouting: if the query is running late, look for a strictly
        // faster backup worker that can make up the deficit.
        if lane.drop_policy == DropPolicy::OpportunisticRerouting && overrun_ms > 0.0 {
            let default_exec_ms = ctx
                .fleet
                .get(default_choice.index())
                .profiled_exec_ms()
                .unwrap_or(f64::INFINITY);
            let needed_ms = default_exec_ms - overrun_ms;
            ties.clear();
            if fresh {
                // Emitted backups are already accuracy-sorted (desc), so the
                // first match has the best accuracy and ties are collected
                // until accuracy falls below it.
                let mut best_acc = f64::NEG_INFINITY;
                for b in lane.compiled.backup(child_task) {
                    if !ties.is_empty() && b.accuracy < best_acc - 1e-9 {
                        break;
                    }
                    if b.exec_time_ms <= needed_ms {
                        if ties.is_empty() {
                            best_acc = b.accuracy;
                        }
                        ties.push(b.worker);
                    }
                }
            } else {
                // The emitted list is already stably accuracy-sorted; the
                // stale scan's own stable sort is idempotent on it, so the
                // tie set matches what the raw plan list would have produced.
                stale_backup_ties(
                    lane.compiled.backup(child_task),
                    ctx.fleet,
                    ctx.owner,
                    self.li,
                    child_task,
                    needed_ms,
                    &mut ties,
                );
            }
            if ties.is_empty() {
                self.reroute_scratch = ties;
                return RouteOutcome::Drop;
            }
            let pick = ties[lane.rng.gen_range(0..ties.len())];
            self.reroute_scratch = ties;
            return RouteOutcome::Rerouted(pick);
        }

        self.reroute_scratch = ties;
        RouteOutcome::To(default_choice)
    }

    fn drop_query(&mut self, q: &Query, cause: DropCause) -> Result<(), EngineError> {
        self.drop_root_child(q.root, cause)
    }

    /// The trace slot of a root, or `u32::MAX` when the root is unsampled (or
    /// tracing is off — the tracer-off path is a `None` check and a return).
    #[inline]
    fn trace_slot_of(&self, root_packed: u64) -> u32 {
        if self.lane.tracer.is_none() {
            return u32::MAX;
        }
        self.lane
            .roots
            .get(SlotRef::unpack(root_packed))
            .map(|r| r.trace_slot)
            .unwrap_or(u32::MAX)
    }

    /// Append a zero-length marker span to a sampled root at the current time
    /// (requeue/reroute annotations from re-home paths — also called by the
    /// engine's barrier-time handlers).
    pub(crate) fn trace_marker(
        &mut self,
        root_packed: u64,
        kind: crate::trace::SpanKind,
        worker: WorkerId,
    ) {
        let slot = self.trace_slot_of(root_packed);
        if slot != u32::MAX {
            let now = self.now;
            if let Some(t) = self.lane.tracer.as_deref_mut() {
                t.span(
                    slot,
                    crate::trace::Span {
                        kind,
                        start_us: now,
                        end_us: now,
                        task: crate::trace::NO_ID,
                        worker: worker.index() as u32,
                    },
                );
            }
        }
    }

    pub(crate) fn drop_root_child(
        &mut self,
        root_packed: u64,
        cause: DropCause,
    ) -> Result<(), EngineError> {
        let lane = &mut self.lane;
        let root_ref = SlotRef::unpack(root_packed);
        if let Some(root) = lane.roots.get_mut(root_ref) {
            if root.drop_cause == 0 {
                root.drop_cause = cause as u8;
            }
            root.outstanding = root.outstanding.saturating_sub(1);
            if root.outstanding == 0 {
                let state = lane
                    .roots
                    .remove(root_ref)
                    .ok_or(EngineError::MissingRoot {
                        context: "drop",
                        now_us: self.now,
                    })?;
                finalize_root(lane, self.now, state);
            }
        }
        Ok(())
    }

    fn complete_leaf(&mut self, root_packed: u64, accuracy: f64) -> Result<(), EngineError> {
        let lane = &mut self.lane;
        let root_ref = SlotRef::unpack(root_packed);
        if let Some(root) = lane.roots.get_mut(root_ref) {
            root.accuracy_sum += accuracy;
            root.accuracy_count += 1;
            root.outstanding = root.outstanding.saturating_sub(1);
            if root.outstanding == 0 {
                let state = lane
                    .roots
                    .remove(root_ref)
                    .ok_or(EngineError::MissingRoot {
                        context: "complete",
                        now_us: self.now,
                    })?;
                finalize_root(lane, self.now, state);
            }
        }
        Ok(())
    }

    // ---- allocation --------------------------------------------------------------

    fn apply_allocation(
        &mut self,
        ctx: &LaneCtx<'_>,
        plan: &AllocationPlan,
    ) -> Result<(), EngineError> {
        {
            let lane = &mut self.lane;
            lane.latency_budgets_ms.fill(f64::NAN);
            for (&variant, &budget) in &plan.latency_budgets_ms {
                let idx = lane.variant_offset[variant.task] + variant.variant;
                lane.latency_budgets_ms[idx] = budget;
            }
            lane.drop_policy = plan.drop_policy;
        }
        let graph = self.lane.graph;
        // The lane only ever places instances on its own partition — and only
        // on its warm workers (draining ones are leaving, booting ones are
        // not capacity yet).
        let owned: Vec<WorkerId> = self
            .lane
            .owned
            .iter()
            .copied()
            .filter(|w| ctx.fleet.get(w.index()).accepts_dispatches())
            .collect();

        // Desired replica counts per (variant, batch).
        let mut desired: Vec<(VariantId, u32, usize)> = plan
            .instances
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| (s.variant, s.max_batch, s.count))
            .collect();
        // Never exceed the lane's partition.
        let mut total: usize = desired.iter().map(|d| d.2).sum();
        while total > owned.len() {
            // Trim the largest group first (the plan should never do this, but the
            // engine enforces the physical limit regardless).
            if let Some(max) = desired.iter_mut().max_by_key(|d| d.2) {
                max.2 -= 1;
                total -= 1;
            } else {
                break;
            }
        }

        // Step 1: keep workers that already host a desired variant.
        let mut remaining: Vec<(VariantId, u32, usize)> = desired.clone();
        let mut keep: Vec<Option<(VariantId, u32)>> = vec![None; ctx.fleet.len()];
        for &w in &owned {
            let wi = w.index();
            if let Some(a) = ctx.fleet.get(wi).assignment {
                if let Some(slot) = remaining
                    .iter_mut()
                    .find(|(v, _, c)| *v == a.variant && *c > 0)
                {
                    keep[wi] = Some((slot.0, slot.1));
                    slot.2 -= 1;
                }
            }
        }

        // Step 2: place still-needed instances on unassigned workers first, then on
        // workers whose current variant is no longer needed.
        let mut to_place: Vec<(VariantId, u32)> = Vec::new();
        for (v, b, c) in &remaining {
            for _ in 0..*c {
                to_place.push((*v, *b));
            }
        }
        if !to_place.is_empty() {
            // unassigned workers
            for &w in &owned {
                if to_place.is_empty() {
                    break;
                }
                let wi = w.index();
                if ctx.fleet.get(wi).assignment.is_none() && keep[wi].is_none() {
                    let (v, b) = to_place.remove(0);
                    keep[wi] = Some((v, b));
                }
            }
            // repurposed workers
            for &w in &owned {
                if to_place.is_empty() {
                    break;
                }
                let wi = w.index();
                if ctx.fleet.get(wi).assignment.is_some() && keep[wi].is_none() {
                    let (v, b) = to_place.remove(0);
                    keep[wi] = Some((v, b));
                }
            }
        }

        // Step 3: apply the assignment to every owned worker.
        let mut orphaned: Vec<Query> = Vec::new();
        for &w in &owned {
            let wi = w.index();
            match keep[wi] {
                Some((variant, batch)) => {
                    let previous_task = ctx.fleet.get(wi).assignment.map(|a| a.variant.task);
                    let changed = ctx.fleet.get_mut(wi).assign(variant, batch, graph);
                    if changed {
                        // Queries queued for a different task must be re-routed.
                        if previous_task.is_some() && previous_task != Some(variant.task) {
                            orphaned.extend(ctx.fleet.get_mut(wi).drain_queue());
                        }
                        // Loading a *different* model onto a previously active worker
                        // stalls it for the swap duration. Powered-down workers are
                        // assumed to be pre-warmed by the cluster bootstrap.
                        if ctx.config.model_swap_ms > 0.0 && previous_task.is_some() {
                            let until = self.now + ms_to_us(ctx.config.model_swap_ms);
                            ctx.fleet.get_mut(wi).begin_swap(until);
                            self.push(until, LaneEvent::SwapDone(WorkerId(wi)));
                        }
                    }
                }
                None => {
                    if ctx.fleet.get(wi).is_active() {
                        orphaned.extend(ctx.fleet.get_mut(wi).drain_queue());
                        ctx.fleet.get_mut(wi).unassign();
                    }
                }
            }
        }

        // Assignments (possibly) changed: invalidate the compiled routing until the
        // controller hands down a plan built against the new assignments, and rebuild
        // the per-task worker lists the fallback path uses.
        self.lane.assignments_epoch += 1;
        self.rebuild_workers_by_task(ctx.fleet);

        // Step 4: re-home queries that were queued on reconfigured workers.
        for q in orphaned {
            match fallback_worker_for_task(&self.lane, ctx.fleet, q.task) {
                Some(target) => {
                    let mut q = q;
                    q.enqueued_us = self.now;
                    self.trace_marker(q.root, crate::trace::SpanKind::Requeue, target);
                    ctx.fleet.get_mut(target.index()).enqueue(q);
                    self.kick(ctx, target);
                }
                None => self.drop_query(&q, DropCause::Reclaimed)?,
            }
        }
        Ok(())
    }

    /// Rebuild the lane's per-task worker lists from its owned partition. Only
    /// warm workers are listed: these lists are the dispatch fallback, and a
    /// draining worker must never receive a new dispatch.
    pub(crate) fn rebuild_workers_by_task(&mut self, fleet: &Fleet) {
        let lane = &mut self.lane;
        for list in lane.workers_by_task.iter_mut() {
            list.clear();
        }
        for &w in &lane.owned {
            let worker = fleet.get(w.index());
            if !worker.accepts_dispatches() {
                continue;
            }
            if let Some(a) = worker.assignment {
                if a.variant.task < lane.num_tasks {
                    lane.workers_by_task[a.variant.task].push(w);
                }
            }
        }
    }

    /// Finish one of this lane's drained workers mid-epoch: stop serving, free
    /// the slot's ownership, drop it from the lane's routing state, and buffer
    /// the billing delta for the cluster accounting merge at the next barrier.
    /// The slot itself is never reused, so `WorkerId`s stay stable. (This is
    /// the shard-local equivalent of the driver's barrier-time retirement: the
    /// worker appears only in this lane's sorted `owned` list, so the targeted
    /// removal matches the driver's full owner-map rebuild exactly.)
    fn retire_worker(&mut self, ctx: &LaneCtx<'_>, worker: WorkerId) {
        let wi = worker.index();
        let (class, billed_from) = {
            let w = ctx.fleet.get_mut(wi);
            debug_assert_eq!(w.lifecycle, Lifecycle::Draining);
            let class = w.class;
            let billed_from = w.billed_from_us;
            w.lifecycle = Lifecycle::Retired;
            w.unassign();
            (class, billed_from)
        };
        self.retirements
            .push((wi as u32, class, billed_from, self.now));
        let lane = ctx.owner[wi].load(Ordering::Relaxed);
        debug_assert_eq!(lane, self.li, "a shard retires only its own workers");
        if lane == self.li {
            ctx.owner[wi].store(FREE, Ordering::Relaxed);
            if let Ok(pos) = self.lane.owned.binary_search(&worker) {
                self.lane.owned.remove(pos);
            }
            self.lane.assignments_epoch += 1;
            self.rebuild_workers_by_task(ctx.fleet);
        }
    }

    fn kick(&mut self, ctx: &LaneCtx<'_>, worker: WorkerId) {
        if let Some((finish, _)) = ctx.fleet.get_mut(worker.index()).try_start_batch(self.now) {
            debug_assert_eq!(
                ctx.owner[worker.index()].load(Ordering::Relaxed),
                self.li,
                "a lane batches only on its own workers"
            );
            self.schedule_batch_completion(finish, worker);
        }
    }
}

pub(crate) fn finalize_root(lane: &mut LaneState<'_>, now: SimTime, state: RootState) {
    lane.window_finished += 1;
    let dropped = state.drop_cause != 0 || state.accuracy_count == 0;
    if state.trace_slot != u32::MAX {
        if let Some(t) = lane.tracer.as_deref_mut() {
            let kind = if dropped {
                crate::trace::SpanKind::Drop
            } else {
                crate::trace::SpanKind::Complete
            };
            t.span(
                state.trace_slot,
                crate::trace::Span {
                    kind,
                    start_us: now,
                    end_us: now,
                    task: crate::trace::NO_ID,
                    worker: crate::trace::NO_ID,
                },
            );
            t.finish(state.trace_slot, now, dropped);
        }
    }
    if dropped {
        lane.current.dropped += 1;
        match state.drop_cause {
            c if c == DropCause::Reclaimed as u8 => lane.current.dropped_reclaimed += 1,
            c if c == DropCause::Revoked as u8 => lane.current.dropped_revoked += 1,
            // Cause 0 with nothing served (a root whose every branch vanished
            // without an explicit drop) reads as a deadline loss.
            _ => lane.current.dropped_deadline += 1,
        }
        return;
    }
    let accuracy = state.accuracy_sum / state.accuracy_count as f64;
    if now <= state.deadline_us {
        lane.current.completed_on_time += 1;
        lane.window_on_time += 1;
    } else {
        lane.current.completed_late += 1;
    }
    let e2e_us = now.saturating_sub(state.deadline_us - lane.slo_us);
    if let Some(h) = lane.hists.as_deref_mut() {
        // End-to-end latency of a served root: arrival (deadline − SLO) → now.
        h.e2e.record(e2e_us);
    }
    // The timeline's windowed recorder sees the exact same value, so merging
    // the per-interval deltas reproduces `hists.e2e` bit-for-bit.
    if let Some(h) = lane.window_hist.as_deref_mut() {
        h.record(e2e_us);
    }
    lane.current.accuracy_sum += accuracy;
    lane.current.accuracy_count += 1;
}

/// Any worker of the lane serving `task`, preferring the shortest queue.
pub(crate) fn fallback_worker_for_task(
    lane: &LaneState<'_>,
    fleet: &Fleet,
    task: usize,
) -> Option<WorkerId> {
    lane.workers_by_task[task]
        .iter()
        .copied()
        .min_by_key(|w| fleet.get(w.index()).queue_len())
}

fn stochastic_round(rng: &mut StdRng, mean: f64) -> usize {
    // `as usize` truncates, which equals floor() for the non-negative
    // means used here — and avoids a libm floor call on baseline x86-64.
    debug_assert!(mean >= 0.0);
    let base = mean as usize;
    let frac = mean - base as f64;
    let extra = if frac > 0.0 && rng.gen::<f64>() < frac {
        1
    } else {
        0
    };
    base + extra
}

/// Sample a worker from a raw weighted table, skipping entries that no longer
/// serve the expected task *for this lane*: the slow path used while the
/// compiled routing is stale. Two passes (sum, then CDF walk) — no allocation.
/// The `owner` check comes first (short-circuit): a worker owned elsewhere is
/// rejected without its data ever being read, which is what keeps stale-table
/// scans sound while other shards run.
fn sample_table_scan(
    table: &[(WorkerId, f64)],
    fleet: &Fleet,
    owner: &[AtomicU32],
    lane: u32,
    task: usize,
    rng: &mut StdRng,
) -> Option<WorkerId> {
    let valid = |w: WorkerId, weight: f64| {
        weight > 0.0
            && owner[w.index()].load(Ordering::Relaxed) == lane
            && fleet.get(w.index()).accepts_dispatches()
            && fleet
                .get(w.index())
                .assignment
                .map(|a| a.variant.task == task)
                .unwrap_or(false)
    };
    let total: f64 = table
        .iter()
        .filter(|(w, weight)| valid(*w, *weight))
        .map(|(_, weight)| *weight)
        .sum();
    if total <= 0.0 {
        return None;
    }
    let mut draw = rng.gen_range(0.0..total);
    let mut last = None;
    for (worker, weight) in table.iter().filter(|(w, weight)| valid(*w, *weight)) {
        draw -= weight;
        last = Some(*worker);
        if draw <= 0.0 {
            return last;
        }
    }
    last
}

/// Collect the rescue candidates for opportunistic rerouting from a raw backup
/// table (slow path): filter by execution time, lane ownership, and current
/// assignment, then keep every candidate whose accuracy ties the best one.
#[allow(clippy::too_many_arguments)]
fn stale_backup_ties(
    backup: &[BackupWorker],
    fleet: &Fleet,
    owner: &[AtomicU32],
    lane: u32,
    task: usize,
    needed_ms: f64,
    ties: &mut Vec<WorkerId>,
) {
    let mut candidates: Vec<&BackupWorker> = backup
        .iter()
        .filter(|b| {
            b.exec_time_ms <= needed_ms
                && owner[b.worker.index()].load(Ordering::Relaxed) == lane
                && fleet.get(b.worker.index()).accepts_dispatches()
                && fleet
                    .get(b.worker.index())
                    .assignment
                    .map(|a| a.variant.task == task)
                    .unwrap_or(false)
        })
        .collect();
    if candidates.is_empty() {
        return;
    }
    // total_cmp with NaN demoted to -inf: a NaN accuracy from a degenerate
    // profile must neither panic the data plane mid-run (the old
    // `partial_cmp(..).unwrap()`) nor win a rescue (`total_cmp` alone ranks
    // NaN above +inf).
    let nan_last = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
    candidates.sort_by(|a, b| nan_last(b.accuracy).total_cmp(&nan_last(a.accuracy)));
    let best_acc = candidates[0].accuracy;
    ties.extend(
        candidates
            .iter()
            .take_while(|c| (c.accuracy - best_acc).abs() < 1e-9)
            .map(|c| c.worker),
    );
}

#[derive(Clone, Copy)]
enum RouteOutcome {
    To(WorkerId),
    Rerouted(WorkerId),
    Drop,
}
