//! A generational slab arena for in-flight simulation state.
//!
//! The event heap must not own heavyweight payloads (events are copied around
//! inside the binary heap), so the engine parks in-flight `Query`s and root
//! request state here and threads a plain [`SlotRef`] — a dense `u32` index
//! plus a generation counter — through the event payloads. Lookups are a
//! bounds-checked array index instead of a `HashMap` probe, which removes all
//! hashing from the per-event hot path. The generation counter makes stale
//! references (a slot freed and reused) detectable: `get`/`remove` with an
//! outdated generation return `None` instead of aliasing the new occupant.

/// A generational reference to a slot in a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotRef {
    slot: u32,
    generation: u32,
}

impl SlotRef {
    /// Pack into a `u64` (generation in the high half) so the reference can be
    /// carried in existing `u64` id fields.
    pub fn pack(self) -> u64 {
        ((self.generation as u64) << 32) | self.slot as u64
    }

    /// Inverse of [`SlotRef::pack`].
    pub fn unpack(packed: u64) -> Self {
        SlotRef {
            slot: packed as u32,
            generation: (packed >> 32) as u32,
        }
    }
}

struct Entry<T> {
    generation: u32,
    value: Option<T>,
}

/// A slab arena: O(1) insert/remove/lookup with dense integer keys and
/// generation-checked access. Freed slots are recycled LIFO.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `capacity` values before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, returning its reference.
    #[inline]
    pub fn insert(&mut self, value: T) -> SlotRef {
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                let entry = &mut self.entries[slot as usize];
                debug_assert!(entry.value.is_none());
                entry.value = Some(value);
                SlotRef {
                    slot,
                    generation: entry.generation,
                }
            }
            None => {
                let slot = u32::try_from(self.entries.len()).expect("slab overflow");
                self.entries.push(Entry {
                    generation: 0,
                    value: Some(value),
                });
                SlotRef {
                    slot,
                    generation: 0,
                }
            }
        }
    }

    /// Shared access; `None` if the reference is stale or vacant.
    pub fn get(&self, r: SlotRef) -> Option<&T> {
        self.entries
            .get(r.slot as usize)
            .filter(|e| e.generation == r.generation)
            .and_then(|e| e.value.as_ref())
    }

    /// Mutable access; `None` if the reference is stale or vacant.
    #[inline]
    pub fn get_mut(&mut self, r: SlotRef) -> Option<&mut T> {
        self.entries
            .get_mut(r.slot as usize)
            .filter(|e| e.generation == r.generation)
            .and_then(|e| e.value.as_mut())
    }

    /// Remove and return the value; `None` if the reference is stale or
    /// vacant. The slot is recycled with a bumped generation.
    #[inline]
    pub fn remove(&mut self, r: SlotRef) -> Option<T> {
        let entry = self.entries.get_mut(r.slot as usize)?;
        if entry.generation != r.generation || entry.value.is_none() {
            return None;
        }
        let value = entry.value.take();
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(r.slot);
        self.len -= 1;
        value
    }

    /// Remove every value, visiting each one (used to account for state still
    /// in flight when a run ends).
    pub fn drain_with(&mut self, mut f: impl FnMut(T)) {
        for (slot, entry) in self.entries.iter_mut().enumerate() {
            if let Some(value) = entry.value.take() {
                entry.generation = entry.generation.wrapping_add(1);
                self.free.push(slot as u32);
                self.len -= 1;
                f(value);
            }
        }
        debug_assert_eq!(self.len, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(b), Some("b"));
        assert_eq!(slab.remove(b), None, "double remove must fail");
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), Some(&"a"));
    }

    #[test]
    fn stale_references_are_rejected_after_reuse() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        // slot recycled, generation bumped
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(b), Some(&2));
        assert_ne!(a, b);
    }

    #[test]
    fn pack_roundtrips() {
        let mut slab = Slab::new();
        for i in 0..100 {
            let r = slab.insert(i);
            assert_eq!(SlotRef::unpack(r.pack()), r);
        }
        let r = slab.insert(7);
        slab.remove(r);
        let r2 = slab.insert(8);
        assert_eq!(r2.slot, r.slot);
        assert_ne!(SlotRef::unpack(r.pack()), r2);
    }

    #[test]
    fn drain_visits_all_live_values() {
        let mut slab = Slab::new();
        let refs: Vec<_> = (0..10).map(|i| slab.insert(i)).collect();
        slab.remove(refs[3]);
        slab.remove(refs[7]);
        let mut seen = Vec::new();
        slab.drain_with(|v| seen.push(v));
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        assert!(slab.is_empty());
        // slots are reusable afterwards
        let r = slab.insert(42);
        assert_eq!(slab.get(r), Some(&42));
    }
}
