//! The deep-observability layer: log-bucketed latency histograms, deterministic
//! sampled query tracing, and engine self-profiling.
//!
//! Everything in this module is *observation-only*: nothing here consumes RNG
//! draws, schedules events, or perturbs the `(time, seq)` dispatch order, so
//! enabling any of it leaves the simulated results bit-identical (pinned by the
//! determinism goldens and the trace-identity tests).
//!
//! # Histograms
//!
//! [`Histogram`] is an HDR-style log-linear histogram over microsecond values
//! with a **fixed bucket layout** (compile-time constants, independent of the
//! data): values below 2^[`HIST_SUB_BITS`] land in exact unit buckets, larger
//! values in `2^HIST_SUB_BITS` sub-buckets per power of two (≤ ~3% relative
//! error). Because the layout never adapts, merging histograms is exact
//! element-wise integer addition — lane merges and seed aggregation commute
//! with recording.
//!
//! # Query tracing
//!
//! [`LaneTracer`] samples every Nth root arrival of a lane (a seed-stable,
//! RNG-free decision on the lane-local arrival index, so `jobs = N` runs trace
//! exactly the roots serial runs trace) and records a [`Span`] tree across the
//! root's whole life: the frontend hop, per-hop queue wait, batch execution,
//! network transfers, rescue/requeue events, and the terminal completion or
//! drop. [`TraceLog::to_chrome_json`] exports the merged log as Chrome
//! trace-event JSON loadable in Perfetto (`loki run <scenario> --trace out.json`).
//!
//! # Self-profiling
//!
//! [`PhaseProfile`] accumulates wall-clock seconds per engine phase (arrival
//! ingest, dispatch, batch completion, controller, routing, metrics, swaps,
//! plus the cluster-level market/elastic/rebalance phases), gated by
//! [`ObserveConfig::profile`] so the timer calls cost nothing when off.

use crate::types::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Observability configuration carried by [`crate::SimConfig`]. The default —
/// histograms on, tracing and profiling off — adds no timer calls and no trace
/// allocations to the hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserveConfig {
    /// Trace every Nth root arrival per lane (`0` disables tracing). The
    /// decision uses the lane-local arrival index — never the RNG — so the
    /// sampled set is identical across `jobs` values and unchanged runs.
    pub trace_sample: u64,
    /// Accumulate per-phase wall-clock timers per lane (plus the cluster
    /// phases on the driver). Off by default: profiling calls `Instant::now`
    /// twice per event, which is measurable at 10M+ events/s.
    pub profile: bool,
    /// Record latency histograms (end-to-end, per task, per worker class).
    /// On by default — recording is a couple of array increments per query,
    /// which the 1M-arrival bench guard pins as inside its wall budget.
    pub histograms: bool,
    /// Record the timeline layer: the structured cluster event journal
    /// ([`crate::journal::Journal`]) plus per-metrics-interval windowed
    /// latency histograms ([`crate::SimResult::window`]). Off by default.
    /// Observation-only like everything else here: journal recording happens
    /// at hooks that already exist (it consumes no RNG draws and schedules no
    /// events), and the windowed recorder is a second histogram recorded in
    /// parallel with the whole-run one, swapped out at each interval flush —
    /// so the per-interval deltas re-merge *exactly* to the run histogram.
    pub timeline: bool,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        Self {
            trace_sample: 0,
            profile: false,
            histograms: true,
            timeline: false,
        }
    }
}

/// Sub-bucket resolution of the log-linear layout: `2^HIST_SUB_BITS`
/// sub-buckets per power of two (values below that are exact).
pub const HIST_SUB_BITS: u32 = 5;
const SUB: u64 = 1 << HIST_SUB_BITS;
/// Total buckets of the fixed layout (covers the full `u64` range).
pub const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize + 1) * SUB as usize;

/// Bucket index of a microsecond value under the fixed log-linear layout.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64;
        let shift = msb - HIST_SUB_BITS as u64;
        let group = shift + 1;
        let sub = (v >> shift) & (SUB - 1);
        (group * SUB + sub) as usize
    }
}

/// Lower bound (inclusive) of a bucket, i.e. the smallest value mapping to it.
pub fn bucket_low(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        index
    } else {
        let group = index / SUB;
        let sub = index % SUB;
        (SUB + sub) << (group - 1)
    }
}

/// An HDR-style log-linear histogram over microsecond values with a fixed
/// bucket layout, so merges are exact integer additions. Preallocated at
/// construction; recording is branch + shift + increment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram with the full fixed layout preallocated.
    pub fn new() -> Self {
        Self {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Record one microsecond value.
    #[inline]
    pub fn record(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.total += 1;
        self.sum_us += us;
        if us < self.min_us {
            self.min_us = us;
        }
        if us > self.max_us {
            self.max_us = us;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of the recorded values in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64 / 1_000.0
        }
    }

    /// The exact largest recorded value in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_us
        }
    }

    /// The quantile value in microseconds: the lower bound of the first bucket
    /// whose cumulative count reaches `ceil(q * count)` (HDR's "lowest
    /// equivalent value" convention — exact for values below 2^[`HIST_SUB_BITS`],
    /// ≤ ~3% below the true value otherwise). Returns 0 when empty.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_low(i);
            }
        }
        self.max_us
    }

    /// [`Histogram::percentile_us`] in milliseconds.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        self.percentile_us(q) as f64 / 1_000.0
    }

    /// Merge another histogram into this one. Exact: the result is
    /// bit-identical to a histogram that recorded both value streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The `[p50, p90, p99, p999]` milliseconds vector reports print.
    pub fn percentiles_ms(&self) -> [f64; 4] {
        [
            self.percentile_ms(0.50),
            self.percentile_ms(0.90),
            self.percentile_ms(0.99),
            self.percentile_ms(0.999),
        ]
    }
}

/// The latency histograms of one run (or one pipeline lane of a multi run),
/// all in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// End-to-end latency of served (on-time or late) root queries.
    pub e2e: Histogram,
    /// Time at each task per processed query: queue wait plus batch execution,
    /// indexed by task.
    pub per_task: Vec<Histogram>,
    /// The same per-query task times, bucketed by the executing worker's
    /// class (one entry for fixed fleets; catalog order for elastic fleets).
    pub per_class: Vec<Histogram>,
}

impl LatencyStats {
    /// Empty stats preallocated for `num_tasks` tasks and `num_classes`
    /// worker classes.
    pub fn new(num_tasks: usize, num_classes: usize) -> Self {
        Self {
            e2e: Histogram::new(),
            per_task: (0..num_tasks).map(|_| Histogram::new()).collect(),
            per_class: (0..num_classes.max(1)).map(|_| Histogram::new()).collect(),
        }
    }

    /// Merge another lane's stats into this one (exact; tasks/classes beyond
    /// this side's layout are appended).
    pub fn merge(&mut self, other: &LatencyStats) {
        self.e2e.merge(&other.e2e);
        for (i, h) in other.per_task.iter().enumerate() {
            if i < self.per_task.len() {
                self.per_task[i].merge(h);
            } else {
                self.per_task.push(h.clone());
            }
        }
        for (i, h) in other.per_class.iter().enumerate() {
            if i < self.per_class.len() {
                self.per_class[i].merge(h);
            } else {
                self.per_class.push(h.clone());
            }
        }
    }
}

/// What one [`Span`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Frontend → first-task worker network hop.
    Frontend,
    /// Wait in a worker's queue until its batch started.
    Queue,
    /// Batch execution on a worker.
    Exec,
    /// Upstream worker → downstream worker network hop.
    Hop,
    /// Zero-length marker: opportunistic rerouting rescued this query.
    Reroute,
    /// Zero-length marker: the query was re-homed after its worker was
    /// reclaimed or revoked.
    Requeue,
    /// Zero-length terminal marker: a branch of the root was dropped.
    Drop,
    /// Zero-length terminal marker: the root completed (all sinks done).
    Complete,
}

impl SpanKind {
    /// Stable lowercase name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Frontend => "frontend",
            SpanKind::Queue => "queue",
            SpanKind::Exec => "exec",
            SpanKind::Hop => "hop",
            SpanKind::Reroute => "reroute",
            SpanKind::Requeue => "requeue",
            SpanKind::Drop => "drop",
            SpanKind::Complete => "complete",
        }
    }
}

/// Sentinel for "no worker / no task" span coordinates.
pub const NO_ID: u32 = u32::MAX;

/// One recorded interval (or zero-length marker) in a sampled root's life.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// What the interval measures.
    pub kind: SpanKind,
    /// Interval start, simulated µs.
    pub start_us: SimTime,
    /// Interval end, simulated µs (equal to `start_us` for markers).
    pub end_us: SimTime,
    /// Pipeline task the span belongs to ([`NO_ID`] for root-level spans).
    pub task: u32,
    /// Worker the span executed on ([`NO_ID`] when not worker-bound).
    pub worker: u32,
}

/// Per-kind duration attribution along the chain that ended a sampled root —
/// the critical-path summary of one trace.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Total critical-path duration, µs (≤ the measured end-to-end latency).
    pub total_us: SimTime,
    /// Of `total_us`: queue-wait time.
    pub queue_us: SimTime,
    /// Of `total_us`: batch-execution time.
    pub exec_us: SimTime,
    /// Of `total_us`: network-transfer time (frontend + inter-worker hops).
    pub network_us: SimTime,
}

/// The full recorded life of one sampled root query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootTrace {
    /// Pipeline lane the root arrived on.
    pub lane: u32,
    /// Lane-local arrival index of the root (the sampling key).
    pub arrival_index: u64,
    /// Root arrival time, simulated µs.
    pub arrival_us: SimTime,
    /// Completion or drop time, simulated µs (`arrival_us` while in flight).
    pub end_us: SimTime,
    /// Whether the root was dropped (any branch lost).
    pub dropped: bool,
    /// Recorded spans, in event-processing order (deterministic).
    pub spans: Vec<Span>,
}

impl RootTrace {
    /// Measured end-to-end latency of this root, µs.
    pub fn latency_us(&self) -> SimTime {
        self.end_us.saturating_sub(self.arrival_us)
    }

    /// Walk the span chain backwards from the last-finishing interval span
    /// (each span starts where its predecessor ended — the data plane leaves
    /// no gaps) and attribute its duration by kind. `total_us` can be smaller
    /// than [`RootTrace::latency_us`] when the chain breaks (e.g. a requeued
    /// query restarts its wait), never larger.
    pub fn critical_path(&self) -> CriticalPath {
        let mut cp = CriticalPath::default();
        let intervals: Vec<&Span> = self
            .spans
            .iter()
            .filter(|s| s.end_us > s.start_us)
            .collect();
        let Some(mut current) = intervals
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (s.end_us, usize::MAX - i))
            .map(|(_, s)| **s)
        else {
            return cp;
        };
        loop {
            let d = current.end_us - current.start_us;
            cp.total_us += d;
            match current.kind {
                SpanKind::Queue => cp.queue_us += d,
                SpanKind::Exec => cp.exec_us += d,
                SpanKind::Frontend | SpanKind::Hop => cp.network_us += d,
                _ => {}
            }
            if current.start_us <= self.arrival_us {
                break;
            }
            let Some(prev) = intervals.iter().find(|s| s.end_us == current.start_us) else {
                break;
            };
            current = **prev;
        }
        cp
    }
}

/// The per-lane trace recorder. Lives inside a lane's state so span recording
/// needs no cross-lane coordination: a root's whole tree executes inside one
/// lane, and lanes merge in index order at the end of the run — identical for
/// every `jobs` value.
#[derive(Debug)]
pub struct LaneTracer {
    /// Trace every Nth root arrival (≥ 1).
    pub sample_every: u64,
    /// All sampled roots of this lane, in arrival order.
    pub roots: Vec<RootTrace>,
}

impl LaneTracer {
    /// A tracer sampling every `sample_every`-th root arrival.
    pub fn new(sample_every: u64) -> Self {
        Self {
            sample_every: sample_every.max(1),
            roots: Vec::new(),
        }
    }

    /// Whether the root with lane-local arrival index `index` is sampled.
    #[inline]
    pub fn samples(&self, index: u64) -> bool {
        index.is_multiple_of(self.sample_every)
    }

    /// Start a trace for a sampled root; returns its slot for [`RootState`]
    /// to carry.
    pub fn begin_root(&mut self, lane: u32, arrival_index: u64, arrival_us: SimTime) -> u32 {
        let slot = self.roots.len() as u32;
        self.roots.push(RootTrace {
            lane,
            arrival_index,
            arrival_us,
            end_us: arrival_us,
            dropped: false,
            spans: Vec::with_capacity(8),
        });
        slot
    }

    /// Append a span to a sampled root.
    #[inline]
    pub fn span(&mut self, slot: u32, span: Span) {
        self.roots[slot as usize].spans.push(span);
    }

    /// Close a sampled root's trace at its completion or drop time.
    pub fn finish(&mut self, slot: u32, end_us: SimTime, dropped: bool) {
        let root = &mut self.roots[slot as usize];
        root.end_us = end_us;
        root.dropped = dropped;
    }
}

/// The merged trace of a whole run: every lane's sampled roots, in lane order
/// then arrival order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceLog {
    /// All sampled roots.
    pub roots: Vec<RootTrace>,
}

impl TraceLog {
    /// Total spans across all sampled roots.
    pub fn num_spans(&self) -> usize {
        self.roots.iter().map(|r| r.spans.len()).sum()
    }

    /// Export as Chrome trace-event JSON (the `traceEvents` array format that
    /// Perfetto and `chrome://tracing` load). Each span becomes a complete
    /// (`"ph": "X"`) event with `ts`/`dur` in microseconds, `pid` = lane and
    /// `tid` = worker; each root additionally gets an umbrella event carrying
    /// the critical-path summary in `args`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (ri, root) in self.roots.iter().enumerate() {
            let cp = root.critical_path();
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"root#{ri}\",\"cat\":\"root\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":0,\"args\":{{\"arrival_index\":{},\"latency_us\":{},\
                 \"critical_path_us\":{},\"critical_queue_us\":{},\"critical_exec_us\":{},\
                 \"critical_network_us\":{},\"dropped\":{}}}}}",
                root.arrival_us,
                root.latency_us().max(1),
                root.lane,
                root.arrival_index,
                root.latency_us(),
                cp.total_us,
                cp.queue_us,
                cp.exec_us,
                cp.network_us,
                root.dropped
            );
            for span in &root.spans {
                let tid = if span.worker == NO_ID {
                    0
                } else {
                    span.worker + 1
                };
                let _ = write!(
                    out,
                    ",{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"root\":{ri},\"task\":{}}}}}",
                    span.kind.name(),
                    span.start_us,
                    span.end_us - span.start_us,
                    root.lane,
                    tid,
                    if span.task == NO_ID {
                        -1
                    } else {
                        span.task as i64
                    },
                );
            }
        }
        out.push_str("]}");
        out
    }
}

/// Wall-clock seconds per engine phase, accumulated when
/// [`ObserveConfig::profile`] is on. Lane phases accumulate inside each
/// shard's dispatch loop; the cluster phases on the driver thread at epoch
/// barriers. Surfaced next to `lane_wall_s`/`barrier_wait_s`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Root-arrival ingest (frontend routing included).
    pub arrival_s: f64,
    /// Query delivery and dispatch (queue admission, batch starts).
    pub delivery_s: f64,
    /// Batch completion: accuracy propagation, drop policies, fan-out routing.
    pub batch_s: f64,
    /// Controller plan ticks (Resource Manager + plan application).
    pub control_s: f64,
    /// Controller routing ticks (Load Balancer + table install).
    pub routing_s: f64,
    /// Metrics-interval flushes.
    pub metrics_s: f64,
    /// Model-swap completions.
    pub swap_s: f64,
    /// Cluster: market ticks and revocation deadlines.
    pub market_s: f64,
    /// Cluster: elastic ticks and boot completions.
    pub elastic_s: f64,
    /// Cluster: arbiter repartitions.
    pub rebalance_s: f64,
}

impl PhaseProfile {
    /// Sum of the lane-side phases (what a shard's `lane_wall_s` decomposes
    /// into, up to dispatch-merge overhead).
    pub fn lane_total_s(&self) -> f64 {
        self.arrival_s
            + self.delivery_s
            + self.batch_s
            + self.control_s
            + self.routing_s
            + self.metrics_s
            + self.swap_s
    }

    /// Element-wise accumulate another profile into this one.
    pub fn merge(&mut self, other: &PhaseProfile) {
        self.arrival_s += other.arrival_s;
        self.delivery_s += other.delivery_s;
        self.batch_s += other.batch_s;
        self.control_s += other.control_s;
        self.routing_s += other.routing_s;
        self.metrics_s += other.metrics_s;
        self.swap_s += other.swap_s;
        self.market_s += other.market_s;
        self.elastic_s += other.elastic_s;
        self.rebalance_s += other.rebalance_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exact_below_the_linear_cutoff() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_monotone_and_self_consistent() {
        // Every bucket's lower bound maps back into the bucket, boundaries are
        // strictly increasing, and adjacent buckets meet with no gaps: the
        // value just below a bucket's lower bound belongs to the previous one.
        let mut prev_low = None;
        for idx in 0..HIST_BUCKETS {
            let low = bucket_low(idx);
            assert_eq!(bucket_index(low), idx, "low({idx}) must map back");
            if let Some(p) = prev_low {
                assert!(low > p, "bounds must increase at {idx}");
                assert_eq!(bucket_index(low - 1), idx - 1, "no gap below {idx}");
            }
            prev_low = Some(low);
        }
        // Power-of-two boundaries land on fresh buckets with exact bounds.
        for shift in HIST_SUB_BITS..63 {
            let v = 1u64 << shift;
            assert_eq!(bucket_low(bucket_index(v)), v);
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_by_the_sub_bucket_resolution() {
        for &v in &[100u64, 1_000, 12_345, 1_000_000, 87_654_321] {
            let low = bucket_low(bucket_index(v));
            assert!(low <= v);
            let error = (v - low) as f64 / v as f64;
            assert!(error <= 1.0 / SUB as f64, "error {error} too big for {v}");
        }
    }

    #[test]
    fn percentiles_are_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 1..=20u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 20);
        assert_eq!(h.percentile_us(0.50), 10);
        assert_eq!(h.percentile_us(0.90), 18);
        assert_eq!(h.percentile_us(1.0), 20);
        assert_eq!(h.max_us(), 20);
        assert!((h.mean_ms() - 10.5 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile_us(0.99), 0);
        assert_eq!(h.max_us(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_is_exact() {
        // A histogram that recorded both streams is bit-identical to the
        // merge of two histograms that recorded one stream each.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for i in 0..5_000u64 {
            let v = i * 37 % 1_000_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both);
        // Merge order does not matter either.
        let mut reversed = b.clone();
        reversed.merge(&a);
        assert_eq!(reversed, both);
    }

    #[test]
    fn latency_stats_merge_appends_unknown_tasks() {
        let mut a = LatencyStats::new(2, 1);
        let mut b = LatencyStats::new(3, 1);
        a.e2e.record(100);
        b.e2e.record(200);
        b.per_task[2].record(5);
        a.merge(&b);
        assert_eq!(a.e2e.count(), 2);
        assert_eq!(a.per_task.len(), 3);
        assert_eq!(a.per_task[2].count(), 1);
    }

    #[test]
    fn tracer_samples_every_nth_index() {
        let t = LaneTracer::new(100);
        assert!(t.samples(0));
        assert!(!t.samples(1));
        assert!(!t.samples(99));
        assert!(t.samples(100));
        // sample_every = 0 clamps to 1 (trace everything) instead of dividing
        // by zero.
        let t = LaneTracer::new(0);
        assert!(t.samples(7));
    }

    fn span(kind: SpanKind, start: SimTime, end: SimTime) -> Span {
        Span {
            kind,
            start_us: start,
            end_us: end,
            task: 0,
            worker: 1,
        }
    }

    #[test]
    fn critical_path_chains_contiguous_spans() {
        let mut tracer = LaneTracer::new(1);
        let slot = tracer.begin_root(0, 0, 1_000);
        tracer.span(slot, span(SpanKind::Frontend, 1_000, 3_000));
        tracer.span(slot, span(SpanKind::Queue, 3_000, 4_000));
        tracer.span(slot, span(SpanKind::Exec, 4_000, 9_000));
        // A parallel sibling branch that finished earlier: not on the path.
        tracer.span(slot, span(SpanKind::Exec, 4_000, 6_000));
        tracer.finish(slot, 9_000, false);
        let root = &tracer.roots[0];
        assert_eq!(root.latency_us(), 8_000);
        let cp = root.critical_path();
        assert_eq!(cp.total_us, 8_000);
        assert_eq!(cp.network_us, 2_000);
        assert_eq!(cp.queue_us, 1_000);
        assert_eq!(cp.exec_us, 5_000);
        assert!(cp.total_us <= root.latency_us());
    }

    #[test]
    fn chrome_export_is_wellformed_and_names_every_span() {
        let mut tracer = LaneTracer::new(1);
        let slot = tracer.begin_root(0, 0, 0);
        tracer.span(slot, span(SpanKind::Frontend, 0, 2_000));
        tracer.span(slot, span(SpanKind::Exec, 2_000, 5_000));
        tracer.finish(slot, 5_000, false);
        let log = TraceLog {
            roots: tracer.roots,
        };
        assert_eq!(log.num_spans(), 2);
        let json = log.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"frontend\""));
        assert!(json.contains("\"name\":\"exec\""));
        assert!(json.contains("\"critical_path_us\":5000"));
        // Balanced braces/brackets — the export must parse.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn phase_profile_merges_element_wise() {
        let mut a = PhaseProfile {
            arrival_s: 1.0,
            batch_s: 2.0,
            ..Default::default()
        };
        let b = PhaseProfile {
            arrival_s: 0.5,
            market_s: 3.0,
            ..Default::default()
        };
        a.merge(&b);
        assert!((a.arrival_s - 1.5).abs() < 1e-12);
        assert!((a.market_s - 3.0).abs() < 1e-12);
        assert!((a.lane_total_s() - 3.5).abs() < 1e-12);
    }
}
